"""Legacy setup shim.

Kept so the package installs in fully-offline environments where the
``wheel`` package (needed by setuptools' PEP 660 editable path) is
unavailable: ``python setup.py develop`` works with plain setuptools.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
