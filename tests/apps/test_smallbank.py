"""Tests for the SmallBank application model: the static robustness
verdicts of the literature, and the operational anomaly on the engines."""

import pytest

from repro.apps.smallbank import (
    initial_state,
    smallbank_programs,
    transact_savings_program,
    write_check_program,
    write_skew_sessions,
)
from repro.characterisation import classify_history
from repro.graphs import graph_of, in_graph_ser, in_graph_si
from repro.mvcc import Scheduler, SerializableEngine, SIEngine
from repro.robustness import (
    check_robustness_against_si,
    robust_against_si,
)


class TestStaticModel:
    def test_programs_constructible(self):
        programs = smallbank_programs(customers=2)
        names = {p.name for p in programs}
        assert "WriteCheck(0)" in names
        assert "Amalgamate(0,1)" in names
        assert len(programs) == 9

    def test_write_check_is_the_vulnerable_program(self):
        wc = write_check_program(0)
        ts = transact_savings_program(0)
        # They conflict read-write in both directions but never
        # write-write: the write-skew pattern.
        assert wc.reads & ts.writes
        assert ts.reads & wc.writes == set()  # ts reads only savings
        assert not (wc.writes & ts.writes)

    def test_not_robust_against_si(self):
        assert not robust_against_si(smallbank_programs())
        assert not robust_against_si(
            smallbank_programs(), require_vulnerable=True
        )

    def test_witness_is_the_known_write_skew(self):
        verdict = check_robustness_against_si(
            smallbank_programs(), require_vulnerable=True
        )
        assert not verdict.robust
        nodes = " ".join(str(n) for n in verdict.witness.nodes)
        assert "WriteCheck" in nodes
        # The adjacent anti-dependency pair runs through savings/checking.
        objs = {e.obj for e in verdict.witness.edges if e.obj}
        assert objs & {"savings0", "checking0"}

    def test_fix_by_materialising_conflict(self):
        # The standard SmallBank fix: make TransactSavings also write the
        # checking row (or a common lock), so WriteCheck and
        # TransactSavings write-conflict and SI serialises them.
        from repro.chopping import piece, program

        fixed = [
            p
            for p in smallbank_programs(customers=1)
            if not p.name.startswith(("WriteCheck", "TransactSavings"))
        ]
        fixed.append(
            program(
                "WriteCheck(0)",
                piece({"savings0", "checking0"}, {"checking0"}),
            )
        )
        fixed.append(
            program(
                "TransactSavings(0)",
                piece({"savings0"}, {"savings0", "checking0"}),
            )
        )
        assert robust_against_si(fixed, require_vulnerable=True)


class TestOperationalAnomaly:
    """Alomari et al.'s three-transaction SmallBank anomaly: the cheque is
    cashed against the pre-withdrawal snapshot (no overdraft penalty)
    while the auditor observes the withdrawal but not the cheque."""

    def run_anomaly(self, engine):
        from repro.apps.smallbank import ANOMALY_SCHEDULE

        sched = Scheduler(engine, write_skew_sessions())
        sched.run_schedule(ANOMALY_SCHEDULE)
        return engine

    def test_si_admits_the_anomaly(self):
        engine = self.run_anomaly(
            SIEngine(initial_state(customers=1, balance=100))
        )
        assert engine.stats.aborts == 0
        # The cheque (150) was cashed without the overdraft penalty even
        # though, serialised after the withdrawal, the combined balance
        # (100) would not have covered it.
        assert engine.store.latest("checking0").value == -50
        g = graph_of(engine.abstract_execution())
        assert in_graph_si(g)
        assert not in_graph_ser(g)

    def test_auditor_observation_breaks_serializability(self):
        engine = self.run_anomaly(
            SIEngine(initial_state(customers=1, balance=100))
        )
        auditor = [r for r in engine.committed if r.session == "auditor"][0]
        seen = {e.obj: e.value for e in auditor.events}
        # The auditor saw the withdrawal (savings 0) but not the cheque
        # (checking still 100): inconsistent with every serial order.
        assert seen == {"savings0": 0, "checking0": 100}

    def test_serializable_engine_prevents_it(self):
        engine = self.run_anomaly(
            SerializableEngine(initial_state(customers=1, balance=100))
        )
        assert engine.stats.aborts >= 1
        g = graph_of(engine.abstract_execution())
        assert in_graph_ser(g)

    def test_anomalous_history_in_hist_si_not_ser(self):
        engine = self.run_anomaly(
            SIEngine(initial_state(customers=1, balance=100))
        )
        got = classify_history(engine.history(), init_tid="t_init")
        assert got["SI"] and not got["SER"]
