"""Tests for the TPC-C read/write-set model and its robustness verdicts."""

import pytest

from repro.apps.tpcc import (
    delivery_program,
    new_order_program,
    order_status_program,
    payment_program,
    stock_level_program,
    tpcc_programs,
)
from repro.robustness import (
    check_robustness_against_si,
    robust_against_si,
    robust_psi_to_si,
    static_dependency_graph,
)


class TestModel:
    def test_five_programs(self):
        programs = tpcc_programs()
        assert [p.name for p in programs] == [
            "NewOrder", "Payment", "Delivery", "OrderStatus", "StockLevel",
        ]

    def test_read_only_programs(self):
        assert not order_status_program().writes
        assert not stock_level_program().writes

    def test_new_order_rmw_on_district_and_stock(self):
        no = new_order_program()
        assert "district" in no.reads and "district" in no.writes
        assert "stock" in no.reads and "stock" in no.writes

    def test_payment_touches_warehouse(self):
        p = payment_program()
        assert "warehouse" in p.writes

    def test_static_graph_is_dense(self):
        graph = static_dependency_graph(tpcc_programs(), instances=2)
        assert len(graph.nodes) == 10
        assert len(graph.edges) > 50


class TestRobustness:
    """The famous result of Fekete et al. [18]: TPC-C runs serializably
    under SI."""

    def test_plain_analysis_is_conservative(self):
        # Any syntactic overlap check flags TPC-C: e.g. two NewOrder
        # instances race read-modify-writes on stock.  The plain paper
        # analysis therefore cannot prove robustness...
        assert not robust_against_si(tpcc_programs())

    def test_refined_analysis_proves_robustness(self):
        # ...but the vulnerability refinement — anti-dependencies between
        # write-conflicting programs cannot connect concurrent
        # transactions — eliminates every dangerous pair: TPC-C is robust
        # against SI.  This reproduces Fekete et al.'s result.
        verdict = check_robustness_against_si(
            tpcc_programs(), require_vulnerable=True
        )
        assert verdict.robust, str(verdict)

    def test_read_only_additions_preserve_robustness(self):
        # Adding more read-only transactions over existing tables keeps
        # the refined verdict (their anti-dependencies are vulnerable but
        # never form adjacent pairs through a writer pivot).
        from repro.chopping import piece, program

        extended = tpcc_programs() + [
            program("Dashboard", piece({"warehouse", "district"}, ())),
        ]
        assert robust_against_si(extended, require_vulnerable=True)

    def test_breaking_tpcc_robustness(self):
        # Sanity of the analysis: splitting NewOrder's read-modify-write
        # on stock into a read of stock with a write elsewhere creates a
        # vulnerable pivot and the verdict flips.
        from repro.chopping import piece, program

        broken = [p for p in tpcc_programs() if p.name != "NewOrder"]
        broken.append(
            program(
                "NewOrderNoStockWrite",
                piece(
                    reads={"warehouse", "district", "customer", "item",
                           "stock"},
                    writes={"new_order", "order", "order_line"},
                ),
            )
        )
        assert not robust_against_si(broken, require_vulnerable=True)

    def test_psi_towards_si_not_robust(self):
        # Under PSI, independent Payment and NewOrder updates can be seen
        # in different orders by the read-only transactions: TPC-C is not
        # robust from PSI towards SI (it relies on SI's PREFIX).
        assert not robust_psi_to_si(tpcc_programs())
