"""Crash fault injection: recovery must stop cleanly at any damage,
report what was dropped, and never raise an unhandled exception.

Each test produces a healthy multi-segment log from a real service run,
injects one class of fault (torn tail, flipped payload byte, deleted
segment, corrupted header), and checks the recovered prefix is exactly
the live run's prefix — bit-identical commit records, consistent
engine state, damage accounted for.
"""

import os

import pytest

from repro.mvcc import SIEngine
from repro.mvcc.runtime import ReadOp, WriteOp
from repro.service import TransactionService
from repro.wal import WriteAheadLog, audit_log, recover, scan
from repro.wal.format import SEGMENT_MAGIC

COMMITS = 40


@pytest.fixture
def logged_run(tmp_path):
    """A finished service run with a multi-segment WAL.

    Returns ``(engine, wal_dir, segments)`` — segments oldest first.
    """
    directory = str(tmp_path / "wal")
    engine = SIEngine({"x": 0, "y": 0})
    wal = WriteAheadLog(
        directory,
        fsync_policy="none",
        segment_max_bytes=1200,
        flush_interval=0.01,
        meta={"engine": "SI", "init": dict(engine.initial),
              "init_tid": engine.init_tid, "model": "SI"},
    )
    service = TransactionService.certified(engine, model="SI", wal=wal)

    def transfer():
        x = yield ReadOp("x")
        yield WriteOp("x", x + 1)
        y = yield ReadOp("y")
        yield WriteOp("y", y - 1)

    session = service.session()
    for _ in range(COMMITS):
        session.run(transfer)
    service.close()
    segments = wal.segments()
    assert len(segments) >= 4, "fixture must produce several segments"
    return engine, directory, segments


def assert_prefix_recovery(directory, engine, expect_drops=True):
    """Recovery succeeds, yields a bit-identical prefix, reports damage."""
    result = recover(directory)
    assert result.records_recovered < COMMITS
    assert result.engine.committed == engine.committed[
        : result.records_recovered
    ]
    if expect_drops:
        assert result.truncated
        assert result.damage and all(str(d) for d in result.damage)
    # The recovered prefix replays the same state the live engine had
    # after that commit.
    if result.records_recovered:
        last = result.engine.committed[-1]
        for obj, value in last.writes.items():
            assert result.engine.store.latest(obj).value == value
    # The streaming audit of the damaged log also never raises.
    audit = audit_log(directory)
    assert audit.commits_observed == result.records_recovered
    return result


class TestTornTail:
    def test_truncated_mid_frame_header(self, logged_run):
        engine, directory, segments = logged_run
        with open(segments[-1], "r+b") as f:
            f.truncate(os.path.getsize(segments[-1]) - 3)
        result = assert_prefix_recovery(directory, engine)
        assert any("torn" in d.reason or "truncated" in d.reason
                   for d in result.damage)

    def test_truncated_mid_payload(self, logged_run):
        engine, directory, segments = logged_run
        size = os.path.getsize(segments[-1])
        with open(segments[-1], "r+b") as f:
            f.truncate(size - 15)
        assert_prefix_recovery(directory, engine)

    def test_truncated_to_bare_magic(self, logged_run):
        engine, directory, segments = logged_run
        with open(segments[-1], "r+b") as f:
            f.truncate(len(SEGMENT_MAGIC))
        result = assert_prefix_recovery(directory, engine)
        assert result.records_recovered > 0


class TestCorruption:
    def test_flipped_payload_byte(self, logged_run):
        engine, directory, segments = logged_run
        path = segments[len(segments) // 2]
        with open(path, "r+b") as f:
            f.seek(os.path.getsize(path) - 20)
            byte = f.read(1)
            f.seek(-1, 1)
            f.write(bytes([byte[0] ^ 0xFF]))
        result = assert_prefix_recovery(directory, engine)
        assert any("CRC" in d.reason for d in result.damage)
        # Everything past the corrupted segment is unreachable.
        assert result.segments_dropped >= len(segments) // 2 - 1

    def test_corrupted_segment_magic(self, logged_run):
        engine, directory, segments = logged_run
        with open(segments[-1], "r+b") as f:
            f.write(b"XXXXXXXX")
        result = assert_prefix_recovery(directory, engine)
        assert any("magic" in d.reason for d in result.damage)

    def test_corrupted_meta_frame(self, logged_run):
        engine, directory, segments = logged_run
        with open(segments[-1], "r+b") as f:
            f.seek(len(SEGMENT_MAGIC) + 10)
            f.write(b"\x00\x00\x00")
        assert_prefix_recovery(directory, engine)


class TestMissingSegments:
    def test_deleted_newest_segment(self, logged_run):
        engine, directory, segments = logged_run
        os.unlink(segments[-1])
        result = recover(directory)
        # A clean shorter prefix: the log simply ends earlier.
        assert 0 < result.records_recovered < COMMITS
        assert result.engine.committed == engine.committed[
            : result.records_recovered
        ]
        assert not result.truncated

    def test_deleted_middle_segment(self, logged_run):
        engine, directory, segments = logged_run
        os.unlink(segments[2])
        result = assert_prefix_recovery(directory, engine)
        assert any("missing segment" in d.reason for d in result.damage)
        assert result.segments_dropped >= len(segments) - 3

    def test_all_segments_deleted(self, logged_run):
        from repro.core.errors import StoreError

        _, directory, segments = logged_run
        for path in segments:
            os.unlink(path)
        # Nothing to seed an engine from: a clean, typed error.
        with pytest.raises(StoreError, match="no readable segment meta"):
            recover(directory)

    def test_missing_directory(self, tmp_path):
        from repro.core.errors import StoreError

        with pytest.raises(StoreError, match="no such log directory"):
            recover(str(tmp_path / "never-existed"))


class TestDamageReporting:
    def test_scan_counters_account_for_drops(self, logged_run):
        _, directory, segments = logged_run
        with open(segments[1], "r+b") as f:
            f.truncate(os.path.getsize(segments[1]) - 5)
        result = scan(directory)
        records = list(result)
        assert result.records_scanned == len(records)
        assert result.segments_scanned == 2
        assert result.segments_dropped == len(segments) - 2
        assert result.truncated

    def test_rescan_is_idempotent(self, logged_run):
        _, directory, segments = logged_run
        with open(segments[-1], "r+b") as f:
            f.truncate(os.path.getsize(segments[-1]) - 5)
        result = scan(directory)
        first = list(result)
        second = list(result)
        assert first == second
        assert len(result.damage) == 1
