"""Frame codec tests: framing, CRC, and bit-identical payload round trips."""

import pytest

from repro.core.events import read as read_op, write as write_op
from repro.io.json_format import FormatError
from repro.mvcc.engine import CommitRecord
from repro.wal.format import (
    FRAME_HEADER,
    MAX_FRAME_BYTES,
    LogMeta,
    commit_record_from_doc,
    commit_record_to_payload,
    encode_frame,
    meta_from_doc,
    meta_to_payload,
    payload_to_doc,
    scan_frames,
    segment_index,
    segment_name,
)


def make_record(ts=1, tid=None, values=(0, 1)):
    return CommitRecord(
        tid=tid or f"t{ts}",
        session="client-1",
        start_ts=ts - 1,
        commit_ts=ts,
        events=(read_op("x", values[0]), write_op("x", values[1])),
        writes={"x": values[1]},
        visible_tids=frozenset({"t_init"}),
    )


class TestSegmentNames:
    def test_round_trip(self):
        assert segment_index(segment_name(7)) == 7
        assert segment_index(segment_name(12345678)) == 12345678

    def test_lexicographic_is_numeric(self):
        names = [segment_name(i) for i in (1, 2, 10, 99, 100)]
        assert names == sorted(names)

    @pytest.mark.parametrize("name", [
        "wal-0000001.segx", "foo.seg", "wal-abc.seg", "wal-.seg", "other",
    ])
    def test_foreign_names_rejected(self, name):
        assert segment_index(name) is None


class TestFrames:
    def test_empty_data_scans_clean(self):
        payloads, damage, offset = scan_frames(b"")
        assert payloads == [] and damage is None and offset == 0

    def test_multiple_frames_round_trip(self):
        data = b"".join(encode_frame(p) for p in (b"a", b"bb" * 100, b""))
        payloads, damage, _ = scan_frames(data)
        assert payloads == [b"a", b"bb" * 100, b""]
        assert damage is None

    def test_torn_header_detected(self):
        data = encode_frame(b"ok") + b"\x01\x02\x03"
        payloads, damage, offset = scan_frames(data)
        assert payloads == [b"ok"]
        assert "torn frame header" in damage
        assert offset == len(encode_frame(b"ok"))

    def test_truncated_payload_detected(self):
        data = encode_frame(b"hello world")[:-4]
        payloads, damage, offset = scan_frames(data)
        assert payloads == []
        assert "truncated frame payload" in damage
        assert offset == 0

    def test_crc_mismatch_detected(self):
        data = bytearray(encode_frame(b"hello"))
        data[-1] ^= 0xFF
        payloads, damage, _ = scan_frames(bytes(data))
        assert payloads == []
        assert "CRC mismatch" in damage

    def test_implausible_length_detected(self):
        data = FRAME_HEADER.pack(MAX_FRAME_BYTES + 1, 0)
        payloads, damage, _ = scan_frames(data)
        assert payloads == []
        assert "implausible frame length" in damage

    def test_good_prefix_survives_bad_tail(self):
        good = encode_frame(b"one") + encode_frame(b"two")
        bad = bytearray(encode_frame(b"three"))
        bad[len(bad) // 2] ^= 0x55
        payloads, damage, offset = scan_frames(good + bytes(bad))
        assert payloads == [b"one", b"two"]
        assert damage is not None
        assert offset == len(good)


class TestCommitPayloads:
    def test_bit_identical_round_trip(self):
        record = make_record()
        back = commit_record_from_doc(
            payload_to_doc(commit_record_to_payload(record))
        )
        assert back == record
        assert back.events == record.events
        assert dict(back.writes) == dict(record.writes)
        assert back.visible_tids == record.visible_tids

    def test_tuple_values_survive(self):
        # The service's value tagger writes (logical, seq) tuples; JSON
        # alone would flatten them to lists.
        record = CommitRecord(
            tid="t1", session="s", start_ts=0, commit_ts=1,
            events=(read_op("x", (5, 2)), write_op("x", (6, 3))),
            writes={"x": (6, 3)},
            visible_tids=frozenset(),
        )
        back = commit_record_from_doc(
            payload_to_doc(commit_record_to_payload(record))
        )
        assert back == record
        assert isinstance(back.writes["x"], tuple)
        assert isinstance(back.events[0].value, tuple)

    def test_nested_container_values_survive(self):
        value = {"a": [1, (2, 3)], "b": (4, [5])}
        record = CommitRecord(
            tid="t1", session="s", start_ts=0, commit_ts=1,
            events=(write_op("x", value),),
            writes={"x": value},
            visible_tids=frozenset({"t_init"}),
        )
        back = commit_record_from_doc(
            payload_to_doc(commit_record_to_payload(record))
        )
        assert back.writes["x"] == value
        assert isinstance(back.writes["x"]["b"], tuple)
        assert isinstance(back.writes["x"]["a"][1], tuple)

    def test_non_json_payload_rejected(self):
        with pytest.raises(FormatError):
            payload_to_doc(b"\xff\xfe not json")
        with pytest.raises(FormatError):
            payload_to_doc(b"[1, 2, 3]")  # no kind tag

    def test_wrong_kind_rejected(self):
        meta_doc = payload_to_doc(
            meta_to_payload({"engine": "SI", "init": {"x": 0}}, 1, 1)
        )
        with pytest.raises(FormatError):
            commit_record_from_doc(meta_doc)
        commit_doc = payload_to_doc(
            commit_record_to_payload(make_record())
        )
        with pytest.raises(FormatError):
            meta_from_doc(commit_doc)

    def test_malformed_commit_doc_rejected(self):
        doc = payload_to_doc(commit_record_to_payload(make_record()))
        del doc["events"]
        with pytest.raises(FormatError):
            commit_record_from_doc(doc)


class TestMetaPayloads:
    def test_round_trip(self):
        meta = meta_from_doc(payload_to_doc(meta_to_payload(
            {"engine": "PSI", "init": {"x": (0, 0), "y": 1},
             "init_tid": "t_zero", "model": "PSI", "note": "hi"},
            segment=3, first_ts=17,
        )))
        assert meta == LogMeta(
            engine="PSI", init={"x": (0, 0), "y": 1}, init_tid="t_zero",
            model="PSI", segment=3, first_ts=17,
        )
        assert meta.extra["note"] == "hi"
        assert isinstance(meta.init["x"], tuple)

    def test_defaults(self):
        meta = meta_from_doc(payload_to_doc(
            meta_to_payload({"init": {"x": 0}}, 1, 1)
        ))
        assert meta.engine is None
        assert meta.model is None
        assert meta.init_tid == "t_init"

    def test_missing_init_rejected(self):
        doc = payload_to_doc(meta_to_payload({"init": {"x": 0}}, 1, 1))
        del doc["init"]
        with pytest.raises(FormatError):
            meta_from_doc(doc)
