"""End-to-end durability: service runs with a WAL attached recover to
bit-identical state, and the offline audit matches the live monitor.

These are the acceptance-criteria tests: seeded concurrent runs (tagged
tuple values included), recovery equality on the full ``CommitRecord``
level (not just tid equality), recovered engines that keep serving, and
live-vs-offline verdict parity.
"""

import pytest

from repro.mvcc import PSIEngine, SerializableEngine, SIEngine
from repro.mvcc.locking import TwoPhaseLockingEngine
from repro.mvcc.runtime import ReadOp, WriteOp
from repro.service import MIXES, LoadGenerator, TransactionService
from repro.wal import WriteAheadLog, audit_log, recover

ENGINES = {
    "SI": (SIEngine, "SI"),
    "SER": (SerializableEngine, "SER"),
    "PSI": (lambda initial: PSIEngine(initial, auto_deliver=True), "PSI"),
    "2PL": (TwoPhaseLockingEngine, "SER"),
}


def run_with_wal(tmp_path, engine_key, monitor_mode="sync", workers=4,
                 txns=8, seed=0, fsync_policy="none", **wal_kwargs):
    """Drive a SmallBank load through a WAL-attached certified service."""
    factory, model = ENGINES[engine_key]
    mix = MIXES["smallbank"]()
    engine = factory(dict(mix.initial))
    wal = WriteAheadLog(
        str(tmp_path / f"wal-{engine_key}-{monitor_mode}-{seed}"),
        fsync_policy=fsync_policy,
        flush_interval=0.01,
        meta={"engine": engine_key, "init": dict(mix.initial),
              "init_tid": engine.init_tid, "model": model},
        **wal_kwargs,
    )
    service = TransactionService.certified(
        engine, model=model, window=64, monitor_mode=monitor_mode,
        max_retries=200, wal=wal,
    )
    LoadGenerator(
        service, mix, workers=workers, transactions_per_worker=txns,
        seed=seed,
    ).run()
    service.drain()
    service.close()
    return engine, wal, service, model


class TestRoundTrip:
    @pytest.mark.parametrize("engine_key", sorted(ENGINES))
    @pytest.mark.parametrize("monitor_mode", ["sync", "pipelined"])
    def test_recovery_is_bit_identical(self, tmp_path, engine_key,
                                       monitor_mode):
        engine, wal, _, _ = run_with_wal(
            tmp_path, engine_key, monitor_mode=monitor_mode
        )
        result = recover(wal.directory)
        assert not result.truncated
        assert result.records_recovered == len(engine.committed)
        # Full structural equality of the commit records — tids,
        # sessions, timestamps, events (with tagged tuple values),
        # writes, and snapshot visibility sets.
        assert result.engine.committed == engine.committed
        assert result.engine.history() == engine.history()

    def test_tagged_tuple_values_round_trip(self, tmp_path):
        # SmallBank writes ValueTagger tuples; a JSON round trip that
        # flattened them to lists would break this equality.
        engine, wal, _, _ = run_with_wal(tmp_path, "SI")
        tupled = [
            record for record in engine.committed
            if any(isinstance(v, tuple) for v in record.writes.values())
        ]
        assert tupled, "SmallBank must produce tagged tuple values"
        recovered = recover(wal.directory).engine
        for mine, theirs in zip(engine.committed, recovered.committed):
            assert mine.writes == theirs.writes
            for a, b in zip(mine.events, theirs.events):
                assert type(a.value) is type(b.value)

    def test_recovered_engine_keeps_serving(self, tmp_path):
        engine, wal, _, _ = run_with_wal(tmp_path, "SI", workers=2, txns=5)
        recovered = recover(wal.directory).engine
        service = TransactionService(recovered)

        def probe():
            value = yield ReadOp("checking0")
            yield WriteOp("checking0", value)

        outcome = service.session().run(probe)
        assert outcome.record.commit_ts == len(engine.committed) + 1
        # Fresh tids never collide with recovered ones.
        assert outcome.record.tid not in {
            record.tid for record in engine.committed
        }

    def test_abstract_execution_reconstructs(self, tmp_path):
        engine, wal, _, _ = run_with_wal(tmp_path, "SI", workers=2, txns=5)
        recovered = recover(wal.directory).engine
        execution = recovered.abstract_execution()
        assert execution.history == engine.history()


class TestAuditParity:
    @pytest.mark.parametrize("engine_key", sorted(ENGINES))
    def test_offline_audit_matches_live_monitor(self, tmp_path,
                                                engine_key):
        engine, wal, service, model = run_with_wal(tmp_path, engine_key)
        audit = audit_log(wal.directory, model=model, window=64)
        assert audit.commits_observed == len(engine.committed)
        assert [v.tid for v in audit.violations] == [
            v.tid for v in service.violations
        ]
        assert audit.consistent == (not service.violations)

    def test_audit_model_defaults_from_meta(self, tmp_path):
        _, wal, _, _ = run_with_wal(tmp_path, "2PL")
        audit = audit_log(wal.directory)
        assert audit.model == "SER"  # 2PL logs certify against SER

    def test_audit_full_graph_matches_windowed_live(self, tmp_path):
        engine, wal, service, _ = run_with_wal(tmp_path, "SI")
        audit = audit_log(wal.directory)  # no window: full graph
        assert audit.commits_observed == len(engine.committed)
        assert audit.consistent


class TestDurabilityMetrics:
    def test_service_mirrors_wal_counters(self, tmp_path):
        engine, wal, service, _ = run_with_wal(
            tmp_path, "SI", fsync_policy="group"
        )
        snapshot = service.metrics.snapshot()
        assert snapshot["wal"]["appends"] == len(engine.committed)
        assert snapshot["wal"]["appends"] == wal.stats.appends
        assert snapshot["wal"]["fsyncs"] == wal.stats.fsyncs > 0
        assert snapshot["wal"]["bytes"] > 0
        batch = snapshot["wal"]["batch_records"]
        assert batch["count"] == wal.stats.flushes
        assert batch["mean"] == pytest.approx(wal.stats.mean_batch)

    def test_commit_waits_for_durability(self, tmp_path):
        engine, wal, _, _ = run_with_wal(
            tmp_path, "SI", workers=2, txns=5, fsync_policy="always"
        )
        assert wal.stats.fsyncs >= len(engine.committed)
