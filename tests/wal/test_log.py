"""WriteAheadLog behaviour: policies, ordering, rotation, retention,
concurrency, and close semantics."""

import os
import threading

import pytest

from repro.mvcc.engine import CommitRecord
from repro.core.events import write as write_op
from repro.wal import (
    FSYNC_POLICIES,
    WalClosed,
    WalError,
    WriteAheadLog,
    recover,
    scan,
)

META = {"engine": "SI", "init": {"x": 0}, "init_tid": "t_init",
        "model": "SI"}


def make_record(ts):
    return CommitRecord(
        tid=f"t{ts}", session=f"client-{ts % 3}", start_ts=ts - 1,
        commit_ts=ts, events=(write_op("x", ts),), writes={"x": ts},
        visible_tids=frozenset({"t_init"}),
    )


def make_log(tmp_path, **kwargs):
    kwargs.setdefault("meta", META)
    kwargs.setdefault("flush_interval", 0.01)
    return WriteAheadLog(str(tmp_path / "wal"), **kwargs)


class TestAppendAndScan:
    @pytest.mark.parametrize("policy", FSYNC_POLICIES)
    def test_in_order_appends_scan_back(self, tmp_path, policy):
        with make_log(tmp_path, fsync_policy=policy) as log:
            records = [make_record(ts) for ts in range(1, 21)]
            for record in records:
                log.append(record)
            log.flush()
        result = list(scan(log.directory))
        assert result == records

    def test_out_of_order_appends_are_reordered(self, tmp_path):
        # Deposit 2 and 3 from helper threads first; they must block
        # (durability waits for the gap at 1) until 1 arrives.
        log = make_log(tmp_path, fsync_policy="group")
        done = []

        def deposit(ts):
            log.append(make_record(ts))
            done.append(ts)

        threads = [
            threading.Thread(target=deposit, args=(ts,)) for ts in (2, 3)
        ]
        for t in threads:
            t.start()
        while len(log.pending_gap) < 2:
            pass  # both deposited, blocked behind the gap
        assert done == []
        log.append(make_record(1))
        for t in threads:
            t.join()
        log.close()
        assert [r.commit_ts for r in scan(log.directory)] == [1, 2, 3]

    def test_stale_sequence_rejected(self, tmp_path):
        with make_log(tmp_path) as log:
            log.append(make_record(1))
            with pytest.raises(WalError, match="out of sequence"):
                log.append(make_record(1))

    def test_durable_ts_advances(self, tmp_path):
        with make_log(tmp_path, fsync_policy="group") as log:
            assert log.durable_ts == 0
            log.append(make_record(1))
            assert log.durable_ts == 1


class TestPolicies:
    def test_always_syncs_per_record(self, tmp_path):
        with make_log(tmp_path, fsync_policy="always") as log:
            for ts in range(1, 6):
                log.append(make_record(ts))
        assert log.stats.fsyncs == 5

    def test_group_syncs_per_batch(self, tmp_path):
        log = make_log(tmp_path, fsync_policy="group")
        threads = [
            threading.Thread(target=log.append, args=(make_record(ts),))
            for ts in range(1, 9)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        log.close()
        # One fsync per flusher batch, never per record.
        assert log.stats.fsyncs == log.stats.flushes <= 8
        assert sum(log.stats.batch_sizes) == 8

    def test_none_never_syncs_and_returns_immediately(self, tmp_path):
        with make_log(tmp_path, fsync_policy="none") as log:
            for ts in range(1, 6):
                log.append(make_record(ts))
            log.flush()
        assert log.stats.fsyncs == 0
        assert [r.commit_ts for r in scan(log.directory)] == [1, 2, 3, 4, 5]


class TestRotationAndRetention:
    def test_rotation_produces_recoverable_segments(self, tmp_path):
        with make_log(tmp_path, fsync_policy="none",
                      segment_max_bytes=600) as log:
            for ts in range(1, 31):
                log.append(make_record(ts))
            log.flush()
        assert len(log.segments()) > 1
        assert log.stats.segments_created == len(log.segments())
        assert [r.commit_ts for r in scan(log.directory)] == list(
            range(1, 31)
        )

    def test_retention_prunes_oldest(self, tmp_path):
        with make_log(tmp_path, fsync_policy="none", segment_max_bytes=600,
                      retention_segments=2) as log:
            for ts in range(1, 31):
                log.append(make_record(ts))
            log.flush()
        assert len(log.segments()) <= 2
        assert log.stats.segments_deleted > 0
        # The surviving suffix is still self-describing and scannable:
        # its first segment's meta carries the first expected commit.
        result = scan(log.directory)
        records = list(result)
        assert not result.truncated
        assert records[0].commit_ts == result.meta.first_ts
        assert [r.commit_ts for r in records] == list(
            range(records[0].commit_ts, 31)
        )

    def test_every_segment_is_self_describing(self, tmp_path):
        with make_log(tmp_path, fsync_policy="none",
                      segment_max_bytes=600) as log:
            for ts in range(1, 31):
                log.append(make_record(ts))
            log.flush()
        # Delete all but the final segment: recovery must still read
        # meta (engine/init) from the survivor.
        for path in log.segments()[:-1]:
            os.unlink(path)
        result = recover(log.directory)
        assert result.meta.engine == "SI"
        assert result.records_recovered > 0

    def test_new_log_never_touches_existing_segments(self, tmp_path):
        with make_log(tmp_path, fsync_policy="none") as log:
            for ts in range(1, 4):
                log.append(make_record(ts))
            log.flush()
        before = {p: os.path.getsize(p) for p in log.segments()}
        with WriteAheadLog(log.directory, fsync_policy="none", meta=META,
                           start_seq=4, flush_interval=0.01) as log2:
            log2.append(make_record(4))
            log2.flush()
        for path, size in before.items():
            assert os.path.getsize(path) == size
        assert [r.commit_ts for r in scan(log.directory)] == [1, 2, 3, 4]


class TestConcurrency:
    @pytest.mark.parametrize("policy", ["always", "group", "none"])
    def test_many_threads_striped_sequences(self, tmp_path, policy):
        log = make_log(tmp_path, fsync_policy=policy)
        workers, per_worker = 4, 25

        def run(worker):
            # Worker i owns commit numbers congruent to i — arrivals
            # interleave arbitrarily, the log restores total order.
            for n in range(per_worker):
                log.append(make_record(1 + worker + n * workers))

        threads = [
            threading.Thread(target=run, args=(w,)) for w in range(workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        log.close()
        total = workers * per_worker
        assert log.stats.appends == total
        assert [r.commit_ts for r in scan(log.directory)] == list(
            range(1, total + 1)
        )


class TestCloseSemantics:
    def test_append_after_close_raises(self, tmp_path):
        log = make_log(tmp_path)
        log.append(make_record(1))
        log.close()
        with pytest.raises(WalClosed):
            log.append(make_record(2))

    def test_close_is_idempotent(self, tmp_path):
        log = make_log(tmp_path)
        log.append(make_record(1))
        log.close()
        log.close()

    def test_close_with_sequence_gap_raises(self, tmp_path):
        log = make_log(tmp_path, fsync_policy="none")
        log.append(make_record(1))
        log.append(make_record(3))  # 2 never arrives
        with pytest.raises(WalError, match="sequence gap"):
            log.close()
        # The durable prefix survives.
        assert [r.commit_ts for r in scan(log.directory)] == [1]

    def test_close_flushes_writable_tail(self, tmp_path):
        log = make_log(tmp_path, fsync_policy="none", flush_interval=5.0)
        for ts in range(1, 6):
            log.append(make_record(ts))
        log.close()  # must not wait for the 5s interval
        assert [r.commit_ts for r in scan(log.directory)] == [1, 2, 3, 4, 5]


class TestValidation:
    def test_unknown_policy_rejected(self, tmp_path):
        with pytest.raises(WalError):
            make_log(tmp_path, fsync_policy="sometimes")

    def test_bad_sizes_rejected(self, tmp_path):
        with pytest.raises(WalError):
            make_log(tmp_path, segment_max_bytes=0)
        with pytest.raises(WalError):
            make_log(tmp_path, retention_segments=0)
        with pytest.raises(WalError):
            make_log(tmp_path, flush_interval=0)

    def test_unencodable_record_poisons_log(self, tmp_path):
        log = make_log(tmp_path, fsync_policy="none")
        log.append(make_record(1))
        bad = CommitRecord(
            tid="t2", session="s", start_ts=1, commit_ts=2,
            events=(write_op("x", object()),), writes={"x": object()},
            visible_tids=frozenset(),
        )
        with pytest.raises(WalError, match="cannot encode"):
            log.append(bad)
        # The gap at #2 can never be filled: the log stays poisoned.
        with pytest.raises(WalError):
            log.append(make_record(3))
