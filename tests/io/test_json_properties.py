"""Property-based round-trip tests for the JSON formats (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chopping.programs import Program, piece
from repro.core.events import read as read_op, write as write_op
from repro.core.histories import History
from repro.core.transactions import transaction
from repro.io.json_format import (
    history_from_json,
    history_to_json,
    program_from_json,
    program_to_json,
)

obj_names = st.sampled_from(["x", "y", "z", "acct1", "acct2"])
values = st.integers(min_value=-100, max_value=100)

ops = st.one_of(
    st.builds(read_op, obj_names, values),
    st.builds(write_op, obj_names, values),
)


@st.composite
def transactions(draw, tid_prefix="t"):
    index = draw(st.integers(min_value=0, max_value=999))
    op_list = draw(st.lists(ops, min_size=1, max_size=5))
    return transaction(f"{tid_prefix}{index}", *op_list)


@st.composite
def histories(draw):
    n_sessions = draw(st.integers(min_value=1, max_value=3))
    sessions = []
    counter = 0
    for s in range(n_sessions):
        size = draw(st.integers(min_value=1, max_value=3))
        session = []
        for _ in range(size):
            op_list = draw(st.lists(ops, min_size=1, max_size=4))
            session.append(transaction(f"t{counter}", *op_list))
            counter += 1
        sessions.append(tuple(session))
    return History(tuple(sessions))


@st.composite
def programs(draw):
    n_pieces = draw(st.integers(min_value=1, max_value=4))
    pieces = []
    for _ in range(n_pieces):
        reads = draw(st.frozensets(obj_names, max_size=3))
        writes = draw(st.frozensets(obj_names, max_size=3))
        label = draw(st.sampled_from(["", "a label", "x := y"]))
        pieces.append(piece(reads, writes, label=label))
    name = draw(st.sampled_from(["p", "transfer", "lookup"]))
    return Program(name, tuple(pieces))


@settings(max_examples=50, deadline=None)
@given(histories())
def test_history_roundtrip(h):
    back, init_tid = history_from_json(history_to_json(h))
    assert init_tid is None or init_tid == "t_init"
    assert len(back.sessions) == len(h.sessions)
    for orig, copy in zip(h.sessions, back.sessions):
        assert [t.tid for t in orig] == [t.tid for t in copy]
        for t_orig, t_copy in zip(orig, copy):
            assert [e.op for e in t_orig.events] == [
                e.op for e in t_copy.events
            ]


@settings(max_examples=50, deadline=None)
@given(histories())
def test_roundtrip_preserves_semantics(h):
    back, _ = history_from_json(history_to_json(h))
    assert back.objects == h.objects
    assert back.is_internally_consistent() == h.is_internally_consistent()
    for obj in h.objects:
        assert {t.tid for t in back.write_transactions(obj)} == {
            t.tid for t in h.write_transactions(obj)
        }


@settings(max_examples=50, deadline=None)
@given(programs())
def test_program_roundtrip(p):
    back = program_from_json(program_to_json(p))
    assert back.name == p.name
    assert len(back.pieces) == len(p.pieces)
    for orig, copy in zip(p.pieces, back.pieces):
        assert orig.reads == copy.reads
        assert orig.writes == copy.writes
        assert orig.label == copy.label
