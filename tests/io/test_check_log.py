"""Tests for the ``check-log`` CLI command (monitor front-end)."""

import json

import pytest

from repro.io.cli import main


@pytest.fixture
def long_fork_log(tmp_path):
    data = {
        "init": {"x": 0, "y": 0},
        "sessions": [
            [{"tid": "w1", "ops": [["write", "x", 1]]}],
            [{"tid": "w2", "ops": [["write", "y", 1]]}],
            [{"tid": "r1", "ops": [["read", "x", 1], ["read", "y", 0]]}],
            [{"tid": "r2", "ops": [["read", "x", 0], ["read", "y", 1]]}],
        ],
        "commit_order": ["w1", "w2", "r1", "r2"],
    }
    path = tmp_path / "lf.json"
    path.write_text(json.dumps(data))
    return str(path)


class TestCheckLog:
    def test_psi_clean(self, long_fork_log, capsys):
        assert main(["check-log", long_fork_log, "--model", "PSI"]) == 0
        assert "PSI-consistent" in capsys.readouterr().out

    def test_si_violation_detected(self, long_fork_log, capsys):
        assert main(["check-log", long_fork_log, "--model", "SI"]) == 1
        out = capsys.readouterr().out
        assert "SI violated at commit of r2" in out

    def test_default_commit_order_is_document_order(self, tmp_path, capsys):
        data = {
            "init": {"x": 0},
            "sessions": [
                [{"tid": "a", "ops": [["write", "x", 1]]}],
                [{"tid": "b", "ops": [["read", "x", 1]]}],
            ],
        }
        path = tmp_path / "log.json"
        path.write_text(json.dumps(data))
        assert main(["check-log", str(path)]) == 0

    def test_unknown_tid_in_commit_order(self, tmp_path, capsys):
        data = {
            "init": {"x": 0},
            "sessions": [[{"tid": "a", "ops": [["write", "x", 1]]}]],
            "commit_order": ["a", "ghost"],
        }
        path = tmp_path / "log.json"
        path.write_text(json.dumps(data))
        assert main(["check-log", str(path)]) == 2

    def test_strict_value_attribution(self, tmp_path, capsys):
        data = {
            "init": {"x": 0},
            "sessions": [[{"tid": "a", "ops": [["read", "x", 99]]}]],
        }
        path = tmp_path / "log.json"
        path.write_text(json.dumps(data))
        assert main(["check-log", str(path)]) == 2
        assert "matches no committed write" in capsys.readouterr().err

    def test_lenient_mode(self, tmp_path):
        data = {
            "init": {"x": 0},
            "sessions": [
                [{"tid": "a", "ops": [["write", "x", 7]]}],
                [{"tid": "b", "ops": [["write", "x", 7]]}],
                [{"tid": "c", "ops": [["read", "x", 7]]}],
            ],
        }
        path = tmp_path / "log.json"
        path.write_text(json.dumps(data))
        assert main(["check-log", str(path), "--lenient"]) in (0, 1)
