"""Tests for JSON serialisation of histories and programs."""

import json

import pytest

from repro.anomalies import ALL_CASES
from repro.chopping.programs import p1_programs, p3_programs
from repro.core.events import read, write
from repro.core.histories import history
from repro.core.transactions import transaction
from repro.io.json_format import (
    FormatError,
    dump_history,
    dump_programs,
    history_from_json,
    history_to_json,
    load_history,
    load_programs,
    op_from_json,
    op_to_json,
    program_from_json,
    program_to_json,
    programs_from_json,
    programs_to_json,
    transaction_from_json,
    transaction_to_json,
)


class TestOps:
    def test_roundtrip(self):
        for op in (read("x", 1), write("acct", -30), read("y", None)):
            assert op_from_json(op_to_json(op)) == op

    def test_bad_shape_rejected(self):
        with pytest.raises(FormatError):
            op_from_json(["read", "x"])
        with pytest.raises(FormatError):
            op_from_json(["update", "x", 1])


class TestTransactions:
    def test_roundtrip(self):
        t = transaction("t1", read("x", 0), write("x", 1))
        assert transaction_from_json(transaction_to_json(t)) == t
        back = transaction_from_json(transaction_to_json(t))
        assert [e.op for e in back.events] == [e.op for e in t.events]

    def test_missing_fields_rejected(self):
        with pytest.raises(FormatError):
            transaction_from_json({"tid": "t1"})


class TestHistories:
    def test_roundtrip_preserves_structure(self):
        t1 = transaction("t1", write("x", 1))
        t2 = transaction("t2", read("x", 1))
        h = history([t1, t2])
        data = history_to_json(h)
        back, init_tid = history_from_json(data)
        assert init_tid is None
        assert len(back.sessions) == 1
        assert [t.tid for t in back.sessions[0]] == ["t1", "t2"]

    def test_init_values_synthesise_transaction(self):
        data = {
            "init": {"x": 0},
            "sessions": [
                [{"tid": "t1", "ops": [["read", "x", 0]]}],
            ],
        }
        h, init_tid = history_from_json(data)
        assert init_tid == "t_init"
        init = h.by_tid("t_init")
        assert init.final_write("x") == 0

    def test_existing_init_transaction_recognised(self):
        data = {
            "sessions": [
                [{"tid": "t_init", "ops": [["write", "x", 0]]}],
                [{"tid": "t1", "ops": [["read", "x", 0]]}],
            ]
        }
        _, init_tid = history_from_json(data)
        assert init_tid == "t_init"

    def test_catalog_cases_roundtrip(self):
        for name, ctor in ALL_CASES.items():
            case = ctor()
            data = history_to_json(case.history)
            back, init_tid = history_from_json(data)
            assert init_tid == case.init_tid
            assert len(back) == len(case.history), name

    def test_bad_document_rejected(self):
        with pytest.raises(FormatError):
            history_from_json({"transactions": []})

    def test_file_roundtrip(self, tmp_path):
        case = ALL_CASES["write_skew"]()
        path = str(tmp_path / "h.json")
        dump_history(case.history, path)
        back, init_tid = load_history(path)
        assert init_tid == "t_init"
        assert len(back) == 3


class TestPrograms:
    def test_roundtrip(self):
        for programs in (p1_programs(), p3_programs()):
            data = programs_to_json(programs)
            back = programs_from_json(data)
            assert [p.name for p in back] == [p.name for p in programs]
            for orig, copy in zip(programs, back):
                assert [pc.reads for pc in copy.pieces] == [
                    pc.reads for pc in orig.pieces
                ]
                assert [pc.writes for pc in copy.pieces] == [
                    pc.writes for pc in orig.pieces
                ]

    def test_labels_preserved(self):
        data = program_to_json(p1_programs()[0])
        back = program_from_json(data)
        assert back.pieces[0].label == "acct1 = acct1 - 100"

    def test_bad_document_rejected(self):
        with pytest.raises(FormatError):
            programs_from_json({"progs": []})
        with pytest.raises(FormatError):
            program_from_json({"name": "x"})

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "p.json")
        dump_programs(p1_programs(), path)
        back = load_programs(path)
        assert len(back) == 2

    def test_json_is_plain_data(self):
        # The serialised form must be json-dumpable as-is.
        text = json.dumps(programs_to_json(p1_programs()))
        assert "transfer" in text


class TestGraphs:
    def test_roundtrip(self):
        from repro.anomalies import fig4_g1, fig12_g7
        from repro.io.json_format import graph_from_json, graph_to_json

        for case in (fig4_g1(), fig12_g7()):
            g = case.graph
            data = json.loads(json.dumps(graph_to_json(g)))
            back = graph_from_json(data)
            for obj in g.history.objects:
                assert {
                    (a.tid, b.tid) for a, b in back.wr_on(obj)
                } == {(a.tid, b.tid) for a, b in g.wr_on(obj)}
                assert {
                    (a.tid, b.tid) for a, b in back.ww_on(obj)
                } == {(a.tid, b.tid) for a, b in g.ww_on(obj)}
            # RW derives identically.
            assert {
                (a.tid, b.tid) for a, b in back.rw_union
            } == {(a.tid, b.tid) for a, b in g.rw_union}

    def test_classification_survives_roundtrip(self):
        from repro.anomalies import write_skew
        from repro.characterisation import decide
        from repro.graphs import in_graph_ser, in_graph_si
        from repro.io.json_format import graph_from_json, graph_to_json

        case = write_skew()
        witness = decide(case.history, "SI", init_tid=case.init_tid).witness
        back = graph_from_json(graph_to_json(witness))
        assert in_graph_si(back)
        assert not in_graph_ser(back)

    def test_bad_document_rejected(self):
        from repro.io.json_format import FormatError, graph_from_json

        with pytest.raises(FormatError):
            graph_from_json({"history": {"sessions": []}})

    def test_unknown_transaction_in_edges_rejected(self):
        from repro.io.json_format import FormatError, graph_from_json

        data = {
            "history": {
                "sessions": [[{"tid": "t1", "ops": [["write", "x", 1]]}]]
            },
            "wr": {"x": [["ghost", "t1"]]},
            "ww": {},
        }
        with pytest.raises(FormatError):
            graph_from_json(data)
