"""Tests for the command-line front-end."""

import json

import pytest

from repro.anomalies import ALL_CASES
from repro.chopping.programs import p1_programs, p2_programs
from repro.io.cli import main
from repro.io.json_format import (
    dump_history,
    dump_programs,
    history_to_json,
)


@pytest.fixture
def write_skew_file(tmp_path):
    path = tmp_path / "write_skew.json"
    dump_history(ALL_CASES["write_skew"]().history, str(path))
    return str(path)


@pytest.fixture
def long_fork_file(tmp_path):
    path = tmp_path / "long_fork.json"
    dump_history(ALL_CASES["long_fork"]().history, str(path))
    return str(path)


class TestCheckHistory:
    def test_allowed_history_exit_zero(self, write_skew_file, capsys):
        assert main(["check-history", write_skew_file, "--model", "SI"]) == 0
        assert "allowed by SI" in capsys.readouterr().out

    def test_disallowed_history_exit_one(self, write_skew_file, capsys):
        assert main(["check-history", write_skew_file, "--model", "SER"]) == 1
        assert "NOT allowed" in capsys.readouterr().out

    def test_all_models(self, long_fork_file, capsys):
        status = main(["check-history", long_fork_file, "--model", "all"])
        out = capsys.readouterr().out
        assert status == 1  # not in HistSI
        assert "PSI: allowed" in out
        assert "SI: NOT allowed" in out

    def test_verbose_prints_witness(self, write_skew_file, capsys):
        main(["check-history", write_skew_file, "--verbose"])
        out = capsys.readouterr().out
        assert "WR" in out

    def test_missing_file_exit_two(self, capsys):
        assert main(["check-history", "/nonexistent.json"]) == 2


class TestCheckChopping:
    def test_incorrect_chopping(self, tmp_path, capsys):
        path = tmp_path / "p1.json"
        dump_programs(p1_programs(), str(path))
        assert main(["check-chopping", str(path)]) == 1
        assert "critical cycle" in capsys.readouterr().out

    def test_correct_chopping(self, tmp_path, capsys):
        path = tmp_path / "p2.json"
        dump_programs(p2_programs(), str(path))
        assert main(["check-chopping", str(path)]) == 0
        assert "correct under SI" in capsys.readouterr().out

    def test_criterion_selection(self, tmp_path):
        from repro.chopping.programs import p3_programs

        path = tmp_path / "p3.json"
        dump_programs(p3_programs(), str(path))
        assert main(["check-chopping", str(path), "--criterion", "SER"]) == 1
        assert main(["check-chopping", str(path), "--criterion", "SI"]) == 0


class TestCheckRobustness:
    def test_vulnerable_app_flagged(self, tmp_path, capsys):
        data = {
            "programs": [
                {"name": "w1", "pieces": [
                    {"reads": ["a", "b"], "writes": ["a"]}]},
                {"name": "w2", "pieces": [
                    {"reads": ["a", "b"], "writes": ["b"]}]},
            ]
        }
        path = tmp_path / "app.json"
        path.write_text(json.dumps(data))
        assert main(["check-robustness", str(path)]) == 1

    def test_robust_app_passes(self, tmp_path):
        data = {
            "programs": [
                {"name": "logger", "pieces": [
                    {"reads": [], "writes": ["log"]}]},
                {"name": "reader", "pieces": [
                    {"reads": ["metrics"], "writes": []}]},
            ]
        }
        path = tmp_path / "app.json"
        path.write_text(json.dumps(data))
        assert main(["check-robustness", str(path)]) == 0
        assert main(["check-robustness", str(path),
                     "--property", "psi-si"]) == 0

    def test_vulnerable_flag(self, tmp_path):
        data = {
            "programs": [
                {"name": "inc", "pieces": [
                    {"reads": ["c"], "writes": ["c"]}]},
            ]
        }
        path = tmp_path / "app.json"
        path.write_text(json.dumps(data))
        assert main(["check-robustness", str(path)]) == 1
        assert main(
            ["check-robustness", str(path), "--vulnerable"]
        ) == 0


class TestDot:
    def test_dot_to_stdout(self, write_skew_file, capsys):
        assert main(["dot", write_skew_file, "--model", "SI"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "RW(" in out

    def test_dot_to_file(self, write_skew_file, tmp_path, capsys):
        target = str(tmp_path / "g.dot")
        assert main(["dot", write_skew_file, "-o", target]) == 0
        text = open(target).read()
        assert text.startswith("digraph")

    def test_dot_refuses_disallowed(self, long_fork_file, capsys):
        assert main(["dot", long_fork_file, "--model", "SI"]) == 1
        assert "NOT allowed" in capsys.readouterr().err

    def test_dump_witness_roundtrip(self, write_skew_file, tmp_path, capsys):
        from repro.graphs import in_graph_si
        from repro.io.json_format import graph_from_json
        import json as _json

        target = str(tmp_path / "w.json")
        assert main(
            ["check-history", write_skew_file, "--dump-witness", target]
        ) == 0
        with open(target) as f:
            graph = graph_from_json(_json.load(f))
        assert in_graph_si(graph)


class TestServeBench:
    def test_si_smallbank_clean_run(self, tmp_path, capsys):
        report_path = tmp_path / "metrics.json"
        status = main(
            [
                "serve-bench",
                "--engine", "SI",
                "--workers", "4",
                "--txns", "5",
                "--seed", "3",
                "--json", str(report_path),
            ]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "0 violations" in out
        report = json.loads(report_path.read_text())
        assert report["workers"] == 4
        engine_report = report["engines"]["SI"]
        assert engine_report["violations"] == 0
        assert engine_report["committed"] > 0
        assert "p99" in engine_report["latency_seconds"]

    def test_all_engines_and_tpcc_mix(self, capsys):
        status = main(
            [
                "serve-bench",
                "--engine", "all",
                "--mix", "tpcc",
                "--workers", "2",
                "--txns", "3",
            ]
        )
        out = capsys.readouterr().out
        assert status == 0
        for key in ("SI", "SER", "PSI", "2PL"):
            assert key in out

    def test_admission_limit_accepted(self, capsys):
        status = main(
            [
                "serve-bench",
                "--workers", "4",
                "--txns", "4",
                "--max-concurrent", "2",
            ]
        )
        assert status == 0

    def test_bad_engine_rejected(self):
        assert main(["serve-bench", "--engine", "XXL"]) == 2

    def test_invalid_workers_clean_usage_error(self, capsys):
        assert main(["serve-bench", "--workers", "0"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_invalid_window_clean_usage_error(self, capsys):
        assert main(["serve-bench", "--window", "1"]) == 2
        assert "at least 2" in capsys.readouterr().err

    def test_report_embeds_run_knobs(self, tmp_path):
        # Regression: reports used to omit the knobs that shaped the
        # run, making BENCH_service.json files ambiguous.
        report_path = tmp_path / "metrics.json"
        assert main(
            [
                "serve-bench",
                "--engine", "SI",
                "--workers", "2",
                "--txns", "3",
                "--seed", "7",
                "--monitor-mode", "pipelined",
                "--lock-mode", "striped",
                "--json", str(report_path),
            ]
        ) == 0
        report = json.loads(report_path.read_text())
        assert report["monitor_mode"] == "pipelined"
        assert report["lock_mode"] == "striped"
        assert report["seed"] == 7
        assert report["max_retries"] >= 0
        assert report["wal"] is None


class TestServeBenchWal:
    def test_wal_dir_produces_recoverable_log(self, tmp_path, capsys):
        wal_dir = str(tmp_path / "wal")
        report_path = tmp_path / "metrics.json"
        status = main(
            [
                "serve-bench",
                "--engine", "SI",
                "--workers", "2",
                "--txns", "4",
                "--seed", "1",
                "--wal-dir", wal_dir,
                "--fsync-policy", "none",
                "--json", str(report_path),
            ]
        )
        assert status == 0
        assert "wal:" in capsys.readouterr().out
        report = json.loads(report_path.read_text())
        assert report["wal"] == {"dir": wal_dir, "fsync_policy": "none"}
        engine_report = report["engines"]["SI"]
        assert engine_report["wal"]["dir"] == wal_dir
        assert engine_report["wal"]["appends"] == engine_report["committed"]

        # The log replays and audits cleanly through the CLI verbs.
        assert main(["replay", wal_dir]) == 0
        out = capsys.readouterr().out
        assert "recovered" in out
        assert main(["audit-log", wal_dir]) == 0
        assert "consistent" in capsys.readouterr().out

    def test_engine_all_gets_per_engine_subdirs(self, tmp_path):
        wal_dir = str(tmp_path / "wal")
        status = main(
            [
                "serve-bench",
                "--engine", "all",
                "--workers", "2",
                "--txns", "2",
                "--wal-dir", wal_dir,
                "--fsync-policy", "none",
            ]
        )
        assert status == 0
        import os

        for key in ("SI", "SER", "PSI", "2PL"):
            assert main(["replay", os.path.join(wal_dir, key)]) == 0

    def test_replay_json_report(self, tmp_path, capsys):
        wal_dir = str(tmp_path / "wal")
        assert main(
            ["serve-bench", "--engine", "SI", "--workers", "2",
             "--txns", "3", "--wal-dir", wal_dir,
             "--fsync-policy", "none"]
        ) == 0
        capsys.readouterr()
        report_path = tmp_path / "replay.json"
        assert main(["replay", wal_dir, "--json", str(report_path)]) == 0
        report = json.loads(report_path.read_text())
        assert report["records_recovered"] > 0
        assert report["truncated"] is False
        assert report["damage"] == []

    def test_replay_missing_directory_exit_two(self, tmp_path, capsys):
        assert main(["replay", str(tmp_path / "nope")]) == 2
        assert "error" in capsys.readouterr().err.lower()

    def test_audit_log_missing_directory_exit_two(self, tmp_path):
        assert main(["audit-log", str(tmp_path / "nope")]) == 2


class TestDemo:
    def test_list_cases(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "write_skew" in out

    def test_run_case(self, capsys):
        assert main(["demo", "long_fork"]) == 0
        out = capsys.readouterr().out
        assert "PSI: allowed" in out
        assert "SI: NOT allowed" in out

    def test_unknown_case(self, capsys):
        assert main(["demo", "phantom"]) == 2

    def test_bad_usage(self):
        assert main(["frobnicate"]) == 2
