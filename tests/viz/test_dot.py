"""Tests for the DOT export."""

import re

import pytest

from repro.anomalies import fig4_g1, write_skew
from repro.chopping import (
    dynamic_chopping_graph,
    p1_programs,
    static_chopping_graph,
)
from repro.graphs import graph_of
from repro.viz import (
    dependency_graph_to_dot,
    execution_to_dot,
    labeled_digraph_to_dot,
)


def assert_balanced_dot(text: str) -> None:
    assert text.startswith("digraph")
    assert text.rstrip().endswith("}")
    assert text.count("{") == text.count("}")
    # Every edge line is well formed.
    for line in text.splitlines():
        if "->" in line:
            assert re.search(r'".+" -> ".+" \[.*\];$', line.strip()), line


class TestDependencyGraphExport:
    def test_contains_all_transactions_and_edges(self):
        g = graph_of(write_skew().execution)
        dot = dependency_graph_to_dot(g)
        assert_balanced_dot(dot)
        for tid in ("t_init", "t1", "t2"):
            assert f'"{tid}"' in dot
        assert "RW(acct1)" in dot
        assert "RW(acct2)" in dot
        assert "WR(" in dot

    def test_operations_in_node_labels(self):
        g = graph_of(write_skew().execution)
        dot = dependency_graph_to_dot(g)
        assert "write(acct1, -30)" in dot

    def test_so_edges_optional(self):
        g = fig4_g1().graph
        with_so = dependency_graph_to_dot(g, include_so=True)
        without = dependency_graph_to_dot(g, include_so=False)
        assert 'label="SO"' in with_so
        assert 'label="SO"' not in without

    def test_quoting_of_special_names(self):
        dot = dependency_graph_to_dot(fig4_g1().graph, name='my "graph"')
        assert_balanced_dot(dot)


class TestLabeledDigraphExport:
    def test_scg_export(self):
        scg = static_chopping_graph(p1_programs())
        dot = labeled_digraph_to_dot(scg)
        assert_balanced_dot(dot)
        assert "style=dashed" in dot  # predecessor edges
        assert "RW(acct1)" in dot

    def test_dcg_export(self):
        dcg = dynamic_chopping_graph(fig4_g1().graph)
        dot = labeled_digraph_to_dot(dcg, name="DCG")
        assert_balanced_dot(dot)
        assert '"DCG"' in dot.splitlines()[0]


class TestExecutionExport:
    def test_vis_and_co_styles(self):
        dot = execution_to_dot(write_skew().execution)
        assert_balanced_dot(dot)
        assert 'label="VIS"' in dot
        assert 'label="CO"' in dot
        assert "style=dotted" in dot

    def test_transitive_reduction_shrinks_output(self):
        x = write_skew().execution
        reduced = execution_to_dot(x, transitive_reduction=True)
        full = execution_to_dot(x, transitive_reduction=False)
        assert reduced.count("->") <= full.count("->")
