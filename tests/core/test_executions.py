"""Unit tests for abstract executions and pre-executions (Defs 3, 11)."""

import pytest

from repro.core.errors import MalformedExecutionError
from repro.core.events import read, write
from repro.core.executions import (
    AbstractExecution,
    PreExecution,
    execution,
    execution_from_commit_sequence,
    pre_execution,
)
from repro.core.histories import history, singleton_sessions
from repro.core.relations import Relation
from repro.core.transactions import transaction


@pytest.fixture
def simple_history():
    t1 = transaction("t1", write("x", 1))
    t2 = transaction("t2", read("x", 1))
    return t1, t2, singleton_sessions(
        transaction("t1", write("x", 1)), transaction("t2", read("x", 1))
    )


def make_txns():
    t1 = transaction("t1", write("x", 1))
    t2 = transaction("t2", read("x", 1))
    t3 = transaction("t3", write("y", 3))
    return t1, t2, t3


class TestWellFormedness:
    def test_valid_execution(self):
        t1, t2, _ = make_txns()
        h = singleton_sessions(t1, t2)
        x = execution(h, vis=[(t1, t2)], co=[(t1, t2)])
        assert isinstance(x, AbstractExecution)

    def test_vis_must_be_in_co(self):
        t1, t2, _ = make_txns()
        h = singleton_sessions(t1, t2)
        with pytest.raises(MalformedExecutionError):
            AbstractExecution(
                h,
                vis=Relation([(t1, t2)]),
                co=Relation([(t2, t1)]),
            )

    def test_co_must_be_total_for_execution(self):
        t1, t2, t3 = make_txns()
        h = singleton_sessions(t1, t2, t3)
        with pytest.raises(MalformedExecutionError):
            execution(h, vis=[], co=[(t1, t2)])

    def test_pre_execution_allows_partial_co(self):
        t1, t2, t3 = make_txns()
        h = singleton_sessions(t1, t2, t3)
        p = pre_execution(h, vis=[], co=[(t1, t2)])
        assert isinstance(p, PreExecution)
        assert not p.co_is_total()

    def test_cyclic_co_rejected(self):
        t1, t2, _ = make_txns()
        h = singleton_sessions(t1, t2)
        with pytest.raises(MalformedExecutionError):
            PreExecution(
                h,
                vis=Relation.empty(h.transactions),
                co=Relation([(t1, t2), (t2, t1), (t1, t1), (t2, t2)]),
            )

    def test_irreflexive_vis_required(self):
        t1, t2, _ = make_txns()
        h = singleton_sessions(t1, t2)
        with pytest.raises(MalformedExecutionError):
            PreExecution(
                h,
                vis=Relation([(t1, t1)]),
                co=Relation([(t1, t1)]),
            )

    def test_stray_transactions_rejected(self):
        t1, t2, t3 = make_txns()
        h = singleton_sessions(t1, t2)
        with pytest.raises(MalformedExecutionError):
            pre_execution(h, vis=[(t1, t3)], co=[(t1, t3)])

    def test_vis_need_not_be_transitive(self):
        # TRANSVIS is an axiom, not a well-formedness condition.
        t1, t2, t3 = make_txns()
        h = singleton_sessions(t1, t2, t3)
        co = Relation.total_order([t1, t2, t3])
        vis = Relation([(t1, t2), (t2, t3)])
        x = AbstractExecution(h, vis, co)
        assert (t1, t3) not in x.vis

    def test_validate_false_skips_checks(self):
        t1, t2, _ = make_txns()
        h = singleton_sessions(t1, t2)
        p = PreExecution(
            h, vis=Relation([(t1, t1)]), co=Relation([(t1, t1)]),
            validate=False,
        )
        assert p.well_formedness_violations()


class TestViews:
    def test_visible_writers(self):
        t1, t2, t3 = make_txns()
        h = singleton_sessions(t1, t2, t3)
        x = execution(h, vis=[(t1, t2), (t3, t2)], co=[(t1, t3), (t3, t2)])
        assert x.visible_writers(t2, "x") == {t1}
        assert x.visible_writers(t2, "y") == {t3}
        assert x.visible_writers(t1, "x") == frozenset()

    def test_commit_sequence(self):
        t1, t2, t3 = make_txns()
        h = singleton_sessions(t1, t2, t3)
        x = execution_from_commit_sequence(h, [t2, t1, t3])
        assert [t.tid for t in x.commit_sequence] == ["t2", "t1", "t3"]

    def test_commit_sequence_vis_defaults_to_co(self):
        t1, t2, _ = make_txns()
        h = singleton_sessions(t1, t2)
        x = execution_from_commit_sequence(h, [t1, t2])
        assert x.vis == x.co

    def test_as_execution_promotes_total_pre(self):
        t1, t2, _ = make_txns()
        h = singleton_sessions(t1, t2)
        p = pre_execution(h, vis=[], co=[(t1, t2)])
        x = p.as_execution()
        assert isinstance(x, AbstractExecution)

    def test_describe_lists_edges(self):
        t1, t2, _ = make_txns()
        h = singleton_sessions(t1, t2)
        x = execution(h, vis=[(t1, t2)], co=[(t1, t2)])
        text = x.describe()
        assert "t1->t2" in text

    def test_transitive_closure_applied_by_constructor(self):
        t1, t2, t3 = make_txns()
        h = singleton_sessions(t1, t2, t3)
        x = execution(h, vis=[(t1, t2), (t2, t3)], co=[(t1, t2), (t2, t3)])
        assert (t1, t3) in x.co
        assert (t1, t3) in x.vis
