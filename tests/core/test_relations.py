"""Unit tests for the relation algebra (§2 notation)."""

import pytest

from repro.core.relations import Relation, union_all


class TestConstruction:
    def test_empty(self):
        r = Relation.empty({"a", "b"})
        assert len(r) == 0
        assert r.universe == {"a", "b"}
        assert not r

    def test_universe_includes_field(self):
        r = Relation([("a", "b")], universe={"c"})
        assert r.universe == {"a", "b", "c"}

    def test_default_universe_is_field(self):
        r = Relation([("a", "b"), ("b", "c")])
        assert r.universe == {"a", "b", "c"}

    def test_identity(self):
        r = Relation.identity(["a", "b"])
        assert r.pairs == {("a", "a"), ("b", "b")}

    def test_total_order(self):
        r = Relation.total_order(["a", "b", "c"])
        assert r.pairs == {("a", "b"), ("a", "c"), ("b", "c")}

    def test_from_edges(self):
        r = Relation.from_edges([("a", "b")])
        assert ("a", "b") in r


class TestAlgebra:
    def test_union(self):
        r = Relation([("a", "b")]) | Relation([("b", "c")])
        assert r.pairs == {("a", "b"), ("b", "c")}

    def test_union_all_empty(self):
        assert union_all([]) == Relation()

    def test_union_all(self):
        rels = [Relation([("a", "b")]), Relation([("b", "c")])]
        assert union_all(rels).pairs == {("a", "b"), ("b", "c")}

    def test_intersection(self):
        r1 = Relation([("a", "b"), ("b", "c")])
        r2 = Relation([("b", "c"), ("c", "d")])
        assert (r1 & r2).pairs == {("b", "c")}

    def test_difference(self):
        r1 = Relation([("a", "b"), ("b", "c")])
        r2 = Relation([("b", "c")])
        assert (r1 - r2).pairs == {("a", "b")}

    def test_compose(self):
        r1 = Relation([("a", "b"), ("x", "y")])
        r2 = Relation([("b", "c"), ("y", "z")])
        assert r1.compose(r2).pairs == {("a", "c"), ("x", "z")}

    def test_compose_no_match(self):
        assert not Relation([("a", "b")]).compose(Relation([("c", "d")]))

    def test_inverse(self):
        assert Relation([("a", "b")]).inverse().pairs == {("b", "a")}

    def test_reflexive_uses_universe(self):
        r = Relation([("a", "b")], universe={"a", "b", "c"}).reflexive()
        assert ("c", "c") in r
        assert ("a", "b") in r

    def test_irreflexive_part(self):
        r = Relation([("a", "a"), ("a", "b")]).irreflexive_part()
        assert r.pairs == {("a", "b")}

    def test_restrict(self):
        r = Relation([("a", "b"), ("b", "c")]).restrict({"a", "b"})
        assert r.pairs == {("a", "b")}

    def test_filter(self):
        r = Relation([("a", "b"), ("b", "a")]).filter(lambda a, b: a < b)
        assert r.pairs == {("a", "b")}

    def test_map(self):
        r = Relation([("a", "b")]).map(str.upper)
        assert r.pairs == {("A", "B")}


class TestClosures:
    def test_transitive_closure_chain(self):
        r = Relation([("a", "b"), ("b", "c"), ("c", "d")])
        closed = r.transitive_closure()
        assert ("a", "d") in closed
        assert ("a", "c") in closed
        assert ("d", "a") not in closed

    def test_transitive_closure_cycle_has_self_loops(self):
        r = Relation([("a", "b"), ("b", "a")]).transitive_closure()
        assert ("a", "a") in r
        assert ("b", "b") in r

    def test_reflexive_transitive_closure(self):
        r = Relation([("a", "b")], universe={"a", "b", "c"})
        star = r.reflexive_transitive_closure()
        assert ("c", "c") in star
        assert ("a", "b") in star

    def test_is_transitive(self):
        assert Relation([("a", "b"), ("b", "c"), ("a", "c")]).is_transitive()
        assert not Relation([("a", "b"), ("b", "c")]).is_transitive()


class TestPredicates:
    def test_irreflexive(self):
        assert Relation([("a", "b")]).is_irreflexive()
        assert not Relation([("a", "a")]).is_irreflexive()

    def test_acyclic_simple(self):
        assert Relation([("a", "b"), ("b", "c")]).is_acyclic()
        assert not Relation([("a", "b"), ("b", "a")]).is_acyclic()

    def test_self_loop_is_cycle(self):
        assert not Relation([("a", "a")]).is_acyclic()

    def test_acyclic_diamond(self):
        r = Relation([("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])
        assert r.is_acyclic()

    def test_strict_partial_order(self):
        assert Relation.total_order(["a", "b", "c"]).is_strict_partial_order()
        assert not Relation([("a", "b"), ("b", "c")]).is_strict_partial_order()

    def test_total_on(self):
        r = Relation.total_order(["a", "b", "c"])
        assert r.is_total_on({"a", "b", "c"})
        assert r.is_total_on({"a", "c"})
        r2 = Relation([("a", "b")], universe={"a", "b", "c"})
        assert not r2.is_total_on()

    def test_strict_total_order(self):
        assert Relation.total_order(["a", "b"]).is_strict_total_order()
        assert not Relation([("a", "b"), ("b", "a")]).is_strict_total_order()

    def test_unrelated_pairs(self):
        r = Relation([("a", "b")], universe={"a", "b", "c"})
        unrelated = set(r.unrelated_pairs())
        assert ("a", "b") not in unrelated and ("b", "a") not in unrelated
        # a-c and b-c remain unrelated (order within pair is canonical).
        assert len(unrelated) == 2

    def test_find_cycle_returns_closed_path(self):
        r = Relation([("a", "b"), ("b", "c"), ("c", "a")])
        cycle = r.find_cycle()
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        for u, v in zip(cycle, cycle[1:]):
            assert (u, v) in r

    def test_find_cycle_none_when_acyclic(self):
        assert Relation([("a", "b")]).find_cycle() is None


class TestExtrema:
    def test_max_element(self):
        r = Relation.total_order(["a", "b", "c"])
        assert r.max_element({"a", "b", "c"}) == "c"
        assert r.max_element({"a", "b"}) == "b"

    def test_min_element(self):
        r = Relation.total_order(["a", "b", "c"])
        assert r.min_element({"a", "b", "c"}) == "a"

    def test_max_of_empty_raises(self):
        with pytest.raises(ValueError):
            Relation().max_element(set())

    def test_max_undefined_when_not_total(self):
        r = Relation([("a", "c"), ("b", "c")])
        assert r.max_element({"a", "b", "c"}) == "c"
        with pytest.raises(ValueError):
            r.max_element({"a", "b"})

    def test_singleton_max(self):
        assert Relation().max_element({"a"}) == "a"


class TestLinearisation:
    def test_topological_order_respects_relation(self):
        r = Relation([("a", "b"), ("b", "c")], universe={"a", "b", "c", "d"})
        order = r.topological_order()
        assert set(order) == {"a", "b", "c", "d"}
        assert order.index("a") < order.index("b") < order.index("c")

    def test_topological_order_cyclic_raises(self):
        with pytest.raises(ValueError):
            Relation([("a", "b"), ("b", "a")]).topological_order()

    def test_topological_order_deterministic(self):
        r = Relation([("a", "b")], universe={"a", "b", "c"})
        assert r.topological_order() == r.topological_order()

    def test_totalise(self):
        r = Relation([("b", "a")], universe={"a", "b", "c"})
        total = r.totalise()
        assert total.is_strict_total_order()
        assert ("b", "a") in total


class TestAdjacency:
    def test_successors_predecessors(self):
        r = Relation([("a", "b"), ("a", "c"), ("b", "c")])
        assert r.successors("a") == {"b", "c"}
        assert r.predecessors("c") == {"a", "b"}
        assert r.successors("c") == frozenset()

    def test_container_protocol(self):
        r = Relation([("a", "b")])
        assert ("a", "b") in r
        assert ("b", "a") not in r
        assert set(iter(r)) == {("a", "b")}
        assert len(r) == 1

    def test_equality_and_hash(self):
        assert Relation([("a", "b")]) == Relation([("a", "b")], universe={"z"})
        assert hash(Relation([("a", "b")])) == hash(Relation([("a", "b")]))
