"""Property-based tests of the relation algebra (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.relations import Relation

elements = st.integers(min_value=0, max_value=7)
pairs = st.tuples(elements, elements)
relations = st.frozensets(pairs, max_size=20).map(Relation)


@given(relations)
def test_transitive_closure_is_transitive(r):
    assert r.transitive_closure().is_transitive()


@given(relations)
def test_transitive_closure_contains_relation(r):
    assert r.pairs <= r.transitive_closure().pairs


@given(relations)
def test_transitive_closure_idempotent(r):
    once = r.transitive_closure()
    assert once.transitive_closure() == once


@given(relations)
def test_closure_is_least_transitive_superset(r):
    closed = r.transitive_closure()
    # Any transitive relation containing r contains the closure: check
    # against the closure itself plus a random-ish transitive superset.
    superset = (closed | Relation.identity(closed.universe)).transitive_closure()
    assert closed.pairs <= superset.pairs


@given(relations, relations)
def test_compose_distributes_over_union_left(r1, r2):
    r3 = Relation([(0, 1), (1, 2)])
    lhs = (r1 | r2).compose(r3)
    rhs = r1.compose(r3) | r2.compose(r3)
    assert lhs == rhs


@given(relations, relations, relations)
def test_compose_associative(r1, r2, r3):
    assert r1.compose(r2).compose(r3) == r1.compose(r2.compose(r3))


@given(relations)
def test_inverse_involution(r):
    assert r.inverse().inverse() == r


@given(relations, relations)
def test_inverse_antidistributes_over_compose(r1, r2):
    assert r1.compose(r2).inverse() == r2.inverse().compose(r1.inverse())


@given(relations)
def test_acyclic_iff_closure_irreflexive(r):
    assert r.is_acyclic() == r.transitive_closure().is_irreflexive()


@given(relations)
def test_topological_order_linearises_acyclic(r):
    if not r.is_acyclic():
        return
    order = r.topological_order()
    position = {x: i for i, x in enumerate(order)}
    for a, b in r:
        assert position[a] < position[b]


@given(relations)
def test_totalise_extends_acyclic_to_total(r):
    if not r.is_acyclic():
        return
    total = r.totalise()
    assert r.pairs <= total.pairs
    assert total.is_strict_total_order()


@given(relations)
def test_restrict_is_subrelation(r):
    sub = r.restrict({0, 1, 2})
    assert sub.pairs <= r.pairs
    for a, b in sub:
        assert a in {0, 1, 2} and b in {0, 1, 2}


@given(relations)
def test_reflexive_contains_identity(r):
    refl = r.reflexive()
    for x in r.universe:
        assert (x, x) in refl


@given(st.lists(elements, unique=True, min_size=1, max_size=6))
def test_total_order_roundtrip(seq):
    r = Relation.total_order(seq)
    assert r.is_strict_total_order(set(seq))
    assert r.topological_order() == list(seq) or set(
        r.topological_order()
    ) == set(seq)
    # max/min match sequence ends
    assert r.max_element(set(seq)) == seq[-1]
    assert r.min_element(set(seq)) == seq[0]
