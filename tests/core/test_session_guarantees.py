"""The four classic session guarantees, derived from the axioms.

The paper's models are the *strong session* variants [12, 13] of SI and
serializability; sessions are the paper's nod to Terry et al.'s session
guarantees [32].  These tests verify that the axioms do deliver the four
classic guarantees on sampled executions — SI via SESSION + PREFIX +
VIS ⊆ CO, PSI via SESSION + TRANSVIS:

* monotonic reads: later transactions of a session see at least as much;
* read-your-writes: a session's earlier writes are in later snapshots;
* monotonic writes: a session's writes are WW-ordered in session order;
* writes-follow-reads: what a transaction saw is visible wherever its
  session's later writes are visible.
"""

import pytest

from repro.graphs.extraction import graph_of
from repro.mvcc.psi import PSIEngine
from repro.mvcc.runtime import Scheduler
from repro.mvcc.workloads import random_workload
from repro.search.random_executions import random_si_execution


def sample_executions():
    """SI executions with stale snapshots plus PSI engine runs."""
    out = []
    for seed in range(8):
        out.append(("si", random_si_execution(seed, staleness=0.8)))
    for seed in range(4):
        wl = random_workload(
            seed, sessions=3, transactions_per_session=3, objects=3
        )
        engine = PSIEngine(wl.initial)
        Scheduler(engine, wl.sessions).run_random(seed)
        out.append(("psi", engine.abstract_execution()))
    return out


EXECUTIONS = sample_executions()
IDS = [f"{kind}{i}" for i, (kind, _) in enumerate(EXECUTIONS)]


@pytest.mark.parametrize("kind,x", EXECUTIONS, ids=IDS)
def test_monotonic_reads(kind, x):
    """T SO T' implies VIS⁻¹(T) ⊆ VIS⁻¹(T')."""
    for a, b in x.session_order:
        assert x.vis.predecessors(a) <= x.vis.predecessors(b), (
            f"{b.tid} sees less than its session predecessor {a.tid}"
        )


@pytest.mark.parametrize("kind,x", EXECUTIONS, ids=IDS)
def test_read_your_writes(kind, x):
    """A session's earlier transactions are visible to later ones, so
    their writes are in scope for EXT."""
    for a, b in x.session_order:
        assert (a, b) in x.vis


@pytest.mark.parametrize("kind,x", EXECUTIONS, ids=IDS)
def test_monotonic_writes(kind, x):
    """Writes of one session to one object are WW-ordered in session
    order."""
    g = graph_of(x)
    for a, b in x.session_order:
        for obj in a.written_objects & b.written_objects:
            assert (a, b) in g.ww_on(obj), (
                f"{a.tid}'s write to {obj} not WW-before {b.tid}'s"
            )


@pytest.mark.parametrize("kind,x", EXECUTIONS, ids=IDS)
def test_writes_follow_reads(kind, x):
    """If T read from W (so W VIS T) and T SO T' VIS S, then W VIS S:
    anyone who sees the session's later activity sees what it read."""
    vis = x.vis
    for w, t in x.vis:
        for t2 in x.session_order.successors(t):
            for s in vis.successors(t2):
                assert (w, s) in vis, (
                    f"{s.tid} sees {t2.tid} but not {w.tid}, which "
                    f"{t.tid} (same session, earlier) saw"
                )
