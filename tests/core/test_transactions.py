"""Unit tests for transactions and the §2 judgements."""

import pytest

from repro.core.errors import InternalConsistencyError
from repro.core.events import read, write
from repro.core.transactions import (
    Transaction,
    all_internally_consistent,
    check_internal_consistency,
    initialisation_transaction,
    read_only,
    transaction,
    write_only,
)


class TestConstruction:
    def test_transaction_builder_assigns_event_ids(self):
        t = transaction("t1", read("x", 0), write("x", 1))
        assert [e.eid for e in t.events] == [0, 1]

    def test_empty_transaction_rejected(self):
        with pytest.raises(ValueError):
            Transaction("t1", ())

    def test_equality_by_tid(self):
        t1 = transaction("t1", read("x", 0))
        t2 = transaction("t1", write("y", 9))
        assert t1 == t2
        assert hash(t1) == hash(t2)

    def test_read_only_and_write_only_builders(self):
        r = read_only("r", [("x", 1), ("y", 2)])
        assert [e.op for e in r.events] == [read("x", 1), read("y", 2)]
        w = write_only("w", [("x", 1)])
        assert [e.op for e in w.events] == [write("x", 1)]

    def test_initialisation_transaction(self):
        init = initialisation_transaction(["y", "x"], value=0)
        assert init.tid == "t_init"
        assert init.final_write("x") == 0
        assert init.final_write("y") == 0
        assert init.written_objects == {"x", "y"}

    def test_initialisation_requires_objects(self):
        with pytest.raises(ValueError):
            initialisation_transaction([])


class TestObjectViews:
    def test_objects(self):
        t = transaction("t", read("x", 0), write("y", 1))
        assert t.objects == {"x", "y"}
        assert t.read_objects == {"x"}
        assert t.written_objects == {"y"}

    def test_events_on(self):
        t = transaction("t", read("x", 0), write("y", 1), write("x", 2))
        assert [e.op for e in t.events_on("x")] == [read("x", 0), write("x", 2)]


class TestJudgements:
    def test_final_write_is_last_write(self):
        t = transaction("t", write("x", 1), write("x", 2))
        assert t.final_write("x") == 2

    def test_final_write_none_without_write(self):
        t = transaction("t", read("x", 0))
        assert t.final_write("x") is None

    def test_writes_predicate(self):
        t = transaction("t", write("x", 1))
        assert t.writes("x")
        assert not t.writes("y")

    def test_external_read_first_access_is_read(self):
        t = transaction("t", read("x", 7), write("x", 8), read("x", 8))
        assert t.external_read("x") == 7
        assert t.reads_externally("x")

    def test_external_read_undefined_after_write(self):
        t = transaction("t", write("x", 1), read("x", 1))
        assert t.external_read("x") is None
        assert not t.reads_externally("x")

    def test_external_read_undefined_without_access(self):
        t = transaction("t", read("y", 0))
        assert t.external_read("x") is None

    def test_external_read_objects(self):
        t = transaction("t", read("x", 0), write("y", 1), read("y", 1))
        assert t.external_read_objects == {"x"}


class TestInternalConsistency:
    def test_consistent_read_after_write(self):
        t = transaction("t", write("x", 1), read("x", 1))
        assert t.is_internally_consistent()

    def test_inconsistent_read_after_write(self):
        t = transaction("t", write("x", 1), read("x", 2))
        assert not t.is_internally_consistent()
        assert "should return" in t.internal_violations()[0]

    def test_repeated_reads_must_agree(self):
        good = transaction("t", read("x", 3), read("x", 3))
        bad = transaction("t", read("x", 3), read("x", 4))
        assert good.is_internally_consistent()
        assert not bad.is_internally_consistent()

    def test_last_preceding_access_wins(self):
        t = transaction(
            "t", read("x", 3), write("x", 5), write("x", 6), read("x", 6)
        )
        assert t.is_internally_consistent()

    def test_first_read_unconstrained(self):
        t = transaction("t", read("x", 42))
        assert t.is_internally_consistent()

    def test_different_objects_independent(self):
        t = transaction("t", write("x", 1), read("y", 9))
        assert t.is_internally_consistent()

    def test_check_internal_consistency_raises(self):
        bad = transaction("t", write("x", 1), read("x", 2))
        with pytest.raises(InternalConsistencyError):
            check_internal_consistency([bad])

    def test_all_internally_consistent(self):
        good = transaction("g", read("x", 0))
        bad = transaction("b", write("x", 1), read("x", 2))
        assert all_internally_consistent([good])
        assert not all_internally_consistent([good, bad])
