"""Unit tests for the SI / SER / PSI consistency models (Defs 4, 20)."""

import pytest

from repro.anomalies import (
    long_fork,
    lost_update,
    session_guarantees,
    write_skew,
)
from repro.core.models import MODELS, PSI, SER, SI, in_exec_si
from repro.core.events import read, write
from repro.core.executions import execution
from repro.core.histories import singleton_sessions
from repro.core.transactions import initialisation_transaction, transaction


class TestModelDefinitions:
    def test_axiom_sets_match_definitions(self):
        assert [a.name for a in SI.axioms] == [
            "INT", "EXT", "SESSION", "PREFIX", "NOCONFLICT",
        ]
        assert [a.name for a in SER.axioms] == [
            "INT", "EXT", "SESSION", "TOTALVIS",
        ]
        assert [a.name for a in PSI.axioms] == [
            "INT", "EXT", "SESSION", "TRANSVIS", "NOCONFLICT",
        ]

    def test_models_registry(self):
        assert set(MODELS) == {"SI", "SER", "PSI"}
        assert MODELS["SI"] is SI


class TestCanonicalExecutions:
    def test_write_skew_execution_in_si_not_ser(self):
        x = write_skew().execution
        assert SI.satisfied_by(x)
        assert PSI.satisfied_by(x)
        assert not SER.satisfied_by(x)

    def test_session_guarantees_execution_in_all(self):
        x = session_guarantees().execution
        assert SI.satisfied_by(x)
        assert SER.satisfied_by(x)
        assert PSI.satisfied_by(x)

    def test_serial_execution_satisfies_everything(self):
        init = initialisation_transaction(["x"])
        t1 = transaction("t1", read("x", 0), write("x", 1))
        t2 = transaction("t2", read("x", 1), write("x", 2))
        h = singleton_sessions(init, t1, t2)
        x = execution(
            h,
            vis=[(init, t1), (init, t2), (t1, t2)],
            co=[(init, t1), (t1, t2)],
        )
        for model in MODELS.values():
            assert model.satisfied_by(x), model.name


class TestDiagnostics:
    def test_violations_grouped_by_axiom(self):
        x = write_skew().execution
        violations = SER.violations(x)
        assert set(violations) == {"TOTALVIS"}

    def test_explain_mentions_model(self):
        x = write_skew().execution
        assert "violates SER" in SER.explain(x)
        assert "satisfies SI" in SI.explain(x)

    def test_in_exec_si_helper(self):
        assert in_exec_si(write_skew().execution)

    def test_si_implies_psi_on_executions(self):
        # PREFIX plus VIS ⊆ CO gives transitive VIS, so ExecSI ⊆ ExecPSI.
        for case in (session_guarantees(), write_skew()):
            x = case.execution
            if SI.satisfied_by(x):
                assert PSI.satisfied_by(x)
