"""Unit tests for histories and sessions (Definition 2)."""

import pytest

from repro.core.errors import MalformedHistoryError
from repro.core.events import read, write
from repro.core.histories import (
    History,
    history,
    single_session,
    singleton_sessions,
    with_initialisation,
)
from repro.core.transactions import initialisation_transaction, transaction


@pytest.fixture
def txns():
    t1 = transaction("t1", write("x", 1))
    t2 = transaction("t2", read("x", 1))
    t3 = transaction("t3", write("y", 2))
    return t1, t2, t3


class TestConstruction:
    def test_history_builder(self, txns):
        t1, t2, t3 = txns
        h = history([t1, t2], [t3])
        assert len(h) == 3
        assert len(h.sessions) == 2

    def test_duplicate_tid_rejected(self, txns):
        t1, _, _ = txns
        clone = transaction("t1", write("z", 0))
        with pytest.raises(MalformedHistoryError):
            history([t1], [clone])

    def test_empty_session_rejected(self, txns):
        t1, _, _ = txns
        with pytest.raises(MalformedHistoryError):
            history([t1], [])

    def test_single_session(self, txns):
        t1, t2, _ = txns
        h = single_session(t1, t2)
        assert len(h.sessions) == 1

    def test_singleton_sessions(self, txns):
        t1, t2, t3 = txns
        h = singleton_sessions(t1, t2, t3)
        assert len(h.sessions) == 3
        assert not h.session_order

    def test_with_initialisation_prepends_session(self, txns):
        t1, _, _ = txns
        init = initialisation_transaction(["x"])
        h = with_initialisation(history([t1]), init)
        assert h.sessions[0] == (init,)
        assert len(h) == 2


class TestSessionOrder:
    def test_so_orders_within_session(self, txns):
        t1, t2, t3 = txns
        h = history([t1, t2], [t3])
        so = h.session_order
        assert (t1, t2) in so
        assert (t2, t1) not in so
        assert (t1, t3) not in so

    def test_so_is_union_of_total_orders(self, txns):
        t1, t2, t3 = txns
        h = history([t1, t2, t3])
        so = h.session_order
        assert (t1, t3) in so and (t2, t3) in so
        assert so.is_strict_total_order({t1, t2, t3})

    def test_same_session(self, txns):
        t1, t2, t3 = txns
        h = history([t1, t2], [t3])
        assert h.same_session(t1, t2)
        assert h.same_session(t1, t1)
        assert not h.same_session(t1, t3)

    def test_session_of(self, txns):
        t1, t2, t3 = txns
        h = history([t1, t2], [t3])
        assert h.session_of(t1) == 0
        assert h.session_of(t3) == 1

    def test_session_of_unknown_raises(self, txns):
        t1, _, _ = txns
        h = history([t1])
        with pytest.raises(KeyError):
            h.session_of(transaction("zz", read("x", 0)))


class TestViews:
    def test_transactions_and_lookup(self, txns):
        t1, t2, t3 = txns
        h = history([t1, t2], [t3])
        assert h.transactions == {t1, t2, t3}
        assert h.by_tid("t2") == t2
        with pytest.raises(KeyError):
            h.by_tid("nope")

    def test_contains(self, txns):
        t1, _, t3 = txns
        h = history([t1])
        assert t1 in h
        assert t3 not in h

    def test_objects(self, txns):
        t1, t2, t3 = txns
        h = history([t1, t2], [t3])
        assert h.objects == {"x", "y"}

    def test_write_transactions(self, txns):
        t1, t2, t3 = txns
        h = history([t1, t2], [t3])
        assert h.write_transactions("x") == {t1}
        assert h.write_transactions("y") == {t3}
        assert h.write_transactions("z") == frozenset()

    def test_transaction_list_session_major(self, txns):
        t1, t2, t3 = txns
        h = history([t1, t2], [t3])
        assert h.transaction_list == [t1, t2, t3]

    def test_internal_consistency(self, txns):
        t1, t2, _ = txns
        assert history([t1, t2]).is_internally_consistent()
        bad = transaction("bad", write("x", 1), read("x", 99))
        assert not history([bad]).is_internally_consistent()

    def test_describe_mentions_sessions(self, txns):
        t1, _, _ = txns
        assert "session 0" in history([t1]).describe()
