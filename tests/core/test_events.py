"""Unit tests for events and operations (Definition 1)."""

import pytest

from repro.core.events import Event, Op, OpKind, read, write


class TestOp:
    def test_read_constructor(self):
        op = read("x", 5)
        assert op.kind is OpKind.READ
        assert op.obj == "x"
        assert op.value == 5

    def test_write_constructor(self):
        op = write("y", 7)
        assert op.kind is OpKind.WRITE
        assert op.obj == "y"
        assert op.value == 7

    def test_is_read_is_write(self):
        assert read("x", 0).is_read
        assert not read("x", 0).is_write
        assert write("x", 0).is_write
        assert not write("x", 0).is_read

    def test_equality_is_structural(self):
        assert read("x", 1) == read("x", 1)
        assert read("x", 1) != read("x", 2)
        assert read("x", 1) != write("x", 1)
        assert read("x", 1) != read("y", 1)

    def test_hashable(self):
        assert len({read("x", 1), read("x", 1), write("x", 1)}) == 2

    def test_str_rendering(self):
        assert str(read("x", 1)) == "read(x, 1)"
        assert str(write("acct", -30)) == "write(acct, -30)"

    def test_values_may_be_arbitrary_hashables(self):
        op = write("x", ("tuple", 1))
        assert op.value == ("tuple", 1)


class TestEvent:
    def test_accessors_delegate_to_op(self):
        e = Event(0, read("x", 3))
        assert e.is_read
        assert not e.is_write
        assert e.obj == "x"
        assert e.value == 3

    def test_distinct_ids_distinguish_same_op(self):
        e1 = Event(0, read("x", 3))
        e2 = Event(1, read("x", 3))
        assert e1 != e2

    def test_same_id_same_op_equal(self):
        assert Event(0, read("x", 3)) == Event(0, read("x", 3))

    def test_str_rendering(self):
        assert str(Event(2, write("x", 1))) == "e2:write(x, 1)"
