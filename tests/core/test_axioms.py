"""Unit tests for the consistency axioms of Figure 1."""

import pytest

from repro.core.axioms import (
    ALL_AXIOMS,
    EXT,
    INT,
    NOCONFLICT,
    PREFIX,
    SESSION,
    TOTALVIS,
    TRANSVIS,
    check_ext,
    check_int,
    check_noconflict,
    check_prefix,
    check_session,
    check_totalvis,
    check_transvis,
)
from repro.core.events import read, write
from repro.core.executions import execution
from repro.core.histories import history, singleton_sessions
from repro.core.transactions import initialisation_transaction, transaction


def writer_reader():
    init = initialisation_transaction(["x", "y"])
    t1 = transaction("t1", write("x", 1))
    t2 = transaction("t2", read("x", 1))
    return init, t1, t2


class TestINT:
    def test_holds_on_consistent_transactions(self):
        init, t1, t2 = writer_reader()
        h = singleton_sessions(init, t1, t2)
        x = execution(
            h, vis=[(init, t1), (init, t2), (t1, t2)],
            co=[(init, t1), (t1, t2)],
        )
        assert not check_int(x)
        assert INT.holds(x)

    def test_detects_violation(self):
        init = initialisation_transaction(["x"])
        bad = transaction("bad", write("x", 1), read("x", 99))
        h = singleton_sessions(init, bad)
        x = execution(h, vis=[(init, bad)], co=[(init, bad)])
        assert check_int(x)


class TestEXT:
    def test_reads_latest_visible_write(self):
        init, t1, t2 = writer_reader()
        h = singleton_sessions(init, t1, t2)
        x = execution(
            h, vis=[(init, t1), (init, t2), (t1, t2)],
            co=[(init, t1), (t1, t2)],
        )
        assert not check_ext(x)

    def test_violation_when_reading_stale_value(self):
        init, t1, t2 = writer_reader()
        h = singleton_sessions(init, t1, t2)
        # t2 sees t1 (which wrote x=1) but claims to read x=1 from init...
        # make t2 read 0 while seeing t1: violation.
        t2_stale = transaction("t2", read("x", 0))
        h = singleton_sessions(init, t1, t2_stale)
        x = execution(
            h, vis=[(init, t1), (init, t2_stale), (t1, t2_stale)],
            co=[(init, t1), (t1, t2_stale)],
        )
        violations = check_ext(x)
        assert violations and "latest visible writer" in violations[0]

    def test_violation_when_no_visible_writer(self):
        init, t1, t2 = writer_reader()
        h = singleton_sessions(init, t1, t2)
        x = execution(h, vis=[(init, t1)], co=[(init, t1), (t1, t2)])
        violations = check_ext(x)
        assert any("no visible" in v for v in violations)

    def test_own_write_not_required_for_ext(self):
        # A transaction writing x before reading it has no external read.
        init = initialisation_transaction(["x"])
        t = transaction("t", write("x", 5), read("x", 5))
        h = singleton_sessions(init, t)
        x = execution(h, vis=[(init, t)], co=[(init, t)])
        assert not check_ext(x)

    def test_max_undefined_reported(self):
        # Two visible writers unrelated by CO -> no CO-maximum.
        init = initialisation_transaction(["x"])
        a = transaction("a", write("x", 1))
        b = transaction("b", write("x", 2))
        r = transaction("r", read("x", 2))
        h = singleton_sessions(init, a, b, r)
        from repro.core.executions import PreExecution
        from repro.core.relations import Relation

        vis = Relation([(init, a), (init, b), (init, r), (a, r), (b, r)])
        co = vis.transitive_closure()
        p = PreExecution(h, vis, co)
        violations = check_ext(p)
        assert any("no CO-maximum" in v for v in violations)


class TestSESSION:
    def test_requires_so_in_vis(self):
        init, t1, t2 = writer_reader()
        h = history([init], [t1, t2])
        x = execution(
            h, vis=[(init, t1), (init, t2)], co=[(init, t1), (t1, t2)]
        )
        violations = check_session(x)
        assert violations and "SO" in violations[0]

    def test_holds_when_vis_contains_so(self):
        init, t1, t2 = writer_reader()
        h = history([init], [t1, t2])
        x = execution(
            h, vis=[(init, t1), (init, t2), (t1, t2)],
            co=[(init, t1), (t1, t2)],
        )
        assert not check_session(x)


class TestPREFIX:
    def test_long_fork_violates_prefix(self):
        init = initialisation_transaction(["x", "y"])
        t1 = transaction("t1", write("x", 1))
        t2 = transaction("t2", write("y", 1))
        t3 = transaction("t3", read("x", 1), read("y", 0))
        t4 = transaction("t4", read("x", 0), read("y", 1))
        h = singleton_sessions(init, t1, t2, t3, t4)
        x = execution(
            h,
            vis=[(init, t1), (init, t2), (init, t3), (init, t4),
                 (t1, t3), (t2, t4)],
            co=[(init, t1), (t1, t2), (t2, t3), (t3, t4)],
        )
        assert check_prefix(x)  # t1 CO t2 VIS t4 but not t1 VIS t4

    def test_holds_when_vis_prefix_closed(self):
        init, t1, t2 = writer_reader()
        h = singleton_sessions(init, t1, t2)
        x = execution(
            h, vis=[(init, t1), (init, t2), (t1, t2)],
            co=[(init, t1), (t1, t2)],
        )
        assert not check_prefix(x)


class TestNOCONFLICT:
    def test_concurrent_writers_flagged(self):
        init = initialisation_transaction(["acct"])
        t1 = transaction("t1", read("acct", 0), write("acct", 50))
        t2 = transaction("t2", read("acct", 0), write("acct", 25))
        h = singleton_sessions(init, t1, t2)
        x = execution(
            h, vis=[(init, t1), (init, t2)], co=[(init, t1), (t1, t2)]
        )
        violations = check_noconflict(x)
        assert violations and "both write acct" in violations[0]

    def test_ordered_writers_pass(self):
        init = initialisation_transaction(["acct"])
        t1 = transaction("t1", write("acct", 50))
        t2 = transaction("t2", write("acct", 75))
        h = singleton_sessions(init, t1, t2)
        x = execution(
            h, vis=[(init, t1), (init, t2), (t1, t2)],
            co=[(init, t1), (t1, t2)],
        )
        assert not check_noconflict(x)


class TestTOTALVIS:
    def test_partial_vis_flagged(self):
        init, t1, t2 = writer_reader()
        h = singleton_sessions(init, t1, t2)
        x = execution(
            h, vis=[(init, t1), (init, t2)], co=[(init, t1), (t1, t2)]
        )
        assert check_totalvis(x)

    def test_total_vis_passes(self):
        init, t1, t2 = writer_reader()
        h = singleton_sessions(init, t1, t2)
        x = execution(
            h, vis=[(init, t1), (init, t2), (t1, t2)],
            co=[(init, t1), (t1, t2)],
        )
        assert not check_totalvis(x)


class TestTRANSVIS:
    def test_intransitive_vis_flagged(self):
        init = initialisation_transaction(["x", "y"])
        t1 = transaction("t1", write("x", 1))
        t2 = transaction("t2", read("x", 1), write("y", 2))
        t3 = transaction("t3", read("y", 2), read("x", 0))
        h = singleton_sessions(init, t1, t2, t3)
        from repro.core.executions import AbstractExecution
        from repro.core.relations import Relation

        vis = Relation(
            [(init, t1), (init, t2), (init, t3), (t1, t2), (t2, t3)]
        )
        co = Relation.total_order([init, t1, t2, t3])
        x = AbstractExecution(h, vis, co)
        assert check_transvis(x)

    def test_axiom_objects_have_names(self):
        names = {a.name for a in ALL_AXIOMS}
        assert names == {
            "INT", "EXT", "SESSION", "PREFIX",
            "NOCONFLICT", "TOTALVIS", "TRANSVIS",
        }
