"""Tests for the prefix-consistency (PC) extension model.

PC = {INT, EXT, SESSION, PREFIX} — SI without write-conflict detection;
the model the paper's §7 names as the next target for its construction
technique.  Expected anomaly profile: lost update allowed (no
NOCONFLICT), long fork forbidden (PREFIX), write skew allowed.
"""

import pytest

from repro.anomalies import (
    long_fork,
    lost_update,
    session_guarantees,
    write_skew,
)
from repro.characterisation.exec_search import (
    find_execution,
    history_allowed,
)
from repro.core.models import AXIOMATIC_MODELS, MODELS, PC, SER, SI


class TestModelDefinition:
    def test_axioms(self):
        assert [a.name for a in PC.axioms] == [
            "INT", "EXT", "SESSION", "PREFIX",
        ]

    def test_in_axiomatic_registry_not_graph_registry(self):
        assert "PC" in AXIOMATIC_MODELS
        assert "PC" not in MODELS  # no graph characterisation

    def test_si_executions_are_pc_executions(self):
        # SI's axioms include PC's, so ExecSI ⊆ ExecPC.
        for case in (session_guarantees(), write_skew()):
            x = case.execution
            if SI.satisfied_by(x):
                assert PC.satisfied_by(x)


class TestAnomalyProfile:
    def test_lost_update_allowed(self):
        case = lost_update()
        assert history_allowed(case.history, "PC", init_tid=case.init_tid)
        # ... which neither SI nor SER allows:
        assert not history_allowed(case.history, "SI", init_tid=case.init_tid)

    def test_long_fork_forbidden(self):
        case = long_fork()
        assert not history_allowed(case.history, "PC", init_tid=case.init_tid)

    def test_write_skew_allowed(self):
        case = write_skew()
        assert history_allowed(case.history, "PC", init_tid=case.init_tid)

    def test_session_guarantees_allowed(self):
        case = session_guarantees()
        assert history_allowed(case.history, "PC", init_tid=case.init_tid)

    def test_hist_si_subset_of_hist_pc(self):
        # On all catalog cases: SI-allowed implies PC-allowed.
        from repro.anomalies import ALL_CASES

        for name, ctor in sorted(ALL_CASES.items()):
            case = ctor()
            if len(case.history) > 5:
                continue
            if history_allowed(case.history, "SI", init_tid=case.init_tid):
                assert history_allowed(
                    case.history, "PC", init_tid=case.init_tid
                ), name


class TestWitnesses:
    def test_lost_update_witness_violates_noconflict_only(self):
        case = lost_update()
        x = find_execution(case.history, "PC", init_tid=case.init_tid)
        assert x is not None
        assert PC.satisfied_by(x)
        violations = SI.violations(x)
        assert set(violations) == {"NOCONFLICT"}

    def test_witness_satisfies_prefix(self):
        case = write_skew()
        x = find_execution(case.history, "PC", init_tid=case.init_tid)
        assert x is not None
        from repro.core.axioms import PREFIX

        assert PREFIX.holds(x)
