"""Unit tests for exhaustive schedule exploration."""

import pytest

from repro.core.models import SI
from repro.mvcc.serializable import SerializableEngine
from repro.mvcc.si import SIEngine
from repro.mvcc.workloads import (
    deposit_program,
    lost_update_sessions,
    write_skew_sessions,
)
from repro.search.enumerate import (
    distinct_histories,
    explore_runs,
    history_key,
)


class TestExploration:
    def test_single_session_single_run(self):
        runs = list(
            explore_runs(
                lambda: SIEngine({"acct": 0}),
                lambda: {"s": [deposit_program("acct", 1)]},
            )
        )
        assert len(runs) == 1
        assert runs[0].commits == 1

    def test_all_interleavings_enumerated(self):
        # Two sessions with 3 scheduler steps each (read, write, commit):
        # the interleaving count is C(6,3) = 20, no aborts change that for
        # write-skew (its programs never write-conflict).
        runs = list(
            explore_runs(
                lambda: SIEngine({"acct1": 70, "acct2": 80}),
                write_skew_sessions,
            )
        )
        assert len(runs) >= 20
        assert all(run.commits == 2 for run in runs)

    def test_schedules_unique(self):
        runs = list(
            explore_runs(
                lambda: SIEngine({"acct": 0}),
                lost_update_sessions,
            )
        )
        schedules = [run.schedule for run in runs]
        assert len(schedules) == len(set(schedules))

    def test_max_runs_caps(self):
        runs = list(
            explore_runs(
                lambda: SIEngine({"acct": 0}),
                lost_update_sessions,
                max_runs=3,
            )
        )
        assert len(runs) == 3

    def test_all_executions_satisfy_si(self):
        for run in explore_runs(
            lambda: SIEngine({"acct": 0}), lost_update_sessions
        ):
            assert SI.satisfied_by(run.execution)

    def test_aborted_runs_retry_to_completion(self):
        runs = list(
            explore_runs(lambda: SIEngine({"acct": 0}), lost_update_sessions)
        )
        # Every complete run commits both deposits eventually.
        assert all(run.commits == 2 for run in runs)
        assert any(run.aborts > 0 for run in runs)


class TestHistoryKeys:
    def test_key_ignores_tids(self):
        runs = list(
            explore_runs(lambda: SIEngine({"acct": 0}), lost_update_sessions)
        )
        k1 = history_key(runs[0].history)
        assert isinstance(k1, tuple)

    def test_distinct_histories_deduplicates(self):
        runs = list(
            explore_runs(lambda: SIEngine({"acct": 0}), lost_update_sessions)
        )
        distinct = distinct_histories(iter(runs))
        assert 1 <= len(distinct) < len(runs)

    def test_ser_explores_fewer_distinct_histories_than_si(self):
        # Write skew: SI admits the anomaly history, SER does not.
        si_runs = distinct_histories(
            explore_runs(
                lambda: SIEngine({"acct1": 70, "acct2": 80}),
                write_skew_sessions,
            )
        )
        ser_runs = distinct_histories(
            explore_runs(
                lambda: SerializableEngine({"acct1": 70, "acct2": 80}),
                write_skew_sessions,
            )
        )
        assert len(ser_runs) < len(si_runs)
