"""Exhaustive exploration of PSI engines, delivery choices included."""

import pytest

from repro.characterisation.exec_search import history_allowed
from repro.core.models import PSI
from repro.mvcc.psi import PSIEngine
from repro.mvcc.runtime import ReadOp, WriteOp
from repro.search.enumerate import (
    DELIVER,
    distinct_histories,
    explore_runs,
)

# Re-export check: DELIVER must be the schedule token used by explorers.
from repro.mvcc.runtime import DELIVER as RUNTIME_DELIVER


def writer(obj, value):
    def tx():
        yield WriteOp(obj, value)

    return tx


def reader(*objs):
    def tx():
        for obj in objs:
            yield ReadOp(obj)

    return tx


def make_engine():
    # Pre-pin replicas so delivery choices exist from the start.
    engine = PSIEngine({"x": 0, "y": 0})
    for session in ("w1", "w2", "r"):
        engine.replica_of(session)
    return engine


def make_sessions():
    return {
        "w1": [writer("x", 1)],
        "w2": [writer("y", 1)],
        "r": [reader("x", "y")],
    }


class TestPSIExploration:
    @pytest.fixture(scope="class")
    def runs(self):
        return list(
            explore_runs(make_engine, make_sessions, max_depth=40)
        )

    def test_delivery_choices_branch(self, runs):
        assert any(DELIVER in run.schedule for run in runs)

    def test_all_executions_satisfy_psi(self, runs):
        for run in runs:
            assert PSI.satisfied_by(run.execution)

    def test_all_histories_in_hist_psi(self, runs):
        for run in distinct_histories(iter(runs)).values():
            assert history_allowed(
                run.history, "PSI", init_tid="t_init"
            ), run.history.describe()

    def test_reader_observes_multiple_states(self, runs):
        # Across schedules the reader sees (0,0), (1,0), (0,1) and (1,1):
        # delivery timing is genuinely explored.
        observations = set()
        for run in runs:
            r = run.history.by_tid(
                next(
                    t.tid
                    for t in run.history.transactions
                    if t.tid != "t_init" and not t.written_objects
                )
            )
            observations.add(tuple(e.value for e in r.events))
        assert {(0, 0), (1, 0), (0, 1), (1, 1)} <= observations

    def test_runs_deduplicate_to_few_histories(self, runs):
        distinct = distinct_histories(iter(runs))
        assert 4 <= len(distinct) <= len(runs)
