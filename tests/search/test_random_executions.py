"""Tests for the generative SI-execution sampler (generalised SI)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.characterisation.completeness import check_lemma12
from repro.characterisation.solver import (
    Solution,
    is_smaller_or_equal,
    least_solution,
    satisfies_inequalities,
)
from repro.core.models import PSI, SI
from repro.graphs.extraction import (
    antidependencies_via_visibility,
    graph_of,
)
from repro.graphs.classify import in_graph_si
from repro.search.random_executions import random_si_execution

seeds = st.integers(min_value=0, max_value=10_000)
relaxed = settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestGeneratedExecutions:
    @pytest.mark.parametrize("seed", range(10))
    def test_satisfy_all_si_axioms(self, seed):
        x = random_si_execution(seed, staleness=0.8)
        assert SI.satisfied_by(x), SI.explain(x)

    @pytest.mark.parametrize("seed", range(10))
    def test_graphs_in_graphsi(self, seed):
        # Theorem 10(ii) on generatively-sampled executions.
        x = random_si_execution(seed, staleness=0.8)
        assert in_graph_si(graph_of(x))

    def test_deterministic_per_seed(self):
        x1 = random_si_execution(5)
        x2 = random_si_execution(5)
        assert {t.tid for t in x1.history.transactions} == {
            t.tid for t in x2.history.transactions
        }
        assert {(a.tid, b.tid) for a, b in x1.vis} == {
            (a.tid, b.tid) for a, b in x2.vis
        }

    def test_staleness_produces_non_latest_snapshots(self):
        stale_found = 0
        for seed in range(25):
            x = random_si_execution(seed, staleness=1.0)
            for t in x.history.transactions:
                if x.vis.predecessors(t) < x.co.predecessors(t):
                    stale_found += 1
        assert stale_found > 0, "generator never produced a stale snapshot"

    def test_zero_staleness_gives_latest_snapshots(self):
        for seed in range(5):
            x = random_si_execution(seed, staleness=0.0)
            for t in x.history.transactions:
                assert x.vis.predecessors(t) == x.co.predecessors(t)

    def test_shape_parameters(self):
        x = random_si_execution(1, transactions=8, objects=4, sessions=2)
        assert len(x.history.transactions) == 9
        assert len(x.history.objects) == 4


class TestTheoremsOnGeneralisedSI:
    """The paper's lemmas must hold on stale-snapshot executions too —
    the engine-based samplers never exercise this region of ExecSI."""

    @relaxed
    @given(seeds)
    def test_lemma12(self, seed):
        x = random_si_execution(seed, staleness=0.9)
        assert check_lemma12(x) == []

    @relaxed
    @given(seeds)
    def test_proposition14(self, seed):
        x = random_si_execution(seed, staleness=0.9)
        g = graph_of(x)
        assert g.rw_union.pairs == antidependencies_via_visibility(x).pairs

    @relaxed
    @given(seeds)
    def test_lemma15_minimality(self, seed):
        x = random_si_execution(seed, staleness=0.9)
        g = graph_of(x)
        least = least_solution(g)
        actual = Solution(vis=x.vis, co=x.co)
        assert satisfies_inequalities(g, actual)
        assert is_smaller_or_equal(least, actual)

    @relaxed
    @given(seeds)
    def test_si_executions_satisfy_psi(self, seed):
        # ExecSI ⊆ ExecPSI (PREFIX + VIS⊆CO gives TRANSVIS).
        x = random_si_execution(seed, staleness=0.9)
        assert PSI.satisfied_by(x)
