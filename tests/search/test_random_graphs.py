"""Unit tests for the random graph generators."""

import pytest

from repro.graphs.classify import in_graph_si
from repro.search.random_graphs import (
    graph_from_si_run,
    random_dependency_graph,
    random_graphsi_graph,
)


class TestRandomDependencyGraph:
    def test_wellformed_by_construction(self):
        for seed in range(10):
            g = random_dependency_graph(seed)
            assert g.well_formedness_violations() == []

    def test_deterministic_per_seed(self):
        g1 = random_dependency_graph(42)
        g2 = random_dependency_graph(42)
        assert {t.tid for t in g1.transactions} == {
            t.tid for t in g2.transactions
        }
        assert dict(g1.wr).keys() == dict(g2.wr).keys()
        for obj in g1.wr:
            assert {
                (a.tid, b.tid) for a, b in g1.wr[obj]
            } == {(a.tid, b.tid) for a, b in g2.wr[obj]}

    def test_shape_parameters(self):
        g = random_dependency_graph(0, transactions=8, objects=5, sessions=2)
        assert len(g.transactions) == 9  # + init
        assert len(g.history.objects) == 5
        assert len(g.history.sessions) <= 3  # init + up to 2

    def test_init_first_in_ww(self):
        g = random_dependency_graph(7)
        init = g.history.by_tid("t_init")
        for obj in g.history.objects:
            writers = g.history.write_transactions(obj)
            if len(writers) > 1:
                assert g.ww_on(obj).min_element(writers) == init

    def test_internally_consistent(self):
        for seed in range(10):
            assert random_dependency_graph(seed).history.is_internally_consistent()


class TestGraphSISamplers:
    def test_rejection_sampler_yields_graphsi(self):
        for seed in range(5):
            g = random_graphsi_graph(seed, transactions=4, objects=3)
            assert in_graph_si(g)

    def test_engine_sampler_always_graphsi(self):
        for seed in range(5):
            g = graph_from_si_run(seed)
            assert in_graph_si(g)
            assert g.well_formedness_violations() == []

    def test_engine_sampler_deterministic(self):
        g1 = graph_from_si_run(3)
        g2 = graph_from_si_run(3)
        assert {t.tid for t in g1.transactions} == {
            t.tid for t in g2.transactions
        }
