"""Unit tests for the anomaly catalog (the paper's figures)."""

import pytest

from repro.anomalies import ALL_CASES, load
from repro.anomalies.catalog import INIT_TID
from repro.core.models import MODELS


class TestCatalogIntegrity:
    def test_all_cases_constructible(self):
        for name, ctor in ALL_CASES.items():
            case = ctor()
            assert case.name == name
            assert case.history is not None
            assert set(case.expected) == {"SER", "SI", "PSI"}

    def test_load_by_name(self):
        case = load("write_skew")
        assert case.name == "write_skew"

    def test_load_unknown_rejected(self):
        with pytest.raises(KeyError):
            load("phantom_read")

    def test_histories_internally_consistent(self):
        for ctor in ALL_CASES.values():
            assert ctor().history.is_internally_consistent()

    def test_init_transaction_present(self):
        for ctor in ALL_CASES.values():
            case = ctor()
            assert case.history.by_tid(INIT_TID) is not None

    def test_executions_well_formed(self):
        for ctor in ALL_CASES.values():
            case = ctor()
            if case.execution is not None:
                assert case.execution.well_formedness_violations() == []

    def test_graphs_well_formed(self):
        for ctor in ALL_CASES.values():
            case = ctor()
            if case.graph is not None:
                assert case.graph.well_formedness_violations() == []

    def test_graph_history_matches_case_history(self):
        for ctor in ALL_CASES.values():
            case = ctor()
            if case.graph is not None:
                assert case.graph.history is case.history


class TestExpectedClassifications:
    """Pin the paper's Figure 2 and appendix claims."""

    def test_write_skew_si_not_ser(self):
        expected = load("write_skew").expected
        assert expected == {"SER": False, "SI": True, "PSI": True}

    def test_lost_update_nowhere(self):
        assert load("lost_update").expected == {
            "SER": False, "SI": False, "PSI": False,
        }

    def test_long_fork_psi_only(self):
        assert load("long_fork").expected == {
            "SER": False, "SI": False, "PSI": True,
        }

    def test_session_guarantees_everywhere(self):
        assert load("session_guarantees").expected == {
            "SER": True, "SI": True, "PSI": True,
        }

    def test_executions_satisfy_their_models(self):
        # Each case's canonical execution must satisfy every model the
        # history is expected to be allowed by... at least SI when marked.
        for name, ctor in ALL_CASES.items():
            case = ctor()
            if case.execution is None:
                continue
            if case.expected["SI"]:
                assert MODELS["SI"].satisfied_by(case.execution), name
