"""Unit tests for the program DSL and the paper's example programs."""

import pytest

from repro.chopping.programs import (
    PAPER_CHOPPINGS,
    Program,
    lookup1_program,
    lookup_all_program,
    p1_programs,
    p2_programs,
    p3_programs,
    p4_programs,
    paper_chopping,
    piece,
    program,
    replicate,
    transfer_program,
)


class TestPiece:
    def test_sets_are_frozen(self):
        p = piece({"x"}, {"y"})
        assert p.reads == frozenset({"x"})
        assert p.writes == frozenset({"y"})

    def test_label_rendering(self):
        assert str(piece({"x"}, (), label="var1 = x")) == "var1 = x"
        assert "R['x']" in str(piece({"x"}, ()))


class TestProgram:
    def test_requires_pieces(self):
        with pytest.raises(ValueError):
            Program("empty", ())

    def test_union_sets(self):
        p = transfer_program()
        assert p.reads == {"acct1", "acct2"}
        assert p.writes == {"acct1", "acct2"}

    def test_unchopped_single_piece(self):
        whole = transfer_program().unchopped()
        assert len(whole) == 1
        assert whole.pieces[0].reads == {"acct1", "acct2"}

    def test_len(self):
        assert len(transfer_program()) == 2
        assert len(lookup1_program()) == 1


class TestReplicate:
    def test_names_suffixed(self):
        copies = replicate([transfer_program()], 3)
        assert [p.name for p in copies] == [
            "transfer#0", "transfer#1", "transfer#2",
        ]

    def test_pieces_shared(self):
        original = transfer_program()
        copy = replicate([original], 1)[0]
        assert copy.pieces == original.pieces


class TestPaperPrograms:
    def test_transfer_read_write_sets_match_paper(self):
        p = transfer_program()
        assert p.pieces[0].reads == {"acct1"}
        assert p.pieces[0].writes == {"acct1"}
        assert p.pieces[1].reads == {"acct2"}
        assert p.pieces[1].writes == {"acct2"}

    def test_lookup_all_chopped_into_two_reads(self):
        p = lookup_all_program()
        assert len(p) == 2
        assert p.pieces[0].reads == {"acct1"} and not p.pieces[0].writes
        assert p.pieces[1].reads == {"acct2"} and not p.pieces[1].writes

    def test_p1_to_p4_composition(self):
        assert [p.name for p in p1_programs()] == ["transfer", "lookupAll"]
        assert [p.name for p in p2_programs()] == [
            "transfer", "lookup1", "lookup2",
        ]
        assert [p.name for p in p3_programs()] == ["write1", "write2"]
        assert [p.name for p in p4_programs()] == [
            "write1", "write2", "read1", "read2",
        ]

    def test_p3_write1_pieces(self):
        write1 = p3_programs()[0]
        assert write1.pieces[0].reads == {"x"}
        assert not write1.pieces[0].writes
        assert not write1.pieces[1].reads
        assert write1.pieces[1].writes == {"y"}

    def test_paper_chopping_index(self):
        for name in PAPER_CHOPPINGS:
            programs = paper_chopping(name)
            assert tuple(p.name for p in programs) == PAPER_CHOPPINGS[name]

    def test_unknown_chopping_rejected(self):
        with pytest.raises(KeyError):
            paper_chopping("P9")
