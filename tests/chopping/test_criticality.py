"""Unit tests for the critical-cycle predicates (§5, Definitions 28/30)."""

import pytest

from repro.chopping.criticality import (
    Criterion,
    antidependencies_separated,
    at_most_one_antidependency,
    find_critical_cycle,
    has_cpc_fragment,
    is_critical,
)
from repro.graphs.cycles import Cycle, EdgeKind, LabeledDigraph, LabeledEdge


def cyc(*spec):
    """Build a cycle over nodes n0, n1, ... from a list of kinds."""
    n = len(spec)
    edges = tuple(
        LabeledEdge(f"n{i}", f"n{(i + 1) % n}", kind)
        for i, kind in enumerate(spec)
    )
    return Cycle(edges)


C_WR, C_WW, C_RW = EdgeKind.WR, EdgeKind.WW, EdgeKind.RW
S, P = EdgeKind.SUCCESSOR, EdgeKind.PREDECESSOR


class TestFragment:
    def test_conflict_predecessor_conflict_found(self):
        assert has_cpc_fragment(cyc(C_WR, P, C_RW, S))

    def test_successor_between_conflicts_not_enough(self):
        assert not has_cpc_fragment(cyc(C_WR, S, C_RW, S))

    def test_wraps_around(self):
        assert has_cpc_fragment(cyc(P, C_RW, S, C_WR))


class TestSeparation:
    def test_adjacent_rws_not_separated(self):
        assert not antidependencies_separated(cyc(C_RW, C_RW, C_WW, P))

    def test_rws_separated_by_ww(self):
        assert antidependencies_separated(cyc(C_RW, C_WW, C_RW, C_WR, P))

    def test_wraparound_adjacency_counts(self):
        # conflict sequence [RW, WW, RW]: the second RW wraps to the first
        # with no separator.
        assert not antidependencies_separated(cyc(C_RW, C_WW, C_RW, P))

    def test_sibling_edges_ignored_for_adjacency(self):
        # RW, P, RW: the predecessor edge does not separate the RWs.
        assert not antidependencies_separated(cyc(C_RW, P, C_RW, C_WW))

    def test_no_rw_vacuous(self):
        assert antidependencies_separated(cyc(C_WR, P, C_WW))

    def test_single_conflict_vacuous(self):
        assert antidependencies_separated(cyc(C_RW, P, S))


class TestAtMostOne:
    def test_zero_and_one_pass(self):
        assert at_most_one_antidependency(cyc(C_WR, P, C_WW))
        assert at_most_one_antidependency(cyc(C_RW, P, C_WW))

    def test_two_fail(self):
        assert not at_most_one_antidependency(cyc(C_RW, C_WW, C_RW, P))


class TestCriticality:
    def test_paper_fig5_cycle_is_si_critical(self):
        # RW ; S? ; WR ; P pattern from cycle (8): conflict edges RW, WR
        # separated; fragment present.
        cycle = cyc(C_RW, S, C_WR, P)
        assert is_critical(cycle, Criterion.SI)
        assert is_critical(cycle, Criterion.SER)

    def test_fig11_cycle_ser_critical_only(self):
        # Cycle (9): RW, P, RW, P — adjacent anti-dependencies.
        cycle = cyc(C_RW, P, C_RW, P)
        assert is_critical(cycle, Criterion.SER)
        assert not is_critical(cycle, Criterion.SI)
        assert not is_critical(cycle, Criterion.PSI)

    def test_fig12_cycle_si_critical_not_psi(self):
        # Cycle (10): WR, P, RW, WR, P, RW — two separated RWs.
        cycle = cyc(C_WR, P, C_RW, C_WR, P, C_RW)
        assert is_critical(cycle, Criterion.SI)
        assert is_critical(cycle, Criterion.SER)
        assert not is_critical(cycle, Criterion.PSI)

    def test_no_fragment_never_critical(self):
        cycle = cyc(C_WR, S, C_RW, S)
        for criterion in Criterion:
            assert not is_critical(cycle, criterion)

    def test_psi_critical_implies_si_critical(self):
        cycles = [
            cyc(C_WR, P, C_WW),
            cyc(C_RW, P, C_WR),
            cyc(C_RW, P, C_RW, P),
            cyc(C_WR, P, C_RW, C_WR, P, C_RW),
        ]
        for cycle in cycles:
            if is_critical(cycle, Criterion.PSI):
                assert is_critical(cycle, Criterion.SI)
            if is_critical(cycle, Criterion.SI):
                assert is_critical(cycle, Criterion.SER)


class TestFindCriticalCycle:
    def test_finds_witness(self):
        g = LabeledDigraph(
            [
                LabeledEdge("a", "b", C_RW),
                LabeledEdge("b", "c", S),
                LabeledEdge("c", "a2", C_WR),
                LabeledEdge("a2", "a", P),
            ]
        )
        witness = find_critical_cycle(g, Criterion.SI)
        assert witness is not None
        assert has_cpc_fragment(witness)

    def test_none_when_clean(self):
        g = LabeledDigraph(
            [LabeledEdge("a", "b", C_WR), LabeledEdge("b", "a", C_RW)]
        )
        assert find_critical_cycle(g, Criterion.SI) is None

    def test_unknown_criterion_rejected(self):
        with pytest.raises(ValueError):
            is_critical(cyc(C_WR, P, C_WW), "bogus")
