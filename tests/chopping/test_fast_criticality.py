"""Equivalence of the fast critical-cycle search with the enumeration
oracle, on the paper's graphs and on random chopping graphs."""

import random

import pytest

from repro.anomalies import fig4_g1, fig4_g2, fig11_h6, fig12_g7
from repro.chopping import (
    Criterion,
    dynamic_chopping_graph,
    find_critical_cycle,
    find_critical_cycle_by_enumeration,
    is_critical,
    p1_programs,
    p2_programs,
    p3_programs,
    p4_programs,
    static_chopping_graph,
)
from repro.graphs.cycles import EdgeKind, LabeledDigraph, LabeledEdge


def random_chopping_graph(seed: int, programs: int = 3, pieces: int = 2):
    """A random SCG-shaped labelled graph: S/P edges inside programs,
    conflict edges between them."""
    rng = random.Random(seed)
    g = LabeledDigraph()
    nodes = [(p, j) for p in range(programs) for j in range(pieces)]
    for node in nodes:
        g.add_node(node)
    for p in range(programs):
        for j1 in range(pieces):
            for j2 in range(j1 + 1, pieces):
                g.add_edge(LabeledEdge((p, j1), (p, j2), EdgeKind.SUCCESSOR))
                g.add_edge(LabeledEdge((p, j2), (p, j1), EdgeKind.PREDECESSOR))
    kinds = [EdgeKind.WR, EdgeKind.WW, EdgeKind.RW]
    for n1 in nodes:
        for n2 in nodes:
            if n1[0] == n2[0]:
                continue
            for kind in kinds:
                if rng.random() < 0.25:
                    g.add_edge(LabeledEdge(n1, n2, kind))
    return g


PAPER_GRAPHS = {
    "SCG(P1)": lambda: static_chopping_graph(p1_programs()),
    "SCG(P2)": lambda: static_chopping_graph(p2_programs()),
    "SCG(P3)": lambda: static_chopping_graph(p3_programs()),
    "SCG(P4)": lambda: static_chopping_graph(p4_programs()),
    "DCG(G1)": lambda: dynamic_chopping_graph(fig4_g1().graph),
    "DCG(G2)": lambda: dynamic_chopping_graph(fig4_g2().graph),
    "DCG(H6)": lambda: dynamic_chopping_graph(fig11_h6().graph),
    "DCG(G7)": lambda: dynamic_chopping_graph(fig12_g7().graph),
}


class TestEquivalenceOnPaperGraphs:
    @pytest.mark.parametrize("name", sorted(PAPER_GRAPHS))
    @pytest.mark.parametrize("criterion", list(Criterion))
    def test_fast_matches_enumeration(self, name, criterion):
        graph = PAPER_GRAPHS[name]()
        fast = find_critical_cycle(graph, criterion)
        slow = find_critical_cycle_by_enumeration(graph, criterion)
        assert (fast is None) == (slow is None), (name, criterion)

    @pytest.mark.parametrize("name", sorted(PAPER_GRAPHS))
    @pytest.mark.parametrize("criterion", list(Criterion))
    def test_fast_witness_is_actually_critical(self, name, criterion):
        graph = PAPER_GRAPHS[name]()
        witness = find_critical_cycle(graph, criterion)
        if witness is not None:
            assert witness.is_simple()
            assert is_critical(witness, criterion)


class TestEquivalenceOnRandomGraphs:
    @pytest.mark.parametrize("seed", range(20))
    @pytest.mark.parametrize("criterion", list(Criterion))
    def test_fast_matches_enumeration(self, seed, criterion):
        graph = random_chopping_graph(seed)
        fast = find_critical_cycle(graph, criterion)
        slow = find_critical_cycle_by_enumeration(graph, criterion)
        assert (fast is None) == (slow is None), (seed, criterion)

    @pytest.mark.parametrize("seed", range(20))
    def test_fast_witnesses_valid(self, seed):
        graph = random_chopping_graph(seed, programs=4, pieces=2)
        for criterion in Criterion:
            witness = find_critical_cycle(graph, criterion)
            if witness is not None:
                assert is_critical(witness, criterion)


class TestScalability:
    def test_dense_graph_fast(self):
        # The configuration that made the naive enumeration explode:
        # many mutually-conflicting single-piece programs.
        g = LabeledDigraph()
        hot = [("dep", i) for i in range(10)]
        for n1 in hot:
            g.add_node(n1)
        for n1 in hot:
            for n2 in hot:
                if n1 == n2:
                    continue
                for kind in (EdgeKind.WR, EdgeKind.WW, EdgeKind.RW):
                    g.add_edge(LabeledEdge(n1, n2, kind))
        # No predecessor edges at all: no critical cycle, and the search
        # must terminate quickly despite ~10! vertex cycles... it prunes
        # by deciding each vertex cycle in linear time.
        import time

        t0 = time.perf_counter()
        result = find_critical_cycle(g, Criterion.SI, length_bound=4)
        elapsed = time.perf_counter() - t0
        assert result is None
        assert elapsed < 5.0
