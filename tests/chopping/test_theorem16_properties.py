"""Property-based validation of Theorem 16 (hypothesis).

For random chopped SI-engine runs: whenever the dynamic chopping
criterion passes, ``splice(G)`` must be a well-formed dependency graph in
GraphSI whose history is ``splice(H_G)`` — the theorem's exact guarantee.
Additionally Lemma 17's decomposition and the criteria ordering are
checked on every sample.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chopping.criticality import Criterion
from repro.chopping.dynamic import check_chopping
from repro.chopping.splice import splice_graph, splice_history
from repro.graphs.classify import in_graph_si
from repro.graphs.extraction import graph_of
from repro.mvcc.runtime import Scheduler
from repro.mvcc.si import SIEngine
from repro.mvcc.workloads import random_workload

seeds = st.integers(min_value=0, max_value=10_000)

relaxed = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def chopped_run_graph(seed: int):
    wl = random_workload(
        seed, sessions=3, transactions_per_session=2, objects=3,
        ops_per_transaction=(1, 3),
    )
    engine = SIEngine(wl.initial)
    Scheduler(engine, wl.sessions).run_random(seed)
    return graph_of(engine.abstract_execution())


@relaxed
@given(seeds)
def test_theorem16_soundness(seed):
    graph = chopped_run_graph(seed)
    verdict = check_chopping(graph, Criterion.SI)
    if verdict.passes:
        spliced = splice_graph(graph, validate=True)  # Lemma 26
        assert in_graph_si(spliced)  # Theorem 16
        assert spliced.history.transactions == splice_history(
            graph.history
        ).transactions


@relaxed
@given(seeds)
def test_criteria_ordering(seed):
    graph = chopped_run_graph(seed)
    ser = check_chopping(graph, Criterion.SER).passes
    si = check_chopping(graph, Criterion.SI).passes
    psi = check_chopping(graph, Criterion.PSI).passes
    if ser:
        assert si
    if si:
        assert psi


@relaxed
@given(seeds)
def test_spliced_history_membership_when_criterion_passes(seed):
    # The client-level consequence: if the criterion passes, the spliced
    # history is itself an SI behaviour.  (Checked through the oracle only
    # when small enough to stay tractable.)
    from repro.characterisation.membership import (
        history_in_si,
        search_space_size,
    )

    graph = chopped_run_graph(seed)
    if not check_chopping(graph, Criterion.SI).passes:
        return
    spliced_h = splice_history(graph.history)
    if search_space_size(spliced_h, init_tid="t_init") > 3000:
        return
    assert history_in_si(spliced_h, init_tid="t_init")
