"""Unit tests for static chopping graphs and the static analyses
(Corollary 18, Theorems 29 and 31; the Appendix B comparison matrix)."""

import pytest

from repro.chopping.criticality import Criterion
from repro.chopping.programs import (
    p1_programs,
    p2_programs,
    p3_programs,
    p4_programs,
    piece,
    program,
    replicate,
)
from repro.chopping.static import (
    analyse_chopping,
    chopping_correct_psi,
    chopping_correct_ser,
    chopping_correct_si,
    chopping_matrix,
    piece_nodes,
    static_chopping_graph,
)
from repro.graphs.cycles import EdgeKind


class TestSCGStructure:
    def test_nodes_are_pieces(self):
        nodes = piece_nodes(p1_programs())
        assert ("transfer", 0) in nodes
        assert ("transfer", 1) in nodes
        assert ("lookupAll", 1) in nodes
        assert len(nodes) == 4

    def test_duplicate_names_rejected(self):
        p = program("dup", piece({"x"}, ()))
        with pytest.raises(ValueError):
            static_chopping_graph([p, p])

    def test_successor_predecessor_edges(self):
        scg = static_chopping_graph(p1_programs())
        kinds = {(e.src, e.dst, e.kind) for e in scg.edges}
        assert (("transfer", 0), ("transfer", 1), EdgeKind.SUCCESSOR) in kinds
        assert (("transfer", 1), ("transfer", 0), EdgeKind.PREDECESSOR) in kinds

    def test_conflict_edges_from_set_overlaps(self):
        scg = static_chopping_graph(p1_programs())
        kinds = {(e.src, e.dst, e.kind) for e in scg.edges}
        # transfer piece 0 writes acct1; lookupAll piece 0 reads acct1.
        assert (("transfer", 0), ("lookupAll", 0), EdgeKind.WR) in kinds
        assert (("lookupAll", 0), ("transfer", 0), EdgeKind.RW) in kinds

    def test_no_conflicts_within_program(self):
        scg = static_chopping_graph(p1_programs())
        for e in scg.edges:
            if e.kind in (EdgeKind.WR, EdgeKind.WW, EdgeKind.RW):
                assert e.src[0] != e.dst[0]

    def test_ww_edges(self):
        a = program("a", piece((), {"x"}))
        b = program("b", piece((), {"x"}))
        scg = static_chopping_graph([a, b])
        kinds = {e.kind for e in scg.edges}
        assert EdgeKind.WW in kinds


class TestPaperVerdicts:
    """The Appendix B comparison matrix (experiment E11)."""

    def test_p1_incorrect_everywhere(self):
        assert not chopping_correct_ser(p1_programs())
        assert not chopping_correct_si(p1_programs())
        assert not chopping_correct_psi(p1_programs())

    def test_p2_correct_everywhere(self):
        assert chopping_correct_ser(p2_programs())
        assert chopping_correct_si(p2_programs())
        assert chopping_correct_psi(p2_programs())

    def test_p3_si_and_psi_only(self):
        assert not chopping_correct_ser(p3_programs())
        assert chopping_correct_si(p3_programs())
        assert chopping_correct_psi(p3_programs())

    def test_p4_psi_only(self):
        assert not chopping_correct_ser(p4_programs())
        assert not chopping_correct_si(p4_programs())
        assert chopping_correct_psi(p4_programs())

    def test_matrix_helper(self):
        matrix = chopping_matrix(
            {
                "P1": p1_programs(),
                "P2": p2_programs(),
                "P3": p3_programs(),
                "P4": p4_programs(),
            }
        )
        assert matrix == {
            "P1": {"SER": False, "SI": False, "PSI": False},
            "P2": {"SER": True, "SI": True, "PSI": True},
            "P3": {"SER": False, "SI": True, "PSI": True},
            "P4": {"SER": False, "SI": False, "PSI": True},
        }


class TestWitnesses:
    def test_p1_witness_matches_cycle_8(self):
        verdict = analyse_chopping(p1_programs(), Criterion.SI)
        assert not verdict.correct
        nodes = set(verdict.witness.nodes)
        assert nodes <= {
            ("transfer", 0), ("transfer", 1),
            ("lookupAll", 0), ("lookupAll", 1),
        }
        assert len(nodes) >= 3

    def test_p3_ser_witness_is_cycle_9(self):
        verdict = analyse_chopping(p3_programs(), Criterion.SER)
        assert not verdict.correct
        # Cycle (9) visits all four pieces.
        assert len(set(verdict.witness.nodes)) == 4

    def test_verdict_str(self):
        ok = analyse_chopping(p2_programs(), Criterion.SI)
        bad = analyse_chopping(p1_programs(), Criterion.SI)
        assert "correct under SI" in str(ok)
        assert "critical cycle" in str(bad)


class TestPermissivenessOrdering:
    def test_ser_implies_si_implies_psi(self):
        choppings = [
            p1_programs(), p2_programs(), p3_programs(), p4_programs(),
        ]
        for programs in choppings:
            if chopping_correct_ser(programs):
                assert chopping_correct_si(programs)
            if chopping_correct_si(programs):
                assert chopping_correct_psi(programs)

    def test_unchopped_programs_always_correct(self):
        whole = [p.unchopped() for p in p1_programs()]
        assert chopping_correct_ser(whole)
        assert chopping_correct_si(whole)
        assert chopping_correct_psi(whole)

    def test_replicated_instances(self):
        doubled = replicate(p2_programs(), 2)
        # Two transfers conflict on both accounts; the chopping criterion
        # must consider them.  The doubled P2 chopping is still correct
        # under SI?  Check it runs and returns a boolean.
        result = chopping_correct_si(doubled)
        assert isinstance(result, bool)
