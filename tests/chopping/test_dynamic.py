"""Unit tests for the dynamic chopping graph and Theorem 16."""

import pytest

from repro.anomalies import fig4_g1, fig4_g2, fig11_h6, fig12_g7
from repro.chopping.criticality import Criterion
from repro.chopping.dynamic import (
    check_chopping,
    dynamic_chopping_graph,
    is_spliceable_by_criterion,
    splice_if_safe,
)
from repro.chopping.splice import splice_history
from repro.graphs.classify import in_graph_si
from repro.graphs.cycles import EdgeKind


class TestDCGStructure:
    def test_successor_and_predecessor_edges(self):
        g = fig4_g1().graph
        dcg = dynamic_chopping_graph(g)
        kinds = {(e.src, e.dst, e.kind) for e in dcg.edges}
        assert ("t_tr1", "t_tr2", EdgeKind.SUCCESSOR) in kinds
        assert ("t_tr2", "t_tr1", EdgeKind.PREDECESSOR) in kinds

    def test_conflict_edges_cross_sessions_only(self):
        g = fig11_h6().graph
        dcg = dynamic_chopping_graph(g)
        h = g.history
        for e in dcg.edges:
            if e.kind in (EdgeKind.WR, EdgeKind.WW, EdgeKind.RW):
                a, b = h.by_tid(e.src), h.by_tid(e.dst)
                assert not h.same_session(a, b)

    def test_no_so_kind_edges(self):
        dcg = dynamic_chopping_graph(fig4_g1().graph)
        assert all(e.kind is not EdgeKind.SO for e in dcg.edges)

    def test_nodes_are_all_transactions(self):
        g = fig4_g2().graph
        dcg = dynamic_chopping_graph(g)
        assert dcg.nodes == {t.tid for t in g.transactions}


class TestTheorem16:
    def test_g1_has_si_critical_cycle(self):
        verdict = check_chopping(fig4_g1().graph, Criterion.SI)
        assert not verdict.passes
        assert verdict.witness is not None
        # The paper's witness: s --RW--> t_tr2 --P--> t_tr1 --WR--> s.
        nodes = set(verdict.witness.nodes)
        assert nodes == {"s", "t_tr1", "t_tr2"}

    def test_g2_passes(self):
        verdict = check_chopping(fig4_g2().graph, Criterion.SI)
        assert verdict.passes
        assert verdict.witness is None

    def test_criterion_sound_for_catalog(self):
        # Wherever the criterion passes, splice(G) must be in GraphSI
        # (Theorem 16's guarantee).
        for case in (fig4_g1(), fig4_g2(), fig11_h6(), fig12_g7()):
            if is_spliceable_by_criterion(case.graph):
                spliced = splice_if_safe(case.graph)
                assert spliced is not None
                assert in_graph_si(spliced)
                assert spliced.history.transactions == splice_history(
                    case.history
                ).transactions

    def test_splice_if_safe_refuses_unsafe(self):
        assert splice_if_safe(fig4_g1().graph) is None

    def test_fig11_si_safe_fig12_not(self):
        assert is_spliceable_by_criterion(fig11_h6().graph)
        assert not is_spliceable_by_criterion(fig12_g7().graph)

    def test_verdict_str(self):
        good = check_chopping(fig4_g2().graph)
        bad = check_chopping(fig4_g1().graph)
        assert "no SI-critical cycle" in str(good)
        assert "SI-critical cycle" in str(bad)


class TestCriteriaOrdering:
    def test_ser_critical_superset_of_si_critical(self):
        # If a DCG passes the SER criterion it passes the SI one.
        for case in (fig4_g1(), fig4_g2(), fig11_h6(), fig12_g7()):
            ser = check_chopping(case.graph, Criterion.SER).passes
            si = check_chopping(case.graph, Criterion.SI).passes
            psi = check_chopping(case.graph, Criterion.PSI).passes
            if ser:
                assert si
            if si:
                assert psi

    def test_fig11_separates_ser_from_si(self):
        g = fig11_h6().graph
        assert not check_chopping(g, Criterion.SER).passes
        assert check_chopping(g, Criterion.SI).passes

    def test_fig12_separates_si_from_psi(self):
        g = fig12_g7().graph
        assert not check_chopping(g, Criterion.SI).passes
        assert check_chopping(g, Criterion.PSI).passes
