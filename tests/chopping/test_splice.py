"""Unit tests for splicing histories, graphs and executions (§5, App B.3)."""

import pytest

from repro.anomalies import (
    fig4_g1,
    fig4_g2,
    fig11_h6,
    fig12_g7,
    fig13_execution,
)
from repro.characterisation.membership import classify_history
from repro.chopping.splice import (
    is_spliceable_witness,
    naive_splice_execution_co,
    splice_graph,
    splice_history,
    splice_session,
    spliced_tid,
)
from repro.core.events import OpKind
from repro.graphs.classify import in_graph_si


class TestSpliceHistory:
    def test_sessions_become_single_transactions(self):
        h = fig4_g1().history
        spliced = splice_history(h)
        assert len(spliced.sessions) == len(h.sessions)
        assert all(len(s) == 1 for s in spliced.sessions)

    def test_spliced_history_has_empty_so(self):
        spliced = splice_history(fig4_g1().history)
        assert not spliced.session_order

    def test_events_concatenated_in_session_order(self):
        h = fig4_g1().history
        spliced = splice_history(h)
        transfer = spliced.by_tid("t_tr1+t_tr2")
        ops = [(e.op.kind, e.obj) for e in transfer.events]
        assert ops == [
            (OpKind.READ, "acct1"),
            (OpKind.WRITE, "acct1"),
            (OpKind.READ, "acct2"),
            (OpKind.WRITE, "acct2"),
        ]

    def test_event_ids_renumbered(self):
        h = fig4_g1().history
        transfer = splice_session(h, 1)
        assert [e.eid for e in transfer.events] == [0, 1, 2, 3]

    def test_spliced_tid_joins_components(self):
        h = fig4_g1().history
        assert spliced_tid(h, 1) == "t_tr1+t_tr2"
        assert spliced_tid(h, 0) == "t_init"

    def test_singleton_sessions_unchanged_up_to_tid(self):
        h = fig4_g2().history
        spliced = splice_history(h)
        assert len(spliced) == len(h.sessions)


class TestSpliceGraph:
    def test_g2_splices_into_graphsi(self):
        g = fig4_g2().graph
        spliced = splice_graph(g)
        assert in_graph_si(spliced)

    def test_g1_splice_leaves_graphsi(self):
        g = fig4_g1().graph
        spliced = splice_graph(g, validate=False)
        # The spliced lookup observes half a transfer: the graph has a
        # WR/RW cycle without two adjacent anti-dependencies.
        assert not in_graph_si(spliced)

    def test_intra_session_edges_dropped(self):
        g = fig11_h6().graph
        spliced = splice_graph(g, validate=False)
        for rel in spliced.wr.values():
            for a, b in rel:
                assert a != b
        for rel in spliced.ww.values():
            for a, b in rel:
                assert a != b

    def test_witness_matches_membership_oracle(self):
        # For each catalog chopping case, splice(G) ∈ GraphSI must imply
        # splice(H) ∈ HistSI (and the converse for these graphs).
        for case in (fig4_g1(), fig4_g2(), fig11_h6(), fig12_g7()):
            witness = is_spliceable_witness(case.graph)
            spliced_h = splice_history(case.history)
            in_hist_si = classify_history(spliced_h, init_tid="t_init")["SI"]
            if witness is not None:
                assert in_hist_si, case.name
            else:
                assert not in_hist_si, case.name

    def test_fig12_splice_is_long_fork(self):
        spliced_h = splice_history(fig12_g7().history)
        got = classify_history(spliced_h, init_tid="t_init")
        assert got == {"SER": False, "SI": False, "PSI": True}

    def test_fig11_splice_is_write_skew(self):
        spliced_h = splice_history(fig11_h6().history)
        got = classify_history(spliced_h, init_tid="t_init")
        assert got == {"SER": False, "SI": True, "PSI": True}


class TestNaiveExecutionSplice:
    def test_fig13_direct_splice_cyclic(self):
        x = fig13_execution().execution
        co = naive_splice_execution_co(x)
        assert not co.is_acyclic()

    def test_non_interleaved_execution_splices_fine(self):
        # The G2 construction commits sessions without interleaving, so
        # the naive CO lift stays acyclic there.
        from repro.characterisation.soundness import construct_execution

        x = construct_execution(fig4_g2().graph)
        co = naive_splice_execution_co(x)
        # may or may not be acyclic depending on commit choices; simply
        # check the function returns a relation over spliced tids.
        assert all("+" in a or a == "t_init" or a.startswith(("s", "t"))
                   for a, _ in co)
