"""Regression tests: every example script must run cleanly.

Examples are part of the public deliverable; running them in a
subprocess guards against API drift.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

SCRIPTS = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    assert len(SCRIPTS) >= 7


@pytest.mark.parametrize("script", SCRIPTS)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stdout[-2000:]}\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script} produced no output"
