"""Tests for the polynomial dangerous-cycle searches, including agreement
with brute-force closed-walk enumeration on small random labelled graphs."""

import itertools
import random

import pytest

from repro.graphs.cycles import Cycle, EdgeKind, LabeledDigraph, LabeledEdge
from repro.robustness.search import (
    find_adjacent_rw_cycle,
    find_nonadjacent_rw_cycle,
)


def edge(src, dst, kind, obj=None):
    return LabeledEdge(src, dst, kind, obj)


def random_labeled_graph(seed: int, nodes: int = 4, edges: int = 8):
    rng = random.Random(seed)
    names = [f"n{i}" for i in range(nodes)]
    kinds = [EdgeKind.WR, EdgeKind.WW, EdgeKind.RW]
    g = LabeledDigraph()
    for name in names:
        g.add_node(name)
    for _ in range(edges):
        a, b = rng.sample(names, 2)
        g.add_edge(edge(a, b, rng.choice(kinds)))
    return g


def brute_force_adjacent_rw(graph: LabeledDigraph, max_len: int = 6) -> bool:
    """Closed walks up to ``max_len`` containing two consecutive RWs."""
    edges = list(graph.edges)
    for length in range(2, max_len + 1):
        for combo in itertools.product(edges, repeat=length):
            if any(combo[i].dst != combo[(i + 1) % length].src
                   for i in range(length)):
                continue
            kinds = [e.kind for e in combo]
            if any(
                kinds[i] is EdgeKind.RW
                and kinds[(i + 1) % length] is EdgeKind.RW
                for i in range(length)
            ):
                return True
    return False


def brute_force_nonadjacent_rw(graph: LabeledDigraph, max_len: int = 6) -> bool:
    """Closed walks with ≥2 RWs, none cyclically consecutive."""
    edges = list(graph.edges)
    for length in range(2, max_len + 1):
        for combo in itertools.product(edges, repeat=length):
            if any(combo[i].dst != combo[(i + 1) % length].src
                   for i in range(length)):
                continue
            kinds = [e.kind for e in combo]
            rw_count = sum(k is EdgeKind.RW for k in kinds)
            if rw_count < 2:
                continue
            if any(
                kinds[i] is EdgeKind.RW
                and kinds[(i + 1) % length] is EdgeKind.RW
                for i in range(length)
            ):
                continue
            return True
    return False


class TestAdjacentRWSearch:
    def test_two_rw_cycle_found(self):
        g = LabeledDigraph(
            [edge("a", "b", EdgeKind.RW), edge("b", "a", EdgeKind.RW)]
        )
        witness = find_adjacent_rw_cycle(g)
        assert witness is not None
        assert witness.count(EdgeKind.RW) == 2

    def test_separated_rws_not_found(self):
        g = LabeledDigraph(
            [
                edge("a", "b", EdgeKind.RW),
                edge("b", "c", EdgeKind.WR),
                edge("c", "d", EdgeKind.RW),
                edge("d", "a", EdgeKind.WW),
            ]
        )
        assert find_adjacent_rw_cycle(g) is None

    def test_closing_path_required(self):
        g = LabeledDigraph(
            [edge("a", "b", EdgeKind.RW), edge("b", "c", EdgeKind.RW)]
        )
        assert find_adjacent_rw_cycle(g) is None
        g.add_edge(edge("c", "a", EdgeKind.WR))
        witness = find_adjacent_rw_cycle(g)
        assert witness is not None
        assert len(witness) == 3

    def test_vulnerability_filter(self):
        g = LabeledDigraph(
            [edge("a", "b", EdgeKind.RW), edge("b", "a", EdgeKind.RW)]
        )
        assert find_adjacent_rw_cycle(g, lambda e: False) is None
        assert find_adjacent_rw_cycle(g, lambda e: e.src == "a") is None
        assert find_adjacent_rw_cycle(g, lambda e: True) is not None

    def test_witness_is_valid_cycle(self):
        g = random_labeled_graph(3, nodes=5, edges=12)
        witness = find_adjacent_rw_cycle(g)
        if witness is not None:
            assert isinstance(witness, Cycle)  # connectivity validated

    @pytest.mark.parametrize("seed", range(15))
    def test_agrees_with_brute_force(self, seed):
        g = random_labeled_graph(seed, nodes=4, edges=6)
        fast = find_adjacent_rw_cycle(g) is not None
        slow = brute_force_adjacent_rw(g)
        assert fast == slow, seed


class TestNonAdjacentRWSearch:
    def test_long_fork_shape_found(self):
        g = LabeledDigraph(
            [
                edge("r1", "w2", EdgeKind.RW),
                edge("w2", "r2", EdgeKind.WR),
                edge("r2", "w1", EdgeKind.RW),
                edge("w1", "r1", EdgeKind.WR),
            ]
        )
        witness = find_nonadjacent_rw_cycle(g)
        assert witness is not None
        assert witness.count(EdgeKind.RW) == 2

    def test_adjacent_only_rws_not_found(self):
        g = LabeledDigraph(
            [edge("a", "b", EdgeKind.RW), edge("b", "a", EdgeKind.RW)]
        )
        assert find_nonadjacent_rw_cycle(g) is None

    def test_single_static_rw_edge_reused_across_instances(self):
        # One static RW edge, but the closed walk may traverse it twice —
        # modelling two dynamic instances of each program (a1-RW->b1-WW->
        # a2-RW->b2-WW->a1), which is a genuine non-adjacent shape.
        g = LabeledDigraph(
            [edge("a", "b", EdgeKind.RW), edge("b", "a", EdgeKind.WW)]
        )
        witness = find_nonadjacent_rw_cycle(g)
        assert witness is not None
        assert witness.count(EdgeKind.RW) == 2

    def test_truly_acyclic_rw_not_found(self):
        g = LabeledDigraph(
            [edge("a", "b", EdgeKind.RW), edge("b", "c", EdgeKind.WW)]
        )
        assert find_nonadjacent_rw_cycle(g) is None

    def test_wraparound_adjacency_respected(self):
        # RW, WR, RW: the second RW wraps into the first — adjacent.
        g = LabeledDigraph(
            [
                edge("a", "b", EdgeKind.RW),
                edge("b", "c", EdgeKind.WR),
                edge("c", "a", EdgeKind.RW),
            ]
        )
        witness = find_nonadjacent_rw_cycle(g)
        # A longer non-simple walk may still separate them; brute force
        # agreement is the real oracle here:
        assert (witness is not None) == brute_force_nonadjacent_rw(g)

    @pytest.mark.parametrize("seed", range(15))
    def test_agrees_with_brute_force(self, seed):
        g = random_labeled_graph(seed + 100, nodes=4, edges=6)
        fast = find_nonadjacent_rw_cycle(g) is not None
        slow = brute_force_nonadjacent_rw(g)
        assert fast == slow, seed
