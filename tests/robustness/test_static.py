"""Unit tests for the static robustness analyses (§6.1, §6.2)."""

import pytest

from repro.chopping.programs import p4_programs, piece, program
from repro.graphs.cycles import EdgeKind
from repro.robustness.static import (
    check_robustness_against_si,
    check_robustness_psi_to_si,
    robust_against_si,
    robust_psi_to_si,
    robustness_report,
    static_dependency_graph,
)


def write_skew_app():
    """The Section 1 banking example: two conditional withdrawals."""
    return [
        program("withdraw1", piece({"acct1", "acct2"}, {"acct1"})),
        program("withdraw2", piece({"acct1", "acct2"}, {"acct2"})),
    ]


def disjoint_app():
    """Two programs with no read/write overlap anywhere (robust even under
    the plain analysis with several instances: a blind writer and a reader
    of different objects)."""
    return [
        program("logger", piece((), {"log"})),
        program("reporter", piece({"metrics"}, ())),
    ]


def rmw_app():
    """A single read-modify-write increment program.  Two instances
    self-conflict; the plain analysis flags it, the vulnerability
    refinement proves it robust."""
    return [program("inc", piece({"c"}, {"c"}))]


def long_fork_app():
    """Figure 12's programs as whole transactions."""
    return [p.unchopped() for p in p4_programs()]


class TestStaticDependencyGraph:
    def test_edges_from_set_overlaps(self):
        g = static_dependency_graph(write_skew_app(), instances=1)
        kinds = {(e.src, e.dst, e.kind) for e in g.edges}
        assert ("withdraw1#0", "withdraw2#0", EdgeKind.WR) in kinds
        assert ("withdraw1#0", "withdraw2#0", EdgeKind.RW) in kinds

    def test_instances_create_self_conflict_nodes(self):
        g = static_dependency_graph(
            [program("inc", piece({"c"}, {"c"}))], instances=2
        )
        assert {"inc#0", "inc#1"} <= g.nodes
        kinds = {e.kind for e in g.edges_between("inc#0", "inc#1")}
        assert EdgeKind.WW in kinds

    def test_invalid_instances_rejected(self):
        with pytest.raises(ValueError):
            static_dependency_graph(disjoint_app(), instances=0)


class TestRobustnessAgainstSI:
    def test_write_skew_app_not_robust(self):
        verdict = check_robustness_against_si(write_skew_app(), instances=1)
        assert not verdict.robust
        assert verdict.witness is not None
        assert verdict.witness.count(EdgeKind.RW) >= 2

    def test_disjoint_app_robust(self):
        assert robust_against_si(disjoint_app())

    def test_single_writer_app_robust(self):
        apps = [
            program("writer", piece((), {"x"})),
            program("reader", piece({"x"}, ())),
        ]
        assert robust_against_si(apps)

    def test_self_conflicting_increment_plain_vs_refined(self):
        inc = rmw_app()
        # The plain paper analysis is conservative: the static RW self-
        # cycle between two instances flags it.
        assert not robust_against_si(inc)
        # The Fekete-style vulnerability refinement recognises that two
        # write-conflicting increments can never be concurrent.
        assert robust_against_si(inc, require_vulnerable=True)

    def test_refinement_keeps_true_positives(self):
        assert not robust_against_si(
            write_skew_app(), instances=1, require_vulnerable=True
        )


class TestRobustnessPSItoSI:
    def test_long_fork_app_not_robust(self):
        verdict = check_robustness_psi_to_si(long_fork_app(), instances=1)
        assert not verdict.robust
        assert verdict.witness is not None
        from repro.graphs.cycles import is_antidependency

        assert not verdict.witness.has_adjacent_pair(is_antidependency)
        assert verdict.witness.count(EdgeKind.RW) >= 2

    def test_write_skew_app_not_robust_psi_to_si_with_instances(self):
        # With two instances, the withdrawals embed a long-fork shape:
        # both programs read both accounts and write different ones, so
        # two readers (second instances) can observe the two writes in
        # opposite orders under PSI.  The search finds the non-adjacent
        # RW cycle through repeated program nodes.
        assert not robust_psi_to_si(write_skew_app(), instances=1)

    def test_blind_writers_robust_psi_to_si(self):
        # Write-write conflicts only: no anti-dependency edges at all, so
        # no dangerous cycle can exist.
        apps = [
            program("set_a", piece((), {"x"})),
            program("set_b", piece((), {"x"})),
        ]
        assert robust_psi_to_si(apps)

    def test_single_object_reader_writer_flagged_conservatively(self):
        # The plain §6.2 static analysis flags a publish/poll pair: the
        # static graph has a (non-simple) cycle alternating RW and WR
        # twice, even though WW-totality makes it unrealisable on one
        # object.  Conservative but sound.
        apps = [
            program("publish", piece((), {"inbox"})),
            program("poll", piece({"inbox"}, ())),
        ]
        assert not robust_psi_to_si(apps)

    def test_disjoint_app_robust(self):
        assert robust_psi_to_si(disjoint_app())


class TestReport:
    def test_report_shape(self):
        report = robustness_report(
            {"bank": write_skew_app(), "disjoint": disjoint_app()},
            instances=1,
        )
        assert report == {
            "bank": {"SI=>SER": False, "PSI=>SI": False},
            "disjoint": {"SI=>SER": True, "PSI=>SI": True},
        }

    def test_verdict_str(self):
        good = check_robustness_against_si(disjoint_app())
        bad = check_robustness_against_si(write_skew_app(), instances=1)
        assert "robust against SI" in str(good)
        assert "dangerous static cycle" in str(bad)
