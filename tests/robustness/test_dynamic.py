"""Unit tests for the dynamic robustness criteria (Theorems 19 and 22)."""

import pytest

from repro.anomalies import long_fork, lost_update, write_skew
from repro.characterisation.membership import decide
from repro.graphs.extraction import graph_of
from repro.robustness.dynamic import (
    exhibits_psi_only_behaviour,
    exhibits_psi_only_behaviour_by_cycles,
    exhibits_si_only_behaviour,
    exhibits_si_only_behaviour_by_cycles,
    psi_anomaly_witness,
    si_anomaly_witness,
)
from repro.search.random_graphs import random_dependency_graph


def write_skew_graph():
    return graph_of(write_skew().execution)


def long_fork_graph():
    case = long_fork()
    return decide(case.history, "PSI", init_tid=case.init_tid).witness


def acyclic_graph():
    from repro.anomalies import fig4_g2

    return fig4_g2().graph


class TestTheorem19:
    def test_write_skew_is_si_only(self):
        g = write_skew_graph()
        assert exhibits_si_only_behaviour(g)
        assert exhibits_si_only_behaviour_by_cycles(g)

    def test_acyclic_graph_not_si_only(self):
        g = acyclic_graph()
        assert not exhibits_si_only_behaviour(g)
        assert not exhibits_si_only_behaviour_by_cycles(g)

    def test_long_fork_not_si_only(self):
        g = long_fork_graph()
        assert not exhibits_si_only_behaviour(g)
        assert not exhibits_si_only_behaviour_by_cycles(g)

    def test_witness_cycle_for_write_skew(self):
        witness = si_anomaly_witness(write_skew_graph())
        assert witness is not None
        from repro.graphs.cycles import EdgeKind

        assert witness.count(EdgeKind.RW) >= 1


class TestTheorem22:
    def test_long_fork_is_psi_only(self):
        g = long_fork_graph()
        assert exhibits_psi_only_behaviour(g)
        assert exhibits_psi_only_behaviour_by_cycles(g)

    def test_write_skew_not_psi_only(self):
        g = write_skew_graph()
        assert not exhibits_psi_only_behaviour(g)
        assert not exhibits_psi_only_behaviour_by_cycles(g)

    def test_acyclic_not_psi_only(self):
        g = acyclic_graph()
        assert not exhibits_psi_only_behaviour(g)
        assert not exhibits_psi_only_behaviour_by_cycles(g)

    def test_long_fork_witness_has_no_adjacent_rws(self):
        witness = psi_anomaly_witness(long_fork_graph())
        assert witness is not None
        from repro.graphs.cycles import is_antidependency

        assert not witness.has_adjacent_pair(is_antidependency)


class TestEquivalenceOnRandomGraphs:
    """The compositional and cycle-based criteria must agree — an
    executable consistency check of the theorem statements."""

    @pytest.mark.parametrize("seed", range(12))
    def test_theorem19_agreement(self, seed):
        g = random_dependency_graph(seed, transactions=4, objects=3)
        assert exhibits_si_only_behaviour(g) == (
            exhibits_si_only_behaviour_by_cycles(g)
        )

    @pytest.mark.parametrize("seed", range(12))
    def test_theorem22_agreement(self, seed):
        g = random_dependency_graph(seed, transactions=4, objects=3)
        assert exhibits_psi_only_behaviour(g) == (
            exhibits_psi_only_behaviour_by_cycles(g)
        )
