"""Graceful degradation: the health state machine, deadlines, the
admission breaker, and the WAL-failure policies."""

import time

import pytest

from repro.core.errors import (
    DeadlineExceeded,
    RetryExhausted,
    ServiceOverloaded,
    ServiceReadOnly,
    TransactionAborted,
)
from repro.faults import FaultPlan, FaultRule, armed
from repro.mvcc import SIEngine
from repro.mvcc.runtime import ReadOp, WriteOp
from repro.service import (
    HealthPolicy,
    HealthTracker,
    TransactionService,
)
from repro.service.health import DEGRADED, HEALTHY, SHEDDING
from repro.wal import WalPoisoned, WriteAheadLog

META = {"engine": "SI", "init": {"x": 0}, "init_tid": "t_init",
        "model": "SI"}


def incr(obj):
    def tx():
        value = yield ReadOp(obj)
        yield WriteOp(obj, value + 1)

    return tx


def read_only(obj):
    def tx():
        yield ReadOp(obj)

    return tx


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestHealthTracker:
    def make(self, **overrides):
        policy = HealthPolicy(
            enforce=True, window=8, min_samples=4, cooldown=1.0,
            **overrides,
        )
        clock = FakeClock()
        return HealthTracker(policy, clock=clock), clock

    def feed(self, tracker, aborted, n):
        for _ in range(n):
            tracker.note_attempt(aborted=aborted)

    def test_cold_service_is_healthy(self):
        tracker, _ = self.make()
        assert tracker.state == HEALTHY
        assert tracker.allow_admission()

    def test_abort_storm_escalates_immediately(self):
        tracker, _ = self.make()
        self.feed(tracker, aborted=True, n=8)
        assert tracker.state == SHEDDING
        assert tracker.transitions[-1][2] == SHEDDING

    def test_under_sampled_window_never_escalates(self):
        tracker, _ = self.make()
        self.feed(tracker, aborted=True, n=3)  # below min_samples
        assert tracker.state == HEALTHY

    def test_deescalation_is_hysteretic_and_stepped(self):
        tracker, clock = self.make()
        self.feed(tracker, aborted=True, n=8)
        assert tracker.state == SHEDDING
        # Clean attempts push the windowed rate to zero...
        self.feed(tracker, aborted=False, n=8)
        # ...but the state steps down only after a full cooldown each.
        assert tracker.state == SHEDDING
        clock.advance(1.1)
        assert tracker.state == DEGRADED
        assert tracker.state == DEGRADED  # one step per cooldown
        clock.advance(1.1)
        assert tracker.state == HEALTHY

    def test_wal_latency_gauge_escalates(self):
        tracker, _ = self.make()
        for _ in range(4):
            tracker.note_wal_latency(10.0)  # way past every threshold
        assert tracker.state == SHEDDING

    def test_wal_failure_floor_is_sticky(self):
        tracker, clock = self.make()
        tracker.note_wal_failure()
        assert tracker.state == DEGRADED
        self.feed(tracker, aborted=False, n=8)
        clock.advance(10.0)
        assert tracker.state == DEGRADED  # can never be healthy again
        assert tracker.wal_failed

    def test_shedding_breaker_admits_probes(self):
        tracker, clock = self.make(probe_interval=5.0)
        self.feed(tracker, aborted=True, n=8)
        assert tracker.state == SHEDDING
        clock.advance(6.0)
        assert tracker.allow_admission()  # the probe
        assert not tracker.allow_admission()  # refused until next probe
        clock.advance(5.1)
        assert tracker.allow_admission()

    def test_observe_only_policy_never_sheds(self):
        tracker = HealthTracker(
            HealthPolicy(enforce=False, window=8, min_samples=4)
        )
        for _ in range(8):
            tracker.note_attempt(aborted=True)
        assert tracker.state == SHEDDING
        assert tracker.allow_admission()  # tracked, not enforced

    def test_snapshot_shape(self):
        tracker, _ = self.make()
        snap = tracker.snapshot()
        assert snap["state"] == HEALTHY
        assert snap["enforce"] is True
        assert snap["wal_failed"] is False


class StormEngine(SIEngine):
    """An SI engine whose commit always aborts."""

    def commit(self, ctx):
        self.abort(ctx, "engineered conflict")
        raise TransactionAborted(ctx.tid, "engineered conflict")


class TestDeadlines:
    def test_deadline_bounds_a_hopeless_retry_loop(self):
        service = TransactionService(
            StormEngine({"x": 0}), backoff_base=0.01, backoff_cap=0.05
        )
        session = service.session("bounded")
        started = time.perf_counter()
        with pytest.raises(DeadlineExceeded) as excinfo:
            session.run(incr("x"), deadline=0.2)
        elapsed = time.perf_counter() - started
        # Backoff never sleeps past the deadline: the loop ends within
        # one attempt (plus scheduling slop) of the budget.
        assert elapsed < 1.0
        err = excinfo.value
        assert err.attempts >= 1
        assert err.elapsed_seconds >= 0.2
        assert len(err.attempt_latencies) == err.attempts
        assert err.last_reason == "engineered conflict"
        assert service.metrics.deadline_exceeded == 1
        assert service.metrics.retry_exhausted == 0

    def test_default_deadline_comes_from_the_service(self):
        service = TransactionService(
            StormEngine({"x": 0}),
            backoff_base=0,
            max_retries=10**9,  # the deadline must be the binding bound
            default_deadline=0.05,
        )
        with pytest.raises(DeadlineExceeded):
            service.session().run(incr("x"))

    def test_session_is_reusable_after_deadline(self):
        service = TransactionService(
            StormEngine({"x": 0}), backoff_base=0, max_retries=10**9
        )
        session = service.session()
        with pytest.raises(DeadlineExceeded):
            session.run(incr("x"), deadline=0.02)
        healthy = TransactionService(SIEngine({"x": 0})).session()
        assert healthy.run(incr("x")).record.writes == {"x": 1}
        # The original session's logical state was reset too.
        with pytest.raises(DeadlineExceeded) as excinfo:
            session.run(incr("x"), deadline=0.02)
        assert excinfo.value.attempts >= 1

    def test_retry_exhausted_carries_attempt_latencies(self):
        service = TransactionService(
            StormEngine({"x": 0}), max_retries=3, backoff_base=0
        )
        with pytest.raises(RetryExhausted) as excinfo:
            service.session().run(incr("x"))
        err = excinfo.value
        assert err.attempts == 4
        assert len(err.attempt_latencies) == 4
        assert all(lat >= 0 for lat in err.attempt_latencies)
        assert err.last_reason == "engineered conflict"


class TestAdmissionBreaker:
    def test_shedding_service_refuses_with_service_overloaded(self):
        policy = HealthPolicy(
            enforce=True, window=8, min_samples=4, probe_interval=60.0
        )
        service = TransactionService(
            StormEngine({"x": 0}), backoff_base=0, health_policy=policy
        )
        session = service.session("victim")
        # Drive the windowed abort rate to 1.0 (each run = 4 attempts).
        for _ in range(3):
            with pytest.raises((RetryExhausted, ServiceOverloaded)):
                session.run(incr("x"), max_retries=3)
        assert service.health.state == SHEDDING
        with pytest.raises(ServiceOverloaded) as excinfo:
            session.run(incr("x"))
        assert excinfo.value.state == SHEDDING
        assert service.metrics.shed >= 1
        # Shed transactions never started an engine attempt.
        assert service.metrics.begins == service.metrics.aborts

    def test_healthy_service_unaffected_by_enforcement(self):
        service = TransactionService(
            SIEngine({"x": 0}),
            health_policy=HealthPolicy(enforce=True),
        )
        for _ in range(5):
            service.session().run(incr("x"))
        assert service.health.state == HEALTHY
        assert service.metrics.shed == 0


def poison_plan():
    """Kill the WAL's first write."""
    return FaultPlan(
        [FaultRule("wal.write", "io_error", detail="dead disk")],
        name="kill-wal",
    )


class TestWalFailurePolicies:
    def make_service(self, tmp_path, policy):
        engine = SIEngine({"x": 0})
        wal = WriteAheadLog(
            str(tmp_path / "wal"), fsync_policy="group", meta=META,
            flush_interval=0.01,
        )
        service = TransactionService(
            engine, wal=wal, on_wal_failure=policy, backoff_base=0
        )
        return service

    def test_fail_stop_surfaces_chained_poison_per_commit(self, tmp_path):
        service = self.make_service(tmp_path, "fail_stop")
        session = service.session()
        with armed(poison_plan()):
            with pytest.raises(WalPoisoned) as excinfo:
                session.run(incr("x"))
            assert isinstance(excinfo.value.root, OSError)
            assert excinfo.value.first_failed_seq == 1
            # Every later commit fails too, still chained to the root.
            with pytest.raises(WalPoisoned) as again:
                session.run(incr("x"))
        assert again.value.first_failed_seq == 1
        assert isinstance(again.value.root, OSError)
        assert not service.read_only
        assert service.health.wal_failed
        assert service.metrics.wal_failures >= 2

    def test_read_only_absorbs_failure_and_refuses_writes(self, tmp_path):
        service = self.make_service(tmp_path, "read_only")
        session = service.session()
        with armed(poison_plan()):
            # The poisoning commit itself succeeds: the in-memory
            # commit stands, the service absorbs the durability loss.
            outcome = session.run(incr("x"))
            assert outcome.record.writes == {"x": 1}
        assert service.read_only
        assert service.health.state == DEGRADED
        # Updates are refused, chained to the WAL's root failure...
        with pytest.raises(ServiceReadOnly) as excinfo:
            session.run(incr("x"))
        assert isinstance(excinfo.value.__cause__, WalPoisoned)
        # ...but reads keep flowing.
        assert session.run(read_only("x")).record is not None
        assert service.metrics.read_only_refused >= 1
        service.close()  # must not raise despite the poisoned log

    def test_read_only_refusals_do_not_shed(self, tmp_path):
        service = self.make_service(tmp_path, "read_only")
        session = service.session()
        with armed(poison_plan()):
            session.run(incr("x"))
        for _ in range(30):
            with pytest.raises(ServiceReadOnly):
                session.run(incr("x"))
        # Refusals are administrative: the state floor stays degraded,
        # reads are still admitted.
        assert service.health.state == DEGRADED
        assert session.run(read_only("x")).record is not None
