"""FaultPlan semantics: rule validation, hit windows, seeded
determinism, serialisation, presets, and the injector registry."""

import pytest

from repro.core.errors import FaultInjected, StoreError
from repro.faults import (
    FAULTS,
    FaultPlan,
    FaultRule,
    PROFILES,
    armed,
    preset,
)


class TestRuleValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(StoreError, match="unknown fault kind"):
            FaultRule("wal.write", "explode")

    def test_bad_probability_rejected(self):
        with pytest.raises(StoreError, match="probability"):
            FaultRule("wal.write", "delay", probability=1.5)

    def test_bad_window_rejected(self):
        with pytest.raises(StoreError, match="stop"):
            FaultRule("wal.write", "delay", start=5, stop=5)
        with pytest.raises(StoreError, match="limit"):
            FaultRule("wal.write", "delay", limit=0)

    def test_unknown_doc_key_rejected(self):
        with pytest.raises(StoreError, match="unknown fault rule key"):
            FaultRule.from_doc({"point": "x", "kind": "delay", "oops": 1})


class TestFireSemantics:
    def test_io_error_raises_oserror(self):
        plan = FaultPlan([FaultRule("wal.write", "io_error")])
        with pytest.raises(OSError, match="injected I/O error"):
            plan.fire("wal.write")

    def test_abort_raises_fault_injected_with_point(self):
        plan = FaultPlan([FaultRule("service.commit", "abort")])
        with pytest.raises(FaultInjected) as excinfo:
            plan.fire("service.commit")
        assert excinfo.value.point == "service.commit"

    def test_unmatched_point_is_noop(self):
        plan = FaultPlan([FaultRule("wal.write", "io_error")])
        plan.fire("store.read")  # no rule targets it
        assert plan.total_triggers == 0
        assert plan.hit_counts() == {"store.read": 1}

    def test_start_stop_limit_window(self):
        plan = FaultPlan(
            [FaultRule("p", "abort", start=2, stop=5, limit=2)]
        )
        fired = []
        for hit in range(8):
            try:
                plan.fire("p")
            except FaultInjected:
                fired.append(hit)
        # Eligible hits are 2, 3, 4 (0-based), capped at 2 triggers.
        assert fired == [2, 3]
        assert plan.trigger_counts() == {"p": 2}
        assert plan.hit_counts() == {"p": 8}

    def test_probability_stream_is_seeded(self):
        def run(seed):
            plan = FaultPlan(
                [FaultRule("p", "abort", probability=0.5)], seed=seed
            )
            outcomes = []
            for _ in range(50):
                try:
                    plan.fire("p")
                    outcomes.append(False)
                except FaultInjected:
                    outcomes.append(True)
            return outcomes

        assert run(1) == run(1)
        assert run(1) != run(2)  # astronomically unlikely to collide
        assert any(run(1)) and not all(run(1))


class TestSerialisation:
    def test_round_trip_preserves_decisions(self):
        plan = preset("mixed", intensity=0.7, seed=9)
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.name == plan.name
        assert clone.seed == plan.seed
        assert [r.to_doc() for r in clone.rules] == [
            r.to_doc() for r in plan.rules
        ]

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(preset("disk", intensity=0.4, seed=3).to_json())
        plan = FaultPlan.load(str(path))
        assert plan.points == ["wal.fsync", "wal.write"]


class TestPresets:
    @pytest.mark.parametrize("profile", PROFILES)
    def test_profiles_build(self, profile):
        plan = preset(profile, intensity=0.5, seed=1)
        assert plan.rules
        assert plan.name == f"{profile}@0.5"

    def test_zero_intensity_is_empty(self):
        assert not preset("mixed", intensity=0.0).rules

    def test_only_poison_poisons_wal(self):
        for profile in PROFILES:
            plan = preset(profile, intensity=0.5)
            assert plan.poisons_wal() == (profile == "poison")

    def test_unknown_profile_rejected(self):
        with pytest.raises(StoreError, match="unknown chaos profile"):
            preset("gremlins")


class TestInjector:
    def test_disarmed_fire_is_noop(self):
        assert not FAULTS.armed
        FAULTS.fire("wal.write")  # nothing armed: must not raise

    def test_armed_context_routes_and_disarms(self):
        plan = FaultPlan([FaultRule("p", "abort")])
        with armed(plan):
            assert FAULTS.armed
            with pytest.raises(FaultInjected):
                FAULTS.fire("p")
        assert not FAULTS.armed
        assert FAULTS.plan is None

    def test_double_arm_refused(self):
        with armed(FaultPlan([])):
            with pytest.raises(StoreError, match="already"):
                FAULTS.arm(FaultPlan([]))

    def test_disarm_even_on_error(self):
        with pytest.raises(RuntimeError):
            with armed(FaultPlan([])):
                raise RuntimeError("storm logic failed")
        assert not FAULTS.armed
