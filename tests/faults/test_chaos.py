"""The chaos harness end to end (small storms — the full grid is
benchmark E27)."""

import pytest

from repro.faults import preset
from repro.faults.chaos import CHAOS_ENGINES, run_chaos
from repro.wal import audit_log

CHAOS_KWARGS = dict(
    workers=3,
    txns_per_worker=10,
    calm_txns_per_worker=4,
    recovery_window=15.0,
)


class TestRunChaos:
    def test_mixed_storm_upholds_all_invariants(self, tmp_path):
        report = run_chaos(
            "SI",
            preset("mixed", intensity=0.6, seed=21),
            str(tmp_path / "wal"),
            seed=4,
            **CHAOS_KWARGS,
        )
        assert report.ok, report.invariants
        assert report.total_triggers > 0  # the storm actually stormed
        assert report.violations == 0
        assert report.end_state == "healthy"
        assert report.time_to_healthy is not None
        assert report.recovered_contiguous
        assert report.recovered_records >= report.durable_ts

    def test_clean_plan_is_a_baseline(self, tmp_path):
        report = run_chaos(
            "SI",
            preset("mixed", intensity=0.0, seed=1),
            str(tmp_path / "wal"),
            seed=4,
            **CHAOS_KWARGS,
        )
        assert report.ok
        assert report.total_triggers == 0
        assert report.storm["committed"] == 30

    def test_poison_read_only_keeps_serving_reads(self, tmp_path):
        # The poison preset delays its strike until mid-storm, so the
        # storm must be long enough to reach it.
        report = run_chaos(
            "SI",
            preset("poison", intensity=0.9, seed=33),
            str(tmp_path / "wal"),
            seed=4,
            on_wal_failure="read_only",
            **dict(CHAOS_KWARGS, txns_per_worker=20),
        )
        assert report.ok, report.invariants
        assert report.wal_failed
        assert report.read_only
        assert report.end_state == "degraded"
        # The durable prefix survived and certifies.
        assert report.audit_consistent
        result = audit_log(str(tmp_path / "wal"))
        assert result.consistent

    def test_report_doc_round_trips_to_json(self, tmp_path):
        import json

        report = run_chaos(
            "SER",
            preset("contention", intensity=0.4, seed=5),
            str(tmp_path / "wal"),
            seed=2,
            **CHAOS_KWARGS,
        )
        doc = json.loads(json.dumps(report.to_doc()))
        assert doc["ok"] == report.ok
        assert set(doc["invariants"]) == {
            "no_false_violations",
            "durable_prefix_recovered",
            "audit_clean",
            "recovered_in_window",
        }
        assert "chaos:" in report.describe()

    @pytest.mark.parametrize("engine", CHAOS_ENGINES)
    def test_every_engine_survives_a_storm(self, tmp_path, engine):
        report = run_chaos(
            engine,
            preset("mixed", intensity=0.5, seed=77),
            str(tmp_path / "wal"),
            seed=6,
            **CHAOS_KWARGS,
        )
        assert report.ok, f"{engine}: {report.invariants}"
        assert report.violations == 0
