"""Property-style seeded crash/recovery coverage (satellite of the
chaos tentpole): whatever a randomly generated fault plan does to the
stack, the log that survives replays as a contiguous prefix into a
fresh engine and passes the offline audit — on all four engines.

The plans are generated from a seeded RNG over the full failpoint
catalog and fault-kind space, so each seed is a different storm, and a
failure reproduces from the seed alone.  The "crash" is deliberate
slovenliness: the service is *abandoned* (never drained or closed), so
recovery sees whatever the flusher happened to have written — the same
contract the SIGKILL CI job checks on the real binary.
"""

import random

import pytest

from repro.core.errors import ReproError
from repro.faults import FaultPlan, FaultRule, armed
from repro.faults.chaos import _build_engine
from repro.service import MIXES, LoadGenerator, TransactionService
from repro.service.health import HealthPolicy
from repro.wal import WriteAheadLog, audit_log, recover

POINTS = (
    "wal.write",
    "wal.fsync",
    "store.install",
    "store.read",
    "feed.observe",
    "service.admit",
    "service.commit",
)

# An io_error is only meaningful (and safe) where a layer defines its
# failure semantics: the WAL poisons itself, the service translates
# aborts.  Delays are valid everywhere.
KINDS_BY_POINT = {
    "wal.write": ("delay", "io_error"),
    "wal.fsync": ("delay", "io_error"),
    "store.install": ("delay",),
    "store.read": ("delay",),
    "feed.observe": ("delay",),
    "service.admit": ("delay",),
    "service.commit": ("delay", "abort"),
}


def random_plan(seed: int) -> FaultPlan:
    """A reproducible random storm drawn from the failpoint catalog."""
    rng = random.Random(f"storm:{seed}")
    rules = []
    for _ in range(rng.randint(2, 5)):
        point = rng.choice(POINTS)
        kind = rng.choice(KINDS_BY_POINT[point])
        rules.append(
            FaultRule(
                point,
                kind,
                probability=rng.uniform(0.1, 0.9),
                delay=(
                    rng.uniform(0.0005, 0.004) if kind == "delay" else 0.0
                ),
                start=rng.choice((0, 0, rng.randint(1, 20))),
                limit=(
                    1 if kind == "io_error" else rng.choice((None, 5, 20))
                ),
            )
        )
    return FaultPlan(rules, seed=seed, name=f"random-{seed}")


def storm_then_crash(tmp_path, engine_key: str, seed: int):
    """Run a storm against a full stack, then abandon it mid-life."""
    mix = MIXES["smallbank"]()
    engine, model = _build_engine(engine_key, dict(mix.initial), "striped")
    wal = WriteAheadLog(
        str(tmp_path / "wal"),
        fsync_policy="group",
        flush_interval=0.01,
        meta={
            "engine": engine_key,
            "init": dict(mix.initial),
            "init_tid": engine.init_tid,
            "model": model,
        },
    )
    service = TransactionService.certified(
        engine,
        model=model,
        window=32,
        wal=wal,
        health_policy=HealthPolicy(enforce=True),
        on_wal_failure="read_only",
        backoff_base=0.0005,
    )
    with armed(random_plan(seed)):
        LoadGenerator(
            service,
            mix,
            workers=3,
            transactions_per_worker=8,
            seed=seed,
        ).run()
    # Crash: no drain, no close.  Give the flusher one beat to write
    # what it already owns, then freeze the file by dropping the log.
    try:
        wal.flush(timeout=2.0)
    except ReproError:
        pass  # poisoned or gapped: recovery gets whatever made it out


@pytest.mark.parametrize("engine_key", ("SI", "SER", "PSI", "2PL"))
@pytest.mark.parametrize("seed", (11, 42, 1337))
def test_random_storm_recovers_contiguously(tmp_path, engine_key, seed):
    storm_then_crash(tmp_path, engine_key, seed)
    wal_dir = str(tmp_path / "wal")
    result = recover(wal_dir)
    # Contiguous prefix: sequence numbers 1..N with no holes.
    if result.records_recovered:
        assert result.first_ts == 1
        assert (
            result.last_ts - result.first_ts + 1
            == result.records_recovered
        )
    # And the prefix certifies against the model the producer recorded.
    audit = audit_log(wal_dir)
    assert audit.consistent, audit.describe()
    assert audit.commits_observed == result.records_recovered
