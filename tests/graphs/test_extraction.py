"""Unit tests for graph extraction (Definition 5, Propositions 7 and 14)."""

import pytest

from repro.anomalies import (
    fig13_execution,
    session_guarantees,
    write_skew,
)
from repro.core.events import read, write
from repro.core.executions import execution
from repro.core.histories import singleton_sessions
from repro.core.models import SI
from repro.core.transactions import initialisation_transaction, transaction
from repro.graphs.extraction import (
    antidependencies_via_visibility,
    extract_wr,
    extract_ww,
    graph_of,
)


def chain_execution():
    """init -> w1 -> w2 with a reader of w1's value in between."""
    init = initialisation_transaction(["x"])
    w1 = transaction("w1", write("x", 1))
    r = transaction("r", read("x", 1))
    w2 = transaction("w2", write("x", 2))
    h = singleton_sessions(init, w1, r, w2)
    x = execution(
        h,
        vis=[(init, w1), (init, r), (init, w2), (w1, r), (w1, w2)],
        co=[(init, w1), (w1, r), (r, w2)],
    )
    return init, w1, r, w2, x


class TestExtractWR:
    def test_reader_attributed_to_co_latest_visible_writer(self):
        init, w1, r, w2, x = chain_execution()
        wr = extract_wr(x)
        assert (w1, r) in wr["x"]
        assert (init, r) not in wr["x"]

    def test_no_read_no_entry(self):
        init = initialisation_transaction(["x"])
        w = transaction("w", write("x", 1))
        h = singleton_sessions(init, w)
        x = execution(h, vis=[(init, w)], co=[(init, w)])
        assert extract_wr(x) == {}


class TestExtractWW:
    def test_ww_is_co_restricted_to_writers(self):
        init, w1, r, w2, x = chain_execution()
        ww = extract_ww(x)
        assert (init, w1) in ww["x"]
        assert (w1, w2) in ww["x"]
        assert (init, w2) in ww["x"]
        assert all(t.writes("x") for pair in ww["x"] for t in pair)

    def test_single_writer_objects_omitted(self):
        init = initialisation_transaction(["x"])
        r = transaction("r", read("x", 0))
        h = singleton_sessions(init, r)
        x = execution(h, vis=[(init, r)], co=[(init, r)])
        assert extract_ww(x) == {}


class TestProposition7:
    def test_extraction_yields_wellformed_graph(self):
        # Proposition 7: graph(X) is a dependency graph for X in ExecSI.
        for case in (session_guarantees(), write_skew(), fig13_execution()):
            x = case.execution
            assert SI.satisfied_by(x)
            g = graph_of(x, validate=True)  # raises if malformed
            assert g.history is x.history

    def test_extraction_on_chain(self):
        *_, x = chain_execution()
        g = graph_of(x)
        assert g.well_formedness_violations() == []


class TestProposition14:
    def test_rw_matches_visibility_characterisation(self):
        # For X in ExecSI, RW(x) == the Prop 14 characterisation.
        for case in (session_guarantees(), write_skew(), fig13_execution()):
            x = case.execution
            g = graph_of(x)
            assert g.rw_union.pairs == antidependencies_via_visibility(x).pairs

    def test_write_skew_antidependencies(self):
        case = write_skew()
        x = case.execution
        g = graph_of(x)
        t1 = x.history.by_tid("t1")
        t2 = x.history.by_tid("t2")
        assert (t1, t2) in g.rw_union
        assert (t2, t1) in g.rw_union
