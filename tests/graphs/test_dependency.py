"""Unit tests for dependency graphs (Definition 6) and RW derivation."""

import pytest

from repro.core.errors import MalformedDependencyGraphError
from repro.core.events import read, write
from repro.core.histories import singleton_sessions, history
from repro.core.relations import Relation
from repro.core.transactions import initialisation_transaction, transaction
from repro.graphs.dependency import DependencyGraph, dependency_graph, derive_rw


@pytest.fixture
def base():
    init = initialisation_transaction(["x"])
    w = transaction("w", write("x", 1))
    r = transaction("r", read("x", 1))
    h = singleton_sessions(init, w, r)
    return init, w, r, h


class TestValidation:
    def test_valid_graph(self, base):
        init, w, r, h = base
        g = dependency_graph(
            h, wr={"x": [(w, r)]}, ww={"x": [(init, w)]}
        )
        assert isinstance(g, DependencyGraph)

    def test_wr_value_mismatch_rejected(self, base):
        init, w, r, h = base
        with pytest.raises(MalformedDependencyGraphError):
            dependency_graph(h, wr={"x": [(init, r)]}, ww={"x": [(init, w)]})

    def test_read_without_source_rejected(self, base):
        init, w, r, h = base
        with pytest.raises(MalformedDependencyGraphError):
            dependency_graph(h, wr={}, ww={"x": [(init, w)]})

    def test_multiple_wr_sources_rejected(self):
        init = initialisation_transaction(["x"], value=1)
        w = transaction("w", write("x", 1))
        r = transaction("r", read("x", 1))
        h = singleton_sessions(init, w, r)
        with pytest.raises(MalformedDependencyGraphError):
            dependency_graph(
                h,
                wr={"x": [(w, r), (init, r)]},
                ww={"x": [(init, w)]},
            )

    def test_wr_self_edge_rejected(self):
        init = initialisation_transaction(["x"])
        t = transaction("t", read("x", 0), write("x", 0))
        h = singleton_sessions(init, t)
        with pytest.raises(MalformedDependencyGraphError):
            dependency_graph(h, wr={"x": [(t, t)]}, ww={"x": [(init, t)]})

    def test_ww_must_be_total_over_writers(self, base):
        init, w, r, h = base
        w2 = transaction("w2", write("x", 2))
        h2 = singleton_sessions(init, w, w2, r)
        with pytest.raises(MalformedDependencyGraphError):
            dependency_graph(
                h2, wr={"x": [(w, r)]}, ww={"x": [(init, w)]}
            )

    def test_ww_non_writer_rejected(self, base):
        init, w, r, h = base
        with pytest.raises(MalformedDependencyGraphError):
            dependency_graph(
                h, wr={"x": [(w, r)]}, ww={"x": [(init, w), (w, r)]}
            )

    def test_validate_false_skips(self, base):
        init, w, r, h = base
        g = DependencyGraph(h, wr={}, ww={}, validate=False)
        assert g.well_formedness_violations()


class TestDerivedRW:
    def test_rw_from_definition_5(self):
        # r reads init's x; w overwrites init's x => r --RW(x)--> w.
        init = initialisation_transaction(["x"])
        w = transaction("w", write("x", 1))
        r = transaction("r", read("x", 0))
        h = singleton_sessions(init, w, r)
        g = dependency_graph(h, wr={"x": [(init, r)]}, ww={"x": [(init, w)]})
        assert (r, w) in g.rw_on("x")

    def test_rw_excludes_self(self):
        # t reads init's x and overwrites it: no RW self-edge.
        init = initialisation_transaction(["x"])
        t = transaction("t", read("x", 0), write("x", 1))
        h = singleton_sessions(init, t)
        g = dependency_graph(h, wr={"x": [(init, t)]}, ww={"x": [(init, t)]})
        assert not g.rw_on("x")

    def test_rw_per_object_isolated(self):
        init = initialisation_transaction(["x", "y"])
        wx = transaction("wx", write("x", 1))
        ry = transaction("ry", read("y", 0))
        h = singleton_sessions(init, wx, ry)
        g = dependency_graph(
            h, wr={"y": [(init, ry)]}, ww={"x": [(init, wx)]}
        )
        assert not g.rw_on("x")
        assert not g.rw_on("y")

    def test_derive_rw_helper_matches_property(self):
        init = initialisation_transaction(["x"])
        w = transaction("w", write("x", 1))
        r = transaction("r", read("x", 0))
        h = singleton_sessions(init, w, r)
        g = dependency_graph(h, wr={"x": [(init, r)]}, ww={"x": [(init, w)]})
        assert derive_rw(h, g.wr, g.ww) == g.rw


class TestUnions:
    def test_union_views(self, base):
        init, w, r, h = base
        g = dependency_graph(h, wr={"x": [(w, r)]}, ww={"x": [(init, w)]})
        assert (w, r) in g.wr_union
        assert (init, w) in g.ww_union
        assert g.dependencies.pairs == g.session_order.union(
            g.wr_union, g.ww_union
        ).pairs
        assert g.all_edges.pairs == g.dependencies.union(g.rw_union).pairs

    def test_session_order_included(self):
        init = initialisation_transaction(["x"])
        a = transaction("a", write("x", 1))
        b = transaction("b", read("x", 1))
        h = history([init], [a, b])
        g = dependency_graph(h, wr={"x": [(a, b)]}, ww={"x": [(init, a)]})
        assert (a, b) in g.dependencies

    def test_ww_transitive_closure_by_default(self):
        init = initialisation_transaction(["x"])
        a = transaction("a", write("x", 1))
        b = transaction("b", write("x", 2))
        h = singleton_sessions(init, a, b)
        g = dependency_graph(h, wr={}, ww={"x": [(init, a), (a, b)]})
        assert (init, b) in g.ww_on("x")

    def test_describe_lists_edges(self, base):
        init, w, r, h = base
        g = dependency_graph(h, wr={"x": [(w, r)]}, ww={"x": [(init, w)]})
        text = g.describe()
        assert "WR" in text and "w-(x)->r" in text
