"""Unit tests for the labelled-cycle machinery."""

import pytest

from repro.graphs.cycles import (
    Cycle,
    EdgeKind,
    LabeledDigraph,
    LabeledEdge,
    is_antidependency,
    is_conflict,
    is_dependency,
    is_predecessor,
)


def edge(src, dst, kind, obj=None):
    return LabeledEdge(src, dst, kind, obj)


def cycle(*edges):
    return Cycle(tuple(edges))


class TestCycleStructure:
    def test_edges_must_connect(self):
        with pytest.raises(ValueError):
            cycle(edge("a", "b", EdgeKind.WR), edge("c", "a", EdgeKind.WW))

    def test_must_close(self):
        with pytest.raises(ValueError):
            cycle(edge("a", "b", EdgeKind.WR), edge("b", "c", EdgeKind.WW))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Cycle(())

    def test_self_loop_allowed(self):
        c = cycle(edge("a", "a", EdgeKind.SO))
        assert len(c) == 1
        assert c.nodes == ("a",)

    def test_kinds_and_count(self):
        c = cycle(
            edge("a", "b", EdgeKind.RW),
            edge("b", "c", EdgeKind.WR),
            edge("c", "a", EdgeKind.RW),
        )
        assert c.kinds == (EdgeKind.RW, EdgeKind.WR, EdgeKind.RW)
        assert c.count(EdgeKind.RW) == 2

    def test_is_simple(self):
        simple = cycle(edge("a", "b", EdgeKind.WR), edge("b", "a", EdgeKind.RW))
        assert simple.is_simple()


class TestPatternPredicates:
    def test_adjacent_pair_wraps_around(self):
        c = cycle(
            edge("a", "b", EdgeKind.RW),
            edge("b", "c", EdgeKind.WR),
            edge("c", "a", EdgeKind.RW),
        )
        # RW at positions 0 and 2 are cyclically adjacent (2 -> 0).
        assert c.has_adjacent_pair(is_antidependency)

    def test_adjacent_pair_absent(self):
        c = cycle(
            edge("a", "b", EdgeKind.RW),
            edge("b", "c", EdgeKind.WR),
            edge("c", "d", EdgeKind.RW),
            edge("d", "a", EdgeKind.WW),
        )
        assert not c.has_adjacent_pair(is_antidependency)

    def test_single_edge_cycle_adjacent_to_itself(self):
        c = cycle(edge("a", "a", EdgeKind.RW))
        assert c.has_adjacent_pair(is_antidependency)

    def test_has_fragment_rotation_invariant(self):
        base = [
            edge("a", "b", EdgeKind.WR),
            edge("b", "c", EdgeKind.PREDECESSOR),
            edge("c", "d", EdgeKind.RW),
            edge("d", "a", EdgeKind.SUCCESSOR),
        ]
        pattern = (is_conflict, is_predecessor, is_conflict)
        c = cycle(*base)
        assert c.has_fragment(pattern)
        for rotation in c.rotations():
            assert rotation.has_fragment(pattern)

    def test_has_fragment_absent(self):
        c = cycle(
            edge("a", "b", EdgeKind.WR),
            edge("b", "c", EdgeKind.SUCCESSOR),
            edge("c", "a", EdgeKind.RW),
        )
        assert not c.has_fragment((is_conflict, is_predecessor, is_conflict))

    def test_fragment_longer_than_cycle_wraps(self):
        c = cycle(
            edge("a", "b", EdgeKind.WR),
            edge("b", "a", EdgeKind.PREDECESSOR),
        )
        # Pattern of length 3 on a 2-cycle: positions wrap, reusing edges.
        assert c.has_fragment((is_conflict, is_predecessor, is_conflict))

    def test_project_preserves_order(self):
        c = cycle(
            edge("a", "b", EdgeKind.WR),
            edge("b", "c", EdgeKind.SUCCESSOR),
            edge("c", "a", EdgeKind.RW),
        )
        conflicts = c.project(lambda e: is_conflict(e.kind))
        assert [e.kind for e in conflicts] == [EdgeKind.WR, EdgeKind.RW]

    def test_kind_helpers(self):
        assert is_conflict(EdgeKind.WR)
        assert is_conflict(EdgeKind.RW)
        assert not is_conflict(EdgeKind.SUCCESSOR)
        assert is_dependency(EdgeKind.WW)
        assert not is_dependency(EdgeKind.RW)
        assert is_predecessor(EdgeKind.PREDECESSOR)


class TestLabeledDigraph:
    def test_add_and_query(self):
        g = LabeledDigraph()
        e = edge("a", "b", EdgeKind.WR, "x")
        g.add_edge(e)
        g.add_edge(e)  # idempotent
        assert len(g) == 1
        assert g.edges_between("a", "b") == [e]
        assert g.nodes == {"a", "b"}

    def test_parallel_edges_kept_separately(self):
        g = LabeledDigraph(
            [
                edge("a", "b", EdgeKind.WR, "x"),
                edge("a", "b", EdgeKind.RW, "x"),
            ]
        )
        assert len(g.edges_between("a", "b")) == 2

    def test_simple_cycles_basic(self):
        g = LabeledDigraph(
            [edge("a", "b", EdgeKind.WR), edge("b", "a", EdgeKind.RW)]
        )
        cycles = list(g.simple_cycles())
        assert len(cycles) == 1
        assert cycles[0].count(EdgeKind.WR) == 1

    def test_simple_cycles_expand_parallel_labels(self):
        g = LabeledDigraph(
            [
                edge("a", "b", EdgeKind.WR),
                edge("a", "b", EdgeKind.WW),
                edge("b", "a", EdgeKind.RW),
            ]
        )
        cycles = list(g.simple_cycles())
        assert len(cycles) == 2
        kinds = {c.kinds for c in cycles}
        assert (EdgeKind.WR, EdgeKind.RW) in kinds or (
            EdgeKind.RW,
            EdgeKind.WR,
        ) in kinds

    def test_no_cycles_in_dag(self):
        g = LabeledDigraph(
            [edge("a", "b", EdgeKind.WR), edge("b", "c", EdgeKind.WR)]
        )
        assert list(g.simple_cycles()) == []

    def test_self_loop_cycle(self):
        g = LabeledDigraph([edge("a", "a", EdgeKind.SO)])
        cycles = list(g.simple_cycles())
        assert len(cycles) == 1
        assert len(cycles[0]) == 1

    def test_find_cycle_early_exit(self):
        g = LabeledDigraph(
            [edge("a", "b", EdgeKind.WR), edge("b", "a", EdgeKind.RW)]
        )
        found = g.find_cycle(lambda c: c.count(EdgeKind.RW) == 1)
        assert found is not None
        assert g.find_cycle(lambda c: c.count(EdgeKind.RW) == 5) is None

    def test_all_cycles_satisfy(self):
        g = LabeledDigraph(
            [edge("a", "b", EdgeKind.WR), edge("b", "a", EdgeKind.RW)]
        )
        assert g.all_cycles_satisfy(lambda c: len(c) == 2)
        assert not g.all_cycles_satisfy(lambda c: len(c) == 3)

    def test_length_bound_prunes(self):
        g = LabeledDigraph(
            [
                edge("a", "b", EdgeKind.WR),
                edge("b", "c", EdgeKind.WR),
                edge("c", "a", EdgeKind.WR),
            ]
        )
        assert list(g.simple_cycles(length_bound=2)) == []
        assert len(list(g.simple_cycles(length_bound=3))) == 1

    def test_to_networkx(self):
        g = LabeledDigraph([edge("a", "b", EdgeKind.WR)])
        nxg = g.to_networkx()
        assert nxg.number_of_edges() == 1
