"""Unit tests for the graph-class characterisations (Thms 8, 9, 21)."""

import pytest

from repro.anomalies import (
    fig4_g1,
    fig4_g2,
    fig11_h6,
    fig12_g7,
    write_skew,
)
from repro.core.events import read, write
from repro.core.histories import singleton_sessions
from repro.core.transactions import initialisation_transaction, transaction
from repro.graphs.classify import (
    classify,
    in_graph_psi,
    in_graph_psi_by_cycles,
    in_graph_ser,
    in_graph_ser_by_cycles,
    in_graph_si,
    in_graph_si_by_cycles,
    psi_violation_witness,
    ser_violation_witness,
    si_violation_witness,
    to_labeled_digraph,
)
from repro.graphs.dependency import dependency_graph
from repro.graphs.extraction import graph_of


def write_skew_graph():
    """The Figure 2(d) dependency graph, built from its execution."""
    return graph_of(write_skew().execution)


def lost_update_graph():
    """The Figure 2(b) dependency graph (built directly: the history is
    not realisable under SI, but the graph is still well-formed)."""
    init = initialisation_transaction(["acct"])
    t1 = transaction("t1", read("acct", 0), write("acct", 50))
    t2 = transaction("t2", read("acct", 0), write("acct", 25))
    h = singleton_sessions(init, t1, t2)
    return dependency_graph(
        h,
        wr={"acct": [(init, t1), (init, t2)]},
        ww={"acct": [(init, t1), (t1, t2)]},
    )


def long_fork_graph():
    """The Figure 2(c) dependency graph with its bold edges."""
    init = initialisation_transaction(["x", "y"])
    t1 = transaction("t1", write("x", 1))
    t2 = transaction("t2", write("y", 1))
    t3 = transaction("t3", read("x", 1), read("y", 0))
    t4 = transaction("t4", read("x", 0), read("y", 1))
    h = singleton_sessions(init, t1, t2, t3, t4)
    return dependency_graph(
        h,
        wr={
            "x": [(t1, t3), (init, t4)],
            "y": [(t2, t4), (init, t3)],
        },
        ww={"x": [(init, t1)], "y": [(init, t2)]},
    )


class TestWriteSkew:
    def test_in_si_not_ser(self):
        g = write_skew_graph()
        assert in_graph_si(g)
        assert in_graph_psi(g)
        assert not in_graph_ser(g)

    def test_classify_dict(self):
        assert classify(write_skew_graph()) == {
            "SER": False,
            "SI": True,
            "PSI": True,
        }

    def test_ser_witness_is_rw_rw_cycle(self):
        witness = ser_violation_witness(write_skew_graph())
        assert witness is not None


class TestLostUpdate:
    def test_excluded_from_all(self):
        g = lost_update_graph()
        assert classify(g) == {"SER": False, "SI": False, "PSI": False}

    def test_si_witness_has_single_rw(self):
        witness = si_violation_witness(lost_update_graph())
        assert witness is not None
        # The paper's cycle: t1 --WW--> t2 --RW--> t1.
        from repro.graphs.cycles import EdgeKind

        assert witness.count(EdgeKind.RW) <= 1


class TestLongFork:
    def test_in_psi_not_si(self):
        g = long_fork_graph()
        assert in_graph_psi(g)
        assert not in_graph_si(g)
        assert not in_graph_ser(g)

    def test_si_witness_has_nonadjacent_rws(self):
        witness = si_violation_witness(long_fork_graph())
        assert witness is not None
        from repro.graphs.cycles import EdgeKind, is_antidependency

        assert witness.count(EdgeKind.RW) >= 2
        assert not witness.has_adjacent_pair(is_antidependency)

    def test_psi_witness_none(self):
        assert psi_violation_witness(long_fork_graph()) is None


class TestAcyclicGraphs:
    def test_fig4_graphs_are_acyclic_hence_everywhere(self):
        for case in (fig4_g1(), fig4_g2(), fig11_h6(), fig12_g7()):
            g = case.graph
            assert in_graph_ser(g), case.name
            assert in_graph_si(g), case.name
            assert in_graph_psi(g), case.name


class TestInclusions:
    def test_ser_subset_si_subset_psi(self):
        graphs = [
            write_skew_graph(),
            lost_update_graph(),
            long_fork_graph(),
            fig4_g1().graph,
            fig12_g7().graph,
        ]
        for g in graphs:
            if in_graph_ser(g):
                assert in_graph_si(g)
            if in_graph_si(g):
                assert in_graph_psi(g)

    def test_int_required_everywhere(self):
        init = initialisation_transaction(["x"])
        bad = transaction("bad", write("x", 1), read("x", 99))
        h = singleton_sessions(init, bad)
        g = dependency_graph(h, wr={}, ww={"x": [(init, bad)]})
        assert not in_graph_ser(g)
        assert not in_graph_si(g)
        assert not in_graph_psi(g)


class TestCycleBasedEquivalence:
    """The compositional and cycle-scan characterisations must agree."""

    @pytest.fixture(params=["write_skew", "lost_update", "long_fork", "g1", "g7"])
    def graph(self, request):
        return {
            "write_skew": write_skew_graph,
            "lost_update": lost_update_graph,
            "long_fork": long_fork_graph,
            "g1": lambda: fig4_g1().graph,
            "g7": lambda: fig12_g7().graph,
        }[request.param]()

    def test_si_agreement(self, graph):
        assert in_graph_si(graph) == in_graph_si_by_cycles(graph)

    def test_ser_agreement(self, graph):
        assert in_graph_ser(graph) == in_graph_ser_by_cycles(graph)

    def test_psi_agreement(self, graph):
        assert in_graph_psi(graph) == in_graph_psi_by_cycles(graph)


class TestLabeledExport:
    def test_to_labeled_digraph_edge_kinds(self):
        g = write_skew_graph()
        labeled = to_labeled_digraph(g)
        from repro.graphs.cycles import EdgeKind

        kinds = {e.kind for e in labeled.edges}
        assert EdgeKind.RW in kinds
        assert EdgeKind.WR in kinds or EdgeKind.WW in kinds
