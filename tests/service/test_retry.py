"""Retry-discipline coverage: injected abort storms must terminate with
a bounded attempt count and a clear error, never livelock."""

import pytest

from repro.core.errors import (
    RetryExhausted,
    StoreError,
    TransactionAborted,
)
from repro.mvcc import SIEngine
from repro.mvcc.engine import BaseEngine
from repro.mvcc.runtime import ReadOp, WriteOp
from repro.service import TransactionService


class StormEngine(SIEngine):
    """An SI engine whose commit fails the first ``failures`` times."""

    def __init__(self, initial, failures):
        super().__init__(initial)
        self.failures = failures
        self.commit_calls = 0

    def commit(self, ctx):
        with self.lock:
            self.commit_calls += 1
            if self.commit_calls <= self.failures:
                self.abort(ctx, "injected write-conflict storm")
                raise TransactionAborted(
                    ctx.tid, "injected write-conflict storm"
                )
            return super().commit(ctx)


def incr(obj):
    def tx():
        value = yield ReadOp(obj)
        yield WriteOp(obj, value + 1)

    return tx


class TestRetryDiscipline:
    def test_transient_storm_eventually_commits(self):
        engine = StormEngine({"x": 0}, failures=5)
        service = TransactionService(engine, backoff_base=0)
        outcome = service.session().run(incr("x"))
        assert outcome.attempts == 6
        assert service.metrics.retries == 5
        assert service.metrics.aborts == 5
        assert service.metrics.commits == 1
        assert service.metrics.retry_exhausted == 0

    def test_persistent_storm_raises_retry_exhausted(self):
        engine = StormEngine({"x": 0}, failures=10**9)
        service = TransactionService(engine, max_retries=7, backoff_base=0)
        session = service.session("doomed")
        with pytest.raises(RetryExhausted) as excinfo:
            session.run(incr("x"))
        err = excinfo.value
        assert err.session == "doomed"
        assert err.attempts == 8  # cap resubmissions + the first attempt
        assert "injected write-conflict storm" in err.last_reason
        assert isinstance(err.__cause__, TransactionAborted)
        assert service.metrics.retry_exhausted == 1
        assert engine.commit_calls == 8  # bounded, not livelocked

    def test_session_usable_after_exhaustion(self):
        engine = StormEngine({"x": 0}, failures=3)
        service = TransactionService(engine, max_retries=1, backoff_base=0)
        session = service.session()
        with pytest.raises(RetryExhausted):
            session.run(incr("x"))
        outcome = session.run(incr("x"))  # storm over (3 failures spent)
        assert outcome.attempts == 2
        assert service.metrics.commits == 1

    def test_zero_retries_means_single_attempt(self):
        engine = StormEngine({"x": 0}, failures=1)
        service = TransactionService(engine, max_retries=0, backoff_base=0)
        with pytest.raises(RetryExhausted) as excinfo:
            service.session().run(incr("x"))
        assert excinfo.value.attempts == 1
        assert engine.commit_calls == 1

    def test_per_call_cap_overrides_service_cap(self):
        engine = StormEngine({"x": 0}, failures=10**9)
        service = TransactionService(
            engine, max_retries=50, backoff_base=0
        )
        with pytest.raises(RetryExhausted) as excinfo:
            service.session().run(incr("x"), max_retries=2)
        assert excinfo.value.attempts == 3

    def test_program_error_aborts_without_retry(self):
        service = TransactionService(SIEngine({"x": 0}), backoff_base=0)

        def buggy():
            yield ReadOp("x")
            raise ValueError("application bug")

        session = service.session()
        with pytest.raises(ValueError):
            session.run(buggy)
        assert service.metrics.retries == 0
        assert service.metrics.aborts == 1
        assert service.metrics.in_flight == 0
        # Handle stays usable.
        assert session.run(incr("x")).attempts == 1

    def test_bad_yield_rejected(self):
        service = TransactionService(SIEngine({"x": 0}))

        def bad():
            yield "not an op"

        with pytest.raises(StoreError):
            service.session().run(bad)

    def test_backoff_is_exponential_capped_and_jittered(self, monkeypatch):
        service = TransactionService(
            SIEngine({"x": 0}),
            backoff_base=0.001,
            backoff_cap=0.004,
            backoff_seed=42,
        )
        session = service.session("jitter")
        sleeps = []
        monkeypatch.setattr(
            "repro.service.service.time.sleep",
            lambda seconds: sleeps.append(seconds),
        )
        for attempt in (1, 2, 3, 4, 5):
            session._backoff(attempt)
        # Each sleep is the capped exponential scaled into [0.5, 1.0).
        for index, slept in enumerate(sleeps):
            expected = min(0.004, 0.001 * 2**index)
            assert 0.5 * expected <= slept < expected
        # The cap actually bit on the later attempts.
        assert sleeps[3] < 0.004 and sleeps[4] < 0.004

    def test_backoff_deterministic_per_session_seed(self):
        def sleeps_for(seed):
            service = TransactionService(
                SIEngine({"x": 0}), backoff_base=0.001, backoff_seed=seed
            )
            session = service.session("s")
            rng_draws = [session._rng.random() for _ in range(3)]
            return rng_draws

        assert sleeps_for(7) == sleeps_for(7)
        assert sleeps_for(7) != sleeps_for(8)

    def test_storm_engine_is_a_base_engine(self):
        # Guard: the injection helper must stay drop-in compatible.
        assert issubclass(StormEngine, BaseEngine)
