"""Load-generator tests: concurrent mixes with a windowed monitor
attached must certify cleanly when the model matches the engine."""

import pytest

from repro.core.errors import StoreError
from repro.monitor import WindowedMonitor
from repro.mvcc import PSIEngine, SerializableEngine, SIEngine
from repro.service import (
    MIXES,
    LoadGenerator,
    TransactionService,
    ValueTagger,
    smallbank_mix,
    tpcc_mix,
)


class TestValueTagger:
    def test_tags_are_unique_and_unwrap(self):
        tagger = ValueTagger()
        tags = [tagger.tag(5) for _ in range(100)]
        assert len(set(tags)) == 100
        assert all(ValueTagger.logical(t) == 5 for t in tags)
        assert ValueTagger.logical(42) == 42  # plain initial values

    def test_mix_registry(self):
        assert set(MIXES) == {"smallbank", "tpcc"}
        for factory in MIXES.values():
            mix = factory()
            assert mix.initial


class TestMixes:
    @pytest.mark.parametrize("mix_factory", [smallbank_mix, tpcc_mix])
    def test_mix_runs_clean_under_si_with_windowed_monitor(
        self, mix_factory
    ):
        mix = mix_factory()
        monitor = WindowedMonitor(64, "SI", dict(mix.initial))
        service = TransactionService(
            SIEngine(dict(mix.initial)),
            monitor,
            max_retries=500,
            backoff_base=0.0001,
        )
        gen = LoadGenerator(
            service, mix, workers=8, transactions_per_worker=10, seed=1
        )
        result = gen.run()
        assert result.committed + result.retry_exhausted > 0
        assert result.workers == 8
        # SI engine + SI monitor: every flag would be a false positive.
        assert result.violations == 0
        assert monitor.commit_count == service.metrics.commits
        assert monitor.retained_count <= 64

    def test_smallbank_under_serializable_engine(self):
        mix = smallbank_mix(customers=2)
        monitor = WindowedMonitor(64, "SER", dict(mix.initial))
        service = TransactionService(
            SerializableEngine(dict(mix.initial)),
            monitor,
            max_retries=1000,
            backoff_base=0.0001,
        )
        result = LoadGenerator(
            service, mix, workers=4, transactions_per_worker=8, seed=3
        ).run()
        assert result.violations == 0  # SER engine satisfies SER
        assert result.committed > 0

    def test_smallbank_under_psi_auto_deliver(self):
        mix = smallbank_mix(customers=3)
        monitor = WindowedMonitor(64, "PSI", dict(mix.initial))
        service = TransactionService(
            PSIEngine(dict(mix.initial), auto_deliver=True),
            monitor,
            max_retries=500,
            backoff_base=0.0001,
        )
        result = LoadGenerator(
            service, mix, workers=4, transactions_per_worker=8, seed=5
        ).run()
        assert result.violations == 0
        assert result.committed > 0

    def test_smallbank_conserves_logical_money(self):
        """End-state check: the mix's committed arithmetic is coherent
        (deposits/withdrawals/cheques all applied to consistent reads
        under SI on disjoint random customers most of the time; here we
        only check the run completes and balances are attributable)."""
        mix = smallbank_mix(customers=1)
        service = TransactionService(
            SIEngine(dict(mix.initial)),
            max_retries=2000,
            backoff_base=0.0001,
        )
        result = LoadGenerator(
            service, mix, workers=3, transactions_per_worker=10, seed=2
        ).run()
        assert result.committed > 0
        store = service.engine.store
        for obj in store.objects:
            value = store.latest(obj).value
            assert isinstance(ValueTagger.logical(value), int)

    def test_invalid_parameters_rejected(self):
        mix = smallbank_mix()
        service = TransactionService(SIEngine(dict(mix.initial)))
        with pytest.raises(StoreError):
            LoadGenerator(service, mix, workers=0)
        with pytest.raises(StoreError):
            LoadGenerator(service, mix, transactions_per_worker=0)
        with pytest.raises(StoreError):
            smallbank_mix(customers=0)

    def test_duration_cutoff_stops_early(self):
        mix = smallbank_mix()
        service = TransactionService(
            SIEngine(dict(mix.initial)), backoff_base=0.0001,
            max_retries=500,
        )
        gen = LoadGenerator(
            service,
            mix,
            workers=2,
            transactions_per_worker=10**6,
            duration=0.2,
            seed=4,
        )
        result = gen.run()
        assert result.committed < 10**6
        assert result.elapsed_seconds < 10.0

    def test_single_worker_run_is_reproducible(self):
        """One worker, same seed, fresh mix: identical final state."""

        def final_logical_state(run):
            mix = smallbank_mix(customers=2)
            service = TransactionService(SIEngine(dict(mix.initial)))
            result = LoadGenerator(
                service, mix, workers=1,
                transactions_per_worker=30, seed=9,
            ).run()
            assert result.committed == 30  # no contention, no aborts
            store = service.engine.store
            return {
                obj: ValueTagger.logical(store.latest(obj).value)
                for obj in store.objects
            }

        assert final_logical_state(1) == final_logical_state(2)
