"""Tests for the TransactionService: sessions, admission, monitoring."""

import threading

import pytest

from repro.core.errors import StoreError, TransactionAborted
from repro.monitor import WindowedMonitor
from repro.mvcc import SIEngine, SerializableEngine
from repro.mvcc.runtime import ReadOp, WriteOp
from repro.service import ServiceMetrics, TransactionService


def incr(obj, amount=1):
    def tx():
        value = yield ReadOp(obj)
        yield WriteOp(obj, value + amount)

    return tx


class TestExplicitControl:
    def test_begin_read_write_commit(self):
        service = TransactionService(SIEngine({"x": 0}))
        session = service.session("alice")
        session.begin()
        assert session.read("x") == 0
        session.write("x", 7)
        outcome = session.commit()
        assert outcome.attempts == 1
        assert outcome.violation is None
        assert outcome.record.session == "alice"
        assert service.metrics.commits == 1
        assert service.metrics.in_flight == 0

    def test_two_transactions_in_one_session_rejected(self):
        service = TransactionService(SIEngine({"x": 0}))
        session = service.session()
        session.begin()
        with pytest.raises(StoreError):
            session.begin()

    def test_operations_without_begin_rejected(self):
        service = TransactionService(SIEngine({"x": 0}))
        session = service.session()
        with pytest.raises(StoreError):
            session.read("x")
        with pytest.raises(StoreError):
            session.commit()

    def test_client_abort_frees_the_session(self):
        service = TransactionService(SIEngine({"x": 0}))
        session = service.session()
        session.begin()
        session.write("x", 1)
        session.abort()
        assert service.metrics.aborts == 1
        session.begin()
        assert session.read("x") == 0  # the abort discarded the write
        session.commit()

    def test_first_committer_wins_surfaces_as_abort(self):
        service = TransactionService(SIEngine({"x": 0}))
        s1, s2 = service.session(), service.session()
        s1.begin(), s2.begin()
        s1.write("x", 1), s2.write("x", 2)
        s1.commit()
        with pytest.raises(TransactionAborted):
            s2.commit()
        assert service.metrics.aborts == 1
        assert service.metrics.in_flight == 0

    def test_run_convenience_uses_fresh_sessions(self):
        service = TransactionService(SIEngine({"x": 0}))
        for _ in range(3):
            service.run(incr("x"))
        sessions = {r.session for r in service.engine.committed}
        assert len(sessions) == 3


class TestAdmission:
    def test_admission_limit_bounds_in_flight(self):
        service = TransactionService(
            SIEngine({"x": 0}), max_concurrent=2, backoff_base=0
        )
        s1, s2, s3 = (service.session() for _ in range(3))
        s1.begin(), s2.begin()
        admitted = threading.Event()

        def third():
            s3.begin()
            admitted.set()
            s3.commit()

        thread = threading.Thread(target=third, daemon=True)
        thread.start()
        assert not admitted.wait(0.1)  # queued behind the limit
        assert service.metrics.peak_in_flight == 2
        s1.commit()
        assert admitted.wait(2.0)
        thread.join(2.0)
        s2.commit()
        assert service.metrics.peak_in_flight == 2
        assert service.metrics.peak_admission_waiting == 1

    def test_admission_slot_released_on_abort(self):
        engine = SIEngine({"x": 0})
        service = TransactionService(
            engine, max_concurrent=1, backoff_base=0
        )
        session = service.session()
        session.begin()
        session.abort()
        # If the slot leaked this would deadlock; a fresh begin succeeds.
        other = service.session()
        other.begin()
        other.commit()

    def test_invalid_limits_rejected(self):
        with pytest.raises(StoreError):
            TransactionService(SIEngine({}), max_concurrent=0)
        with pytest.raises(StoreError):
            TransactionService(SIEngine({}), max_retries=-1)


class TestMonitorIntegration:
    def test_commits_certified_in_commit_order(self):
        monitor = WindowedMonitor(16, "SI", {"x": 0, "y": 0})
        service = TransactionService(SIEngine({"x": 0, "y": 0}), monitor)
        for obj in ("x", "y", "x"):
            service.run(incr(obj))
        assert monitor.commit_count == 3
        assert monitor.consistent
        assert service.violations == []

    def test_ser_monitor_flags_si_write_skew(self):
        initial = {"a": 70, "b": 80}
        monitor = WindowedMonitor(16, "SER", dict(initial))
        service = TransactionService(SIEngine(dict(initial)), monitor)
        alice, bob = service.session("alice"), service.session("bob")
        alice.begin(), bob.begin()
        alice.read("a"), alice.read("b")
        bob.read("a"), bob.read("b")
        alice.write("a", -30)
        bob.write("b", -20)
        first = alice.commit()
        second = bob.commit()
        assert first.violation is None
        assert second.violation is not None
        assert service.metrics.violations == 1
        assert len(service.violations) == 1
        # The commit itself stood: the engine accepted both.
        assert len(service.engine.committed) == 2

    def test_monitor_error_does_not_leak_the_admission_slot(self):
        # The monitor has no initial value for 'x', so a read of the
        # engine's initial 0 is unattributable in strict mode.
        monitor = WindowedMonitor(16, "SI", {})
        service = TransactionService(
            SIEngine({"x": 0}), monitor, max_concurrent=1
        )
        session = service.session()
        session.begin()
        session.read("x")
        with pytest.raises(Exception):
            session.commit()
        # Slot free and session reusable despite the monitor blow-up.
        fresh = service.session()
        fresh.begin()
        fresh.write("x", 1)
        fresh.commit()


class TestConcurrentUse:
    @pytest.mark.parametrize(
        "engine_factory", [SIEngine, SerializableEngine]
    )
    def test_concurrent_increments_lose_no_updates(self, engine_factory):
        service = TransactionService(
            engine_factory({"counter": 0}),
            max_concurrent=4,
            backoff_base=0.0001,
            max_retries=200,
        )
        threads_n, per_thread = 8, 15

        def worker(index):
            session = service.session(f"w{index}")
            for _ in range(per_thread):
                session.run(incr("counter"))

        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(threads_n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        def probe_tx():
            yield ReadOp("counter")

        final = service.run(probe_tx)
        probe = service.engine.committed[-1]
        assert probe.events[-1].value == threads_n * per_thread
        assert service.metrics.commits == threads_n * per_thread + 1
        assert final.attempts >= 1

    def test_metrics_json_roundtrip(self):
        import json

        service = TransactionService(SIEngine({"x": 0}))
        service.run(incr("x"))
        snapshot = json.loads(service.metrics.to_json())
        assert snapshot["counters"]["commits"] == 1
        assert snapshot["latency_seconds"]["count"] == 1
        assert snapshot["abort_rate"] == 0.0
