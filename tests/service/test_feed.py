"""Tests for the pipelined monitor feed.

The feed must deliver every submitted commit to the observer in commit
order (records are sequenced by the engine's gapless commit
timestamps), apply backpressure instead of dropping when the queue
fills, drain fully on close, and surface observer errors to the
submitting/closing caller.
"""

import threading
import time

import pytest

from repro.core.errors import StoreError
from repro.mvcc.engine import CommitRecord
from repro.mvcc.si import SIEngine
from repro.service import (
    FeedClosed,
    LoadGenerator,
    PipelinedMonitorFeed,
    TransactionService,
    smallbank_mix,
)


def record(seq, tid=None):
    """A minimal commit record with commit_ts == seq."""
    return CommitRecord(
        tid=tid or f"t{seq}",
        session="s",
        start_ts=0,
        commit_ts=seq,
        events=(),
        writes={},
        visible_tids=frozenset(),
    )


class TestOrdering:
    def test_in_order_submission_observed_in_order(self):
        seen = []
        feed = PipelinedMonitorFeed(lambda r: seen.append(r.commit_ts))
        for seq in range(1, 11):
            feed.submit(record(seq))
        feed.close()
        assert seen == list(range(1, 11))

    def test_out_of_order_submission_reordered(self):
        seen = []
        feed = PipelinedMonitorFeed(lambda r: seen.append(r.commit_ts))
        for seq in (3, 1, 5, 2, 4):
            feed.submit(record(seq))
        feed.close()
        assert seen == [1, 2, 3, 4, 5]

    def test_flush_waits_for_everything_submitted(self):
        seen = []

        def slow_observe(r):
            time.sleep(0.005)
            seen.append(r.commit_ts)

        feed = PipelinedMonitorFeed(slow_observe)
        for seq in range(1, 6):
            feed.submit(record(seq))
        feed.flush()
        assert seen == [1, 2, 3, 4, 5]
        assert feed.lag == 0
        feed.close()

    def test_start_seq_offsets_the_expected_sequence(self):
        seen = []
        feed = PipelinedMonitorFeed(
            lambda r: seen.append(r.commit_ts), start_seq=10
        )
        feed.submit(record(11))
        feed.submit(record(10))
        feed.close()
        assert seen == [10, 11]


class TestBackpressure:
    def test_full_queue_blocks_submit_until_drained(self):
        release = threading.Event()
        seen = []

        def gated_observe(r):
            release.wait(5)
            seen.append(r.commit_ts)

        feed = PipelinedMonitorFeed(gated_observe, capacity=2)
        # #1 occupies the observer; #2 and #3 fill queue + reorder slack.
        for seq in (1, 2, 3):
            feed.submit(record(seq))
        while feed._queue.qsize() < 2:
            time.sleep(0.001)

        blocked_done = threading.Event()

        def blocked_submit():
            feed.submit(record(4))
            blocked_done.set()

        thread = threading.Thread(target=blocked_submit)
        thread.start()
        # The submit must be blocked (queue full), not dropped.
        assert not blocked_done.wait(0.05)
        release.set()
        assert blocked_done.wait(5)
        thread.join()
        feed.close()
        assert seen == [1, 2, 3, 4]  # never dropped

    def test_reorder_gap_does_not_deadlock_the_queue(self):
        """Later-sequence records fill the queue while an earlier one is
        missing; the drain thread must keep emptying the queue so the
        gap-filling submit can get in."""
        seen = []
        feed = PipelinedMonitorFeed(
            lambda r: seen.append(r.commit_ts), capacity=2
        )
        for seq in (4, 3, 2):  # all stuck behind missing #1
            feed.submit(record(seq))
        feed.submit(record(1))  # must not deadlock
        feed.close()
        assert seen == [1, 2, 3, 4]

    def test_capacity_must_be_positive(self):
        with pytest.raises(StoreError):
            PipelinedMonitorFeed(lambda r: None, capacity=0)


class TestErrors:
    def test_observer_error_reraised_on_close(self):
        def explode(r):
            raise ValueError("monitor meltdown")

        feed = PipelinedMonitorFeed(explode)
        feed.submit(record(1))
        with pytest.raises(ValueError, match="monitor meltdown"):
            feed.close()

    def test_observer_error_reraised_on_later_submit(self):
        def explode(r):
            raise ValueError("monitor meltdown")

        feed = PipelinedMonitorFeed(explode)
        feed.submit(record(1))
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            try:
                feed.submit(record(2))
            except ValueError:
                break
            time.sleep(0.001)
        else:
            pytest.fail("observer error never surfaced to submit")
        with pytest.raises(ValueError):
            feed.close()

    def test_error_stops_observation_but_not_draining(self):
        seen = []

        def explode_once(r):
            if r.commit_ts == 1:
                raise ValueError("meltdown")
            seen.append(r.commit_ts)

        feed = PipelinedMonitorFeed(explode_once)
        feed.submit(record(1))
        feed.submit(record(2))
        with pytest.raises(ValueError):
            feed.close()
        assert seen == []  # observation stopped after the error
        assert feed.lag == 0  # but the queue was fully drained

    def test_flush_reraises_observer_error(self):
        def explode(r):
            raise ValueError("meltdown")

        feed = PipelinedMonitorFeed(explode)
        feed.submit(record(1))
        with pytest.raises(ValueError):
            feed.flush()
        with pytest.raises(ValueError):
            feed.close()


class TestClose:
    def test_close_drains_everything_first(self):
        seen = []

        def slow_observe(r):
            time.sleep(0.002)
            seen.append(r.commit_ts)

        feed = PipelinedMonitorFeed(slow_observe)
        for seq in range(1, 21):
            feed.submit(record(seq))
        feed.close()
        assert seen == list(range(1, 21))

    def test_submit_after_close_raises(self):
        feed = PipelinedMonitorFeed(lambda r: None)
        feed.close()
        with pytest.raises(FeedClosed):
            feed.submit(record(1))

    def test_close_is_idempotent(self):
        feed = PipelinedMonitorFeed(lambda r: None)
        feed.submit(record(1))
        feed.close()
        feed.close()

    def test_close_with_sequence_gap_raises(self):
        feed = PipelinedMonitorFeed(lambda r: None)
        feed.submit(record(2))  # #1 never arrives
        with pytest.raises(StoreError, match="sequence gap"):
            feed.close()


class TestServiceIntegration:
    def test_pipelined_run_collects_violations_async(self):
        """An SI engine certified against SER through the pipelined
        feed: write skew still gets flagged, just asynchronously."""
        engine = SIEngine({"x": 1, "y": 1})
        service = TransactionService.certified(
            engine, model="SER", monitor_mode="pipelined"
        )
        s1, s2 = service.session("s1"), service.session("s2")
        s1.begin(), s2.begin()
        s1.read("x"), s1.read("y")
        s2.read("x"), s2.read("y")
        s1.write("x", -1)
        s2.write("y", -1)
        out1 = s1.commit()
        out2 = s2.commit()
        # Pipelined outcomes never carry the verdict inline.
        assert out1.violation is None and out2.violation is None
        service.drain()
        assert len(service.violations) == 1
        service.close()

    def test_pipelined_service_close_is_idempotent(self):
        mix = smallbank_mix()
        engine = SIEngine(dict(mix.initial))
        with TransactionService.certified(
            engine, model="SI", monitor_mode="pipelined"
        ) as service:
            LoadGenerator(
                service, mix, workers=2, transactions_per_worker=5
            ).run()
        service.close()  # the context manager already closed it

    def test_sync_mode_has_no_feed(self):
        engine = SIEngine({"x": 0})
        service = TransactionService.certified(engine, model="SI")
        assert service._feed is None
        service.drain()  # no-ops
        service.close()

    def test_unknown_monitor_mode_rejected(self):
        engine = SIEngine({"x": 0})
        with pytest.raises(StoreError):
            TransactionService(engine, monitor_mode="async")
