"""Unit tests for transaction programs and the deterministic scheduler."""

import pytest

from repro.core.errors import ScheduleError
from repro.mvcc.psi import PSIEngine
from repro.mvcc.runtime import (
    DELIVER,
    ReadOp,
    Scheduler,
    WriteOp,
    run_sequential,
)
from repro.mvcc.si import SIEngine
from repro.mvcc.workloads import (
    deposit_program,
    lost_update_sessions,
    withdraw_program,
    write_skew_sessions,
)


class TestStepping:
    def test_step_advances_one_operation(self):
        engine = SIEngine({"acct": 0})
        sched = Scheduler(engine, {"s": [deposit_program("acct", 10)]})
        sched.step("s")  # read
        assert engine.stats.commits == 0
        sched.step("s")  # write
        sched.step("s")  # commit
        assert engine.stats.commits == 1
        assert engine.store.latest("acct").value == 10

    def test_step_on_finished_session_rejected(self):
        engine = SIEngine({"acct": 0})
        sched = Scheduler(engine, {"s": [deposit_program("acct", 10)]})
        sched.run_round_robin()
        with pytest.raises(ScheduleError):
            sched.step("s")

    def test_unknown_session_in_schedule_rejected(self):
        engine = SIEngine({"acct": 0})
        sched = Scheduler(engine, {"s": [deposit_program("acct", 10)]})
        with pytest.raises(ScheduleError):
            sched.run_schedule(["nope"])

    def test_invalid_yield_rejected(self):
        def bad_program():
            yield "not-an-op"

        engine = SIEngine({"acct": 0})
        sched = Scheduler(engine, {"s": [bad_program]})
        with pytest.raises(ScheduleError):
            sched.step("s")


class TestRetryDiscipline:
    def test_aborted_transaction_resubmitted(self):
        engine = SIEngine({"acct": 0})
        sched = Scheduler(engine, lost_update_sessions())
        # Interleave so both read before either commits; one aborts and
        # is retried, so both deposits eventually land.
        result = sched.run_schedule(
            ["alice", "alice", "bob", "bob", "alice", "bob"]
        )
        assert result.commits == 2
        assert result.aborts == 1
        assert engine.store.latest("acct").value == 75

    def test_retry_cap_raises(self):
        # A program that always write-conflicts with an already-committed
        # value can still succeed; force livelock instead with max_retries=0
        # and a guaranteed conflict.
        engine = SIEngine({"acct": 0})
        sched = Scheduler(engine, lost_update_sessions(), max_retries=0)
        with pytest.raises(ScheduleError):
            sched.run_schedule(
                ["alice", "alice", "bob", "bob", "alice", "bob"]
            )


class TestWholeRuns:
    def test_run_round_robin_completes(self):
        engine = SIEngine({"acct1": 70, "acct2": 80})
        sched = Scheduler(engine, write_skew_sessions())
        result = sched.run_round_robin()
        assert result.commits == 2
        assert sched.is_finished()

    def test_run_random_deterministic_per_seed(self):
        def run(seed):
            engine = SIEngine({"acct1": 70, "acct2": 80})
            Scheduler(engine, write_skew_sessions()).run_random(seed)
            return [
                (r.tid, r.session, tuple(r.events)) for r in engine.committed
            ]

        assert run(7) == run(7)

    def test_run_sequential_is_serial(self):
        engine = SIEngine({"acct1": 70, "acct2": 80})
        run_sequential(engine, write_skew_sessions())
        # Serial execution: the second withdrawal sees the first, so only
        # one withdrawal can pass the balance check... with 70+80=150 and
        # withdrawal of 100, after one withdrawal the balance is 50: the
        # second check fails and writes nothing.
        values = {
            obj: engine.store.latest(obj).value
            for obj in engine.store.objects
        }
        assert sorted(values.values()) in ([-30, 80], [-20, 70])

    def test_interleaved_write_skew_goes_negative(self):
        engine = SIEngine({"acct1": 70, "acct2": 80})
        sched = Scheduler(engine, write_skew_sessions())
        sched.run_schedule(["alice", "alice", "bob", "bob"])
        values = {
            obj: engine.store.latest(obj).value
            for obj in engine.store.objects
        }
        assert sum(values.values()) < 0  # the write-skew outcome

    def test_steps_counted(self):
        engine = SIEngine({"acct": 0})
        sched = Scheduler(engine, {"s": [deposit_program("acct", 1)]})
        result = sched.run_round_robin()
        assert result.steps == 3  # read, write, commit


class TestDeliverEntries:
    def test_deliver_entry_in_schedule(self):
        engine = PSIEngine({"x": 0})
        engine.replica_of("r")

        def writer():
            yield WriteOp("x", 1)

        def reader():
            yield ReadOp("x")

        sched = Scheduler(engine, {"w": [writer], "r": [reader]})
        sched.run_schedule(["w", "w", DELIVER, "r", "r"])
        rec = [r for r in engine.committed if r.session == "r"][0]
        read_event = rec.events[0]
        assert read_event.value == 1  # delivery happened before the read

    def test_deliver_one_noop_on_si_engine(self):
        engine = SIEngine({"x": 0})
        sched = Scheduler(engine, {"s": [deposit_program("x", 1)]})
        assert sched.deliver_one() is False
