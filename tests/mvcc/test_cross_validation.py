"""Cross-validation of the operational engines against the theory.

These are the load-bearing properties tying Sections 1–4 together:

* every SI-engine run satisfies the SI axioms, and its dependency graph is
  in GraphSI (Theorem 10(ii) made operational);
* every serializable-engine run is in GraphSER;
* every PSI-engine run satisfies the PSI axioms and lands in GraphPSI;
* engine histories are accepted by the exact membership oracle.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.characterisation.membership import (
    classify_history,
    search_space_size,
)
from repro.core.models import PSI, SER, SI
from repro.graphs.classify import in_graph_psi, in_graph_ser, in_graph_si
from repro.graphs.extraction import graph_of
from repro.mvcc.psi import PSIEngine
from repro.mvcc.runtime import Scheduler
from repro.mvcc.serializable import SerializableEngine
from repro.mvcc.si import SIEngine
from repro.mvcc.workloads import random_workload

seeds = st.integers(min_value=0, max_value=10_000)

relaxed = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@relaxed
@given(seeds)
def test_si_runs_satisfy_si_axioms(seed):
    wl = random_workload(seed)
    engine = SIEngine(wl.initial)
    Scheduler(engine, wl.sessions).run_random(seed)
    x = engine.abstract_execution()
    assert SI.satisfied_by(x), SI.explain(x)
    assert in_graph_si(graph_of(x))


@relaxed
@given(seeds)
def test_serializable_runs_in_graph_ser(seed):
    wl = random_workload(seed)
    engine = SerializableEngine(wl.initial)
    Scheduler(engine, wl.sessions).run_random(seed)
    x = engine.abstract_execution()
    assert SER.satisfied_by(x) or in_graph_ser(graph_of(x))
    assert in_graph_ser(graph_of(x))


@relaxed
@given(seeds)
def test_psi_runs_satisfy_psi_axioms(seed):
    wl = random_workload(seed)
    engine = PSIEngine(wl.initial)
    Scheduler(engine, wl.sessions).run_random(seed, deliver_probability=0.3)
    x = engine.abstract_execution()
    assert PSI.satisfied_by(x), PSI.explain(x)
    assert in_graph_psi(graph_of(x))


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seeds)
def test_si_histories_accepted_by_oracle(seed):
    wl = random_workload(
        seed, sessions=2, transactions_per_session=2, objects=3
    )
    engine = SIEngine(wl.initial)
    Scheduler(engine, wl.sessions).run_random(seed)
    history = engine.history()
    if search_space_size(history, init_tid="t_init") > 5000:
        return  # keep the exact oracle tractable
    got = classify_history(history, init_tid="t_init")
    assert got["SI"], "SI engine produced a history outside HistSI"
    assert got["PSI"]


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seeds)
def test_serializable_histories_accepted_by_oracle(seed):
    wl = random_workload(
        seed, sessions=2, transactions_per_session=2, objects=3
    )
    engine = SerializableEngine(wl.initial)
    Scheduler(engine, wl.sessions).run_random(seed)
    history = engine.history()
    if search_space_size(history, init_tid="t_init") > 5000:
        return
    got = classify_history(history, init_tid="t_init")
    assert got["SER"], "SER engine produced a non-serializable history"


@relaxed
@given(seeds)
def test_engine_histories_internally_consistent(seed):
    wl = random_workload(seed)
    for engine_cls in (SIEngine, SerializableEngine, PSIEngine):
        engine = engine_cls(wl.initial)
        Scheduler(engine, wl.sessions).run_random(seed)
        assert engine.history().is_internally_consistent()


@relaxed
@given(seeds)
def test_psi_auto_deliver_behaves_like_si(seed):
    # With eager delivery and one replica per session, PSI runs satisfy
    # PREFIX as well (every snapshot is a commit-prefix when deliveries
    # are immediate and sessions serial).
    wl = random_workload(seed, sessions=2, transactions_per_session=2)
    engine = PSIEngine(wl.initial, auto_deliver=True)
    scheduler = Scheduler(engine, wl.sessions)
    # Serial execution: one session at a time.
    for name in sorted(wl.sessions):
        while name in scheduler.runnable_sessions():
            scheduler.step(name)
    x = engine.abstract_execution()
    assert SI.satisfied_by(x), SI.explain(x)
