"""Failure injection: §5's client assumptions under simulated crashes.

"If a transaction initiated by a program piece aborts, it will be
resubmitted repeatedly until it commits, and, if a piece is aborted due
to system failure, it will be restarted."  The scheduler's crash
injection exercises the restart path; the invariants: every program
still commits exactly once, results are equivalent to a crash-free run
modulo scheduling, and all recorded behaviours stay within the model.
"""

import pytest

from repro.characterisation import classify_history
from repro.core.models import SI
from repro.graphs import graph_of, in_graph_si
from repro.mvcc import Scheduler, SIEngine
from repro.mvcc.workloads import (
    deposit_program,
    disjoint_counter_workload,
    random_workload,
)


class TestCrashMechanics:
    def test_manual_crash_restarts_program(self):
        engine = SIEngine({"acct": 0})
        sched = Scheduler(engine, {"s": [deposit_program("acct", 10)]})
        sched.step("s")  # read
        sched.crash("s")
        assert sched.crashes == 1
        assert engine.stats.aborts == 1
        # The program restarts and still commits.
        sched.run_round_robin()
        assert engine.stats.commits == 1
        assert engine.store.latest("acct").value == 10

    def test_crash_without_inflight_transaction_is_noop(self):
        engine = SIEngine({"acct": 0})
        sched = Scheduler(engine, {"s": [deposit_program("acct", 10)]})
        sched.crash("s")
        assert sched.crashes == 0

    def test_crashed_writes_never_visible(self):
        engine = SIEngine({"acct": 0})
        sched = Scheduler(engine, {"s": [deposit_program("acct", 10)]})
        sched.step("s")  # read
        sched.step("s")  # write (buffered)
        sched.crash("s")
        assert engine.store.latest("acct").value == 0
        # And a fresh reader sees nothing of the crashed attempt.
        probe = engine.begin("probe")
        assert engine.read(probe, "acct") == 0
        engine.abort(probe)

    def test_crash_reason_recorded(self):
        engine = SIEngine({"acct": 0})
        sched = Scheduler(engine, {"s": [deposit_program("acct", 10)]})
        sched.step("s")
        sched.crash("s")
        assert "simulated crash" in engine.stats.abort_reasons


class TestCrashyRuns:
    @pytest.mark.parametrize("seed", range(5))
    def test_all_work_completes_despite_crashes(self, seed):
        wl = disjoint_counter_workload(sessions=3, increments=3)
        engine = SIEngine(wl.initial)
        sched = Scheduler(
            engine, wl.sessions, crash_rate=0.2, crash_seed=seed
        )
        result = sched.run_random(seed)
        assert result.commits == 9
        total = sum(
            engine.store.latest(obj).value for obj in engine.store.objects
        )
        assert total == 9  # every increment applied exactly once

    @pytest.mark.parametrize("seed", range(5))
    def test_crashy_runs_stay_in_exec_si(self, seed):
        wl = random_workload(
            seed, sessions=3, transactions_per_session=3, objects=3
        )
        engine = SIEngine(wl.initial)
        sched = Scheduler(
            engine, wl.sessions, crash_rate=0.15, crash_seed=seed
        )
        sched.run_random(seed)
        x = engine.abstract_execution()
        assert SI.satisfied_by(x), SI.explain(x)
        assert in_graph_si(graph_of(x))

    def test_crashes_actually_injected(self):
        wl = disjoint_counter_workload(sessions=4, increments=5)
        engine = SIEngine(wl.initial)
        sched = Scheduler(
            engine, wl.sessions, crash_rate=0.3, crash_seed=1
        )
        sched.run_random(1)
        assert sched.crashes > 0
        assert engine.stats.aborts >= sched.crashes

    def test_crashy_small_history_in_hist_si(self):
        wl = random_workload(
            2, sessions=2, transactions_per_session=2, objects=2,
            ops_per_transaction=(1, 2),
        )
        engine = SIEngine(wl.initial)
        sched = Scheduler(
            engine, wl.sessions, crash_rate=0.25, crash_seed=3
        )
        sched.run_random(3)
        got = classify_history(engine.history(), init_tid="t_init")
        assert got["SI"]
