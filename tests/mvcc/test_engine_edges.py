"""Edge-case tests across engines: vacuum inheritance, shared replicas,
and reconstruction details."""

import pytest

from repro.core.errors import TransactionAborted
from repro.core.models import PSI, SI
from repro.mvcc import (
    PSIEngine,
    Scheduler,
    SerializableEngine,
    SIEngine,
)
from repro.mvcc.workloads import deposit_program


class TestVacuumOnSerializableEngine:
    def test_occ_engine_inherits_vacuum(self):
        engine = SerializableEngine({"x": 0})
        t = engine.begin("s")
        engine.read(t, "x")
        engine.write(t, "x", 1)
        engine.commit(t)
        assert engine.vacuum() == 1

    def test_aggressive_vacuum_aborts_occ_reader(self):
        engine = SerializableEngine({"x": 0})
        old = engine.begin("old")
        w = engine.begin("w")
        engine.write(w, "x", 1)
        engine.commit(w)
        engine.vacuum(aggressive=True)
        with pytest.raises(TransactionAborted):
            engine.read(old, "x")


class TestSharedReplicaPSI:
    def test_two_sessions_one_replica_see_each_other(self):
        engine = PSIEngine(
            {"x": 0}, session_replicas={"a": "dc", "b": "dc"}
        )
        t = engine.begin("a")
        engine.write(t, "x", 1)
        engine.commit(t)
        t2 = engine.begin("b")
        assert engine.read(t2, "x") == 1
        engine.commit(t2)
        assert PSI.satisfied_by(engine.abstract_execution())

    def test_shared_replica_conflicts_still_detected(self):
        engine = PSIEngine(
            {"x": 0}, session_replicas={"a": "dc", "b": "dc"}
        )
        t1 = engine.begin("a")
        t2 = engine.begin("b")
        engine.write(t1, "x", 1)
        engine.write(t2, "x", 2)
        engine.commit(t1)
        with pytest.raises(TransactionAborted):
            engine.commit(t2)


class TestReconstructionDetails:
    def test_history_session_order_is_commit_order_within_session(self):
        engine = SIEngine({"x": 0})
        sched = Scheduler(
            engine,
            {"s": [deposit_program("x", 1), deposit_program("x", 2)]},
        )
        sched.run_round_robin()
        h = engine.history()
        session = h.sessions[1]
        assert len(session) == 2
        # Second transaction read the first's write.
        assert session[1].external_read("x") == 1

    def test_abstract_execution_includes_init_everywhere(self):
        engine = SIEngine({"x": 0})
        t = engine.begin("s")
        engine.read(t, "x")
        engine.commit(t)
        x = engine.abstract_execution()
        init = x.history.by_tid("t_init")
        for txn in x.history.transactions:
            if txn != init:
                assert (init, txn) in x.vis

    def test_engine_run_satisfies_si_after_mixed_abort_paths(self):
        engine = SIEngine({"x": 0, "y": 0})
        # Client abort, conflict abort, then successes.
        t = engine.begin("a")
        engine.write(t, "x", 1)
        engine.abort(t)
        t1 = engine.begin("a")
        t2 = engine.begin("b")
        engine.write(t1, "y", 1)
        engine.write(t2, "y", 2)
        engine.commit(t1)
        with pytest.raises(TransactionAborted):
            engine.commit(t2)
        t3 = engine.begin("b")
        assert engine.read(t3, "y") == 1
        engine.commit(t3)
        assert SI.satisfied_by(engine.abstract_execution())


class TestCLIVersion:
    def test_version_flag(self, capsys):
        from repro.io.cli import main

        assert main(["--version"]) == 0
        assert "repro 1.0.0" in capsys.readouterr().out
