"""Unit tests for the replicated parallel-SI engine."""

import pytest

from repro.core.errors import ScheduleError, TransactionAborted
from repro.core.models import PSI, SI
from repro.graphs.classify import in_graph_psi, in_graph_si
from repro.graphs.extraction import graph_of
from repro.mvcc.psi import PSIEngine


@pytest.fixture
def engine():
    return PSIEngine({"x": 0, "y": 0})


def commit_write(engine, session, obj, value):
    t = engine.begin(session)
    engine.write(t, obj, value)
    return engine.commit(t)


class TestReplication:
    def test_local_commit_visible_locally(self, engine):
        commit_write(engine, "s1", "x", 1)
        t = engine.begin("s1")
        assert engine.read(t, "x") == 1
        engine.commit(t)

    def test_remote_commit_invisible_until_delivered(self, engine):
        # Create s2's replica first so it exists before s1 commits.
        engine.replica_of("s2")
        rec = commit_write(engine, "s1", "x", 1)
        t = engine.begin("s2")
        assert engine.read(t, "x") == 0
        engine.commit(t)
        engine.deliver(rec.tid, "r_s2")
        t2 = engine.begin("s2")
        assert engine.read(t2, "x") == 1
        engine.commit(t2)

    def test_backfill_for_late_replicas(self, engine):
        rec = commit_write(engine, "s1", "x", 1)
        engine.replica_of("s2")  # created after the commit
        assert (rec.tid, "r_s2") in engine.pending_deliveries()

    def test_auto_deliver_mode(self):
        engine = PSIEngine({"x": 0}, auto_deliver=True)
        engine.replica_of("s2")
        commit_write(engine, "s1", "x", 1)
        t = engine.begin("s2")
        assert engine.read(t, "x") == 1
        engine.commit(t)

    def test_session_pinning(self):
        engine = PSIEngine(
            {"x": 0}, session_replicas={"s1": "dc1", "s2": "dc1"}
        )
        commit_write(engine, "s1", "x", 1)
        t = engine.begin("s2")
        assert engine.read(t, "x") == 1  # same replica
        engine.commit(t)


class TestCausalDelivery:
    def test_delivery_respects_causality(self, engine):
        engine.replica_of("s2")
        engine.replica_of("s3")
        rec1 = commit_write(engine, "s1", "x", 1)
        engine.deliver(rec1.tid, "r_s2")
        t = engine.begin("s2")
        assert engine.read(t, "x") == 1
        engine.write(t, "y", 2)
        rec2 = engine.commit(t)
        # rec2 observed rec1; delivering rec2 to s3 before rec1 must fail.
        assert not engine.deliverable(rec2.tid, "r_s3")
        with pytest.raises(ScheduleError):
            engine.deliver(rec2.tid, "r_s3")
        engine.deliver(rec1.tid, "r_s3")
        engine.deliver(rec2.tid, "r_s3")

    def test_deliver_all_drains_in_causal_order(self, engine):
        engine.replica_of("s2")
        engine.replica_of("s3")
        rec1 = commit_write(engine, "s1", "x", 1)
        engine.deliver(rec1.tid, "r_s2")
        t = engine.begin("s2")
        engine.read(t, "x")
        engine.write(t, "y", 2)
        engine.commit(t)
        count = engine.deliver_all()
        assert count >= 2
        assert engine.pending_deliveries() == []

    def test_unknown_delivery_rejected(self, engine):
        with pytest.raises(ScheduleError):
            engine.deliver("t99", "r_s1")


class TestConflictDetection:
    def test_concurrent_writers_conflict_globally(self, engine):
        engine.replica_of("s2")
        t1 = engine.begin("s1")
        t2 = engine.begin("s2")
        engine.write(t1, "x", 1)
        engine.write(t2, "x", 2)
        engine.commit(t1)
        with pytest.raises(TransactionAborted) as excinfo:
            engine.commit(t2)
        assert "write-write conflict" in str(excinfo.value)

    def test_undelivered_writer_conflicts(self, engine):
        # s1 commits x; s2 never received it, writes x -> abort.
        engine.replica_of("s2")
        commit_write(engine, "s1", "x", 1)
        t = engine.begin("s2")
        engine.write(t, "x", 2)
        with pytest.raises(TransactionAborted):
            engine.commit(t)

    def test_delivered_writer_no_conflict(self, engine):
        engine.replica_of("s2")
        rec = commit_write(engine, "s1", "x", 1)
        engine.deliver(rec.tid, "r_s2")
        t = engine.begin("s2")
        engine.write(t, "x", 2)
        engine.commit(t)  # writer visible: fine
        assert engine.stats.commits == 2


class TestLongFork:
    def test_long_fork_reproducible(self, engine):
        """The Figure 2(c) anomaly: readers on different replicas observe
        the two writes in opposite orders."""
        engine.replica_of("r1")
        engine.replica_of("r2")
        rec_w1 = commit_write(engine, "w1", "x", 1)
        rec_w2 = commit_write(engine, "w2", "y", 1)
        engine.deliver(rec_w1.tid, "r_r1")
        engine.deliver(rec_w2.tid, "r_r2")
        t1 = engine.begin("r1")
        assert engine.read(t1, "x") == 1
        assert engine.read(t1, "y") == 0
        engine.commit(t1)
        t2 = engine.begin("r2")
        assert engine.read(t2, "x") == 0
        assert engine.read(t2, "y") == 1
        engine.commit(t2)
        x = engine.abstract_execution()
        assert PSI.satisfied_by(x)
        assert not SI.satisfied_by(x)
        g = graph_of(x)
        assert in_graph_psi(g)
        assert not in_graph_si(g)

    def test_runs_always_in_exec_psi(self, engine):
        engine.replica_of("s2")
        rec = commit_write(engine, "s1", "x", 1)
        t = engine.begin("s2")
        engine.read(t, "x")
        engine.write(t, "y", 5)
        engine.commit(t)
        engine.deliver_all()
        assert PSI.satisfied_by(engine.abstract_execution())
