"""Unit tests for the workload generators."""

import pytest

from repro.mvcc.runtime import ReadOp, Scheduler, WriteOp
from repro.mvcc.si import SIEngine
from repro.mvcc.workloads import (
    blind_write_program,
    chopped_transfer_session,
    contended_counter_workload,
    deposit_program,
    disjoint_counter_workload,
    long_fork_sessions,
    lookup_program,
    random_workload,
    read_pair_program,
    withdraw_program,
)


def ops_of(program):
    """Drive a program standalone, answering reads with 0."""
    gen = program()
    ops = []
    to_send = None
    while True:
        try:
            op = gen.send(to_send)
        except StopIteration:
            return ops
        ops.append(op)
        to_send = 0 if isinstance(op, ReadOp) else None


class TestScenarioPrograms:
    def test_withdraw_checks_balance(self):
        # With both balances at 0 the check fails: no write.
        ops = ops_of(withdraw_program("a", "b"))
        assert all(isinstance(op, ReadOp) for op in ops)

    def test_deposit_reads_then_writes(self):
        ops = ops_of(deposit_program("acct", 10))
        assert isinstance(ops[0], ReadOp)
        assert isinstance(ops[1], WriteOp)
        assert ops[1].value == 10

    def test_blind_write(self):
        ops = ops_of(blind_write_program("x", 3))
        assert ops == [WriteOp("x", 3)]

    def test_read_pair_order(self):
        ops = ops_of(read_pair_program("x", "y"))
        assert [op.obj for op in ops] == ["x", "y"]

    def test_chopped_transfer_two_pieces(self):
        pieces = chopped_transfer_session()
        assert len(pieces) == 2
        debit = ops_of(pieces[0])
        credit = ops_of(pieces[1])
        assert debit[1].value == -100
        assert credit[1].value == 100

    def test_lookup_program_reads_all(self):
        ops = ops_of(lookup_program("a", "b", "c"))
        assert [op.obj for op in ops] == ["a", "b", "c"]

    def test_long_fork_sessions_shape(self):
        sessions = long_fork_sessions()
        assert set(sessions) == {"w1", "w2", "r1", "r2"}


class TestRandomWorkloads:
    def test_deterministic_per_seed(self):
        def trace(seed):
            wl = random_workload(seed)
            engine = SIEngine(wl.initial)
            Scheduler(engine, wl.sessions).run_random(seed)
            return [(r.session, tuple(r.events)) for r in engine.committed]

        assert trace(3) == trace(3)

    def test_different_seeds_differ(self):
        wl1 = random_workload(1)
        wl2 = random_workload(2)
        e1 = SIEngine(wl1.initial)
        e2 = SIEngine(wl2.initial)
        Scheduler(e1, wl1.sessions).run_round_robin()
        Scheduler(e2, wl2.sessions).run_round_robin()
        t1 = [tuple(r.events) for r in e1.committed]
        t2 = [tuple(r.events) for r in e2.committed]
        assert t1 != t2

    def test_shape_parameters_respected(self):
        wl = random_workload(0, sessions=4, transactions_per_session=2,
                             objects=5)
        assert len(wl.sessions) == 4
        assert all(len(progs) == 2 for progs in wl.sessions.values())
        assert len(wl.initial) == 5

    def test_written_values_unique(self):
        wl = random_workload(5, sessions=3, transactions_per_session=3)
        engine = SIEngine(wl.initial)
        Scheduler(engine, wl.sessions).run_round_robin()
        written = [
            e.value
            for r in engine.committed
            for e in r.events
            if e.is_write
        ]
        assert len(written) == len(set(written))

    def test_contended_counter_workload_runs(self):
        wl = contended_counter_workload(0, sessions=3, increments=2)
        engine = SIEngine(wl.initial)
        result = Scheduler(engine, wl.sessions).run_random(0)
        assert result.commits == 6
        total = sum(
            engine.store.latest(obj).value for obj in engine.store.objects
        )
        assert total == 6  # no lost updates under SI

    def test_disjoint_counter_workload_no_aborts(self):
        wl = disjoint_counter_workload(sessions=3, increments=2)
        engine = SIEngine(wl.initial)
        result = Scheduler(engine, wl.sessions).run_random(0)
        assert result.aborts == 0
        assert result.commits == 6
