"""Lock-mode equivalence: striped and global-lock runs are identical.

The fine-grained locking restructure must not change any *semantics* —
under the deterministic scheduler (single thread, caller-decided
interleaving) an engine in ``striped`` mode and one in ``global-lock``
mode must produce byte-identical reconstructions: the same histories,
the same abstract executions, the same commit/abort counts, the same
recorded anomalies.  Any divergence means the restructure altered
visibility or validation, not just locking.
"""

import pytest

from repro.mvcc import (
    LOCK_MODES,
    PSIEngine,
    Scheduler,
    SerializableEngine,
    SIEngine,
    TwoPhaseLockingEngine,
)
from repro.mvcc.workloads import random_workload

ENGINES = {
    "SI": SIEngine,
    "SER-OCC": SerializableEngine,
    "SER-2PL": TwoPhaseLockingEngine,
    "PSI": PSIEngine,
}


def _run(engine_factory, lock_mode, seed):
    wl = random_workload(
        seed, sessions=4, transactions_per_session=5, objects=3
    )
    engine = engine_factory(wl.initial, lock_mode=lock_mode)
    Scheduler(engine, wl.sessions).run_random(seed)
    return engine


def _fingerprint(engine):
    """Everything reconstruction-visible, in canonical form."""
    history = engine.history()
    execution = engine.abstract_execution()
    return {
        "committed": [
            (r.tid, r.session, r.start_ts, r.commit_ts, r.events,
             tuple(sorted(r.writes.items())),
             tuple(sorted(r.visible_tids)))
            for r in sorted(engine.committed, key=lambda r: r.commit_ts)
        ],
        "history": repr(history),
        "so": sorted(
            (a.tid, b.tid) for a, b in history.session_order.pairs
        ),
        "vis": sorted(
            (a.tid, b.tid) for a, b in execution.vis.pairs
        ),
        "co": sorted(
            (a.tid, b.tid) for a, b in execution.co.pairs
        ),
        "commits": engine.stats.commits,
        "aborts": engine.stats.aborts,
    }


class TestLockModeEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("engine_name", sorted(ENGINES))
    def test_scheduled_runs_identical_across_lock_modes(
        self, engine_name, seed
    ):
        factory = ENGINES[engine_name]
        striped = _run(factory, "striped", seed)
        global_lock = _run(factory, "global-lock", seed)
        assert _fingerprint(striped) == _fingerprint(global_lock)

    def test_lock_modes_exported(self):
        assert set(LOCK_MODES) == {"striped", "global-lock"}

    def test_unknown_lock_mode_rejected(self):
        from repro.core.errors import StoreError

        with pytest.raises(StoreError):
            SIEngine({"x": 0}, lock_mode="optimistic")


class TestAnomalyReproductions:
    """The classic anomaly demonstrations come out the same way in both
    lock modes (these drive the engines step-by-step, no scheduler)."""

    @pytest.mark.parametrize("lock_mode", LOCK_MODES)
    def test_write_skew_admitted_by_si(self, lock_mode):
        engine = SIEngine({"x": 1, "y": 1}, lock_mode=lock_mode)
        t1 = engine.begin("s1")
        t2 = engine.begin("s2")
        assert engine.read(t1, "x") + engine.read(t1, "y") == 2
        assert engine.read(t2, "x") + engine.read(t2, "y") == 2
        engine.write(t1, "x", -1)
        engine.write(t2, "y", -1)
        engine.commit(t1)
        engine.commit(t2)  # disjoint write sets: both commit under SI
        assert engine.store.latest("x").value == -1
        assert engine.store.latest("y").value == -1

    @pytest.mark.parametrize("lock_mode", LOCK_MODES)
    def test_write_skew_rejected_by_serializable(self, lock_mode):
        from repro.core.errors import TransactionAborted

        engine = SerializableEngine({"x": 1, "y": 1}, lock_mode=lock_mode)
        t1 = engine.begin("s1")
        t2 = engine.begin("s2")
        engine.read(t1, "x"), engine.read(t1, "y")
        engine.read(t2, "x"), engine.read(t2, "y")
        engine.write(t1, "x", -1)
        engine.write(t2, "y", -1)
        engine.commit(t1)
        with pytest.raises(TransactionAborted):
            engine.commit(t2)

    @pytest.mark.parametrize("lock_mode", LOCK_MODES)
    def test_lost_update_rejected_by_si(self, lock_mode):
        from repro.core.errors import TransactionAborted

        engine = SIEngine({"x": 0}, lock_mode=lock_mode)
        t1 = engine.begin("s1")
        t2 = engine.begin("s2")
        engine.write(t1, "x", engine.read(t1, "x") + 1)
        engine.write(t2, "x", engine.read(t2, "x") + 1)
        engine.commit(t1)
        with pytest.raises(TransactionAborted):
            engine.commit(t2)  # first committer wins
