"""Thread-safety of the engines: hammer one engine from many threads.

The engines were originally single-threaded with caller-decided
interleaving; the service layer relies on each public engine operation
being one atomic step under :attr:`BaseEngine.lock`.  These tests drive
the engines directly from real threads (no scheduler) and check the
invariants that would break under a lost update or a torn commit:

* every increment performed by a committed transaction is reflected in
  the final store state (no lost updates despite races);
* transaction ids and commit timestamps are unique and gapless;
* the reconstructed run still satisfies the engine's own model when
  replayed through the offline monitor.
"""

import threading

import pytest

from repro.core.errors import TransactionAborted
from repro.monitor import watch_engine
from repro.mvcc import (
    PSIEngine,
    SerializableEngine,
    SIEngine,
    TwoPhaseLockingEngine,
)

THREADS = 8
TXNS_PER_THREAD = 25

ENGINES = {
    "SI": SIEngine,
    "SER-OCC": SerializableEngine,
    "SER-2PL": TwoPhaseLockingEngine,
    "PSI": lambda initial, **kw: PSIEngine(
        initial, auto_deliver=True, **kw
    ),
}

LOCK_MODES = ("striped", "global-lock")


def _increment_until_committed(engine, session, obj, max_attempts=10_000):
    """One read-modify-write increment with §5's retry discipline."""
    for _ in range(max_attempts):
        ctx = engine.begin(session)
        try:
            value = engine.read(ctx, obj)
            engine.write(ctx, obj, value + 1)
            engine.commit(ctx)
            return
        except TransactionAborted:
            continue
    raise AssertionError(f"session {session} livelocked on {obj}")


def _hammer(engine, objects_for):
    """Run THREADS threads, each incrementing its objects repeatedly."""
    errors = []

    def worker(i):
        session = f"client-{i}"
        try:
            for n in range(TXNS_PER_THREAD):
                _increment_until_committed(
                    engine, session, objects_for(i, n)
                )
        except Exception as exc:  # noqa: BLE001 - surfaced to the test
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors


@pytest.mark.parametrize("lock_mode", LOCK_MODES)
@pytest.mark.parametrize("engine_name", sorted(ENGINES))
def test_disjoint_hammer_loses_no_updates(engine_name, lock_mode):
    initial = {f"c{i}": 0 for i in range(THREADS)}
    engine = ENGINES[engine_name](initial, lock_mode=lock_mode)
    _hammer(engine, lambda i, n: f"c{i}")
    assert engine.stats.commits == THREADS * TXNS_PER_THREAD
    final = {obj: _latest_value(engine, obj) for obj in initial}
    assert final == {f"c{i}": TXNS_PER_THREAD for i in range(THREADS)}


@pytest.mark.parametrize("lock_mode", LOCK_MODES)
@pytest.mark.parametrize("engine_name", ["SI", "SER-OCC", "SER-2PL"])
def test_contended_hammer_loses_no_updates(engine_name, lock_mode):
    engine = ENGINES[engine_name]({"counter": 0}, lock_mode=lock_mode)
    _hammer(engine, lambda i, n: "counter")
    assert engine.stats.commits == THREADS * TXNS_PER_THREAD
    assert _latest_value(engine, "counter") == THREADS * TXNS_PER_THREAD


@pytest.mark.parametrize("lock_mode", LOCK_MODES)
def test_tids_and_commit_timestamps_unique_under_contention(lock_mode):
    engine = SIEngine({"counter": 0}, lock_mode=lock_mode)
    _hammer(engine, lambda i, n: "counter")
    tids = [rec.tid for rec in engine.committed]
    assert len(tids) == len(set(tids))
    stamps = sorted(rec.commit_ts for rec in engine.committed)
    assert stamps == list(range(1, len(stamps) + 1))


def test_threaded_run_still_satisfies_own_model():
    engine = SIEngine({f"c{i}": 0 for i in range(THREADS)})
    _hammer(engine, lambda i, n: f"c{(i + n) % THREADS}")
    monitor, violations = watch_engine(engine, model="SI")
    assert monitor.consistent, violations


def test_concurrent_history_reconstruction_is_safe():
    """history()/abstract_execution() called from one thread while
    other threads keep committing: each call sees a consistent prefix
    of the commit order."""
    engine = SIEngine({f"c{i}": 0 for i in range(THREADS)})
    errors = []
    stop = threading.Event()

    def reconstructor():
        try:
            while not stop.is_set():
                history = engine.history()
                tids = [
                    t.tid for s in history.sessions for t in s
                    if t.tid != engine.init_tid
                ]
                assert len(tids) == len(set(tids))
                engine.abstract_execution()
        except Exception as exc:  # noqa: BLE001 - surfaced to the test
            errors.append(exc)

    observer = threading.Thread(target=reconstructor)
    observer.start()
    try:
        _hammer(engine, lambda i, n: f"c{i}")
    finally:
        stop.set()
        observer.join()
    assert not errors, errors
    final = engine.history()
    committed = [
        t for s in final.sessions for t in s if t.tid != engine.init_tid
    ]
    assert len(committed) == THREADS * TXNS_PER_THREAD


def test_history_cache_reuses_converted_transactions():
    """The incremental reconstruction cache: a transaction converted by
    an earlier history() call is the same object in later calls."""
    engine = SIEngine({"x": 0})
    for n in range(3):
        ctx = engine.begin("s")
        engine.write(ctx, "x", n + 1)
        engine.commit(ctx)
    first = engine.history()
    early = {
        t.tid: t for s in first.sessions for t in s
        if t.tid != engine.init_tid
    }
    for n in range(3, 6):
        ctx = engine.begin("s")
        engine.write(ctx, "x", n + 1)
        engine.commit(ctx)
    second = engine.history()
    later = {
        t.tid: t for s in second.sessions for t in s
        if t.tid != engine.init_tid
    }
    assert len(later) == 6
    for tid, txn in early.items():
        assert later[tid] is txn


def _latest_value(engine, obj):
    if isinstance(engine, PSIEngine):
        # auto_deliver keeps every replica current once threads are done.
        states = {r.state[obj] for r in engine.replicas.values()}
        assert len(states) == 1, states
        return states.pop()
    return engine.store.latest(obj).value
