"""Unit tests for the strict 2PL (no-wait) serializable engine."""

import pytest

from repro.core.errors import TransactionAborted
from repro.core.models import SER
from repro.graphs.classify import in_graph_ser
from repro.graphs.extraction import graph_of
from repro.mvcc.locking import LockMode, LockTable, TwoPhaseLockingEngine
from repro.mvcc.runtime import Scheduler
from repro.mvcc.workloads import (
    random_workload,
    write_skew_sessions,
)


class TestLockTable:
    def test_shared_locks_compatible(self):
        table = LockTable()
        assert table.acquire("t1", "x", LockMode.SHARED)
        assert table.acquire("t2", "x", LockMode.SHARED)
        assert table.holders("x") == {"t1", "t2"}

    def test_exclusive_excludes_everyone(self):
        table = LockTable()
        assert table.acquire("t1", "x", LockMode.EXCLUSIVE)
        assert not table.acquire("t2", "x", LockMode.SHARED)
        assert not table.acquire("t2", "x", LockMode.EXCLUSIVE)

    def test_upgrade_when_sole_reader(self):
        table = LockTable()
        assert table.acquire("t1", "x", LockMode.SHARED)
        assert table.acquire("t1", "x", LockMode.EXCLUSIVE)
        assert not table.acquire("t2", "x", LockMode.SHARED)

    def test_upgrade_blocked_by_other_reader(self):
        table = LockTable()
        table.acquire("t1", "x", LockMode.SHARED)
        table.acquire("t2", "x", LockMode.SHARED)
        assert not table.acquire("t1", "x", LockMode.EXCLUSIVE)

    def test_x_subsumes_s(self):
        table = LockTable()
        table.acquire("t1", "x", LockMode.EXCLUSIVE)
        assert table.acquire("t1", "x", LockMode.SHARED)

    def test_release_all(self):
        table = LockTable()
        table.acquire("t1", "x", LockMode.EXCLUSIVE)
        table.acquire("t1", "y", LockMode.SHARED)
        table.release_all("t1")
        assert table.acquire("t2", "x", LockMode.EXCLUSIVE)
        assert table.acquire("t2", "y", LockMode.EXCLUSIVE)


@pytest.fixture
def engine():
    return TwoPhaseLockingEngine({"x": 0, "y": 0})


class TestNoWaitBehaviour:
    def test_read_read_compatible(self, engine):
        t1 = engine.begin("s1")
        t2 = engine.begin("s2")
        assert engine.read(t1, "x") == 0
        assert engine.read(t2, "x") == 0
        engine.commit(t1)
        engine.commit(t2)

    def test_write_conflict_aborts_immediately(self, engine):
        t1 = engine.begin("s1")
        t2 = engine.begin("s2")
        engine.write(t1, "x", 1)
        with pytest.raises(TransactionAborted) as excinfo:
            engine.write(t2, "x", 2)
        assert "no-wait 2PL" in str(excinfo.value)
        engine.commit(t1)

    def test_read_blocks_writer(self, engine):
        t1 = engine.begin("s1")
        t2 = engine.begin("s2")
        engine.read(t1, "x")
        with pytest.raises(TransactionAborted):
            engine.write(t2, "x", 2)
        engine.commit(t1)

    def test_write_blocks_reader(self, engine):
        t1 = engine.begin("s1")
        t2 = engine.begin("s2")
        engine.write(t1, "x", 1)
        with pytest.raises(TransactionAborted):
            engine.read(t2, "x")
        engine.commit(t1)

    def test_locks_released_on_commit(self, engine):
        t1 = engine.begin("s1")
        engine.write(t1, "x", 1)
        engine.commit(t1)
        t2 = engine.begin("s2")
        assert engine.read(t2, "x") == 1
        engine.commit(t2)

    def test_locks_released_on_abort(self, engine):
        t1 = engine.begin("s1")
        engine.write(t1, "x", 1)
        engine.abort(t1)
        t2 = engine.begin("s2")
        assert engine.read(t2, "x") == 0  # buffered write discarded
        engine.commit(t2)

    def test_write_skew_prevented(self, engine):
        # The lock pattern alone prevents it: t1's S-lock on y blocks
        # t2's X-lock on y (and vice versa) — one aborts at the write.
        t1 = engine.begin("s1")
        t2 = engine.begin("s2")
        engine.read(t1, "y")
        engine.read(t2, "x")
        with pytest.raises(TransactionAborted):
            engine.write(t1, "x", 1)
        engine.write(t2, "y", 2)
        engine.commit(t2)


class TestSerializabilityGuarantee:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_runs_in_graph_ser(self, seed):
        wl = random_workload(seed)
        engine = TwoPhaseLockingEngine(wl.initial)
        Scheduler(engine, wl.sessions).run_random(seed)
        x = engine.abstract_execution()
        assert SER.satisfied_by(x), SER.explain(x)
        assert in_graph_ser(graph_of(x))

    def test_write_skew_workload_serializable_outcome(self):
        engine = TwoPhaseLockingEngine({"acct1": 70, "acct2": 80})
        sched = Scheduler(engine, write_skew_sessions())
        sched.run_schedule(["alice", "alice", "bob", "bob", "alice", "bob"])
        # Retries resolve the conflict; the final state matches a serial
        # order: only one withdrawal passes the balance check.
        balances = {
            obj: engine.store.latest(obj).value
            for obj in engine.store.objects
        }
        assert sum(balances.values()) >= 0
        assert in_graph_ser(graph_of(engine.abstract_execution()))

    def test_abort_reasons_mention_blockers(self, engine):
        t1 = engine.begin("s1")
        t2 = engine.begin("s2")
        engine.write(t1, "x", 1)
        with pytest.raises(TransactionAborted) as excinfo:
            engine.read(t2, "x")
        assert "t1" in str(excinfo.value)
        engine.commit(t1)
