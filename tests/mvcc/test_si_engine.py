"""Unit tests for the SI engine (the paper's idealised algorithm)."""

import pytest

from repro.core.errors import StoreError, TransactionAborted
from repro.core.models import SI
from repro.graphs.classify import in_graph_ser, in_graph_si
from repro.graphs.extraction import graph_of
from repro.mvcc.si import SIEngine


@pytest.fixture
def engine():
    return SIEngine({"x": 0, "y": 0})


class TestSnapshotReads:
    def test_reads_initial_value(self, engine):
        t = engine.begin("s1")
        assert engine.read(t, "x") == 0
        engine.commit(t)

    def test_snapshot_frozen_at_start(self, engine):
        t1 = engine.begin("s1")
        t2 = engine.begin("s2")
        engine.write(t2, "x", 42)
        engine.commit(t2)
        # t1 started before t2 committed: must not see the write.
        assert engine.read(t1, "x") == 0
        engine.commit(t1)

    def test_later_transaction_sees_commit(self, engine):
        t1 = engine.begin("s1")
        engine.write(t1, "x", 42)
        engine.commit(t1)
        t2 = engine.begin("s2")
        assert engine.read(t2, "x") == 42
        engine.commit(t2)

    def test_read_your_own_writes(self, engine):
        t = engine.begin("s1")
        engine.write(t, "x", 7)
        assert engine.read(t, "x") == 7
        engine.commit(t)

    def test_unknown_object_rejected(self, engine):
        t = engine.begin("s1")
        with pytest.raises(StoreError):
            engine.read(t, "z")
        with pytest.raises(StoreError):
            engine.write(t, "z", 1)
        engine.abort(t)


class TestFirstCommitterWins:
    def test_concurrent_writers_conflict(self, engine):
        t1 = engine.begin("s1")
        t2 = engine.begin("s2")
        engine.write(t1, "x", 1)
        engine.write(t2, "x", 2)
        engine.commit(t1)
        with pytest.raises(TransactionAborted) as excinfo:
            engine.commit(t2)
        assert "first committer wins" in str(excinfo.value)
        assert engine.stats.aborts == 1

    def test_disjoint_writes_both_commit(self, engine):
        t1 = engine.begin("s1")
        t2 = engine.begin("s2")
        engine.write(t1, "x", 1)
        engine.write(t2, "y", 2)
        engine.commit(t1)
        engine.commit(t2)
        assert engine.stats.commits == 2

    def test_write_skew_admitted(self, engine):
        # Both read each other's object, write their own: no write-write
        # conflict, so SI commits both (the paper's §1 anomaly).
        t1 = engine.begin("s1")
        t2 = engine.begin("s2")
        engine.read(t1, "x"), engine.read(t1, "y")
        engine.read(t2, "x"), engine.read(t2, "y")
        engine.write(t1, "x", 1)
        engine.write(t2, "y", 2)
        engine.commit(t1)
        engine.commit(t2)  # must NOT raise
        assert engine.stats.commits == 2

    def test_lost_update_prevented(self, engine):
        t1 = engine.begin("s1")
        t2 = engine.begin("s2")
        v1 = engine.read(t1, "x")
        v2 = engine.read(t2, "x")
        engine.write(t1, "x", v1 + 50)
        engine.write(t2, "x", v2 + 25)
        engine.commit(t1)
        with pytest.raises(TransactionAborted):
            engine.commit(t2)


class TestSessionDiscipline:
    def test_one_transaction_per_session(self, engine):
        t = engine.begin("s1")
        with pytest.raises(StoreError):
            engine.begin("s1")
        engine.abort(t)
        engine.begin("s1")  # fine after abort

    def test_operations_after_commit_rejected(self, engine):
        t = engine.begin("s1")
        engine.commit(t)
        with pytest.raises(StoreError):
            engine.read(t, "x")
        with pytest.raises(StoreError):
            engine.commit(t)

    def test_session_reads_own_prior_commits(self, engine):
        t1 = engine.begin("s1")
        engine.write(t1, "x", 5)
        engine.commit(t1)
        t2 = engine.begin("s1")
        assert engine.read(t2, "x") == 5
        engine.commit(t2)


class TestReconstruction:
    def test_history_includes_init_and_sessions(self, engine):
        t1 = engine.begin("s1")
        engine.write(t1, "x", 1)
        engine.commit(t1)
        t2 = engine.begin("s1")
        engine.read(t2, "x")
        engine.commit(t2)
        h = engine.history()
        assert len(h.sessions) == 2  # init + s1
        assert h.sessions[0][0].tid == "t_init"
        assert len(h.sessions[1]) == 2

    def test_aborted_transactions_excluded(self, engine):
        t1 = engine.begin("s1")
        engine.write(t1, "x", 1)
        engine.abort(t1)
        assert len(engine.history()) == 1  # init only

    def test_abstract_execution_in_exec_si(self, engine):
        t1 = engine.begin("s1")
        engine.write(t1, "x", 1)
        engine.commit(t1)
        t2 = engine.begin("s2")
        engine.read(t2, "x")
        engine.write(t2, "y", 2)
        engine.commit(t2)
        x = engine.abstract_execution()
        assert SI.satisfied_by(x)
        assert in_graph_si(graph_of(x))

    def test_write_skew_execution_not_serializable(self, engine):
        t1 = engine.begin("s1")
        t2 = engine.begin("s2")
        engine.read(t1, "y")
        engine.read(t2, "x")
        engine.write(t1, "x", 1)
        engine.write(t2, "y", 2)
        engine.commit(t1)
        engine.commit(t2)
        g = graph_of(engine.abstract_execution())
        assert in_graph_si(g)
        assert not in_graph_ser(g)

    def test_stats_abort_reasons(self, engine):
        t1 = engine.begin("s1")
        t2 = engine.begin("s2")
        engine.write(t1, "x", 1)
        engine.write(t2, "x", 2)
        engine.commit(t1)
        with pytest.raises(TransactionAborted):
            engine.commit(t2)
        assert engine.stats.commits == 1
        assert any(
            "first committer wins" in reason
            for reason in engine.stats.abort_reasons
        )
