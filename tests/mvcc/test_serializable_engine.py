"""Unit tests for the serializable OCC engine (the baseline)."""

import pytest

from repro.core.errors import TransactionAborted
from repro.graphs.classify import in_graph_ser
from repro.graphs.extraction import graph_of
from repro.mvcc.serializable import SerializableEngine


@pytest.fixture
def engine():
    return SerializableEngine({"x": 0, "y": 0})


class TestReadValidation:
    def test_write_skew_aborted(self, engine):
        t1 = engine.begin("s1")
        t2 = engine.begin("s2")
        engine.read(t1, "y")
        engine.read(t2, "x")
        engine.write(t1, "x", 1)
        engine.write(t2, "y", 2)
        engine.commit(t1)
        with pytest.raises(TransactionAborted) as excinfo:
            engine.commit(t2)
        assert "read-write conflict" in str(excinfo.value)

    def test_stale_read_only_transaction_aborted(self, engine):
        t1 = engine.begin("s1")
        engine.read(t1, "x")
        t2 = engine.begin("s2")
        engine.write(t2, "x", 9)
        engine.commit(t2)
        with pytest.raises(TransactionAborted):
            engine.commit(t1)

    def test_read_own_writeset_not_double_validated(self, engine):
        # Reading an object you also write is validated by the write-set
        # check, not the read-set check.
        t1 = engine.begin("s1")
        v = engine.read(t1, "x")
        engine.write(t1, "x", v + 1)
        engine.commit(t1)
        assert engine.stats.commits == 1

    def test_non_conflicting_transactions_commit(self, engine):
        t1 = engine.begin("s1")
        engine.read(t1, "x")
        engine.write(t1, "x", 1)
        engine.commit(t1)
        t2 = engine.begin("s2")
        engine.read(t2, "x")
        engine.write(t2, "y", 2)
        engine.commit(t2)
        assert engine.stats.commits == 2


class TestSerializabilityGuarantee:
    def test_runs_always_in_graph_ser(self, engine):
        # Drive several overlapping transactions; committed results must
        # always be serializable.
        t1 = engine.begin("s1")
        engine.read(t1, "x")
        engine.write(t1, "x", 1)
        engine.commit(t1)
        t2 = engine.begin("s2")
        t3 = engine.begin("s3")
        engine.read(t2, "x")
        engine.write(t2, "y", 2)
        engine.read(t3, "y")
        engine.commit(t2)
        try:
            engine.commit(t3)
        except TransactionAborted:
            pass
        g = graph_of(engine.abstract_execution())
        assert in_graph_ser(g)

    def test_first_committer_wins_still_applies(self, engine):
        t1 = engine.begin("s1")
        t2 = engine.begin("s2")
        engine.write(t1, "x", 1)
        engine.write(t2, "x", 2)
        engine.commit(t1)
        with pytest.raises(TransactionAborted):
            engine.commit(t2)

    def test_abort_cleans_read_set(self, engine):
        t1 = engine.begin("s1")
        engine.read(t1, "x")
        engine.abort(t1)
        # A fresh transaction in the same session works normally.
        t2 = engine.begin("s1")
        engine.read(t2, "x")
        engine.commit(t2)
        assert engine.stats.commits == 1
