"""Tests for version garbage collection and "snapshot too old"."""

import pytest

from repro.core.errors import SnapshotTooOld, TransactionAborted
from repro.mvcc.si import SIEngine
from repro.mvcc.store import MVStore


class TestStoreVacuum:
    def test_vacuum_keeps_horizon_version(self):
        store = MVStore({"x": 0})
        store.install({"x": 1}, commit_ts=1, writer="t1")
        store.install({"x": 2}, commit_ts=2, writer="t2")
        dropped = store.vacuum(horizon_ts=1)
        assert dropped == 1  # the initial version
        assert [v.value for v in store.versions("x")] == [1, 2]
        # Snapshot at the horizon still reads correctly.
        assert store.read_at("x", 1).value == 1

    def test_vacuum_nothing_to_drop(self):
        store = MVStore({"x": 0})
        assert store.vacuum(horizon_ts=5) == 0

    def test_old_snapshot_raises_after_vacuum(self):
        store = MVStore({"x": 0})
        store.install({"x": 1}, commit_ts=5, writer="t1")
        store.vacuum(horizon_ts=5)
        with pytest.raises(SnapshotTooOld):
            store.read_at("x", 2)

    def test_per_object_independence(self):
        store = MVStore({"x": 0, "y": 0})
        store.install({"x": 1}, commit_ts=1, writer="t1")
        store.vacuum(horizon_ts=1)
        # y still has only the initial version, readable at ts 0.
        assert store.read_at("y", 0).value == 0
        with pytest.raises(SnapshotTooOld):
            store.read_at("x", 0)


class TestEngineVacuum:
    def test_safe_vacuum_respects_active_snapshots(self):
        engine = SIEngine({"x": 0})
        reader = engine.begin("old")  # snapshot at ts 0
        writer = engine.begin("w")
        engine.write(writer, "x", 1)
        engine.commit(writer)
        dropped = engine.vacuum()  # horizon = oldest active = 0
        assert dropped == 0
        assert engine.read(reader, "x") == 0  # still fine
        engine.commit(reader)

    def test_aggressive_vacuum_aborts_old_snapshot(self):
        engine = SIEngine({"x": 0})
        reader = engine.begin("old")
        writer = engine.begin("w")
        engine.write(writer, "x", 1)
        engine.commit(writer)
        dropped = engine.vacuum(aggressive=True)
        assert dropped == 1
        with pytest.raises(TransactionAborted) as excinfo:
            engine.read(reader, "x")
        assert "snapshot too old" in str(excinfo.value)
        assert engine.stats.aborts == 1

    def test_retry_after_snapshot_too_old_succeeds(self):
        engine = SIEngine({"x": 0})
        reader = engine.begin("old")
        writer = engine.begin("w")
        engine.write(writer, "x", 1)
        engine.commit(writer)
        engine.vacuum(aggressive=True)
        with pytest.raises(TransactionAborted):
            engine.read(reader, "x")
        # Fresh attempt gets a current snapshot.
        retry = engine.begin("old")
        assert engine.read(retry, "x") == 1
        engine.commit(retry)

    def test_vacuum_with_no_active_transactions(self):
        engine = SIEngine({"x": 0})
        t = engine.begin("s")
        engine.write(t, "x", 1)
        engine.commit(t)
        t2 = engine.begin("s")
        engine.write(t2, "x", 2)
        engine.commit(t2)
        dropped = engine.vacuum()
        assert dropped == 2  # initial and first write superseded

    def test_vacuumed_run_still_in_exec_si(self):
        from repro.core.models import SI

        engine = SIEngine({"x": 0, "y": 0})
        for i in range(4):
            t = engine.begin("s")
            engine.read(t, "x")
            engine.write(t, "x", i + 1)
            engine.commit(t)
            engine.vacuum()
        assert SI.satisfied_by(engine.abstract_execution())


class TestConcurrentVacuum:
    """Vacuum racing real reader threads: a read either sees the value
    its snapshot pins or fails with SnapshotTooOld — never a wrong
    value, never a torn chain."""

    def test_vacuum_racing_readers_never_returns_wrong_value(self):
        import threading

        store = MVStore({"x": 0})
        total = 400
        errors = []
        stop = threading.Event()

        def writer():
            # Version installed at ts carries value == ts, so any read
            # has a self-evident correctness check.
            for ts in range(1, total + 1):
                store.install({"x": ts}, commit_ts=ts, writer=f"t{ts}")
            stop.set()

        def vacuumer():
            while not stop.is_set():
                horizon = store.latest_commit_ts("x")
                store.vacuum(horizon_ts=horizon)
            store.vacuum(horizon_ts=store.latest_commit_ts("x"))

        def reader():
            while not stop.is_set():
                snapshot_ts = store.latest_commit_ts("x")
                try:
                    version = store.read_at("x", snapshot_ts)
                except SnapshotTooOld:
                    continue  # legal: the snapshot aged out
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)
                    return
                if version.value != snapshot_ts:
                    # Timestamps are gapless and each version's value
                    # equals its commit_ts, so the snapshot read has
                    # exactly one right answer.
                    errors.append(
                        AssertionError(
                            f"read at {snapshot_ts} returned "
                            f"value {version.value}"
                        )
                    )
                    return

        threads = (
            [threading.Thread(target=writer)]
            + [threading.Thread(target=vacuumer)]
            + [threading.Thread(target=reader) for _ in range(4)]
        )
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors
        assert store.latest("x").value == total
