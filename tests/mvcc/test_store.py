"""Unit tests for the multi-version store."""

import pytest

from repro.core.errors import StoreError
from repro.mvcc.store import MVStore, Version


@pytest.fixture
def store():
    return MVStore({"x": 0, "y": 10})


class TestInitialisation:
    def test_initial_versions_at_ts_zero(self, store):
        v = store.latest("x")
        assert v == Version(0, 0, "t_init")

    def test_empty_initial_rejected(self):
        with pytest.raises(StoreError):
            MVStore({})

    def test_objects_sorted(self, store):
        assert store.objects == ["x", "y"]

    def test_custom_init_writer(self):
        s = MVStore({"x": 1}, init_writer="genesis")
        assert s.latest("x").writer == "genesis"


class TestReads:
    def test_read_at_snapshot(self, store):
        store.install({"x": 5}, commit_ts=1, writer="t1")
        store.install({"x": 7}, commit_ts=2, writer="t2")
        assert store.read_at("x", 0).value == 0
        assert store.read_at("x", 1).value == 5
        assert store.read_at("x", 2).value == 7
        assert store.read_at("x", 99).value == 7

    def test_unknown_object_rejected(self, store):
        with pytest.raises(StoreError):
            store.read_at("z", 0)

    def test_snapshot_at(self, store):
        store.install({"x": 5}, commit_ts=1, writer="t1")
        assert store.snapshot_at(0) == {"x": 0, "y": 10}
        assert store.snapshot_at(1) == {"x": 5, "y": 10}


class TestInstall:
    def test_versions_accumulate(self, store):
        store.install({"x": 5}, commit_ts=1, writer="t1")
        assert [v.value for v in store.versions("x")] == [0, 5]

    def test_atomic_multi_object_install(self, store):
        store.install({"x": 1, "y": 2}, commit_ts=1, writer="t1")
        assert store.latest("x").commit_ts == 1
        assert store.latest("y").commit_ts == 1

    def test_nonmonotonic_ts_rejected(self, store):
        store.install({"x": 5}, commit_ts=2, writer="t1")
        with pytest.raises(StoreError):
            store.install({"x": 6}, commit_ts=2, writer="t2")
        with pytest.raises(StoreError):
            store.install({"x": 6}, commit_ts=1, writer="t2")

    def test_unknown_object_install_rejected(self, store):
        with pytest.raises(StoreError):
            store.install({"z": 1}, commit_ts=1, writer="t1")

    def test_failed_install_changes_nothing(self, store):
        with pytest.raises(StoreError):
            store.install({"x": 1, "z": 1}, commit_ts=1, writer="t1")
        assert store.latest("x").value == 0


class TestConflictDetection:
    def test_modified_since(self, store):
        assert not store.modified_since("x", 0)
        store.install({"x": 5}, commit_ts=3, writer="t1")
        assert store.modified_since("x", 0)
        assert store.modified_since("x", 2)
        assert not store.modified_since("x", 3)

    def test_latest_commit_ts(self, store):
        assert store.latest_commit_ts("x") == 0
        store.install({"x": 5}, commit_ts=4, writer="t1")
        assert store.latest_commit_ts("x") == 4
