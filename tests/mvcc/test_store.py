"""Unit tests for the multi-version store."""

import pytest

from repro.core.errors import StoreError
from repro.mvcc.store import MVStore, Version


@pytest.fixture
def store():
    return MVStore({"x": 0, "y": 10})


class TestInitialisation:
    def test_initial_versions_at_ts_zero(self, store):
        v = store.latest("x")
        assert v == Version(0, 0, "t_init")

    def test_empty_initial_rejected(self):
        with pytest.raises(StoreError):
            MVStore({})

    def test_objects_sorted(self, store):
        assert store.objects == ["x", "y"]

    def test_custom_init_writer(self):
        s = MVStore({"x": 1}, init_writer="genesis")
        assert s.latest("x").writer == "genesis"


class TestReads:
    def test_read_at_snapshot(self, store):
        store.install({"x": 5}, commit_ts=1, writer="t1")
        store.install({"x": 7}, commit_ts=2, writer="t2")
        assert store.read_at("x", 0).value == 0
        assert store.read_at("x", 1).value == 5
        assert store.read_at("x", 2).value == 7
        assert store.read_at("x", 99).value == 7

    def test_unknown_object_rejected(self, store):
        with pytest.raises(StoreError):
            store.read_at("z", 0)

    def test_snapshot_at(self, store):
        store.install({"x": 5}, commit_ts=1, writer="t1")
        assert store.snapshot_at(0) == {"x": 0, "y": 10}
        assert store.snapshot_at(1) == {"x": 5, "y": 10}


class TestInstall:
    def test_versions_accumulate(self, store):
        store.install({"x": 5}, commit_ts=1, writer="t1")
        assert [v.value for v in store.versions("x")] == [0, 5]

    def test_atomic_multi_object_install(self, store):
        store.install({"x": 1, "y": 2}, commit_ts=1, writer="t1")
        assert store.latest("x").commit_ts == 1
        assert store.latest("y").commit_ts == 1

    def test_nonmonotonic_ts_rejected(self, store):
        store.install({"x": 5}, commit_ts=2, writer="t1")
        with pytest.raises(StoreError):
            store.install({"x": 6}, commit_ts=2, writer="t2")
        with pytest.raises(StoreError):
            store.install({"x": 6}, commit_ts=1, writer="t2")

    def test_unknown_object_install_rejected(self, store):
        with pytest.raises(StoreError):
            store.install({"z": 1}, commit_ts=1, writer="t1")

    def test_failed_install_changes_nothing(self, store):
        with pytest.raises(StoreError):
            store.install({"x": 1, "z": 1}, commit_ts=1, writer="t1")
        assert store.latest("x").value == 0


class TestConflictDetection:
    def test_modified_since(self, store):
        assert not store.modified_since("x", 0)
        store.install({"x": 5}, commit_ts=3, writer="t1")
        assert store.modified_since("x", 0)
        assert store.modified_since("x", 2)
        assert not store.modified_since("x", 3)

    def test_latest_commit_ts(self, store):
        assert store.latest_commit_ts("x") == 0
        store.install({"x": 5}, commit_ts=4, writer="t1")
        assert store.latest_commit_ts("x") == 4


class TestBisectReads:
    """The O(log n) read path over long chains."""

    def test_read_at_every_boundary_on_long_chain(self):
        store = MVStore({"x": 0})
        # Sparse timestamps: 2, 4, 6, ... so queries fall between them.
        for i in range(1, 200):
            store.install({"x": i}, commit_ts=2 * i, writer=f"t{i}")
        for i in range(200):
            # At and just after a commit, the committed value is seen.
            assert store.read_at("x", 2 * i).value == i
            assert store.read_at("x", 2 * i + 1).value == i
        assert store.read_at("x", 10**9).value == 199

    def test_chain_accessor_is_not_a_copy(self):
        store = MVStore({"x": 0})
        assert store._chain("x") is store._chain("x")

    def test_versions_returns_a_fresh_copy(self, store):
        first = store.versions("x")
        first.append(Version(99, 99, "mutant"))
        assert [v.value for v in store.versions("x")] == [0]

    def test_chain_timestamps_stay_parallel(self):
        store = MVStore({"x": 0})
        for i in range(1, 50):
            store.install({"x": i}, commit_ts=i, writer=f"t{i}")
        chain = store._chain("x")
        assert chain.ts == [v.commit_ts for v in chain.versions]


class TestStripes:
    def test_custom_stripe_count(self):
        store = MVStore({f"o{i}": i for i in range(20)}, stripes=4)
        assert len(store._stripes) == 4
        store.install({"o3": 99}, commit_ts=1, writer="t1")
        assert store.latest("o3").value == 99

    def test_stripe_count_must_be_positive(self):
        with pytest.raises(StoreError):
            MVStore({"x": 0}, stripes=0)

    def test_same_object_same_stripe(self):
        store = MVStore({"x": 0, "y": 0})
        assert store._stripe("x") is store._stripe("x")
