"""Tests for the windowed (garbage-collecting) online monitor.

The load-bearing property: eviction never masks a violation whose
transactions all fit inside one window.  We prove it two ways — on the
engine-produced anomalies (write skew, long fork) pushed deep into a
run by padding traffic, and by cross-checking windowed verdicts against
the full monitor on random engine runs.
"""

import pytest

from repro.core.events import read, write
from repro.monitor import (
    ConsistencyMonitor,
    MonitorError,
    WindowedMonitor,
    watch_engine,
)
from repro.mvcc import PSIEngine, Scheduler, SIEngine
from repro.mvcc.workloads import random_workload, write_skew_sessions


def pad_commits(monitor, count, start=0):
    """Feed ``count`` unrelated single-object commits (disjoint keys
    must be pre-registered via initial_values)."""
    for i in range(start, start + count):
        violation = monitor.observe_commit(
            f"pad{i}", f"pad-session-{i % 7}", [write(f"p{i % 5}", i + 1)]
        )
        assert violation is None


def padded_initial():
    values = {"acct1": 70, "acct2": 80}
    values.update({f"p{i}": 0 for i in range(5)})
    return values


def write_skew_events(engine=None):
    """The SmallBank-style write-skew commit stream over acct1/acct2."""
    return [
        ("ws1", "alice", [read("acct1", 70), read("acct2", 80),
                          write("acct1", -30)]),
        ("ws2", "bob", [read("acct1", 70), read("acct2", 80),
                        write("acct2", -20)]),
    ]


class TestWindowSoundness:
    def test_in_window_violation_detected_after_deep_padding(self):
        """GC must not mask a violation confined to one window."""
        full = ConsistencyMonitor("SER", padded_initial())
        windowed = WindowedMonitor(8, "SER", padded_initial())
        pad_commits(full, 100)
        pad_commits(windowed, 100)
        assert windowed.retained_count == 8
        for tid, session, events in write_skew_events():
            v_full = full.observe_commit(tid, session, events)
            v_win = windowed.observe_commit(tid, session, events)
            assert (v_full is None) == (v_win is None)
        assert not full.consistent
        assert not windowed.consistent
        # Same detection point and same witness shape.
        assert full.violations[0].tid == windowed.violations[0].tid == "ws2"

    def test_si_violation_detected_inside_window(self):
        """A lost-update-style SI violation after heavy padding."""
        stream = [
            ("t1", "s1", [read("acct1", 70), write("acct1", 170)]),
            ("t2", "s2", [read("acct1", 70), write("acct1", 95)]),
        ]
        full = ConsistencyMonitor("SI", padded_initial())
        windowed = WindowedMonitor(6, "SI", padded_initial())
        pad_commits(full, 60)
        pad_commits(windowed, 60)
        for tid, session, events in stream:
            full.observe_commit(tid, session, events)
            windowed.observe_commit(tid, session, events)
        assert not full.consistent
        assert not windowed.consistent
        assert full.violations[0].tid == windowed.violations[0].tid

    def test_long_fork_detected_inside_window(self):
        """The PSI-engine long fork flagged by a windowed SI monitor."""
        engine = PSIEngine({"x": 0, "y": 0})
        for reader in ("r1", "r2"):
            engine.replica_of(reader)
        from repro.mvcc.workloads import long_fork_sessions

        sched = Scheduler(engine, long_fork_sessions())
        sched.step("w1"), sched.step("w1")
        sched.step("w2"), sched.step("w2")
        tids = {r.session: r.tid for r in engine.committed}
        engine.deliver(tids["w1"], "r_r1")
        engine.deliver(tids["w2"], "r_r2")
        sched.run_round_robin()
        monitor = WindowedMonitor(
            4, "SI", dict(engine.initial), init_tid=engine.init_tid
        )
        violations = []
        for rec in sorted(engine.committed, key=lambda r: r.commit_ts):
            v = monitor.observe_commit(
                rec.tid, rec.session, list(rec.events)
            )
            if v is not None:
                violations.append(v)
        assert violations
        assert violations[0].tid == engine.committed[-1].tid

    @pytest.mark.parametrize("seed", range(5))
    def test_agrees_with_full_monitor_when_window_covers_run(self, seed):
        wl = random_workload(
            seed, sessions=4, transactions_per_session=4, objects=3
        )
        engine = SIEngine(wl.initial)
        Scheduler(engine, wl.sessions).run_random(seed)
        full, v_full = watch_engine(engine, model="SI")
        windowed = WindowedMonitor(
            len(engine.committed) + 1, "SI", dict(engine.initial)
        )
        v_win = []
        for rec in sorted(engine.committed, key=lambda r: r.commit_ts):
            v = windowed.observe_commit(
                rec.tid, rec.session, list(rec.events)
            )
            if v is not None:
                v_win.append(v)
        assert full.consistent == windowed.consistent
        assert [v.tid for v in v_full] == [v.tid for v in v_win]


class TestGarbageCollection:
    def test_state_stays_bounded_under_sustained_load(self):
        monitor = WindowedMonitor(10, "SI", {f"p{i}": 0 for i in range(5)})
        pad_commits(monitor, 500)
        assert monitor.commit_count == 500
        assert monitor.retained_count == 10
        assert monitor.evicted_count == 490
        sizes = monitor.state_size()
        assert sizes["records"] == 10
        assert sizes["edges"] <= 10 * 10 * 4
        assert sizes["read_versions"] <= 10 * 5
        assert sizes["value_attributions"] <= 10 * 5 + 5
        assert sizes["evicted_tombstones"] <= 10 + 5 + 5
        assert monitor.consistent

    def test_read_of_current_version_by_evicted_writer_attributes(self):
        """The frontier: a read may return a value whose writer was
        evicted long ago, as long as it is still the current version."""
        monitor = WindowedMonitor(3, "SI", {"x": 0, "p0": 0, "p1": 0})
        monitor.observe_commit("w", "s-w", [write("x", 42)])
        for i in range(10):
            monitor.observe_commit(
                f"pad{i}", "s-pad", [write(f"p{i % 2}", i + 1)]
            )
        assert "w" not in monitor._records
        # Strict attribution still succeeds and stays violation-free.
        v = monitor.observe_commit("r", "s-r", [read("x", 42)])
        assert v is None
        assert monitor.consistent

    def test_read_of_superseded_old_version_is_unattributable(self):
        """A read whose version was overwritten more than a window ago
        is reported, not misclassified."""
        monitor = WindowedMonitor(3, "SI", {"x": 0, "p0": 0})
        monitor.observe_commit("w1", "s1", [write("x", 1)])
        monitor.observe_commit("w2", "s2", [write("x", 2)])
        for i in range(6):
            monitor.observe_commit("pad%d" % i, "s-pad",
                                   [write("p0", i + 1)])
        # Both the writer AND the overwriter of x=1 have been evicted.
        assert "w2" not in monitor._records
        with pytest.raises(MonitorError):
            monitor.observe_commit("r", "s-r", [read("x", 1)])

    def test_superseded_version_attributable_while_overwriter_retained(
        self,
    ):
        """Staleness is bounded by the *overwrite*, not the write: a
        version whose writer was evicted long ago is still attributable
        while the transaction that overwrote it is in the window (a
        descheduled worker's snapshot legitimately reads it)."""
        monitor = WindowedMonitor(4, "SI", {"x": 0, "p0": 0, "p1": 0})
        monitor.observe_commit("w1", "s1", [write("x", 1)])
        for i in range(8):  # w1 leaves the window, x=1 still current
            monitor.observe_commit(
                f"pad{i}", "s-pad", [write(f"p{i % 2}", i + 1)]
            )
        assert "w1" not in monitor._records
        monitor.observe_commit("w2", "s2", [write("x", 2)])
        # The overwriter w2 is retained, so the stale snapshot read of
        # x=1 attributes — and lands an anti-dependency to w2 rather
        # than a WR edge to the dead node.
        v = monitor.observe_commit("r", "s-r", [read("x", 1)])
        assert v is None
        assert ("r", "w2") in monitor._rw
        assert all(edge[0] != "w1" for edge in monitor._wr)
        assert monitor.consistent
        # Once w2 ages out, the attribution goes with it.
        for i in range(8):
            monitor.observe_commit(
                f"pad2-{i}", "s-pad", [write(f"p{i % 2}", 100 + i)]
            )
        assert "w2" not in monitor._records
        with pytest.raises(MonitorError):
            monitor.observe_commit("r2", "s-r2", [read("x", 1)])

    def test_duplicate_tid_rejected_even_after_eviction(self):
        monitor = WindowedMonitor(2, "SI", {"p0": 0})
        for i in range(5):
            monitor.observe_commit(f"t{i}", "s", [write("p0", i + 1)])
        with pytest.raises(MonitorError):
            monitor.observe_commit("t0", "s", [write("p0", 99)])

    def test_window_must_be_at_least_two(self):
        with pytest.raises(MonitorError):
            WindowedMonitor(1, "SI", {"x": 0})
