"""Unit tests for the incremental certification core.

The dynamic-topological-order DAG (Pearce–Kelly) and the three
per-model checkers are exercised directly here; end-to-end equivalence
with the full-rebuild oracle lives in ``test_parity.py``.
"""

import random

import pytest

from repro.core.events import read, write
from repro.monitor import ConsistencyMonitor, WindowedMonitor
from repro.monitor.incremental import (
    DynamicTopoOrder,
    PsiIncrementalChecker,
    SerIncrementalChecker,
    SiIncrementalChecker,
    make_checker,
)


class TestDynamicTopoOrder:
    def test_insert_respecting_order_keeps_indices(self):
        dag = DynamicTopoOrder()
        for node in "abc":
            dag.add_node(node)
        assert dag.add_edge("a", "b") is None
        assert dag.add_edge("b", "c") is None
        assert (
            dag.order_index("a")
            < dag.order_index("b")
            < dag.order_index("c")
        )

    def test_order_violating_insert_reorders_affected_region(self):
        dag = DynamicTopoOrder()
        for node in "abcd":
            dag.add_node(node)
        # Registration order is a, b, c, d; the edge d -> a contradicts
        # it and must move d before a.
        assert dag.add_edge("d", "a") is None
        assert dag.order_index("d") < dag.order_index("a")
        # Order stays topological for every present edge.
        assert dag.add_edge("a", "b") is None
        assert dag.add_edge("d", "b") is None
        for x, y in dag.edges():
            assert dag.order_index(x) < dag.order_index(y)

    def test_cycle_rejected_with_witness_path(self):
        dag = DynamicTopoOrder()
        for node in "abc":
            dag.add_node(node)
        dag.add_edge("a", "b")
        dag.add_edge("b", "c")
        cycle = dag.add_edge("c", "a")
        assert cycle == ["c", "a", "b", "c"]
        # The offending edge was not inserted.
        assert dag.edge_count("c", "a") == 0
        assert dag.find_path("c", "a") is None

    def test_self_loop_is_a_cycle(self):
        dag = DynamicTopoOrder()
        dag.add_node("a")
        assert dag.add_edge("a", "a") == ["a", "a"]

    def test_edge_multiplicity(self):
        dag = DynamicTopoOrder()
        dag.add_node("a"), dag.add_node("b")
        dag.add_edge("a", "b")
        dag.add_edge("a", "b")
        assert dag.edge_count("a", "b") == 2
        dag.remove_edge("a", "b")
        assert dag.edge_count("a", "b") == 1
        assert list(dag.edges()) == [("a", "b")]
        dag.remove_edge("a", "b")
        assert dag.edge_count("a", "b") == 0
        assert list(dag.edges()) == []

    def test_remove_node_clears_incident_edges(self):
        dag = DynamicTopoOrder()
        for node in "abc":
            dag.add_node(node)
        dag.add_edge("a", "b")
        dag.add_edge("b", "c")
        dag.remove_node("b")
        assert "b" not in dag
        assert dag.edge_count("a", "b") == 0
        # A previously cycle-closing edge is now legal.
        assert dag.add_edge("c", "a") is None

    def test_find_path(self):
        dag = DynamicTopoOrder()
        for node in "abcd":
            dag.add_node(node)
        dag.add_edge("a", "b")
        dag.add_edge("b", "c")
        assert dag.find_path("a", "c") == ["a", "b", "c"]
        assert dag.find_path("a", "a") == ["a"]
        assert dag.find_path("c", "a") is None
        assert dag.find_path("a", "d") is None

    @pytest.mark.parametrize("seed", range(10))
    def test_random_insertions_agree_with_offline_check(self, seed):
        """PK accepts exactly the edges an offline cycle test accepts,
        and the maintained order stays topological throughout."""
        from repro.core.relations import Relation

        rng = random.Random(seed)
        nodes = [f"n{i}" for i in range(12)]
        dag = DynamicTopoOrder()
        for node in nodes:
            dag.add_node(node)
        accepted = set()
        for _ in range(60):
            a, b = rng.sample(nodes, 2)
            offline_ok = Relation(accepted | {(a, b)}).is_acyclic()
            cycle = dag.add_edge(a, b)
            assert (cycle is None) == offline_ok, (a, b, accepted)
            if cycle is None:
                accepted.add((a, b))
                for x, y in accepted:
                    assert dag.order_index(x) < dag.order_index(y)
            else:
                assert cycle[0] == cycle[-1] == a
                assert cycle[1] == b
                # Witness edges b -> ... -> a all exist in the DAG.
                for x, y in zip(cycle[1:], cycle[2:]):
                    assert dag.edge_count(x, y) > 0


class TestCheckerFactories:
    def test_make_checker(self):
        assert isinstance(make_checker("SER"), SerIncrementalChecker)
        assert isinstance(make_checker("SI"), SiIncrementalChecker)
        assert isinstance(make_checker("PSI"), PsiIncrementalChecker)


class TestSiChecker:
    def test_dep_then_rw_composes_to_self_loop(self):
        checker = make_checker("SI")
        for tid in ("t1", "t2"):
            checker.add_node(tid)
        assert checker.observe([("t1", "t2")], []) is None
        cycle = checker.observe([], [("t2", "t1")])
        assert cycle is not None and cycle[0] == cycle[-1]

    def test_rw_then_dep_composes_to_self_loop(self):
        checker = make_checker("SI")
        for tid in ("t1", "t2"):
            checker.add_node(tid)
        assert checker.observe([], [("t2", "t1")]) is None
        cycle = checker.observe([("t1", "t2")], [])
        assert cycle is not None and cycle[0] == cycle[-1]

    def test_two_rw_steps_do_not_compose(self):
        # dep;rw? takes at most one RW step: t1 -dep-> t2 -rw-> t3 and
        # t3 -rw-> t1 is SI-consistent (the write-skew shape).
        checker = make_checker("SI")
        for tid in ("t1", "t2", "t3"):
            checker.add_node(tid)
        assert checker.observe([("t1", "t2")], [("t2", "t3")]) is None
        assert checker.observe([], [("t3", "t1")]) is None

    def test_eviction_decrements_middle_witnesses(self):
        # Composed edge (t1, t3) is witnessed via middle node t2; after
        # evicting t2 the composed edge must be gone and the previously
        # illegal closing edge becomes acceptable.
        checker = make_checker("SI")
        for tid in ("t1", "t2", "t3"):
            checker.add_node(tid)
        checker.observe([("t1", "t2")], [("t2", "t3")])
        assert checker._dag.edge_count("t1", "t3") == 1
        checker.remove_node("t2")
        assert checker._dag.edge_count("t1", "t3") == 0
        assert checker.observe([("t3", "t1")], []) is None

    def test_violation_rolls_back_partial_deltas(self):
        checker = make_checker("SI")
        for tid in ("t1", "t2", "t3"):
            checker.add_node(tid)
        checker.observe([("t2", "t3")], [])
        checker.observe([], [("t2", "t1"), ("t3", "t1")])
        # dep edge (t1, t2) would compose to (t1, t1) via rw (t2, t1):
        # rejected, and its other delta (t1, t2)/(t1, t3)... must not
        # linger half-applied.
        cycle = checker.observe([("t1", "t2")], [])
        assert cycle is not None
        assert checker._dag.edge_count("t1", "t2") == 0
        assert checker._dag.edge_count("t1", "t3") == 0
        assert ("t1", "t2") not in checker._dep_edges


class TestPsiChecker:
    def test_dep_cycle_detected(self):
        checker = make_checker("PSI")
        for tid in ("t1", "t2"):
            checker.add_node(tid)
        assert checker.observe([("t1", "t2")], []) is None
        cycle = checker.observe([("t2", "t1")], [])
        assert cycle == ["t2", "t1", "t2"]

    def test_rw_edge_closing_dep_path_detected_with_real_path(self):
        checker = make_checker("PSI")
        for tid in ("t1", "t2", "t3"):
            checker.add_node(tid)
        checker.observe([("t1", "t2"), ("t2", "t3")], [])
        cycle = checker.observe([], [("t3", "t1")])
        assert cycle == ["t1", "t2", "t3", "t1"]

    def test_dep_edge_closing_existing_rw_detected(self):
        checker = make_checker("PSI")
        for tid in ("t1", "t2", "t3"):
            checker.add_node(tid)
        assert checker.observe([("t1", "t2")], [("t3", "t1")]) is None
        cycle = checker.observe([("t2", "t3")], [])
        assert cycle == ["t1", "t2", "t3", "t1"]

    def test_two_rw_steps_allowed(self):
        # The long-fork shape: loops needing two anti-dependency steps
        # are PSI-consistent.
        checker = make_checker("PSI")
        for tid in ("t1", "t2", "t3", "t4"):
            checker.add_node(tid)
        assert checker.observe(
            [("t1", "t3"), ("t2", "t4")], [("t3", "t2"), ("t4", "t1")]
        ) is None

    def test_eviction_clears_rw_index(self):
        checker = make_checker("PSI")
        for tid in ("t1", "t2", "t3"):
            checker.add_node(tid)
        checker.observe([("t1", "t2")], [("t3", "t1")])
        checker.remove_node("t3")
        # After eviction the rw edge is gone: a dep edge that would have
        # closed the loop through t3 is now fine.
        checker.add_node("t3")
        assert checker.observe([("t2", "t3")], []) is None


class TestMonitorKnob:
    def test_unknown_checker_rejected(self):
        from repro.monitor import MonitorError

        with pytest.raises(MonitorError):
            ConsistencyMonitor("SI", checker="eager")

    def test_checker_recorded(self):
        assert ConsistencyMonitor("SI").checker == "incremental"
        assert (
            ConsistencyMonitor("SI", checker="rebuild").checker == "rebuild"
        )

    @pytest.mark.parametrize("checker", ["incremental", "rebuild"])
    def test_lost_update_flagged_by_both_backends(self, checker):
        for model in ConsistencyMonitor.MODELS:
            monitor = ConsistencyMonitor(
                model, {"acct": 0}, checker=checker
            )
            assert monitor.observe_commit(
                "t1", "s1", [read("acct", 0), write("acct", 50)]
            ) is None
            violation = monitor.observe_commit(
                "t2", "s2", [read("acct", 0), write("acct", 25)]
            )
            assert violation is not None, (model, checker)
            assert violation.tid == "t2"
            assert violation.cycle[0] == violation.cycle[-1]

    def test_psi_violation_reports_real_dependency_path(self):
        """The witness is the actual loop (dep path closed by an
        anti-dependency), not a fake two-node [t, t] pair."""
        for checker in ("incremental", "rebuild"):
            monitor = ConsistencyMonitor(
                "PSI", {"acct": 0}, checker=checker
            )
            monitor.observe_commit(
                "t1", "s1", [read("acct", 0), write("acct", 50)]
            )
            violation = monitor.observe_commit(
                "t2", "s2", [read("acct", 0), write("acct", 25)]
            )
            assert violation is not None
            cycle = violation.cycle
            assert cycle[0] == cycle[-1]
            assert len(set(cycle)) >= 2, (checker, cycle)
            assert set(cycle) == {"t1", "t2"}

    def test_incremental_keeps_certifying_after_violation(self):
        monitor = ConsistencyMonitor("SI", {"acct": 0, "x": 0})
        monitor.observe_commit(
            "t1", "s1", [read("acct", 0), write("acct", 50)]
        )
        assert monitor.observe_commit(
            "t2", "s2", [read("acct", 0), write("acct", 25)]
        ) is not None
        # A clean commit after the violation is clean...
        assert monitor.observe_commit(
            "t3", "s3", [read("x", 0), write("x", 1)]
        ) is None
        # ... and a *new* violation is still caught.
        assert monitor.observe_commit(
            "t4", "s4", [read("x", 0), write("x", 2)]
        ) is not None
        assert len(monitor.violations) == 2

    def test_windowed_incremental_certifies_across_evictions(self):
        values = {"acct1": 70, "acct2": 80}
        values.update({f"p{i}": 0 for i in range(5)})
        monitor = WindowedMonitor(8, "SER", values)
        for i in range(50):
            assert monitor.observe_commit(
                f"pad{i}", f"s{i % 7}", [write(f"p{i % 5}", i + 1)]
            ) is None
        assert monitor.retained_count == 8
        assert monitor.observe_commit(
            "ws1", "alice",
            [read("acct1", 70), read("acct2", 80), write("acct1", -30)],
        ) is None
        violation = monitor.observe_commit(
            "ws2", "bob",
            [read("acct1", 70), read("acct2", 80), write("acct2", -20)],
        )
        assert violation is not None and violation.tid == "ws2"
