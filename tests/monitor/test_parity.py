"""Differential parity: incremental checker vs the full-rebuild oracle.

The incremental certification core must agree with the per-commit
full-rebuild checker on every stream: same per-commit verdict while the
stream is clean, and the same commit point (and detection at all) for
the first violation.  After the first violation the two back-ends
diverge by design — the rebuild oracle keeps the cyclic graph and
re-flags it at every later commit, while the incremental core drops the
cycle-closing edge and certifies the remainder — so comparisons run up
to and including the first violation.

Streams covered: randomised engine workloads, service-driven SmallBank
and TPC-C commit streams, the anomaly catalog, and windowed monitors on
all of the above shapes.

A further axis rides on the same harness: histories that made a round
trip through the write-ahead log must be indistinguishable from live
ones — ``recover(wal).history() == service.history()`` and the offline
streaming audit's verdict equals the live monitor's, across engines and
monitor modes (:class:`TestWalRoundTripParity`).
"""

import pytest

from repro.anomalies import ALL_CASES, load as load_case
from repro.monitor import ConsistencyMonitor, WindowedMonitor
from repro.mvcc import (
    PSIEngine,
    Scheduler,
    SerializableEngine,
    SIEngine,
)
from repro.mvcc.workloads import random_workload
from repro.service import MIXES, LoadGenerator, TransactionService

MODELS = ConsistencyMonitor.MODELS


def committed_stream(engine):
    """The engine's commit stream as (tid, session, events) triples."""
    return [
        (r.tid, r.session, list(r.events))
        for r in sorted(engine.committed, key=lambda r: r.commit_ts)
    ]


def run_to_first_violation(monitor, stream):
    """Feed ``stream`` until the first violation.

    Returns ``(verdicts, violation)`` where ``verdicts`` is the list of
    per-commit outcomes (``None`` or the flagged tid) up to and
    including the first violation.
    """
    verdicts = []
    for tid, session, events in stream:
        violation = monitor.observe_commit(tid, session, events)
        verdicts.append(None if violation is None else violation.tid)
        if violation is not None:
            return verdicts, violation
    return verdicts, None


def assert_parity(stream, model, initial, init_tid="t_init", window=None):
    """Both back-ends produce identical verdicts and commit points."""

    def monitor_for(checker):
        if window is None:
            return ConsistencyMonitor(
                model, dict(initial), init_tid=init_tid, checker=checker
            )
        return WindowedMonitor(
            window,
            model,
            dict(initial),
            init_tid=init_tid,
            checker=checker,
        )

    inc_verdicts, inc_violation = run_to_first_violation(
        monitor_for("incremental"), stream
    )
    reb_verdicts, reb_violation = run_to_first_violation(
        monitor_for("rebuild"), stream
    )
    assert inc_verdicts == reb_verdicts, (model, window)
    assert (inc_violation is None) == (reb_violation is None)
    if inc_violation is not None:
        assert inc_violation.tid == reb_violation.tid
        # Both witnesses are genuine cycles.
        for violation in (inc_violation, reb_violation):
            assert violation.cycle, violation
            assert violation.cycle[0] == violation.cycle[-1]
    return inc_violation


class TestRandomisedEngineStreams:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("model", MODELS)
    def test_si_engine_streams(self, seed, model):
        wl = random_workload(
            seed, sessions=5, transactions_per_session=6, objects=4
        )
        engine = SIEngine(wl.initial)
        Scheduler(engine, wl.sessions).run_random(seed)
        assert_parity(committed_stream(engine), model, engine.initial,
                      init_tid=engine.init_tid)

    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("model", MODELS)
    def test_ser_engine_streams(self, seed, model):
        wl = random_workload(seed, sessions=4, transactions_per_session=5)
        engine = SerializableEngine(wl.initial)
        Scheduler(engine, wl.sessions).run_random(seed)
        assert_parity(committed_stream(engine), model, engine.initial,
                      init_tid=engine.init_tid)

    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("model", MODELS)
    def test_psi_engine_streams(self, seed, model):
        wl = random_workload(seed, sessions=4, transactions_per_session=5)
        engine = PSIEngine(wl.initial)
        Scheduler(engine, wl.sessions).run_random(seed)
        assert_parity(committed_stream(engine), model, engine.initial,
                      init_tid=engine.init_tid)

    @pytest.mark.parametrize("seed", range(4))
    def test_windowed_parity_on_si_streams(self, seed):
        wl = random_workload(
            seed, sessions=4, transactions_per_session=6, objects=3
        )
        engine = SIEngine(wl.initial)
        Scheduler(engine, wl.sessions).run_random(seed)
        stream = committed_stream(engine)
        for model in MODELS:
            assert_parity(stream, model, engine.initial,
                          init_tid=engine.init_tid, window=8)


class TestServiceDrivenStreams:
    """SmallBank / TPC-C commit streams captured from the concurrent
    service, then replayed through both certification back-ends."""

    @pytest.mark.parametrize("mix_name", sorted(MIXES))
    @pytest.mark.parametrize("seed", range(2))
    def test_mix_streams(self, mix_name, seed):
        mix = MIXES[mix_name]()
        engine = SIEngine(dict(mix.initial))
        service = TransactionService(engine, max_retries=100)
        LoadGenerator(
            service, mix, workers=4, transactions_per_worker=10, seed=seed
        ).run()
        stream = committed_stream(engine)
        assert len(stream) >= 20
        for model in MODELS:
            assert_parity(stream, model, mix.initial,
                          init_tid=engine.init_tid)
            assert_parity(stream, model, mix.initial,
                          init_tid=engine.init_tid, window=12)

    def test_si_engine_smallbank_clean_under_si(self):
        """Sanity: the SI engine's SmallBank stream certifies clean
        under SI with the incremental checker."""
        mix = MIXES["smallbank"]()
        engine = SIEngine(dict(mix.initial))
        service = TransactionService.certified(engine, model="SI",
                                               max_retries=100)
        result = LoadGenerator(
            service, mix, workers=4, transactions_per_worker=10, seed=7
        ).run()
        assert result.violations == 0
        assert service.monitor.consistent


class TestAnomalyCatalogStreams:
    """Every catalog history, fed in session-major commit order."""

    @pytest.mark.parametrize("name", sorted(ALL_CASES))
    @pytest.mark.parametrize("model", MODELS)
    def test_catalog_parity(self, name, model):
        case = load_case(name)
        init_txn = case.history.by_tid(case.init_tid)
        initial = {
            obj: init_txn.final_write(obj)
            for obj in init_txn.written_objects
        }
        stream = [
            (txn.tid, f"s{i}", [e.op for e in txn.events])
            for i, session in enumerate(case.history.sessions)
            for txn in session
            if txn.tid != case.init_tid
        ]
        try:
            violation = assert_parity(
                stream, model, initial, init_tid=case.init_tid
            )
        except Exception as exc:
            from repro.monitor import MonitorError

            if isinstance(exc, MonitorError):
                # Attribution problems (reads of values this commit
                # order cannot explain) are checker-independent: the
                # rebuild monitor must reject identically.
                monitor = ConsistencyMonitor(
                    model, dict(initial), init_tid=case.init_tid,
                    checker="rebuild",
                )
                with pytest.raises(MonitorError):
                    for tid, session, events in stream:
                        monitor.observe_commit(tid, session, events)
                return
            raise
        if case.expected[model]:
            # A history the model allows never trips the monitor.
            assert violation is None, (name, model)


class TestPipelinedFeedParity:
    """The pipelined feed shows the monitor the same stream as sync
    certification: replaying the engine's commit order through a fresh
    sync monitor reproduces the pipelined run's verdicts exactly."""

    @pytest.mark.parametrize("seed", range(3))
    def test_pipelined_verdicts_match_sync_replay(self, seed):
        mix = MIXES["smallbank"]()
        engine = SIEngine(dict(mix.initial))
        service = TransactionService.certified(
            engine, model="SER", max_retries=100,
            monitor_mode="pipelined",
        )
        LoadGenerator(
            service, mix, workers=4, transactions_per_worker=10, seed=seed
        ).run()
        service.close()
        pipelined_violations = [v.tid for v in service.violations]
        assert service.monitor.commit_count == len(engine.committed)

        sync = ConsistencyMonitor(
            "SER", dict(mix.initial), init_tid=engine.init_tid
        )
        replay_violations = []
        for tid, session, events in committed_stream(engine):
            violation = sync.observe_commit(tid, session, events)
            if violation is not None:
                replay_violations.append(violation.tid)
        assert pipelined_violations == replay_violations
        assert sync.commit_count == service.monitor.commit_count

class TestWalRoundTripParity:
    """Round-trip property: for seeded service runs with a WAL attached,
    the recovered history equals the live history and the incremental
    streaming audit reproduces the live monitor's verdict — across all
    engines and both monitor modes."""

    ENGINE_KEYS = ("SI", "SER", "PSI", "2PL")

    @staticmethod
    def _engine_for(key, initial):
        from repro.mvcc.locking import TwoPhaseLockingEngine

        if key == "SER":
            return SerializableEngine(initial), "SER"
        if key == "PSI":
            return PSIEngine(initial, auto_deliver=True), "PSI"
        if key == "2PL":
            return TwoPhaseLockingEngine(initial), "SER"
        return SIEngine(initial), "SI"

    @pytest.mark.parametrize("engine_key", ENGINE_KEYS)
    @pytest.mark.parametrize("monitor_mode", ["sync", "pipelined"])
    def test_recovered_history_and_audit_verdict_match_live(
        self, tmp_path, engine_key, monitor_mode
    ):
        from repro.wal import WriteAheadLog, audit_log, recover

        mix = MIXES["smallbank"]()
        engine, model = self._engine_for(engine_key, dict(mix.initial))
        wal = WriteAheadLog(
            str(tmp_path / f"{engine_key}-{monitor_mode}"),
            fsync_policy="none",
            flush_interval=0.01,
            meta={"engine": engine_key, "init": dict(mix.initial),
                  "init_tid": engine.init_tid, "model": model},
        )
        service = TransactionService.certified(
            engine, model=model, max_retries=200,
            monitor_mode=monitor_mode, wal=wal,
        )
        LoadGenerator(
            service, mix, workers=3, transactions_per_worker=8, seed=5
        ).run()
        service.drain()
        service.close()

        recovered = recover(wal.directory)
        assert recovered.engine.history() == engine.history()
        assert recovered.engine.committed == engine.committed

        audit = audit_log(wal.directory, model=model)
        assert audit.commits_observed == len(engine.committed)
        assert [v.tid for v in audit.violations] == [
            v.tid for v in service.violations
        ]
        assert audit.consistent == service.monitor.consistent

    @pytest.mark.parametrize("seed", range(3))
    def test_windowed_audit_matches_windowed_live(self, tmp_path, seed):
        from repro.wal import WriteAheadLog, audit_log

        mix = MIXES["smallbank"]()
        engine = SIEngine(dict(mix.initial))
        wal = WriteAheadLog(
            str(tmp_path / f"w{seed}"), fsync_policy="none",
            flush_interval=0.01,
            meta={"engine": "SI", "init": dict(mix.initial),
                  "init_tid": engine.init_tid, "model": "SI"},
        )
        service = TransactionService.certified(
            engine, model="SI", window=12, max_retries=200, wal=wal,
        )
        LoadGenerator(
            service, mix, workers=4, transactions_per_worker=6, seed=seed
        ).run()
        service.close()
        audit = audit_log(wal.directory, window=12)
        assert audit.commits_observed == len(engine.committed)
        assert [v.tid for v in audit.violations] == [
            v.tid for v in service.violations
        ]


class TestPipelinedServicesAgree:
    @pytest.mark.parametrize("window", [None, 12])
    def test_pipelined_and_sync_services_agree(self, window):
        """Two services over identically-seeded runs: identical commit
        streams imply identical violation sets; the monitors end at the
        same commit count."""
        results = {}
        for mode in ("sync", "pipelined"):
            mix = MIXES["smallbank"]()
            engine = SIEngine(dict(mix.initial))
            service = TransactionService.certified(
                engine, model="SI", window=window, max_retries=100,
                monitor_mode=mode,
            )
            LoadGenerator(
                service, mix, workers=1, transactions_per_worker=30,
                seed=11,
            ).run()
            service.close()
            results[mode] = (
                committed_stream(engine),
                [v.tid for v in service.violations],
                service.monitor.commit_count,
            )
        # Single-worker runs are fully deterministic, so the two modes
        # must agree on everything.
        assert results["sync"] == results["pipelined"]
