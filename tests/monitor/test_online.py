"""Tests for the online consistency monitor."""

import pytest

from repro.core.events import read, write
from repro.monitor import ConsistencyMonitor, MonitorError, watch_engine
from repro.mvcc import (
    PSIEngine,
    Scheduler,
    SerializableEngine,
    SIEngine,
)
from repro.mvcc.workloads import (
    long_fork_sessions,
    lost_update_sessions,
    random_workload,
    write_skew_sessions,
)


def run_write_skew_engine():
    engine = SIEngine({"acct1": 70, "acct2": 80})
    Scheduler(engine, write_skew_sessions()).run_schedule(
        ["alice"] * 3 + ["bob"] * 3
    )
    return engine


def run_long_fork_engine():
    engine = PSIEngine({"x": 0, "y": 0})
    for reader in ("r1", "r2"):
        engine.replica_of(reader)
    sched = Scheduler(engine, long_fork_sessions())
    sched.step("w1"), sched.step("w1")
    sched.step("w2"), sched.step("w2")
    tids = {r.session: r.tid for r in engine.committed}
    engine.deliver(tids["w1"], "r_r1")
    engine.deliver(tids["w2"], "r_r2")
    sched.run_round_robin()
    return engine


class TestBasicObservation:
    def test_serial_run_clean_under_all_models(self):
        for model in ConsistencyMonitor.MODELS:
            monitor = ConsistencyMonitor(model, {"x": 0})
            assert monitor.observe_commit(
                "t1", "s1", [read("x", 0), write("x", 1)]
            ) is None
            assert monitor.observe_commit(
                "t2", "s2", [read("x", 1), write("x", 2)]
            ) is None
            assert monitor.consistent
            assert monitor.commit_count == 2

    def test_duplicate_tid_rejected(self):
        monitor = ConsistencyMonitor("SI", {"x": 0})
        monitor.observe_commit("t1", "s1", [write("x", 1)])
        with pytest.raises(MonitorError):
            monitor.observe_commit("t1", "s1", [write("x", 2)])

    def test_unknown_model_rejected(self):
        with pytest.raises(MonitorError):
            ConsistencyMonitor("RC")

    def test_unattributable_read_rejected_in_strict_mode(self):
        monitor = ConsistencyMonitor("SI", {"x": 0})
        with pytest.raises(MonitorError):
            monitor.observe_commit("t1", "s1", [read("x", 42)])

    def test_ambiguous_value_rejected_in_strict_mode(self):
        monitor = ConsistencyMonitor("SI", {"x": 0})
        monitor.observe_commit("t1", "s1", [write("x", 7)])
        monitor.observe_commit("t2", "s2", [read("x", 7), write("x", 7)])
        with pytest.raises(MonitorError):
            monitor.observe_commit("t3", "s3", [read("x", 7)])

    def test_non_strict_mode_attributes_latest(self):
        monitor = ConsistencyMonitor("SI", {"x": 0}, strict_values=False)
        monitor.observe_commit("t1", "s1", [write("x", 7)])
        monitor.observe_commit("t2", "s2", [read("x", 7), write("x", 7)])
        assert monitor.observe_commit("t3", "s3", [read("x", 7)]) is None

    def test_dependency_edges_exposed(self):
        monitor = ConsistencyMonitor("SI", {"x": 0})
        monitor.observe_commit("t1", "s1", [write("x", 1)])
        monitor.observe_commit("t2", "s1", [read("x", 1)])
        edges = monitor.dependency_edges()
        assert ("t1", "t2") in edges["SO"]
        assert ("t1", "t2") in edges["WR"]


class TestAnomalyDetection:
    def test_write_skew_flagged_under_ser_only(self):
        engine = run_write_skew_engine()
        monitor_si, v_si = watch_engine(engine, model="SI")
        monitor_ser, v_ser = watch_engine(engine, model="SER")
        assert monitor_si.consistent and not v_si
        assert not monitor_ser.consistent
        assert len(v_ser) == 1
        assert v_ser[0].model == "SER"
        assert v_ser[0].cycle[0] == v_ser[0].cycle[-1]

    def test_long_fork_flagged_under_si_not_psi(self):
        engine = run_long_fork_engine()
        monitor_psi, v_psi = watch_engine(engine, model="PSI")
        monitor_si, v_si = watch_engine(engine, model="SI")
        assert monitor_psi.consistent and not v_psi
        assert not monitor_si.consistent
        # The violation is detected at the second reader's commit — the
        # first point at which the behaviour leaves HistSI.
        assert v_si[0].tid == engine.committed[-1].tid

    def test_lost_update_flagged_by_all(self):
        # Simulate a buggy engine by feeding a lost-update stream
        # manually: both increments read the initial value.
        for model in ConsistencyMonitor.MODELS:
            monitor = ConsistencyMonitor(model, {"acct": 0})
            assert monitor.observe_commit(
                "t1", "s1", [read("acct", 0), write("acct", 50)]
            ) is None
            violation = monitor.observe_commit(
                "t2", "s2", [read("acct", 0), write("acct", 25)]
            )
            assert violation is not None, model
            assert violation.tid == "t2"

    def test_monitoring_continues_after_violation(self):
        monitor = ConsistencyMonitor("SI", {"acct": 0, "other": 0})
        monitor.observe_commit(
            "t1", "s1", [read("acct", 0), write("acct", 50)]
        )
        monitor.observe_commit(
            "t2", "s2", [read("acct", 0), write("acct", 25)]
        )
        assert not monitor.consistent
        # A later unrelated commit is still processed.
        assert monitor.observe_commit(
            "t3", "s3", [read("other", 0), write("other", 1)]
        ) is not None or monitor.commit_count == 3


class TestEngineCleanliness:
    """Engines never trip the monitor for their own model."""

    @pytest.mark.parametrize("seed", range(5))
    def test_si_runs_clean(self, seed):
        wl = random_workload(seed)
        engine = SIEngine(wl.initial)
        Scheduler(engine, wl.sessions).run_random(seed)
        monitor, violations = watch_engine(engine, model="SI")
        assert monitor.consistent, violations

    @pytest.mark.parametrize("seed", range(5))
    def test_ser_runs_clean(self, seed):
        wl = random_workload(seed)
        engine = SerializableEngine(wl.initial)
        Scheduler(engine, wl.sessions).run_random(seed)
        monitor, violations = watch_engine(engine, model="SER")
        assert monitor.consistent, violations

    @pytest.mark.parametrize("seed", range(5))
    def test_psi_runs_clean(self, seed):
        wl = random_workload(seed)
        engine = PSIEngine(wl.initial)
        Scheduler(engine, wl.sessions).run_random(seed)
        monitor, violations = watch_engine(engine, model="PSI")
        assert monitor.consistent, violations

    @pytest.mark.parametrize("seed", range(5))
    def test_2pl_runs_clean_even_under_ser(self, seed):
        from repro.mvcc import TwoPhaseLockingEngine

        wl = random_workload(seed)
        engine = TwoPhaseLockingEngine(wl.initial)
        Scheduler(engine, wl.sessions).run_random(seed)
        monitor, violations = watch_engine(engine, model="SER")
        assert monitor.consistent, violations
