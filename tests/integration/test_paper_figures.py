"""End-to-end integration tests pinning every figure-level claim of the
paper.  These are the assertions the benchmark harness re-reports; keeping
them as tests guards the reproduction against regressions."""

import pytest

from repro.anomalies import (
    ALL_CASES,
    fig4_g1,
    fig4_g2,
    fig11_h6,
    fig12_g7,
    fig13_execution,
)
from repro.characterisation.membership import classify_history
from repro.characterisation.soundness import construct_execution
from repro.chopping.criticality import Criterion
from repro.chopping.dynamic import check_chopping
from repro.chopping.programs import (
    p1_programs,
    p2_programs,
    p3_programs,
    p4_programs,
)
from repro.chopping.splice import naive_splice_execution_co, splice_history
from repro.chopping.static import chopping_matrix
from repro.core.models import SI
from repro.graphs.extraction import graph_of
from repro.mvcc.psi import PSIEngine
from repro.mvcc.runtime import Scheduler
from repro.mvcc.si import SIEngine
from repro.mvcc.workloads import long_fork_sessions, write_skew_sessions
from repro.robustness.dynamic import (
    exhibits_psi_only_behaviour,
    exhibits_si_only_behaviour,
)


class TestFigure2:
    """Figure 2: the anomaly classification (experiment E1)."""

    @pytest.mark.parametrize(
        "name", ["session_guarantees", "lost_update", "long_fork", "write_skew"]
    )
    def test_membership_matches_paper(self, name):
        case = ALL_CASES[name]()
        got = classify_history(case.history, init_tid=case.init_tid)
        assert got == case.expected

    def test_write_skew_reproduced_operationally(self):
        engine = SIEngine({"acct1": 70, "acct2": 80})
        Scheduler(engine, write_skew_sessions()).run_schedule(
            ["alice", "alice", "alice", "bob", "bob", "bob"]
        )
        balance = sum(
            engine.store.latest(obj).value for obj in engine.store.objects
        )
        assert balance < 0

    def test_long_fork_reproduced_operationally(self):
        engine = PSIEngine({"x": 0, "y": 0})
        for session in ("r1", "r2"):
            engine.replica_of(session)
        sched = Scheduler(engine, long_fork_sessions())
        sched.step("w1"), sched.step("w1")
        sched.step("w2"), sched.step("w2")
        recs = {r.session: r.tid for r in engine.committed}
        engine.deliver(recs["w1"], "r_r1")
        engine.deliver(recs["w2"], "r_r2")
        sched.run_round_robin()
        got = classify_history(engine.history(), init_tid="t_init")
        assert got == {"SER": False, "SI": False, "PSI": True}


class TestFigure4:
    """Figure 4 and the dynamic chopping criterion (experiment E5)."""

    def test_g1_not_spliceable(self):
        case = fig4_g1()
        verdict = check_chopping(case.graph, Criterion.SI)
        assert not verdict.passes
        spliced = splice_history(case.history)
        assert not classify_history(spliced, init_tid="t_init")["SI"]

    def test_g2_spliceable(self):
        case = fig4_g2()
        verdict = check_chopping(case.graph, Criterion.SI)
        assert verdict.passes
        spliced = splice_history(case.history)
        assert classify_history(spliced, init_tid="t_init")["SI"]

    def test_g1_realisable_under_si(self):
        # The chopped G1 history itself is an SI behaviour (Theorem 10(i)).
        x = construct_execution(fig4_g1().graph)
        assert SI.satisfied_by(x)


class TestAppendixB:
    """The comparison matrix and separating examples (E8, E9, E11)."""

    def test_matrix_matches_paper(self):
        assert chopping_matrix(
            {
                "P1": p1_programs(),
                "P2": p2_programs(),
                "P3": p3_programs(),
                "P4": p4_programs(),
            }
        ) == {
            "P1": {"SER": False, "SI": False, "PSI": False},
            "P2": {"SER": True, "SI": True, "PSI": True},
            "P3": {"SER": False, "SI": True, "PSI": True},
            "P4": {"SER": False, "SI": False, "PSI": True},
        }

    def test_fig11_splice_is_write_skew(self):
        spliced = splice_history(fig11_h6().history)
        got = classify_history(spliced, init_tid="t_init")
        assert got["SI"] and not got["SER"]

    def test_fig12_splice_is_long_fork(self):
        spliced = splice_history(fig12_g7().history)
        got = classify_history(spliced, init_tid="t_init")
        assert got["PSI"] and not got["SI"]

    def test_fig13_naive_execution_splice_cyclic(self):
        x = fig13_execution().execution
        assert not naive_splice_execution_co(x).is_acyclic()


class TestSection6:
    """Robustness criteria on the canonical graphs (E12, E13)."""

    def test_write_skew_graph_si_only(self):
        from repro.anomalies import write_skew

        g = graph_of(write_skew().execution)
        assert exhibits_si_only_behaviour(g)
        assert not exhibits_psi_only_behaviour(g)

    def test_long_fork_graph_psi_only(self):
        from repro.anomalies import long_fork
        from repro.characterisation.membership import decide

        case = long_fork()
        g = decide(case.history, "PSI", init_tid=case.init_tid).witness
        assert exhibits_psi_only_behaviour(g)
        assert not exhibits_si_only_behaviour(g)
