"""Exhaustive agreement between the operational engines and the axiomatic
specifications on small workloads (experiment E4).

For every schedule of a small workload:

* the SI engine's histories are exactly a subset of HistSI (soundness of
  the engine w.r.t. the declarative spec);
* the serializable engine's histories lie in HistSER;
* every history classified in HistSI by the oracle that the SI engine can
  produce *is* produced by some schedule (sanity of the anomaly set: the
  engine reaches the write-skew history).
"""

import pytest

from repro.characterisation.membership import classify_history
from repro.core.models import SER, SI
from repro.mvcc.serializable import SerializableEngine
from repro.mvcc.si import SIEngine
from repro.mvcc.workloads import (
    deposit_program,
    lost_update_sessions,
    write_skew_sessions,
)
from repro.search.enumerate import distinct_histories, explore_runs


class TestLostUpdateWorkload:
    @pytest.fixture(scope="class")
    def si_histories(self):
        return distinct_histories(
            explore_runs(lambda: SIEngine({"acct": 0}), lost_update_sessions)
        )

    def test_all_si_runs_in_hist_si(self, si_histories):
        for run in si_histories.values():
            got = classify_history(run.history, init_tid="t_init")
            assert got["SI"]

    def test_no_lost_update_history_produced(self, si_histories):
        # In every final history, the last write to acct reflects both
        # deposits (75), never a lost one.
        for run in si_histories.values():
            writes = [
                e.value
                for t in run.history.transactions
                for e in t.events
                if e.is_write and e.obj == "acct"
            ]
            assert 75 in writes

    def test_executions_satisfy_si(self, si_histories):
        for run in si_histories.values():
            assert SI.satisfied_by(run.execution)


class TestWriteSkewWorkload:
    @pytest.fixture(scope="class")
    def si_histories(self):
        return distinct_histories(
            explore_runs(
                lambda: SIEngine({"acct1": 70, "acct2": 80}),
                write_skew_sessions,
            )
        )

    @pytest.fixture(scope="class")
    def ser_histories(self):
        return distinct_histories(
            explore_runs(
                lambda: SerializableEngine({"acct1": 70, "acct2": 80}),
                write_skew_sessions,
            )
        )

    def test_si_histories_in_hist_si(self, si_histories):
        for run in si_histories.values():
            assert classify_history(run.history, init_tid="t_init")["SI"]

    def test_ser_histories_in_hist_ser(self, ser_histories):
        for run in ser_histories.values():
            assert classify_history(run.history, init_tid="t_init")["SER"]

    def test_si_reaches_non_serializable_history(self, si_histories):
        flags = [
            classify_history(run.history, init_tid="t_init")["SER"]
            for run in si_histories.values()
        ]
        assert not all(flags), "SI engine never produced the write skew"

    def test_ser_strict_subset_of_si_behaviours(
        self, si_histories, ser_histories
    ):
        assert set(ser_histories) <= set(si_histories)
        assert set(ser_histories) != set(si_histories)


class TestMixedWorkload:
    def test_three_deposits_two_sessions(self):
        sessions = {
            "a": [deposit_program("x", 1), deposit_program("y", 2)],
            "b": [deposit_program("x", 4)],
        }
        histories = distinct_histories(
            explore_runs(lambda: SIEngine({"x": 0, "y": 0}), lambda: sessions)
        )
        assert histories
        for run in histories.values():
            got = classify_history(run.history, init_tid="t_init")
            assert got["SI"]
            # Increments on x serialise: final x is always 5.
            final_x = [
                e.value
                for t in run.history.transactions
                for e in t.events
                if e.is_write and e.obj == "x"
            ]
            assert 5 in final_x
