"""Sampled small-scope agreement of the two membership oracles.

The full exhaustive sweep (7938 histories, 0 mismatches) lives in
``benchmarks/bench_exhaustive_agreement.py``; this keeps a fast, evenly
sampled slice of it in the regular test suite as a regression tripwire
for the characterisation theorems.
"""

import itertools

import pytest

from repro.characterisation.exec_search import (
    classify_history_by_executions,
)
from repro.characterisation.membership import classify_history
from repro.search import enumerate_tiny_histories


def sampled(stride: int, same_session: bool):
    return list(
        itertools.islice(
            enumerate_tiny_histories(same_session=same_session),
            0,
            None,
            stride,
        )
    )


@pytest.mark.parametrize("same_session", [False, True],
                         ids=["separate", "one-session"])
def test_sampled_agreement(same_session):
    histories = sampled(stride=37, same_session=same_session)
    assert len(histories) > 100
    for h in histories:
        by_graphs = classify_history(h, init_tid="t_init")
        by_execs = classify_history_by_executions(h, init_tid="t_init")
        assert by_graphs == by_execs, h.describe()


def test_sample_contains_interesting_cases():
    # The sample must exercise allowed and rejected histories alike.
    histories = sampled(stride=37, same_session=False)
    verdicts = [
        classify_history(h, init_tid="t_init")["SI"] for h in histories
    ]
    assert any(verdicts) and not all(verdicts)


def test_single_object_universe_agreement():
    # The 1-object universe is small enough to sweep fully in-tests.
    count = 0
    for h in enumerate_tiny_histories(objects=1):
        by_graphs = classify_history(h, init_tid="t_init")
        by_execs = classify_history_by_executions(h, init_tid="t_init")
        assert by_graphs == by_execs, h.describe()
        count += 1
    assert count == 49  # 7 non-empty patterns per transaction, squared
