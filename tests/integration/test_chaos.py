"""Chaos integration: everything at once, validated end to end.

Random workloads on random engines with crash injection, mid-run
vacuuming and attached monitors; afterwards the run must satisfy its
model's axioms, its dependency graph must lie in the model's graph
class, the monitor must agree, and all committed work must be intact.
"""

import random

import pytest

from repro.core.models import PSI, SER, SI
from repro.graphs.classify import in_graph_psi, in_graph_ser, in_graph_si
from repro.graphs.extraction import graph_of
from repro.monitor import watch_engine
from repro.mvcc import (
    PSIEngine,
    Scheduler,
    SerializableEngine,
    SIEngine,
    TwoPhaseLockingEngine,
)
from repro.mvcc.workloads import random_workload

# (name, factory, execution-level axioms, graph-level class).  Note the
# OCC engine: its *recorded execution* is snapshot-shaped (VIS is the
# snapshot relation, not total), so it satisfies the SI axioms, while
# read-set validation makes its *histories* serializable — the graph
# check is the serializability claim.
CONFIGS = [
    ("SI", SIEngine, SI, in_graph_si),
    ("SER-OCC", SerializableEngine, SI, in_graph_ser),
    ("SER-2PL", TwoPhaseLockingEngine, SER, in_graph_ser),
    ("PSI", lambda init: PSIEngine(init, auto_deliver=False), PSI,
     in_graph_psi),
]


def chaos_run(engine_factory, seed: int, vacuum: bool):
    wl = random_workload(
        seed, sessions=4, transactions_per_session=4, objects=4,
        write_fraction=0.5,
    )
    engine = engine_factory(dict(wl.initial))
    scheduler = Scheduler(
        engine, wl.sessions, crash_rate=0.1, crash_seed=seed
    )
    rng = random.Random(seed)
    while not scheduler.is_finished():
        if isinstance(engine, PSIEngine) and rng.random() < 0.2:
            scheduler.deliver_one()
            continue
        if vacuum and isinstance(engine, SIEngine) and rng.random() < 0.05:
            engine.vacuum()  # safe policy: never breaks active snapshots
        name = rng.choice(scheduler.runnable_sessions())
        scheduler.step(name)
    if isinstance(engine, PSIEngine):
        engine.deliver_all()
    return engine, scheduler


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize(
    "name,factory,model,graph_check", CONFIGS,
    ids=[c[0] for c in CONFIGS],
)
def test_chaos(name, factory, model, graph_check, seed):
    vacuum = name in ("SI", "SER-OCC")
    engine, scheduler = chaos_run(factory, seed, vacuum=vacuum)

    # All work completed despite crashes and conflicts.
    assert engine.stats.commits == 16

    # Declarative validation of the recorded run.
    execution = engine.abstract_execution()
    assert model.satisfied_by(execution), model.explain(execution)
    assert graph_check(graph_of(execution))

    # The online monitor agrees (monitoring the *history-level* model:
    # SER for both serializable engines).
    monitored = "SER" if name.startswith("SER") else model.name
    monitor, violations = watch_engine(engine, model=monitored)
    assert monitor.consistent, violations

    # Crash-injection actually exercised the restart path somewhere in
    # the parameter sweep (see test_chaos_crashes_exercised).
    assert scheduler.crashes >= 0


def test_chaos_crashes_exercised():
    crash_total = 0
    for seed in range(4):
        _, scheduler = chaos_run(SIEngine, seed, vacuum=True)
        crash_total += scheduler.crashes
    assert crash_total > 0


def test_chaos_histories_internally_consistent():
    for name, factory, _, _ in CONFIGS:
        engine, _ = chaos_run(factory, seed=7, vacuum=False)
        assert engine.history().is_internally_consistent(), name
