"""Unit tests for the Figure 3 inequality system and Lemma 15."""

import pytest

from repro.anomalies import fig4_g1, fig4_g2, fig11_h6, fig12_g7, write_skew
from repro.characterisation.solver import (
    Solution,
    inequality_violations,
    is_smaller_or_equal,
    least_solution,
    satisfies_inequalities,
)
from repro.core.relations import Relation
from repro.graphs.extraction import graph_of


def catalog_graphs():
    yield fig4_g1().graph
    yield fig4_g2().graph
    yield fig11_h6().graph
    yield fig12_g7().graph
    yield graph_of(write_skew().execution)


class TestClosedForm:
    @pytest.mark.parametrize("graph", list(catalog_graphs()),
                             ids=lambda g: g.history.sessions[1][0].tid)
    def test_least_solution_satisfies_system(self, graph):
        solution = least_solution(graph)
        assert satisfies_inequalities(graph, solution), inequality_violations(
            graph, solution
        )

    def test_least_solution_with_forced_edges(self):
        graph = fig4_g1().graph
        txns = sorted(graph.transactions, key=lambda t: t.tid)
        forced = [(txns[0], txns[-1])]
        solution = least_solution(graph, forced_co=forced)
        assert satisfies_inequalities(graph, solution)
        assert (txns[0], txns[-1]) in solution.co

    def test_forced_edges_grow_solution(self):
        graph = fig4_g1().graph
        base = least_solution(graph)
        txns = sorted(graph.transactions, key=lambda t: t.tid)
        pair = next(iter(base.co.unrelated_pairs(graph.transactions)))
        bigger = least_solution(graph, forced_co=[pair])
        assert is_smaller_or_equal(base, bigger)
        assert pair in bigger.co


class TestS5Necessity:
    def test_execution_relations_solve_system(self):
        # Lemma 12: any SI execution's (VIS, CO) solves the system for its
        # own dependencies.
        case = write_skew()
        x = case.execution
        graph = graph_of(x)
        solution = Solution(vis=x.vis, co=x.co)
        assert satisfies_inequalities(graph, solution)

    def test_minimality_against_execution_solution(self):
        # Lemma 15 minimality: the least solution is below any solution,
        # in particular below the execution's own relations.
        case = write_skew()
        x = case.execution
        graph = graph_of(x)
        least = least_solution(graph)
        actual = Solution(vis=x.vis, co=x.co)
        assert is_smaller_or_equal(least, actual)


class TestFixpointIteration:
    """Lemma 15's closed form must equal the Knaster-Tarski least
    fixpoint of the Figure 3 rules — an executable proof of the lemma's
    'least solution' claim."""

    @pytest.mark.parametrize("graph", list(catalog_graphs()),
                             ids=lambda g: g.history.sessions[1][0].tid)
    def test_agrees_with_closed_form(self, graph):
        from repro.characterisation.solver import least_solution_by_iteration

        closed = least_solution(graph)
        iterated = least_solution_by_iteration(graph)
        assert closed.vis == iterated.vis
        assert closed.co == iterated.co

    @pytest.mark.parametrize("seed", range(8))
    def test_agrees_on_random_graphs(self, seed):
        from repro.characterisation.solver import least_solution_by_iteration
        from repro.search.random_graphs import random_dependency_graph

        graph = random_dependency_graph(seed, transactions=5, objects=3)
        closed = least_solution(graph)
        iterated = least_solution_by_iteration(graph)
        assert closed.vis == iterated.vis
        assert closed.co == iterated.co

    def test_agrees_with_forced_edges(self):
        from repro.characterisation.solver import least_solution_by_iteration

        graph = fig4_g1().graph
        txns = sorted(graph.transactions, key=lambda t: t.tid)
        base = least_solution(graph)
        pair = next(iter(base.co.unrelated_pairs(graph.transactions)))
        closed = least_solution(graph, forced_co=[pair])
        iterated = least_solution_by_iteration(graph, forced_co=[pair])
        assert closed.vis == iterated.vis
        assert closed.co == iterated.co


class TestViolationReporting:
    def test_empty_solution_violates_s1(self):
        graph = fig4_g1().graph
        empty = Solution(
            vis=Relation.empty(graph.transactions),
            co=Relation.empty(graph.transactions),
        )
        violations = inequality_violations(graph, empty)
        assert any("(S1)" in v for v in violations)

    def test_vis_not_in_co_violates_s3(self):
        graph = fig4_g2().graph
        sol = least_solution(graph)
        broken = Solution(vis=sol.vis, co=Relation.empty(graph.transactions))
        violations = inequality_violations(graph, broken)
        assert any("(S3)" in v for v in violations)

    def test_intransitive_co_violates_s4(self):
        graph = fig4_g2().graph
        txns = sorted(graph.transactions, key=lambda t: t.tid)
        chain = Relation([(txns[0], txns[1]), (txns[1], txns[2])])
        broken = Solution(vis=Relation.empty(graph.transactions), co=chain)
        violations = inequality_violations(graph, broken)
        assert any("(S4)" in v for v in violations)
