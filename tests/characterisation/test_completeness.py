"""Unit tests for completeness (Theorem 10(ii)) and Lemma 12."""

import pytest

from repro.anomalies import fig13_execution, session_guarantees, write_skew
from repro.characterisation.completeness import (
    check_lemma12,
    execution_solution,
    graph_is_complete_for,
)
from repro.characterisation.solver import (
    is_smaller_or_equal,
    least_solution,
    satisfies_inequalities,
)
from repro.core.models import SI
from repro.graphs.extraction import graph_of


def si_executions():
    return [
        session_guarantees().execution,
        write_skew().execution,
        fig13_execution().execution,
    ]


class TestLemma12:
    @pytest.mark.parametrize("x", si_executions(), ids=["fig2a", "fig2d", "fig13"])
    def test_vis_rw_in_co(self, x):
        assert SI.satisfied_by(x)
        assert check_lemma12(x) == []

    def test_violation_reported_for_non_si(self):
        # Break PREFIX/S5 by shrinking CO below VIS;RW requirements:
        # construct an execution-like object manually.
        from repro.core.events import read, write
        from repro.core.executions import AbstractExecution
        from repro.core.histories import singleton_sessions
        from repro.core.relations import Relation
        from repro.core.transactions import (
            initialisation_transaction,
            transaction,
        )

        init = initialisation_transaction(["x"])
        w = transaction("w", write("x", 1))
        r = transaction("r", read("x", 0))
        h = singleton_sessions(init, w, r)
        vis = Relation([(init, w), (init, r)])
        co = Relation.total_order([init, w, r])
        x = AbstractExecution(h, vis, co)
        # r reads init and w overwrites: r --RW--> w; but init VIS r and
        # w before r in CO... choose CO placing w *after* r to violate.
        co_bad = Relation.total_order([init, r, w])
        x_bad = AbstractExecution(h, vis, co_bad)
        # VIS;RW: init VIS r, r RW w -> (init, w) must be in CO: it is.
        assert check_lemma12(x_bad) == []
        # Flip: make w VIS-visible to nobody but CO-first — no violation
        # can be fabricated while keeping EXT; instead check the checker
        # flags a genuinely broken pair.
        co_tiny = Relation.total_order([r, init, w])
        x_broken = AbstractExecution(h, vis.intersection(co_tiny), co_tiny)
        # init is after r in CO, so (init VIS r) is gone; craft VIS anew:
        vis_manual = Relation([(r, w)])
        x_manual = AbstractExecution(h, vis_manual, co_tiny)
        # r RW w still derivable? WR now lacks sources; the checker works
        # purely on extracted deps, so just assert it runs.
        assert isinstance(check_lemma12(x_manual), list)


class TestTheorem10Completeness:
    @pytest.mark.parametrize("x", si_executions(), ids=["fig2a", "fig2d", "fig13"])
    def test_graph_of_si_execution_in_graphsi(self, x):
        assert graph_is_complete_for(x)

    @pytest.mark.parametrize("x", si_executions(), ids=["fig2a", "fig2d", "fig13"])
    def test_execution_relations_contain_least_solution(self, x):
        graph = graph_of(x)
        least = least_solution(graph)
        actual = execution_solution(x)
        assert satisfies_inequalities(graph, actual)
        assert is_smaller_or_equal(least, actual)
