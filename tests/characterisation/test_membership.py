"""Unit tests for the history-membership oracle (HistSI/HistSER/HistPSI)."""

import pytest

from repro.anomalies import (
    ALL_CASES,
    long_fork,
    lost_update,
    session_guarantees,
    write_skew,
)
from repro.characterisation.membership import (
    candidate_writers,
    classify_history,
    decide,
    extensions,
    history_in_psi,
    history_in_ser,
    history_in_si,
    search_space_size,
)
from repro.core.events import read, write
from repro.core.histories import singleton_sessions
from repro.core.transactions import initialisation_transaction, transaction
from repro.graphs.classify import in_graph_si


class TestCatalogClassification:
    @pytest.mark.parametrize("name", sorted(ALL_CASES))
    def test_expected_membership(self, name):
        case = ALL_CASES[name]()
        got = classify_history(case.history, init_tid=case.init_tid)
        assert got == case.expected, name

    def test_write_skew_witness_in_graphsi(self):
        case = write_skew()
        decision = decide(case.history, "SI", init_tid=case.init_tid)
        assert decision.allowed
        assert decision.witness is not None
        assert in_graph_si(decision.witness)

    def test_lost_update_explores_everything(self):
        case = lost_update()
        decision = decide(case.history, "SI", init_tid=case.init_tid)
        assert not decision.allowed
        assert decision.witness is None
        assert decision.graphs_explored >= 1


class TestExtensions:
    def test_candidate_writers_filter_by_value(self):
        init = initialisation_transaction(["x"])
        w1 = transaction("w1", write("x", 1))
        w2 = transaction("w2", write("x", 2))
        r = transaction("r", read("x", 1))
        h = singleton_sessions(init, w1, w2, r)
        assert candidate_writers(h, r, "x") == [w1]

    def test_no_candidate_yields_no_extension(self):
        init = initialisation_transaction(["x"])
        r = transaction("r", read("x", 42))
        h = singleton_sessions(init, r)
        assert list(extensions(h)) == []
        assert not history_in_si(h, init_tid="t_init")

    def test_init_pinned_first_in_ww(self):
        case = write_skew()
        for graph in extensions(case.history, init_tid=case.init_tid):
            for obj in graph.history.objects:
                writers = graph.history.write_transactions(obj)
                if len(writers) > 1:
                    init = graph.history.by_tid(case.init_tid)
                    assert graph.ww_on(obj).min_element(writers) == init

    def test_max_graphs_caps_enumeration(self):
        case = write_skew()
        capped = list(
            extensions(case.history, init_tid=case.init_tid, max_graphs=1)
        )
        assert len(capped) == 1

    def test_extensions_are_wellformed(self):
        case = long_fork()
        for graph in extensions(case.history, init_tid=case.init_tid):
            assert graph.well_formedness_violations() == []

    def test_search_space_size_matches_enumeration(self):
        case = write_skew()
        size = search_space_size(case.history, init_tid=case.init_tid)
        actual = len(list(extensions(case.history, init_tid=case.init_tid)))
        assert actual == size


class TestModelHelpers:
    def test_helpers_agree_with_decide(self):
        case = session_guarantees()
        h, init = case.history, case.init_tid
        assert history_in_si(h, init_tid=init)
        assert history_in_ser(h, init_tid=init)
        assert history_in_psi(h, init_tid=init)

    def test_unknown_model_rejected(self):
        case = session_guarantees()
        with pytest.raises(ValueError):
            decide(case.history, "RC")

    def test_internally_inconsistent_history_rejected(self):
        init = initialisation_transaction(["x"])
        bad = transaction("bad", write("x", 1), read("x", 2))
        h = singleton_sessions(init, bad)
        decision = decide(h, "SI", init_tid="t_init")
        assert not decision.allowed
        assert decision.graphs_explored == 0


class TestModelInclusions:
    @pytest.mark.parametrize("name", sorted(ALL_CASES))
    def test_hist_ser_subset_si_subset_psi(self, name):
        case = ALL_CASES[name]()
        got = classify_history(case.history, init_tid=case.init_tid)
        if got["SER"]:
            assert got["SI"]
        if got["SI"]:
            assert got["PSI"]
