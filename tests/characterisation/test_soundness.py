"""Unit tests for the Theorem 10(i) soundness construction."""

import pytest

from repro.anomalies import fig4_g1, fig4_g2, fig11_h6, fig12_g7, write_skew
from repro.characterisation.soundness import (
    construct_execution,
    default_pair_picker,
    initial_pre_execution,
    pre_execution_chain,
    totalisation_steps,
)
from repro.core.errors import NotInGraphSIError, SolverError
from repro.core.events import read, write
from repro.core.histories import singleton_sessions
from repro.core.models import SI, in_pre_exec_si
from repro.core.transactions import initialisation_transaction, transaction
from repro.graphs.dependency import dependency_graph
from repro.graphs.extraction import graph_of


def catalog_graphs():
    return [
        fig4_g1().graph,
        fig4_g2().graph,
        fig11_h6().graph,
        fig12_g7().graph,
        graph_of(write_skew().execution),
    ]


def graphs_equal(g1, g2) -> bool:
    if dict(g1.wr) != dict(g2.wr):
        return False
    objs = set(g1.history.objects) | set(g2.history.objects)
    return all(g1.ww_on(o).pairs == g2.ww_on(o).pairs for o in objs)


class TestConstruction:
    @pytest.mark.parametrize(
        "graph", catalog_graphs(), ids=lambda g: g.history.sessions[1][0].tid
    )
    def test_result_in_exec_si(self, graph):
        x = construct_execution(graph)
        assert SI.satisfied_by(x)

    @pytest.mark.parametrize(
        "graph", catalog_graphs(), ids=lambda g: g.history.sessions[1][0].tid
    )
    def test_graph_preserved(self, graph):
        x = construct_execution(graph)
        assert graphs_equal(graph_of(x), graph)

    @pytest.mark.parametrize(
        "graph", catalog_graphs(), ids=lambda g: g.history.sessions[1][0].tid
    )
    def test_co_total(self, graph):
        x = construct_execution(graph)
        assert x.co.is_total_on(graph.transactions)


class TestPreExecutionChain:
    def test_chain_stays_in_pre_exec_si(self):
        graph = fig4_g1().graph
        for pre in pre_execution_chain(graph):
            assert in_pre_exec_si(pre)

    def test_chain_graph_preserved_at_every_step(self):
        graph = fig12_g7().graph
        for pre in pre_execution_chain(graph):
            assert graphs_equal(graph_of(pre), graph)

    def test_commit_order_grows_monotonically(self):
        graph = fig12_g7().graph
        chain = list(pre_execution_chain(graph))
        for earlier, later in zip(chain, chain[1:]):
            assert earlier.co.pairs < later.co.pairs
            assert earlier.vis.pairs <= later.vis.pairs

    def test_last_element_total(self):
        graph = fig11_h6().graph
        chain = list(pre_execution_chain(graph))
        assert chain[-1].co_is_total()

    def test_totalisation_steps_counts_chain(self):
        graph = fig11_h6().graph
        steps = totalisation_steps(graph)
        assert steps == len(list(pre_execution_chain(graph))) - 1


class TestInitialPreExecution:
    def test_p0_in_pre_exec_si(self):
        p0 = initial_pre_execution(fig4_g1().graph)
        assert in_pre_exec_si(p0)

    def test_non_graphsi_rejected(self):
        # The lost-update graph has a WW;RW cycle: not in GraphSI.
        init = initialisation_transaction(["acct"])
        t1 = transaction("t1", read("acct", 0), write("acct", 50))
        t2 = transaction("t2", read("acct", 0), write("acct", 25))
        h = singleton_sessions(init, t1, t2)
        graph = dependency_graph(
            h,
            wr={"acct": [(init, t1), (init, t2)]},
            ww={"acct": [(init, t1), (t1, t2)]},
        )
        with pytest.raises(NotInGraphSIError) as excinfo:
            initial_pre_execution(graph)
        assert "witness" in str(excinfo.value)

    def test_check_membership_skippable(self):
        graph = fig4_g2().graph
        p0 = initial_pre_execution(graph, check_membership=False)
        assert in_pre_exec_si(p0)


class TestPairPicker:
    def test_default_picker_deterministic(self):
        graph = fig12_g7().graph
        x1 = construct_execution(graph)
        x2 = construct_execution(graph)
        assert x1.co == x2.co

    def test_custom_picker_changes_commit_order(self):
        graph = fig12_g7().graph

        def reverse_picker(pre):
            a, b = default_pair_picker(pre)
            return (b, a)

        x_fwd = construct_execution(graph)
        x_rev = construct_execution(graph, pick_pair=reverse_picker)
        assert SI.satisfied_by(x_rev)
        assert x_fwd.co != x_rev.co

    def test_picker_on_total_co_raises(self):
        graph = fig4_g2().graph
        x = construct_execution(graph)
        from repro.core.executions import PreExecution

        pre = PreExecution(x.history, x.vis, x.co)
        with pytest.raises(SolverError):
            default_pair_picker(pre)

    def test_bad_picker_detected(self):
        graph = fig12_g7().graph

        def bad_picker(pre):
            return next(iter(pre.co))  # already related

        with pytest.raises(SolverError):
            construct_execution(graph, pick_pair=bad_picker)
