"""Property-based validation of Theorem 10 and Lemmas 12/15 (hypothesis).

These tests sample random dependency graphs and executions and check the
paper's central claims on every sample:

* soundness (10(i)): every GraphSI graph is realised by the construction
  as an execution in ExecSI with the same dependencies;
* completeness (10(ii)): graphs of SI-engine runs are always in GraphSI;
* Lemma 15: the closed form solves the Figure 3 system and is minimal;
* Lemma 12: VIS ; RW ⊆ CO in every constructed SI execution.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.characterisation.completeness import check_lemma12
from repro.characterisation.solver import (
    Solution,
    is_smaller_or_equal,
    least_solution,
    satisfies_inequalities,
)
from repro.characterisation.soundness import construct_execution
from repro.core.models import SI
from repro.graphs.classify import (
    in_graph_psi,
    in_graph_ser,
    in_graph_si,
    in_graph_si_by_cycles,
)
from repro.graphs.extraction import graph_of
from repro.search.random_graphs import (
    graph_from_si_run,
    random_dependency_graph,
    random_graphsi_graph,
)

seeds = st.integers(min_value=0, max_value=10_000)

relaxed = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def graphs_equal(g1, g2) -> bool:
    if dict(g1.wr) != dict(g2.wr):
        return False
    objs = set(g1.history.objects) | set(g2.history.objects)
    return all(g1.ww_on(o).pairs == g2.ww_on(o).pairs for o in objs)


@relaxed
@given(seeds)
def test_soundness_roundtrip_on_random_graphsi_graphs(seed):
    graph = random_graphsi_graph(seed, transactions=5, objects=3)
    x = construct_execution(graph)
    assert SI.satisfied_by(x)
    assert graphs_equal(graph_of(x), graph)


@relaxed
@given(seeds)
def test_soundness_roundtrip_on_engine_runs(seed):
    graph = graph_from_si_run(seed, transactions=8, objects=4)
    assert in_graph_si(graph)  # Theorem 10(ii) on the engine run
    x = construct_execution(graph)
    assert SI.satisfied_by(x)
    assert graphs_equal(graph_of(x), graph)


@relaxed
@given(seeds)
def test_lemma12_on_constructed_executions(seed):
    graph = random_graphsi_graph(seed, transactions=5, objects=3)
    x = construct_execution(graph)
    assert check_lemma12(x) == []


@relaxed
@given(seeds)
def test_lemma15_solution_and_minimality(seed):
    graph = random_dependency_graph(seed, transactions=5, objects=3)
    least = least_solution(graph)
    assert satisfies_inequalities(graph, least)
    if in_graph_si(graph):
        x = construct_execution(graph)
        actual = Solution(vis=x.vis, co=x.co)
        assert satisfies_inequalities(graph, actual)
        assert is_smaller_or_equal(least, actual)


@relaxed
@given(seeds)
def test_graph_class_inclusions_on_random_graphs(seed):
    graph = random_dependency_graph(seed, transactions=5, objects=3)
    ser, si, psi = in_graph_ser(graph), in_graph_si(graph), in_graph_psi(graph)
    if ser:
        assert si
    if si:
        assert psi


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seeds)
def test_compositional_vs_cycle_based_graphsi_check(seed):
    graph = random_dependency_graph(seed, transactions=4, objects=3)
    assert in_graph_si(graph) == in_graph_si_by_cycles(graph)
