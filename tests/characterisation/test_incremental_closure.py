"""The incremental transitive-closure step of the totalisation loop must
equal the naive re-closure at every step (and Lemma 15's closed form)."""

import pytest

from repro.anomalies import fig4_g1, fig11_h6, fig12_g7
from repro.characterisation.soundness import (
    _insert_edge_transitively,
    default_pair_picker,
    pre_execution_chain,
)
from repro.core.relations import Relation
from repro.search.random_graphs import graph_from_si_run


class TestInsertEdgeTransitively:
    def test_simple_chain(self):
        co = Relation.total_order(["a", "b"]).union(
            Relation.empty({"a", "b", "c", "d"})
        )
        out = _insert_edge_transitively(co, "b", "c", {"a", "b", "c", "d"})
        assert ("a", "c") in out
        assert ("b", "c") in out
        assert out.is_transitive()

    def test_matches_naive_closure(self):
        co = Relation(
            [("a", "b"), ("c", "d"), ("a", "d")],
            {"a", "b", "c", "d"},
        ).transitive_closure()
        incremental = _insert_edge_transitively(
            co, "b", "c", {"a", "b", "c", "d"}
        )
        naive = co.union(Relation([("b", "c")])).transitive_closure()
        assert incremental == naive


class TestChainConsistency:
    @pytest.mark.parametrize(
        "graph_fn",
        [lambda: fig4_g1().graph, lambda: fig11_h6().graph,
         lambda: fig12_g7().graph,
         lambda: graph_from_si_run(9, transactions=8, objects=3)],
        ids=["g1", "h6", "g7", "engine-run"],
    )
    def test_every_step_transitively_closed(self, graph_fn):
        graph = graph_fn()
        for pre in pre_execution_chain(graph):
            assert pre.co.is_transitive()
            assert pre.co == pre.co.transitive_closure()

    def test_chain_matches_naive_recomputation(self):
        # Re-drive the chain manually with naive closures and compare.
        graph = fig12_g7().graph
        chain = list(pre_execution_chain(graph))
        for earlier, later in zip(chain, chain[1:]):
            added = later.co.pairs - earlier.co.pairs
            # Find the forced pair: the one chosen by the picker.
            t, s = default_pair_picker(earlier)
            naive = earlier.co.union(
                Relation([(t, s)], graph.transactions)
            ).transitive_closure()
            assert later.co == naive
            assert (t, s) in added
