"""Tests for the execution-level search, and the end-to-end agreement of
the two oracles (Definition 4 vs Theorems 8/9/21).

Agreement between :mod:`repro.characterisation.exec_search` (which
enumerates VIS/CO and checks the axioms, using no dependency-graph code)
and :mod:`repro.characterisation.membership` (which enumerates dependency
graphs and checks the cycle conditions) is precisely the content of the
characterisation theorems, checked exhaustively at small scope.
"""

import pytest

from repro.anomalies import ALL_CASES
from repro.characterisation.exec_search import (
    classify_history_by_executions,
    find_execution,
    history_allowed,
)
from repro.characterisation.membership import classify_history
from repro.core.models import MODELS
from repro.mvcc.si import SIEngine
from repro.mvcc.runtime import Scheduler
from repro.mvcc.workloads import random_workload

SMALL_CASES = [
    "session_guarantees",
    "lost_update",
    "long_fork",
    "write_skew",
    "fig4_g1",
    "fig4_g2",
]


class TestDirectSearch:
    @pytest.mark.parametrize("name", SMALL_CASES)
    def test_agrees_with_graph_oracle_on_catalog(self, name):
        case = ALL_CASES[name]()
        by_graphs = classify_history(case.history, init_tid=case.init_tid)
        by_execs = classify_history_by_executions(
            case.history, init_tid=case.init_tid
        )
        assert by_execs == by_graphs == case.expected

    def test_witness_satisfies_model(self):
        case = ALL_CASES["write_skew"]()
        x = find_execution(case.history, "SI", init_tid=case.init_tid)
        assert x is not None
        assert MODELS["SI"].satisfied_by(x)

    def test_no_witness_for_disallowed(self):
        case = ALL_CASES["lost_update"]()
        assert find_execution(case.history, "SI", init_tid=case.init_tid) is None
        assert find_execution(case.history, "PSI", init_tid=case.init_tid) is None

    def test_internally_inconsistent_rejected(self):
        from repro.core.events import read, write
        from repro.core.histories import singleton_sessions
        from repro.core.transactions import (
            initialisation_transaction,
            transaction,
        )

        init = initialisation_transaction(["x"])
        bad = transaction("bad", write("x", 1), read("x", 2))
        h = singleton_sessions(init, bad)
        assert not history_allowed(h, "SI", init_tid="t_init")

    def test_unknown_model_rejected(self):
        case = ALL_CASES["write_skew"]()
        with pytest.raises(KeyError):
            history_allowed(case.history, "RC", init_tid=case.init_tid)

    def test_session_order_respected_in_witness(self):
        case = ALL_CASES["fig4_g1"]()
        x = find_execution(case.history, "SI", init_tid=case.init_tid)
        assert x is not None
        assert case.history.session_order.pairs <= x.vis.pairs


class TestGenericAxiomSearch:
    """find_execution_for_axioms: the ablation-style generic search."""

    def test_session_order_pruning_sound(self):
        # With SESSION among the axioms, pruning must not change verdicts.
        from repro.characterisation.exec_search import (
            find_execution_for_axioms,
        )
        from repro.core.axioms import EXT, INT, NOCONFLICT, PREFIX, SESSION

        si_axioms = (INT, EXT, SESSION, PREFIX, NOCONFLICT)
        for name in ("write_skew", "lost_update", "long_fork"):
            case = ALL_CASES[name]()
            free = find_execution_for_axioms(
                case.history, si_axioms, init_tid=case.init_tid
            )
            pruned = find_execution_for_axioms(
                case.history, si_axioms, init_tid=case.init_tid,
                require_session_order=True,
            )
            assert (free is None) == (pruned is None), name
            assert (free is None) == (not case.expected["SI"]), name

    def test_dropping_session_axiom_admits_stale_session_read(self):
        from repro.characterisation.exec_search import (
            find_execution_for_axioms,
        )
        from repro.core.axioms import EXT, INT, NOCONFLICT, PREFIX, SESSION

        case = ALL_CASES["session_violation"]()
        with_session = find_execution_for_axioms(
            case.history, (INT, EXT, SESSION, PREFIX, NOCONFLICT),
            init_tid=case.init_tid,
        )
        without_session = find_execution_for_axioms(
            case.history, (INT, EXT, PREFIX, NOCONFLICT),
            init_tid=case.init_tid,
        )
        assert with_session is None       # strong session SI rejects
        assert without_session is not None  # plain SI would allow


class TestOracleAgreementOnEngineRuns:
    """Both oracles must accept every small SI-engine history, and agree
    on every model, on randomised runs."""

    @pytest.mark.parametrize("seed", range(6))
    def test_agreement_on_random_si_runs(self, seed):
        wl = random_workload(
            seed, sessions=2, transactions_per_session=2, objects=2,
            ops_per_transaction=(1, 2),
        )
        engine = SIEngine(wl.initial)
        Scheduler(engine, wl.sessions).run_random(seed)
        h = engine.history()
        by_graphs = classify_history(h, init_tid="t_init")
        by_execs = classify_history_by_executions(h, init_tid="t_init")
        assert by_graphs == by_execs
        assert by_graphs["SI"]
