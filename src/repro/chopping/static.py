"""Static chopping graphs and the static chopping analyses (§5, App. B).

The *static chopping graph* ``SCG(P)`` of a chopping ``P`` has a node per
program piece ``(i, j)`` and edges:

* successor — same program, ``j1 < j2``;
* predecessor — same program, ``j1 > j2``;
* read dependency (WR) — different programs, ``W_{i1}^{j1} ∩ R_{i2}^{j2} ≠ ∅``;
* write dependency (WW) — different programs, ``W_{i1}^{j1} ∩ W_{i2}^{j2} ≠ ∅``;
* anti-dependency (RW) — different programs, ``R_{i1}^{j1} ∩ W_{i2}^{j2} ≠ ∅``.

``SCG(P)`` over-approximates the dynamic chopping graph of every
dependency graph produced by ``P``, so the absence of critical cycles in
it implies correctness of the chopping:

* **Corollary 18** — no SI-critical cycle ⇒ correct under SI;
* **Theorem 29** — no SER-critical cycle ⇒ correct under serializability;
* **Theorem 31** — no PSI-critical cycle ⇒ correct under parallel SI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..graphs.cycles import Cycle, EdgeKind, LabeledDigraph, LabeledEdge
from .criticality import Criterion, find_critical_cycle
from .programs import Piece, Program

PieceId = Tuple[str, int]
"""A static-chopping-graph node: (program name, piece index)."""


def piece_nodes(programs: Sequence[Program]) -> List[PieceId]:
    """The nodes of SCG(P), in program order."""
    _check_unique_names(programs)
    return [
        (p.name, j) for p in programs for j in range(len(p.pieces))
    ]


def _check_unique_names(programs: Sequence[Program]) -> None:
    names = [p.name for p in programs]
    if len(set(names)) != len(names):
        raise ValueError(
            f"program names must be unique (use replicate() for copies); "
            f"got {names}"
        )


def static_chopping_graph(programs: Sequence[Program]) -> LabeledDigraph:
    """Build ``SCG(P)`` as an edge-labelled multigraph over piece ids."""
    _check_unique_names(programs)
    scg = LabeledDigraph()
    pieces: Dict[PieceId, Piece] = {}
    for p in programs:
        for j, pc in enumerate(p.pieces):
            node = (p.name, j)
            scg.add_node(node)
            pieces[node] = pc
    # Successor / predecessor edges inside each program.
    for p in programs:
        k = len(p.pieces)
        for j1 in range(k):
            for j2 in range(j1 + 1, k):
                scg.add_edge(
                    LabeledEdge((p.name, j1), (p.name, j2), EdgeKind.SUCCESSOR)
                )
                scg.add_edge(
                    LabeledEdge((p.name, j2), (p.name, j1), EdgeKind.PREDECESSOR)
                )
    # Conflict edges between pieces of different programs.
    nodes = list(pieces)
    for n1 in nodes:
        p1 = pieces[n1]
        for n2 in nodes:
            if n1[0] == n2[0]:
                continue
            p2 = pieces[n2]
            for obj in sorted(p1.writes & p2.reads):
                scg.add_edge(LabeledEdge(n1, n2, EdgeKind.WR, obj))
            for obj in sorted(p1.writes & p2.writes):
                scg.add_edge(LabeledEdge(n1, n2, EdgeKind.WW, obj))
            for obj in sorted(p1.reads & p2.writes):
                scg.add_edge(LabeledEdge(n1, n2, EdgeKind.RW, obj))
    return scg


@dataclass(frozen=True)
class StaticVerdict:
    """Outcome of a static chopping analysis.

    Attributes:
        criterion: the model variant checked.
        correct: True when no critical cycle exists — the chopping is
            correct under that model (sufficient condition).
        witness: a critical cycle otherwise.
    """

    criterion: Criterion
    correct: bool
    witness: Optional[Cycle]

    def __str__(self) -> str:
        model = self.criterion.value
        if self.correct:
            return f"chopping correct under {model} (no critical cycle)"
        return (
            f"chopping not proven correct under {model}; "
            f"critical cycle: {self.witness}"
        )


def analyse_chopping(
    programs: Sequence[Program], criterion: Criterion = Criterion.SI
) -> StaticVerdict:
    """Run the static chopping analysis for the given criterion."""
    scg = static_chopping_graph(programs)
    witness = find_critical_cycle(scg, criterion)
    return StaticVerdict(criterion, witness is None, witness)


def chopping_correct_si(programs: Sequence[Program]) -> bool:
    """Corollary 18: the chopping is correct under SI if SCG(P) has no
    SI-critical cycle."""
    return analyse_chopping(programs, Criterion.SI).correct


def chopping_correct_ser(programs: Sequence[Program]) -> bool:
    """Theorem 29: correctness under serializability (Shasha et al.'s
    criterion, in the paper's improved form)."""
    return analyse_chopping(programs, Criterion.SER).correct


def chopping_correct_psi(programs: Sequence[Program]) -> bool:
    """Theorem 31: correctness under parallel SI."""
    return analyse_chopping(programs, Criterion.PSI).correct


def chopping_matrix(
    choppings: Dict[str, Sequence[Program]]
) -> Dict[str, Dict[str, bool]]:
    """Correctness of several choppings under all three criteria —
    the comparison matrix of Appendix B (experiment E11)."""
    out: Dict[str, Dict[str, bool]] = {}
    for name, programs in choppings.items():
        out[name] = {
            criterion.value: analyse_chopping(programs, criterion).correct
            for criterion in Criterion
        }
    return out
