"""Critical-cycle predicates for chopping graphs (§5; Appendix B).

The chopping analyses of the paper all hinge on the absence of *critical
cycles* in a chopping graph (dynamic — over transactions — or static —
over program pieces).  The variants differ only in their third condition:

* **SI-critical** (§5): the cycle (i) is simple, (ii) contains three
  consecutive edges "conflict, predecessor, conflict", and (iii) any two
  anti-dependency (RW) conflict edges are separated by a read (WR) or
  write (WW) dependency edge.  We implement (iii) as: in the cyclic
  subsequence of conflict edges, no two consecutive entries are both RW —
  this matches condition (6) in the proof of Theorem 16.  (For cycles
  satisfying (ii) the two readings coincide: (ii) forces at least two
  conflict edges, since a "conflict, predecessor, conflict" fragment
  cannot reuse a single edge — a conflict edge joins different
  sessions/programs while a predecessor edge stays inside one.)
* **SER-critical** (Definition 28): conditions (i) and (ii) only.
* **PSI-critical** (Definition 30): (i), (ii), and at most one
  anti-dependency edge in the whole cycle.

Every PSI-critical cycle is SI-critical, and every SI-critical cycle is
SER-critical, which yields the permissiveness ordering of choppings
(correct under SER ⇒ correct under SI ⇒ correct under PSI).
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from ..graphs.cycles import (
    Cycle,
    EdgeKind,
    LabeledDigraph,
    is_conflict,
    is_predecessor,
)


class Criterion(enum.Enum):
    """The chopping-correctness criterion variants of the paper."""

    SER = "SER"
    """Definition 28 / Theorem 29 — Shasha et al.'s criterion, improved."""
    SI = "SI"
    """Section 5 / Theorem 16 and Corollary 18 — this paper's criterion."""
    PSI = "PSI"
    """Definition 30 / Theorem 31 — the parallel-SI criterion of [11]."""


_FRAGMENT = (is_conflict, is_predecessor, is_conflict)


def has_cpc_fragment(cycle: Cycle) -> bool:
    """Condition (ii): three consecutive edges "conflict, predecessor,
    conflict" somewhere around the cycle."""
    return cycle.has_fragment(_FRAGMENT)


def antidependencies_separated(cycle: Cycle) -> bool:
    """Condition (iii) of SI-criticality: in the cyclic sequence of
    *conflict* edges, no two consecutive ones are both anti-dependencies.

    A cycle with fewer than two conflict edges passes vacuously (such
    cycles cannot satisfy condition (ii) anyway; see module docstring).
    """
    conflicts = cycle.project(lambda e: is_conflict(e.kind))
    m = len(conflicts)
    if m < 2:
        return True
    return not any(
        conflicts[i].kind is EdgeKind.RW
        and conflicts[(i + 1) % m].kind is EdgeKind.RW
        for i in range(m)
    )


def at_most_one_antidependency(cycle: Cycle) -> bool:
    """Condition (iii) of PSI-criticality: ≤ 1 anti-dependency edge."""
    return cycle.count(EdgeKind.RW) <= 1


def is_critical(cycle: Cycle, criterion: Criterion) -> bool:
    """Whether a (vertex-)simple cycle is critical under the criterion.

    The caller must supply simple cycles (condition (i));
    :meth:`LabeledDigraph.simple_cycles` only yields those.
    """
    if not has_cpc_fragment(cycle):
        return False
    if criterion is Criterion.SER:
        return True
    if criterion is Criterion.SI:
        return antidependencies_separated(cycle)
    if criterion is Criterion.PSI:
        return at_most_one_antidependency(cycle)
    raise ValueError(f"unknown criterion {criterion!r}")


def find_critical_cycle_by_enumeration(
    graph: LabeledDigraph,
    criterion: Criterion,
    length_bound: Optional[int] = None,
) -> Optional[Cycle]:
    """Critical-cycle search by exhaustive labelled-cycle enumeration.

    Exact but doubly exponential (simple vertex cycles × parallel-label
    assignments); kept as the validation oracle for
    :func:`find_critical_cycle` and usable on paper-sized graphs.
    """
    return graph.find_cycle(
        lambda c: is_critical(c, criterion), length_bound=length_bound
    )


def find_critical_cycle(
    graph: LabeledDigraph,
    criterion: Criterion,
    length_bound: Optional[int] = None,
) -> Optional[Cycle]:
    """The first critical cycle of the chopping graph, or ``None``.

    ``None`` means the chopping passes the criterion: by Theorem 16 /
    Corollary 18 (SI), Theorem 29 (SER) or Theorem 31 (PSI), the chopping
    is correct under the respective model.

    The search enumerates *vertex* cycles only and decides per cycle
    whether some assignment of parallel edge labels is critical, instead
    of enumerating every label combination:

    * successor/predecessor positions are forced by the vertex sequence
      (same-session/program steps), so condition (ii) is determined;
    * among parallel conflict edges, choosing a non-RW kind whenever one
      exists is always optimal for conditions (iii) of both the SI and
      PSI variants (they only *restrict* RW edges), so an edge
      contributes an unavoidable anti-dependency only when RW is its sole
      kind.

    This removes the label-product blow-up on dense chopping graphs while
    returning exactly the same verdicts (tested against the enumeration
    oracle).
    """
    import networkx as nx

    base = nx.DiGraph()
    base.add_nodes_from(graph.nodes)
    base.add_edges_from({(e.src, e.dst) for e in graph.edges})

    for node_cycle in nx.simple_cycles(base, length_bound=length_bound):
        witness = _decide_vertex_cycle(graph, node_cycle, criterion)
        if witness is not None:
            return witness
    return None


def _decide_vertex_cycle(
    graph: LabeledDigraph, node_cycle, criterion: Criterion
) -> Optional[Cycle]:
    """Pick a critical label assignment along a vertex cycle, if any."""
    n = len(node_cycle)
    chosen = []
    kinds = []
    conflict_positions = []
    rw_forced = []
    for i in range(n):
        options = graph.edges_between(node_cycle[i], node_cycle[(i + 1) % n])
        if not options:
            return None
        structural = [
            e for e in options
            if e.kind in (EdgeKind.SUCCESSOR, EdgeKind.PREDECESSOR)
        ]
        conflicts = [e for e in options if is_conflict(e.kind)]
        if structural:
            # Same-session step: its direction fixes S vs P uniquely.
            edge = structural[0]
            chosen.append(edge)
            kinds.append(edge.kind)
        else:
            non_rw = [e for e in conflicts if e.kind is not EdgeKind.RW]
            edge = non_rw[0] if non_rw else conflicts[0]
            conflict_positions.append(len(chosen))
            rw_forced.append(not non_rw)
            chosen.append(edge)
            kinds.append(edge.kind)

    cycle = Cycle(tuple(chosen))
    # Condition (ii): determined by the (fixed) S/P positions and the
    # conflict positions, independent of conflict-kind choices.
    if not has_cpc_fragment(cycle):
        return None
    if criterion is Criterion.SER:
        return cycle
    if criterion is Criterion.SI:
        m = len(conflict_positions)
        if m == 0:
            return None
        ok = not any(
            rw_forced[i] and rw_forced[(i + 1) % m] for i in range(m)
        )
        return cycle if ok else None
    if criterion is Criterion.PSI:
        if sum(rw_forced) <= 1:
            return cycle
        return None
    raise ValueError(f"unknown criterion {criterion!r}")
