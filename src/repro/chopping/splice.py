"""Splicing histories, dependency graphs, and (naively) executions (§5).

Splicing merges all transactions of a session into one big transaction:

* :func:`splice_history` — the paper's ``splice(H)``: each session becomes
  a single transaction whose events are the session's events in session
  order; the result has singleton sessions (``SO = ∅``).
* :func:`splice_graph` — the paper's ``splice(G)``: dependencies are lifted
  to spliced transactions (dropping intra-session edges); RW is re-derived
  from the lifted WR/WW per Definition 5, as in the proof of Theorem 16.
* :func:`naive_splice_execution_co` — the Appendix B.3 straw man: lifting
  an execution's CO directly to spliced transactions.  For the Figure 13
  execution this produces a *cyclic* "commit order", demonstrating why the
  paper splices dependency graphs instead.

A dependency graph ``G ∈ GraphSI`` is *spliceable* when some graph
``G' ∈ GraphSI`` has ``H_{G'} = splice(H_G)``; Lemma 26 shows that when
``DCG(G)`` has no critical cycles, ``splice_graph(G)`` is such a witness.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from ..core.events import Event, Obj
from ..core.executions import PreExecution
from ..core.histories import History
from ..core.relations import Relation
from ..core.transactions import Transaction
from ..graphs.dependency import DependencyGraph


def spliced_tid(history: History, session_index: int) -> str:
    """The id of the transaction obtained by splicing a session: the
    ``+``-join of the session's tids (deterministic and readable)."""
    return "+".join(t.tid for t in history.sessions[session_index])


def splice_session(history: History, session_index: int) -> Transaction:
    """The paper's ``⌈T⌉_H``: the session's events concatenated in session
    (and program) order into a single transaction."""
    events = []
    eid = 0
    for t in history.sessions[session_index]:
        for e in t.events:
            events.append(Event(eid, e.op))
            eid += 1
    return Transaction(spliced_tid(history, session_index), tuple(events))


def splice_history(history: History) -> History:
    """The paper's ``splice(H)``: every session spliced into one
    transaction; the resulting history has empty session order."""
    spliced = tuple(
        (splice_session(history, i),) for i in range(len(history.sessions))
    )
    return History(spliced)


def _splice_map(history: History) -> Dict[Transaction, Transaction]:
    """Map each original transaction to its spliced representative."""
    mapping: Dict[Transaction, Transaction] = {}
    for i, session in enumerate(history.sessions):
        rep = splice_session(history, i)
        for t in session:
            mapping[t] = rep
    return mapping


def splice_graph(
    graph: DependencyGraph, validate: bool = True
) -> DependencyGraph:
    """The paper's ``splice(G)`` (proof of Theorem 16).

    WR and WW edges between transactions of *different* sessions are
    lifted to the spliced transactions; intra-session dependencies vanish
    into program order.  RW is re-derived from the lifted WR/WW
    (Definition 5) — Lemma 17 shows this matches the lifted RW when
    ``DCG(G)`` has no critical cycles.

    Args:
        graph: the dependency graph to splice.
        validate: check Definition 6 on the result.  Lemma 26 guarantees
            well-formedness when the dynamic chopping graph has no critical
            cycles; pass ``False`` to inspect ill-formed results.
    """
    history = graph.history
    mapping = _splice_map(history)
    spliced_h = splice_history(history)

    def lift(
        per_obj: Dict[Obj, Relation[Transaction]]
    ) -> Dict[Obj, Relation[Transaction]]:
        lifted: Dict[Obj, Relation[Transaction]] = {}
        for obj, rel in per_obj.items():
            pairs: Set[Tuple[Transaction, Transaction]] = set()
            for a, b in rel:
                if history.same_session(a, b):
                    continue
                pairs.add((mapping[a], mapping[b]))
            if pairs:
                lifted[obj] = Relation(pairs, spliced_h.transactions)
        return lifted

    return DependencyGraph(
        spliced_h, lift(dict(graph.wr)), lift(dict(graph.ww)), validate=validate
    )


def naive_splice_execution_co(
    execution: PreExecution,
) -> Relation[str]:
    """Appendix B.3's naive lifting of an execution's commit order.

    ``⌈T⌉ --CO--> ⌈S⌉`` iff some ``T' ≈ T`` and ``S' ≈ S`` satisfy
    ``T' --CO--> S'`` (over spliced-transaction ids).  For executions whose
    commit order interleaves sessions (Figure 13), the result is cyclic —
    not a valid commit order — which is why splicing is defined on
    dependency graphs.
    """
    history = execution.history
    mapping = {t: rep.tid for t, rep in _splice_map(history).items()}
    pairs: Set[Tuple[str, str]] = set()
    for a, b in execution.co:
        ra, rb = mapping[a], mapping[b]
        if ra != rb:
            pairs.add((ra, rb))
    return Relation(pairs, set(mapping.values()))


def is_spliceable_witness(
    graph: DependencyGraph,
) -> Optional[DependencyGraph]:
    """Return ``splice(G)`` if it is a well-formed dependency graph in
    GraphSI (a witness that ``G`` is spliceable), else ``None``.

    This is the *semantic* check; the *criterion* of Theorem 16 (no
    critical cycles in DCG(G)) lives in :mod:`repro.chopping.dynamic`.
    """
    from ..graphs.classify import in_graph_si

    try:
        spliced = splice_graph(graph, validate=True)
    except Exception:
        return None
    if not in_graph_si(spliced):
        return None
    return spliced
