"""The program DSL for the static analyses (§5, §6).

The static chopping analysis abstracts each program by the *read sets* and
*write sets* of its pieces: ``P_i`` consists of ``k_i`` pieces, the ``j``-th
having sets ``R_i^j`` and ``W_i^j`` over-approximating the objects it may
read or write.  A *chopping* is a set of such programs, each representing
one session obtained by chopping a single original transaction.

Histories "produced by" a chopping have a one-to-one correspondence
between sessions and programs; to model several concurrent instances of
the same program, include it several times (see :func:`replicate`).

The module also defines the example programs of Figures 4–6, 11 and 12,
used by the benchmarks reproducing those figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class Piece:
    """One piece of a chopped program: its read and write sets.

    Attributes:
        reads: the set ``R_i^j`` of objects the piece may read.
        writes: the set ``W_i^j`` of objects the piece may write.
        label: an optional human-readable label (e.g. the source line,
            as in the paper's figures); used in diagnostics only.
    """

    reads: FrozenSet[str]
    writes: FrozenSet[str]
    label: str = ""

    def __str__(self) -> str:
        if self.label:
            return self.label
        return f"R{sorted(self.reads)}/W{sorted(self.writes)}"


def piece(
    reads: Iterable[str] = (), writes: Iterable[str] = (), label: str = ""
) -> Piece:
    """Build a piece from read/write iterables."""
    return Piece(frozenset(reads), frozenset(writes), label)


@dataclass(frozen=True)
class Program:
    """A chopped program: a session template of pieces.

    Attributes:
        name: the program name (session identity in diagnostics).
        pieces: the pieces, in session order.
    """

    name: str
    pieces: Tuple[Piece, ...]

    def __post_init__(self) -> None:
        if not self.pieces:
            raise ValueError(f"program {self.name!r} must have >= 1 piece")

    def __len__(self) -> int:
        return len(self.pieces)

    @property
    def reads(self) -> FrozenSet[str]:
        """The union of the pieces' read sets."""
        out: FrozenSet[str] = frozenset()
        for p in self.pieces:
            out |= p.reads
        return out

    @property
    def writes(self) -> FrozenSet[str]:
        """The union of the pieces' write sets."""
        out: FrozenSet[str] = frozenset()
        for p in self.pieces:
            out |= p.writes
        return out

    def unchopped(self) -> "Program":
        """The program as a single piece — the original transaction."""
        return Program(
            self.name,
            (piece(self.reads, self.writes, label=f"{self.name} (whole)"),),
        )


def program(name: str, *pieces_: Piece) -> Program:
    """Build a program from pieces."""
    return Program(name, tuple(pieces_))


def replicate(programs: Sequence[Program], copies: int) -> List[Program]:
    """``copies`` instances of each program, renamed ``name#k``.

    Use this to model several concurrent sessions running the same code:
    the paper's histories "produced by P" map sessions to programs
    one-to-one, so concurrency of a program with itself requires explicit
    duplication.
    """
    out: List[Program] = []
    for p in programs:
        for k in range(copies):
            out.append(Program(f"{p.name}#{k}", p.pieces))
    return out


# ----------------------------------------------------------------------
# The paper's example programs
# ----------------------------------------------------------------------


def transfer_program() -> Program:
    """Figure 4's ``transfer``, chopped into two pieces:
    ``acct1 = acct1 - 100`` and ``acct2 = acct2 + 100``."""
    return program(
        "transfer",
        piece({"acct1"}, {"acct1"}, label="acct1 = acct1 - 100"),
        piece({"acct2"}, {"acct2"}, label="acct2 = acct2 + 100"),
    )


def lookup_all_program() -> Program:
    """Figure 5's ``lookupAll``, chopped into two single-read pieces
    (``var1 = acct1``; ``var2 = acct2``)."""
    return program(
        "lookupAll",
        piece({"acct1"}, (), label="var1 = acct1"),
        piece({"acct2"}, (), label="var2 = acct2"),
    )


def lookup1_program() -> Program:
    """Figure 6's ``lookup1``: a single piece reading acct1."""
    return program("lookup1", piece({"acct1"}, (), label="return acct1"))


def lookup2_program() -> Program:
    """Figure 6's ``lookup2``: a single piece reading acct2."""
    return program("lookup2", piece({"acct2"}, (), label="return acct2"))


def p1_programs() -> List[Program]:
    """Figure 5's chopping ``P1 = {transfer, lookupAll}`` — incorrect
    under SI (and under SER and PSI)."""
    return [transfer_program(), lookup_all_program()]


def p2_programs() -> List[Program]:
    """Figure 6's chopping ``P2 = {transfer, lookup1, lookup2}`` — correct
    under SI (and SER and PSI)."""
    return [transfer_program(), lookup1_program(), lookup2_program()]


def p3_programs() -> List[Program]:
    """Figure 11's ``P3 = {write1, write2}`` — correct under SI but not
    under serializability.

    ``write1 = tx{var1 = x}; tx{y = var1}`` and
    ``write2 = tx{var2 = y}; tx{x = var2}``.
    """
    return [
        program(
            "write1",
            piece({"x"}, (), label="var1 = x"),
            piece((), {"y"}, label="y = var1"),
        ),
        program(
            "write2",
            piece({"y"}, (), label="var2 = y"),
            piece((), {"x"}, label="x = var2"),
        ),
    ]


def p4_programs() -> List[Program]:
    """Figure 12's ``P4 = {write1, write2, read1, read2}`` — correct under
    PSI but not under SI.

    ``write1 = tx{x = post1}``, ``write2 = tx{y = post2}``,
    ``read1 = tx{a = y}; tx{b = x}``, ``read2 = tx{a = x}; tx{b = y}``.
    """
    return [
        program("write1", piece((), {"x"}, label="x = post1")),
        program("write2", piece((), {"y"}, label="y = post2")),
        program(
            "read1",
            piece({"y"}, (), label="a = y"),
            piece({"x"}, (), label="b = x"),
        ),
        program(
            "read2",
            piece({"x"}, (), label="a = x"),
            piece({"y"}, (), label="b = y"),
        ),
    ]


PAPER_CHOPPINGS: Dict[str, Tuple[str, ...]] = {
    "P1": ("transfer", "lookupAll"),
    "P2": ("transfer", "lookup1", "lookup2"),
    "P3": ("write1", "write2"),
    "P4": ("write1", "write2", "read1", "read2"),
}
"""Index of the paper's named choppings to their program names."""


def paper_chopping(name: str) -> List[Program]:
    """Fetch one of the paper's choppings (P1–P4) by name."""
    table = {
        "P1": p1_programs,
        "P2": p2_programs,
        "P3": p3_programs,
        "P4": p4_programs,
    }
    try:
        return table[name]()
    except KeyError:
        raise KeyError(
            f"unknown chopping {name!r}; available: {sorted(table)}"
        ) from None
