"""Dynamic chopping graphs and the dynamic chopping criterion (§5).

Given a dependency graph ``G``, the *dynamic chopping graph* ``DCG(G)`` is
obtained by:

* removing WR/WW/RW edges between transactions of the same session
  (``≈_G``-related) — those become internal to the spliced transaction;
* adding, inside each session, *successor* edges (``SO_G``) and
  *predecessor* edges (``SO_G^{-1}``);
* keeping the remaining WR/WW/RW edges as *conflict* edges.

Theorem 16 (the dynamic criterion): if ``DCG(G)`` contains no critical
cycle, then ``G`` is spliceable — ``splice(G)`` is a well-formed dependency
graph in GraphSI with history ``splice(H_G)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.events import Obj
from ..core.relations import Relation
from ..core.transactions import Transaction
from ..graphs.cycles import Cycle, EdgeKind, LabeledDigraph, LabeledEdge
from ..graphs.dependency import DependencyGraph
from .criticality import Criterion, find_critical_cycle
from .splice import splice_graph


def dynamic_chopping_graph(graph: DependencyGraph) -> LabeledDigraph:
    """Build ``DCG(G)`` as an edge-labelled multigraph over tids."""
    history = graph.history
    dcg = LabeledDigraph()
    for t in history.transactions:
        dcg.add_node(t.tid)
    # Successor and predecessor edges within sessions.
    for a, b in history.session_order:
        dcg.add_edge(LabeledEdge(a.tid, b.tid, EdgeKind.SUCCESSOR))
        dcg.add_edge(LabeledEdge(b.tid, a.tid, EdgeKind.PREDECESSOR))
    # Conflict edges between sessions.
    per_kind: Dict[EdgeKind, Dict[Obj, Relation[Transaction]]] = {
        EdgeKind.WR: dict(graph.wr),
        EdgeKind.WW: dict(graph.ww),
        EdgeKind.RW: dict(graph.rw),
    }
    for kind, per_obj in per_kind.items():
        for obj, rel in per_obj.items():
            for a, b in rel:
                if not history.same_session(a, b):
                    dcg.add_edge(LabeledEdge(a.tid, b.tid, kind, obj))
    return dcg


@dataclass(frozen=True)
class ChoppingVerdict:
    """Outcome of the dynamic chopping check.

    Attributes:
        criterion: which variant was checked.
        passes: True when no critical cycle exists (chopping safe).
        witness: a critical cycle when one exists.
    """

    criterion: Criterion
    passes: bool
    witness: Optional[Cycle]

    def __str__(self) -> str:
        if self.passes:
            return f"no {self.criterion.value}-critical cycle"
        return f"{self.criterion.value}-critical cycle: {self.witness}"


def check_chopping(
    graph: DependencyGraph, criterion: Criterion = Criterion.SI
) -> ChoppingVerdict:
    """Theorem 16's criterion on a dependency graph (default SI variant)."""
    dcg = dynamic_chopping_graph(graph)
    witness = find_critical_cycle(dcg, criterion)
    return ChoppingVerdict(criterion, witness is None, witness)


def is_spliceable_by_criterion(graph: DependencyGraph) -> bool:
    """True iff ``DCG(G)`` has no SI-critical cycle.

    Sufficient for spliceability by Theorem 16 (not necessary: the
    criterion is conservative).
    """
    return check_chopping(graph, Criterion.SI).passes


def splice_if_safe(graph: DependencyGraph) -> Optional[DependencyGraph]:
    """Apply Theorem 16 end-to-end: if the criterion passes, return the
    spliced graph (guaranteed well-formed and in GraphSI); else ``None``."""
    if not is_spliceable_by_criterion(graph):
        return None
    return splice_graph(graph, validate=True)
