"""Transaction chopping under SI (Section 5, Appendix B).

Splicing of histories and dependency graphs, the dynamic chopping graph
and criterion (Theorem 16), the program DSL, and the static chopping
analyses for SI (Corollary 18), serializability (Theorem 29) and parallel
SI (Theorem 31).
"""

from .splice import (
    is_spliceable_witness,
    naive_splice_execution_co,
    splice_graph,
    splice_history,
    splice_session,
    spliced_tid,
)
from .criticality import (
    Criterion,
    antidependencies_separated,
    at_most_one_antidependency,
    find_critical_cycle,
    find_critical_cycle_by_enumeration,
    has_cpc_fragment,
    is_critical,
)
from .dynamic import (
    ChoppingVerdict,
    check_chopping,
    dynamic_chopping_graph,
    is_spliceable_by_criterion,
    splice_if_safe,
)
from .programs import (
    PAPER_CHOPPINGS,
    Piece,
    Program,
    lookup1_program,
    lookup2_program,
    lookup_all_program,
    p1_programs,
    p2_programs,
    p3_programs,
    p4_programs,
    paper_chopping,
    piece,
    program,
    replicate,
    transfer_program,
)
from .static import (
    PieceId,
    StaticVerdict,
    analyse_chopping,
    chopping_correct_psi,
    chopping_correct_ser,
    chopping_correct_si,
    chopping_matrix,
    piece_nodes,
    static_chopping_graph,
)

__all__ = [
    # splice
    "splice_history",
    "splice_graph",
    "splice_session",
    "spliced_tid",
    "naive_splice_execution_co",
    "is_spliceable_witness",
    # criticality
    "Criterion",
    "is_critical",
    "has_cpc_fragment",
    "antidependencies_separated",
    "at_most_one_antidependency",
    "find_critical_cycle",
    "find_critical_cycle_by_enumeration",
    # dynamic
    "dynamic_chopping_graph",
    "check_chopping",
    "ChoppingVerdict",
    "is_spliceable_by_criterion",
    "splice_if_safe",
    # programs
    "Piece",
    "piece",
    "Program",
    "program",
    "replicate",
    "transfer_program",
    "lookup_all_program",
    "lookup1_program",
    "lookup2_program",
    "p1_programs",
    "p2_programs",
    "p3_programs",
    "p4_programs",
    "paper_chopping",
    "PAPER_CHOPPINGS",
    # static
    "PieceId",
    "piece_nodes",
    "static_chopping_graph",
    "StaticVerdict",
    "analyse_chopping",
    "chopping_correct_si",
    "chopping_correct_ser",
    "chopping_correct_psi",
    "chopping_matrix",
]
