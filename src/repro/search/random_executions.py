"""Generative sampling of random SI executions — stale snapshots included.

The engine-based samplers only produce executions whose snapshots are
*latest* (a transaction sees everything committed before it started).
The declarative SI of Definition 4 is *generalised* SI [17]: a snapshot
may be any CO-prefix containing the session's past.  This module builds
random members of ExecSI directly, by construction:

1. lay transactions out in a random commit order (CO), initialisation
   first, sessions in order;
2. give each transaction a random *prefix* visibility — any CO-prefix
   extending its SO-predecessors (PREFIX and SESSION hold by
   construction), then extend prefixes where NOCONFLICT demands it
   (writers of a common object must be mutually ordered, so the later
   writer's prefix is stretched to include the earlier);
3. fill in operations: writes get globally unique values; every read's
   value is *computed* from the axioms — the final write of the CO-latest
   visible writer (EXT by construction; reads precede writes inside each
   transaction, so INT holds trivially).

The result is always in ExecSI (checked in tests), making this a second,
engine-independent source of positive examples — and the only one that
exercises non-latest snapshots throughout the property suites.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.events import Op, read as read_op, write as write_op
from ..core.executions import AbstractExecution
from ..core.histories import History
from ..core.relations import Relation
from ..core.transactions import Transaction, transaction


def random_si_execution(
    seed: int,
    transactions: int = 6,
    objects: int = 3,
    sessions: int = 3,
    staleness: float = 0.5,
    read_probability: float = 0.6,
    write_probability: float = 0.5,
    init_tid: str = "t_init",
) -> AbstractExecution:
    """Generate a random abstract execution in ExecSI.

    Args:
        seed: PRNG seed.
        transactions: number of non-initialisation transactions.
        objects: number of objects.
        sessions: number of sessions.
        staleness: probability that a transaction's snapshot stops short
            of the latest committed prefix (0 = always latest, engine
            behaviour; 1 = as stale as the constraints allow).
        read_probability / write_probability: per-object access odds
            (a transaction accessing nothing is re-rolled).
        init_tid: id of the initialisation transaction.
    """
    rng = random.Random(seed)
    objs = [f"x{i}" for i in range(objects)]

    # 1. Commit order: sessions assigned round-robin, then a random
    # interleaving respecting session order.
    tids = [f"t{i+1}" for i in range(transactions)]
    session_of: Dict[str, int] = {
        tid: rng.randrange(sessions) for tid in tids
    }
    # Random SO-respecting linearisation: repeatedly pick a random
    # session's next transaction.
    per_session: Dict[int, List[str]] = {}
    for tid in tids:
        per_session.setdefault(session_of[tid], []).append(tid)
    pending = {s: list(q) for s, q in per_session.items()}
    commit_order: List[str] = []
    while any(pending.values()):
        s = rng.choice([s for s, q in pending.items() if q])
        commit_order.append(pending[s].pop(0))

    # 2. Access sets and write values.
    accesses: Dict[str, Dict[str, Tuple[bool, bool]]] = {}
    value_counter = itertools.count(1)
    write_values: Dict[str, Dict[str, int]] = {}
    for tid in tids:
        while True:
            pattern = {
                obj: (
                    rng.random() < read_probability,
                    rng.random() < write_probability,
                )
                for obj in objs
            }
            if any(r or w for r, w in pattern.values()):
                break
        accesses[tid] = pattern
        write_values[tid] = {
            obj: next(value_counter)
            for obj, (_, w) in pattern.items()
            if w
        }

    # 3. Visibility prefixes.  Position 0 is the initialisation txn.
    position = {tid: i + 1 for i, tid in enumerate(commit_order)}
    prefix_len: Dict[str, int] = {}
    for i, tid in enumerate(commit_order):
        # Floor: SESSION — see every same-session predecessor.
        floor = 0
        for other in commit_order[:i]:
            if session_of[other] == session_of[tid]:
                floor = max(floor, position[other])
        latest = i  # number of committed predecessors (excl. init)
        if rng.random() < staleness:
            chosen = rng.randint(floor, latest)
        else:
            chosen = latest
        prefix_len[tid] = chosen

    # NOCONFLICT repair: two writers of one object must be VIS-related;
    # with prefix visibility that means the CO-later writer's prefix must
    # cover the earlier one.  Stretch prefixes until stable.
    for obj in objs:
        writers = [t for t in commit_order if accesses[t][obj][1]]
        for earlier, later in itertools.combinations(writers, 2):
            prefix_len[later] = max(prefix_len[later], position[earlier])

    # 4. Build events: reads first (values via EXT), then writes.
    store_by_position: Dict[str, List[Tuple[int, int]]] = {
        obj: [(0, 0)] for obj in objs  # (position, value): init writes 0
    }
    for tid in commit_order:
        for obj, value in write_values[tid].items():
            store_by_position[obj].append((position[tid], value))

    def read_value(tid: str, obj: str) -> int:
        visible = prefix_len[tid]
        candidates = [
            (pos, value)
            for pos, value in store_by_position[obj]
            if pos <= visible
        ]
        return max(candidates)[1]

    txns: Dict[str, Transaction] = {}
    for tid in tids:
        ops: List[Op] = []
        for obj in objs:
            reads, _ = accesses[tid][obj]
            if reads:
                ops.append(read_op(obj, read_value(tid, obj)))
        for obj in objs:
            _, writes = accesses[tid][obj]
            if writes:
                ops.append(write_op(obj, write_values[tid][obj]))
        txns[tid] = transaction(tid, *ops)
    init = transaction(init_tid, *(write_op(obj, 0) for obj in objs))

    # 5. Assemble history, VIS, CO.
    session_lists: List[List[Transaction]] = [[] for _ in range(sessions)]
    for tid in commit_order:
        session_lists[session_of[tid]].append(txns[tid])
    h = History(
        tuple([(init,)] + [tuple(s) for s in session_lists if s])
    )
    universe = h.transactions
    ordered = [init] + [txns[t] for t in commit_order]
    co = Relation.total_order(ordered)
    vis_pairs: Set[Tuple[Transaction, Transaction]] = set()
    for tid in commit_order:
        vis_pairs.add((init, txns[tid]))
        for other in commit_order:
            if position[other] <= prefix_len[tid] and other != tid:
                vis_pairs.add((txns[other], txns[tid]))
    return AbstractExecution(h, Relation(vis_pairs, universe), co)
