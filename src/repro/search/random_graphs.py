"""Seeded random generators for histories and dependency graphs.

Property-based tests and the scalability benchmarks need a supply of
well-formed dependency graphs (Definition 6) of controllable size.  The
generator works backwards from the structure:

1. lay out transactions into sessions, plus an initialisation transaction
   writing every object;
2. give each transaction a random access pattern per object — none, read,
   write, or read-then-write (reads precede writes, so every read is
   *external* and internal consistency holds by construction);
3. pick a random total write order WW(x) per object (initialisation
   first);
4. pick a random WR(x) writer for every external read;
5. assign globally unique write values and set each read's value to its
   chosen writer's final write, making the graph well formed by
   construction.

The resulting graphs are arbitrary — not necessarily in GraphSI.
:func:`random_graphsi_graph` rejection-samples the GraphSI subset (with an
engine-backed fallback), for tests of the soundness construction.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.events import Op, read as read_op, write as write_op
from ..core.histories import History
from ..core.relations import Relation
from ..core.transactions import Transaction, transaction
from ..graphs.classify import in_graph_si
from ..graphs.dependency import DependencyGraph

ACCESS_NONE = "none"
ACCESS_READ = "read"
ACCESS_WRITE = "write"
ACCESS_READ_WRITE = "read_write"


def random_dependency_graph(
    seed: int,
    transactions: int = 6,
    objects: int = 3,
    sessions: int = 3,
    access_probabilities: Tuple[float, float, float, float] = (
        0.45,
        0.25,
        0.2,
        0.1,
    ),
    init_tid: str = "t_init",
) -> DependencyGraph:
    """Generate a random well-formed dependency graph.

    Args:
        seed: PRNG seed (full determinism).
        transactions: number of non-initialisation transactions.
        objects: number of objects.
        sessions: number of sessions the transactions are spread over.
        access_probabilities: probabilities of (none, read, write,
            read-then-write) per transaction/object pair; renormalised.
        init_tid: id of the initialisation transaction.
    """
    rng = random.Random(seed)
    objs = [f"x{i}" for i in range(objects)]
    kinds = (ACCESS_NONE, ACCESS_READ, ACCESS_WRITE, ACCESS_READ_WRITE)
    total = sum(access_probabilities)
    weights = [p / total for p in access_probabilities]

    # 1-2. Access patterns; ensure each transaction touches something.
    patterns: List[Dict[str, str]] = []
    for _ in range(transactions):
        while True:
            pattern = {
                obj: rng.choices(kinds, weights=weights)[0] for obj in objs
            }
            if any(k != ACCESS_NONE for k in pattern.values()):
                patterns.append(pattern)
                break

    # Write values: globally unique.
    counter = itertools.count(1)
    write_values: List[Dict[str, int]] = []
    for pattern in patterns:
        values = {
            obj: next(counter)
            for obj, kind in pattern.items()
            if kind in (ACCESS_WRITE, ACCESS_READ_WRITE)
        }
        write_values.append(values)

    tids = [f"t{i+1}" for i in range(transactions)]

    # 3. WW orders (writers include the init transaction, pinned first).
    writers_of: Dict[str, List[int]] = {
        obj: [
            i
            for i, pattern in enumerate(patterns)
            if pattern[obj] in (ACCESS_WRITE, ACCESS_READ_WRITE)
        ]
        for obj in objs
    }
    ww_orders: Dict[str, List[int]] = {}
    for obj, writers in writers_of.items():
        order = list(writers)
        rng.shuffle(order)
        ww_orders[obj] = order  # init implicitly first

    # 4-5. WR choices and read values.
    read_values: List[Dict[str, int]] = [dict() for _ in range(transactions)]
    wr_choice: Dict[Tuple[str, int], Optional[int]] = {}
    for i, pattern in enumerate(patterns):
        for obj, kind in pattern.items():
            if kind not in (ACCESS_READ, ACCESS_READ_WRITE):
                continue
            candidates: List[Optional[int]] = [None]  # None = init
            candidates.extend(j for j in writers_of[obj] if j != i)
            chosen = rng.choice(candidates)
            wr_choice[(obj, i)] = chosen
            read_values[i][obj] = (
                0 if chosen is None else write_values[chosen][obj]
            )

    # Build transactions: external reads first (object order), then writes.
    txns: List[Transaction] = []
    for i, pattern in enumerate(patterns):
        ops: List[Op] = []
        for obj in objs:
            if pattern[obj] in (ACCESS_READ, ACCESS_READ_WRITE):
                ops.append(read_op(obj, read_values[i][obj]))
        for obj in objs:
            if pattern[obj] in (ACCESS_WRITE, ACCESS_READ_WRITE):
                ops.append(write_op(obj, write_values[i][obj]))
        txns.append(transaction(tids[i], *ops))

    init = transaction(init_tid, *(write_op(obj, 0) for obj in objs))

    # Sessions: deal transactions round-robin-ish but randomised.
    session_lists: List[List[Transaction]] = [[] for _ in range(sessions)]
    for t in txns:
        session_lists[rng.randrange(sessions)].append(t)
    all_sessions = [(init,)] + [
        tuple(s) for s in session_lists if s
    ]
    h = History(tuple(all_sessions))

    # Relations over Transaction objects.
    by_index = {i: txns[i] for i in range(transactions)}
    universe = h.transactions
    wr: Dict[str, Set[Tuple[Transaction, Transaction]]] = {}
    for (obj, i), chosen in wr_choice.items():
        src = init if chosen is None else by_index[chosen]
        wr.setdefault(obj, set()).add((src, by_index[i]))
    ww: Dict[str, Relation[Transaction]] = {}
    for obj, order in ww_orders.items():
        chain = [init] + [by_index[i] for i in order]
        if len(chain) > 1:
            ww[obj] = Relation.total_order(chain).union(
                Relation.empty(universe)
            )
    wr_rels = {obj: Relation(pairs, universe) for obj, pairs in wr.items()}
    return DependencyGraph(h, wr_rels, ww, validate=True)


def random_graphsi_graph(
    seed: int,
    transactions: int = 6,
    objects: int = 3,
    sessions: int = 3,
    max_attempts: int = 30,
) -> DependencyGraph:
    """A random dependency graph *in GraphSI*, by rejection sampling.

    Small graphs (≤ ~4 transactions) land in GraphSI often enough that
    rejection is cheap; the hit rate collapses with size because random
    WR/WW choices contradict each other, so after ``max_attempts`` seeds
    the fall-back derives a graph from an actual SI-engine run, which lies
    in GraphSI by Theorem 10(ii).
    """
    for attempt in range(max_attempts):
        graph = random_dependency_graph(
            seed + attempt * 7919,
            transactions=transactions,
            objects=objects,
            sessions=sessions,
        )
        if in_graph_si(graph):
            return graph
    return graph_from_si_run(seed, transactions=transactions, objects=objects)


def graph_from_si_run(
    seed: int, transactions: int = 6, objects: int = 3
) -> DependencyGraph:
    """A dependency graph extracted from a random SI-engine run (always in
    GraphSI, by completeness)."""
    from ..graphs.extraction import graph_of
    from ..mvcc.runtime import Scheduler
    from ..mvcc.si import SIEngine
    from ..mvcc.workloads import random_workload

    sessions = max(2, transactions // 2)
    per_session = max(1, transactions // sessions)
    workload = random_workload(
        seed,
        sessions=sessions,
        transactions_per_session=per_session,
        objects=objects,
    )
    engine = SIEngine(workload.initial)
    Scheduler(engine, workload.sessions).run_random(seed)
    return graph_of(engine.abstract_execution())
