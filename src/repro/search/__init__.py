"""Random generation and exhaustive exploration utilities."""

from .random_graphs import (
    graph_from_si_run,
    random_dependency_graph,
    random_graphsi_graph,
)
from .random_executions import random_si_execution
from .enumerate import (
    Run,
    distinct_histories,
    enumerate_tiny_histories,
    explore_runs,
    history_key,
)

__all__ = [
    "random_dependency_graph",
    "random_graphsi_graph",
    "graph_from_si_run",
    "random_si_execution",
    "Run",
    "explore_runs",
    "enumerate_tiny_histories",
    "distinct_histories",
    "history_key",
]
