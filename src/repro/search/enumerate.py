"""Exhaustive exploration of engine schedules (a tiny model checker).

The operational-vs-axiomatic experiment (E4) needs *all* behaviours a
workload can exhibit under an engine, not a random sample.  Because the
engines and scheduler are fully deterministic, a run is determined by its
schedule — the sequence of "advance session s" / "deliver" decisions — so
the explorer enumerates schedules by replaying prefixes from scratch and
branching on every enabled decision.

Replay-based exploration avoids copying engine state (generator objects
cannot be deep-copied); its cost is quadratic in run length per run, which
is irrelevant at the tiny sizes exhaustive exploration is feasible at
anyway (≲ a dozen operations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..core.executions import AbstractExecution
from ..core.histories import History
from ..mvcc.engine import BaseEngine
from ..mvcc.psi import PSIEngine
from ..mvcc.runtime import DELIVER, Scheduler, TxProgram

EngineFactory = Callable[[], BaseEngine]
SessionsFactory = Callable[[], Mapping[str, Sequence[TxProgram]]]


@dataclass(frozen=True)
class Run:
    """One completed exploration run."""

    schedule: Tuple[str, ...]
    history: History
    execution: AbstractExecution
    commits: int
    aborts: int


def _replay(
    engine_factory: EngineFactory,
    sessions_factory: SessionsFactory,
    prefix: Sequence[str],
) -> Tuple[BaseEngine, Scheduler]:
    engine = engine_factory()
    scheduler = Scheduler(engine, sessions_factory())
    for entry in prefix:
        if entry == DELIVER:
            scheduler.deliver_one()
        else:
            scheduler.step(entry)
    return engine, scheduler


def _choices(engine: BaseEngine, scheduler: Scheduler) -> List[str]:
    choices = scheduler.runnable_sessions()
    if isinstance(engine, PSIEngine) and engine.deliverable_deliveries():
        choices.append(DELIVER)
    return choices


def explore_runs(
    engine_factory: EngineFactory,
    sessions_factory: SessionsFactory,
    max_runs: Optional[int] = None,
    max_depth: int = 200,
) -> Iterator[Run]:
    """Enumerate every complete schedule of the workload (DFS).

    Args:
        engine_factory: builds a fresh engine per replay.
        sessions_factory: builds fresh session programs per replay
            (programs are generator functions, fresh per transaction
            anyway, but the mapping is re-created for hygiene).
        max_runs: optional cap on yielded runs.
        max_depth: abort exploration of prefixes longer than this
            (protection against abort/retry livelocks).
    """
    yielded = 0
    stack: List[Tuple[str, ...]] = [()]
    while stack:
        prefix = stack.pop()
        if len(prefix) > max_depth:
            continue
        engine, scheduler = _replay(engine_factory, sessions_factory, prefix)
        choices = _choices(engine, scheduler)
        if not choices:
            # Complete: drain pending deliveries for PSI so histories are
            # closed, then record.
            if isinstance(engine, PSIEngine):
                engine.deliver_all()
            yield Run(
                schedule=prefix,
                history=engine.history(),
                execution=engine.abstract_execution(),
                commits=engine.stats.commits,
                aborts=engine.stats.aborts,
            )
            yielded += 1
            if max_runs is not None and yielded >= max_runs:
                return
            continue
        # Push in reverse so exploration is lexicographic.
        for choice in reversed(choices):
            stack.append(prefix + (choice,))


def enumerate_tiny_histories(
    objects: int = 2,
    same_session: bool = False,
) -> Iterator[History]:
    """Systematically enumerate all two-transaction histories over a tiny
    value domain (plus an initialisation transaction writing zeros).

    Per transaction and object the access pattern is one of: no access,
    an external read of value ``v ∈ {0, 1, 2}``, a write (transaction
    ``ti`` always writes value ``i``), or a read-then-write.  This covers
    consistent *and* inconsistent histories — by design: the oracles must
    agree on rejections too.  With 2 objects this yields 64² = 4096
    access combinations per session structure.

    Args:
        objects: number of objects (keep at 1–2; growth is steep).
        same_session: put the two transactions in one session (SO edge)
            instead of separate sessions.
    """
    import itertools as _it

    from ..core.events import Op, read as _read, write as _write
    from ..core.histories import history as _history
    from ..core.transactions import (
        initialisation_transaction,
        transaction as _transaction,
    )

    objs = [f"x{i}" for i in range(objects)]
    read_values = (0, 1, 2)

    def patterns(write_value: int):
        options: List[List[Op]] = [[]]
        for v in read_values:
            options.append([_read("OBJ", v)])
        options.append([_write("OBJ", write_value)])
        for v in read_values:
            options.append([_read("OBJ", v), _write("OBJ", write_value)])
        return options

    def instantiate(option: List[Op], obj: str) -> List[Op]:
        return [
            _read(obj, op.value) if op.is_read else _write(obj, op.value)
            for op in option
        ]

    per_txn_options = {
        1: list(_it.product(patterns(1), repeat=len(objs))),
        2: list(_it.product(patterns(2), repeat=len(objs))),
    }
    init = initialisation_transaction(objs)
    for combo1 in per_txn_options[1]:
        ops1 = [
            op
            for obj, option in zip(objs, combo1)
            for op in instantiate(option, obj)
        ]
        if not ops1:
            continue
        t1 = _transaction("t1", *ops1)
        for combo2 in per_txn_options[2]:
            ops2 = [
                op
                for obj, option in zip(objs, combo2)
                for op in instantiate(option, obj)
            ]
            if not ops2:
                continue
            t2 = _transaction("t2", *ops2)
            if same_session:
                yield _history([init], [t1, t2])
            else:
                yield _history([init], [t1], [t2])


def history_key(history: History) -> Tuple:
    """A hashable canonical key for a history: sessions of event-op lists
    (tids ignored, so engine-assigned ids do not split equal histories)."""
    sessions = []
    for session in history.sessions:
        sessions.append(
            tuple(
                tuple((e.op.kind.value, e.obj, e.value) for e in t.events)
                for t in session
            )
        )
    return tuple(sorted(sessions))


def distinct_histories(runs: Iterator[Run]) -> Dict[Tuple, Run]:
    """Deduplicate runs by client-visible history."""
    out: Dict[Tuple, Run] = {}
    for run in runs:
        key = history_key(run.history)
        if key not in out:
            out[key] = run
    return out
