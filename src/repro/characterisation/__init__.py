"""The SI characterisation (Section 4): Lemma 15, Theorem 10, membership.

This subpackage turns the paper's central theorem into executable
algorithms: the closed-form least solution of the Figure 3 inequality
system (:mod:`.solver`), the soundness construction realising any GraphSI
dependency graph as an SI execution (:mod:`.soundness`), the completeness
checks (:mod:`.completeness`), and an exact history-membership oracle
(:mod:`.membership`).
"""

from .solver import (
    Solution,
    inequality_violations,
    is_smaller_or_equal,
    least_solution,
    least_solution_by_iteration,
    satisfies_inequalities,
)
from .soundness import (
    PairPicker,
    construct_execution,
    default_pair_picker,
    initial_pre_execution,
    pre_execution_chain,
    totalisation_steps,
)
from .completeness import (
    check_lemma12,
    execution_solution,
    graph_is_complete_for,
)
from .exec_search import (
    classify_history_by_executions,
    find_execution,
    history_allowed,
)
from .membership import (
    Decision,
    candidate_writers,
    classify_history,
    decide,
    extensions,
    history_in_psi,
    history_in_ser,
    history_in_si,
    search_space_size,
)

__all__ = [
    "Solution",
    "least_solution",
    "least_solution_by_iteration",
    "inequality_violations",
    "satisfies_inequalities",
    "is_smaller_or_equal",
    "construct_execution",
    "pre_execution_chain",
    "initial_pre_execution",
    "default_pair_picker",
    "PairPicker",
    "totalisation_steps",
    "check_lemma12",
    "graph_is_complete_for",
    "execution_solution",
    "Decision",
    "decide",
    "extensions",
    "candidate_writers",
    "history_in_si",
    "history_in_ser",
    "history_in_psi",
    "classify_history",
    "search_space_size",
    "find_execution",
    "history_allowed",
    "classify_history_by_executions",
]
