"""The system of inequalities of Figure 3 and its least solution (Lemma 15).

To build an SI execution from a dependency graph
``G = (T, SO, WR, WW, RW)``, the paper looks for relations VIS and CO
satisfying:

* (S1) ``SO ∪ WR ∪ WW ⊆ VIS``
* (S2) ``CO ; VIS ⊆ VIS``        (equivalent to PREFIX)
* (S3) ``VIS ⊆ CO``
* (S4) ``CO ; CO ⊆ CO``          (CO transitive)
* (S5) ``VIS ; RW ⊆ CO``         (forced in any SI execution, Lemma 12)

The inequalities are recursive — growing VIS forces growth of CO and vice
versa — so the paper's insight is to take the *smallest* solution, least
likely to tie a cycle.  Lemma 15 gives it in closed form, parameterised by
a set ``R`` of edges that CO must contain (used when totalising CO):

    CO  = (((SO ∪ WR ∪ WW) ; RW?) ∪ R)+
    VIS = (((SO ∪ WR ∪ WW) ; RW?) ∪ R)* ; (SO ∪ WR ∪ WW)

and states it is the least solution with ``R ⊆ CO``: any other solution
``(VIS', CO')`` with ``R ⊆ CO'`` satisfies ``VIS ⊆ VIS'`` and
``CO ⊆ CO'``.

This module computes the closed form and provides an executable check of
the inequalities, so Lemma 15 itself is validated by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from ..core.relations import Relation
from ..core.transactions import Transaction
from ..graphs.dependency import DependencyGraph

Edge = Tuple[Transaction, Transaction]


@dataclass(frozen=True)
class Solution:
    """A candidate solution ``(VIS, CO)`` to the Figure 3 system."""

    vis: Relation[Transaction]
    co: Relation[Transaction]


def least_solution(
    graph: DependencyGraph, forced_co: Iterable[Edge] = ()
) -> Solution:
    """Lemma 15's closed-form least solution with ``forced_co ⊆ CO``.

    Args:
        graph: the dependency graph ``G``.
        forced_co: the parameter ``R`` — edges the commit order must
            contain.  ``R = ∅`` yields the overall least solution
            ``(VIS_0, CO_0)`` used to seed the soundness construction.

    Returns:
        The pair ``(VIS, CO)`` of the closed form above.  No acyclicity is
        checked here — Lemma 15 holds for arbitrary ``R``; callers that
        need acyclic relations (Lemma 13) must check separately.
    """
    universe = graph.transactions
    base = graph.dependencies  # SO ∪ WR ∪ WW
    rw_reflexive = graph.rw_union.reflexive()
    step = base.compose(rw_reflexive).union(Relation(forced_co, universe))
    co = step.transitive_closure()
    # VIS = step* ; base = base ∪ (step+ ; base)  (A.3's rewriting).
    vis = base.union(co.compose(base))
    return Solution(vis=vis, co=co)


def least_solution_by_iteration(
    graph: DependencyGraph,
    forced_co: Iterable[Edge] = (),
    max_rounds: int = 10_000,
) -> Solution:
    """The least solution computed by naive fixpoint iteration.

    Starts from ``VIS = SO ∪ WR ∪ WW`` (forced by (S1)) and
    ``CO = forced_co`` and repeatedly applies the inequalities of
    Figure 3 as closure rules until nothing grows:

    * (S3) ``VIS ⊆ CO``;
    * (S5) ``VIS ; RW ⊆ CO``;
    * (S4) ``CO ; CO ⊆ CO``;
    * (S2) ``CO ; VIS ⊆ VIS``.

    Monotone rules over a finite lattice, so this terminates at the least
    fixpoint — which Lemma 15 claims equals the closed form.  Kept as an
    executable cross-check of the lemma (tested to agree with
    :func:`least_solution` on catalog and random graphs); the closed form
    is what the construction actually uses.
    """
    base = graph.dependencies
    rw = graph.rw_union
    universe = graph.transactions
    vis = base
    co: Relation[Transaction] = Relation(forced_co, universe)
    for _ in range(max_rounds):
        new_co = co.union(vis, vis.compose(rw), co.compose(co))
        new_vis = vis.union(new_co.compose(vis))
        if new_co == co and new_vis == vis:
            return Solution(vis=vis, co=co)
        co, vis = new_co, new_vis
    raise RuntimeError(
        "fixpoint iteration did not converge (impossible on finite graphs)"
    )


def inequality_violations(
    graph: DependencyGraph, solution: Solution
) -> List[str]:
    """Describe violations of (S1)–(S5) by a candidate solution."""
    base = graph.dependencies
    rw = graph.rw_union
    vis, co = solution.vis, solution.co
    violations: List[str] = []
    if not base.pairs <= vis.pairs:
        violations.append("(S1) SO ∪ WR ∪ WW ⊄ VIS")
    if not co.compose(vis).pairs <= vis.pairs:
        violations.append("(S2) CO ; VIS ⊄ VIS")
    if not vis.pairs <= co.pairs:
        violations.append("(S3) VIS ⊄ CO")
    if not co.compose(co).pairs <= co.pairs:
        violations.append("(S4) CO not transitive")
    if not vis.compose(rw).pairs <= co.pairs:
        violations.append("(S5) VIS ; RW ⊄ CO")
    return violations


def satisfies_inequalities(
    graph: DependencyGraph, solution: Solution
) -> bool:
    """True iff ``solution`` satisfies the Figure 3 system for ``graph``."""
    return not inequality_violations(graph, solution)


def is_smaller_or_equal(lhs: Solution, rhs: Solution) -> bool:
    """Pointwise inclusion of solutions: ``lhs.vis ⊆ rhs.vis`` and
    ``lhs.co ⊆ rhs.co`` (the minimality order of Lemma 15)."""
    return lhs.vis.pairs <= rhs.vis.pairs and lhs.co.pairs <= rhs.co.pairs
