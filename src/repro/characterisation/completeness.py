"""Completeness direction of Theorem 10 and the supporting lemmas.

Theorem 10(ii): for every execution ``X ∈ ExecSI``, ``graph(X) ∈ GraphSI``.
The proof relies on Lemma 12 — in any SI execution,
``VIS ; RW ⊆ CO`` — and on the minimality part of Lemma 15.

This module makes those facts executable:

* :func:`check_lemma12` verifies ``VIS_X ; RW_X ⊆ CO_X`` on an execution;
* :func:`graph_is_complete_for` verifies ``graph(X) ∈ GraphSI``;
* :func:`execution_solution` views an execution's own (VIS, CO) as a
  solution of the Figure 3 system — which, by minimality, must contain the
  least solution (tested property).
"""

from __future__ import annotations

from typing import List

from ..core.executions import AbstractExecution, PreExecution
from ..graphs.classify import in_graph_si
from ..graphs.extraction import graph_of
from .solver import Solution


def check_lemma12(execution: PreExecution) -> List[str]:
    """Violations of Lemma 12 (``VIS ; RW ⊆ CO``) on an execution.

    For ``X ∈ ExecSI`` the result must be empty; the lemma is what makes
    (S5) a *necessary* inequality.
    """
    graph = graph_of(execution, validate=False)
    missing = (
        execution.vis.compose(graph.rw_union).pairs - execution.co.pairs
    )
    return [
        f"Lemma 12: {a.tid} --VIS;RW--> {b.tid} not in CO"
        for a, b in sorted(missing, key=lambda p: (p[0].tid, p[1].tid))
    ]


def graph_is_complete_for(execution: AbstractExecution) -> bool:
    """Theorem 10(ii) as a check: ``graph(X) ∈ GraphSI``.

    Callers are expected to pass executions in ExecSI; the function simply
    extracts the dependency graph and tests Theorem 9's condition.
    """
    return in_graph_si(graph_of(execution))


def execution_solution(execution: PreExecution) -> Solution:
    """The execution's own (VIS, CO) packaged as a Figure 3 candidate.

    By Lemma 12, for SI executions this is a genuine solution of the
    system (for the WR/WW/RW extracted from the execution); by Lemma 15's
    minimality, it contains the least solution.  Both facts are verified
    by the property-based tests.
    """
    return Solution(vis=execution.vis, co=execution.co)
