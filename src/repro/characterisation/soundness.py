"""The soundness construction of Theorem 10(i).

Given a dependency graph ``G ∈ GraphSI``, build an abstract execution
``X ∈ ExecSI`` with ``graph(X) = G``.  This is the paper's key technical
contribution and what makes the chopping (Section 5) and robustness
(Section 6) analyses possible: they all need to *realise* a dependency
graph as an actual SI execution.

The construction (Section 4):

1. Take the least solution ``(VIS_0, CO_0)`` of the Figure 3 system
   (Lemma 15 with ``R = ∅``).  Because ``G ∈ GraphSI``, ``CO_0`` — which is
   exactly ``((SO ∪ WR ∪ WW) ; RW?)+`` — is acyclic, so by Lemma 13 the
   tuple ``P_0 = (T, SO, VIS_0, CO_0)`` is a pre-execution in PreExecSI
   with ``graph(P_0) = G``.
2. While CO is not total: pick an arbitrary pair of transactions unrelated
   by CO, force it into CO, and recompute the least solution containing the
   accumulated forced edges (``CO_{i+1} = (CO_i ∪ {(T_i, S_i)})+``,
   ``VIS_{i+1} = (SO ∪ WR ∪ WW) ∪ CO_{i+1} ; (SO ∪ WR ∪ WW)``).  Each step
   preserves acyclicity (the forced pair was unrelated) and the
   inequalities, hence stays in PreExecSI.
3. When CO is total, the pre-execution is an execution in ExecSI.

:func:`construct_execution` performs the construction;
:func:`pre_execution_chain` exposes the intermediate pre-executions so
tests can verify that every stage lies in PreExecSI and maps back to ``G``.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Tuple

from ..core.errors import NotInGraphSIError, SolverError
from ..core.executions import AbstractExecution, PreExecution
from ..core.relations import Relation
from ..core.transactions import Transaction
from ..graphs.classify import in_graph_si, si_violation_witness
from ..graphs.dependency import DependencyGraph
from .solver import Solution, least_solution

Edge = Tuple[Transaction, Transaction]
PairPicker = Callable[[PreExecution], Edge]
"""Strategy choosing the next CO-unrelated pair to relate (Theorem 10(i)
leaves the choice arbitrary; different strategies realise different final
commit orders)."""


def default_pair_picker(pre: PreExecution) -> Edge:
    """Deterministic default: the lexicographically-first unrelated pair
    (by transaction id), oriented ``(smaller, larger)``."""
    best: Optional[Edge] = None
    txns = sorted(pre.history.transactions, key=lambda t: t.tid)
    co = pre.co
    for i, a in enumerate(txns):
        for b in txns[i + 1 :]:
            if (a, b) not in co and (b, a) not in co:
                return (a, b)
    raise SolverError("no CO-unrelated pair exists; CO is already total")


def initial_pre_execution(
    graph: DependencyGraph, check_membership: bool = True
) -> PreExecution:
    """The pre-execution ``P_0 ∈ PreExecSI`` seeded by Lemma 15 with
    ``R = ∅`` (the start of the Theorem 10(i) construction).

    Raises:
        NotInGraphSIError: if ``graph ∉ GraphSI`` (with a witness cycle in
            the message) and ``check_membership`` is set.
    """
    if check_membership and not in_graph_si(graph):
        witness = si_violation_witness(graph)
        raise NotInGraphSIError(
            "dependency graph is not in GraphSI; witness cycle without two "
            f"adjacent anti-dependencies: {witness}"
        )
    solution = least_solution(graph)
    return PreExecution(graph.history, solution.vis, solution.co)


def pre_execution_chain(
    graph: DependencyGraph,
    pick_pair: PairPicker = default_pair_picker,
    check_membership: bool = True,
) -> Iterator[PreExecution]:
    """Yield the pre-executions ``P_0, P_1, ..., P_n`` of the construction.

    Every yielded pre-execution lies in PreExecSI and satisfies
    ``graph(P_i) = G``; the last one has a total commit order.  The commit
    order grows monotonically along the chain.
    """
    pre = initial_pre_execution(graph, check_membership=check_membership)
    yield pre
    base = graph.dependencies  # SO ∪ WR ∪ WW
    txns = graph.transactions
    while not pre.co.is_total_on(txns):
        t, s = pick_pair(pre)
        if (t, s) in pre.co or (s, t) in pre.co:
            raise SolverError(
                f"pair picker returned CO-related pair ({t.tid}, {s.tid})"
            )
        # CO_{i+1} = (CO_i ∪ {(T_i, S_i)})+ ; this matches recomputing the
        # closed form of Lemma 15 with the accumulated forced-edge set.
        # CO_i is already transitively closed, so the closure gains
        # exactly the pairs predecessors*(t) × successors*(s) — an
        # incremental update instead of a full re-closure.
        co = _insert_edge_transitively(pre.co, t, s, txns)
        if not co.is_acyclic():  # cannot happen: the pair was unrelated
            raise SolverError(
                "commit order became cyclic during totalisation"
            )
        # VIS_{i+1} = base ∪ (CO_{i+1} ; base)  (A.3's rewriting of the
        # closed form for VIS).
        vis = base.union(co.compose(base))
        # Well-formedness holds by construction (CO transitive via the
        # incremental closure, VIS ⊆ CO by (S3) of the closed form);
        # skipping the O(E²) re-validation per step keeps the loop fast.
        # The invariants are pinned by tests/characterisation/.
        pre = PreExecution(graph.history, vis, co, validate=False)
        yield pre


def _insert_edge_transitively(
    co: Relation[Transaction],
    t: Transaction,
    s: Transaction,
    universe,
) -> Relation[Transaction]:
    """``(co ∪ {(t, s)})⁺`` assuming ``co`` is already transitive."""
    sources = set(co.predecessors(t))
    sources.add(t)
    targets = set(co.successors(s))
    targets.add(s)
    pairs = set(co.pairs)
    pairs.update((a, b) for a in sources for b in targets)
    return Relation(pairs, universe)


def construct_execution(
    graph: DependencyGraph,
    pick_pair: PairPicker = default_pair_picker,
    check_membership: bool = True,
) -> AbstractExecution:
    """Theorem 10(i): realise ``graph ∈ GraphSI`` as an execution in ExecSI.

    Args:
        graph: a dependency graph in GraphSI.
        pick_pair: strategy for choosing which unrelated transactions to
            order next in CO (the theorem allows any choice).
        check_membership: verify ``graph ∈ GraphSI`` first and raise
            :class:`NotInGraphSIError` otherwise.

    Returns:
        An abstract execution whose VIS/CO satisfy the SI axioms and whose
        extracted dependency graph equals ``graph`` (same WR, WW — hence
        same RW).
    """
    last: Optional[PreExecution] = None
    for pre in pre_execution_chain(
        graph, pick_pair=pick_pair, check_membership=check_membership
    ):
        last = pre
    assert last is not None
    return AbstractExecution(last.history, last.vis, last.co)


def totalisation_steps(
    graph: DependencyGraph, pick_pair: PairPicker = default_pair_picker
) -> int:
    """The number of forced edges needed to totalise CO for ``graph`` —
    the ``n`` of the construction.  Exposed for the scalability bench."""
    chain = list(pre_execution_chain(graph, pick_pair=pick_pair))
    return len(chain) - 1
