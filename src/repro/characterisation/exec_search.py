"""Execution-level membership search: the brute-force ground truth.

Definition 4 defines ``HistM`` as the histories extensible to an abstract
execution satisfying M's axioms.  The main oracle
(:mod:`repro.characterisation.membership`) decides this via the dependency
-graph characterisations (Theorems 8/9/21); this module instead implements
the definition *literally* — enumerate commit orders and visibility
relations, check the axioms — with no dependency-graph machinery at all.

The two oracles deciding the same sets is a *theorem* (Theorems 8, 9, 21),
so their agreement on small histories is an end-to-end validation of the
paper's characterisations that shares no code with the graph-based path.
It is exponential in a worse way than the graph search (|CO| candidates ×
2^|CO| visibility subsets before pruning) and is therefore only intended
for histories of ≤ ~5 transactions.

Pruning keeps the search practical at that size:

* CO candidates are linearisations of SO (SESSION + VIS ⊆ CO force SO
  into CO);
* VIS is chosen per-transaction as a subset of its CO-predecessors that
  includes its SO-predecessors, and, for SI, must be a CO-downward-closed
  prefix (PREFIX makes any other choice futile);
* EXT is checked incrementally per transaction.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from ..core.executions import AbstractExecution
from ..core.histories import History
from ..core.models import AXIOMATIC_MODELS, MODELS, ConsistencyModel
from ..core.relations import Relation
from ..core.transactions import Transaction


def _so_linearisations(history: History) -> Iterator[List[Transaction]]:
    """All total orders of the transactions extending the session order."""
    txns = sorted(history.transactions, key=lambda t: t.tid)
    so = history.session_order
    for perm in itertools.permutations(txns):
        position = {t: i for i, t in enumerate(perm)}
        if all(position[a] < position[b] for a, b in so):
            yield list(perm)


def _visibility_choices(
    history: History,
    commit_sequence: Sequence[Transaction],
    model: str,
) -> Iterator[Relation[Transaction]]:
    """All candidate VIS relations for a given commit order.

    For SER, VIS = CO is forced (TOTALVIS plus VIS ⊆ CO).  For SI, PREFIX
    (with VIS ⊆ CO) means each transaction sees a CO-prefix, so the
    choice per transaction is *how long* a prefix — n choices instead of
    2^n.  For PSI, any SO-containing subset of the CO-predecessors is a
    candidate (TRANSVIS is checked afterwards).
    """
    position = {t: i for i, t in enumerate(commit_sequence)}
    so = history.session_order

    if model == "SER":
        yield Relation.total_order(commit_sequence)
        return

    if model in ("SI", "PC"):
        # PREFIX holds in both models, so each transaction sees a
        # CO-prefix: per transaction the choice is just the prefix
        # length, >= 1 + max SO-predecessor index.
        ranges: List[List[int]] = []
        for i, t in enumerate(commit_sequence):
            lo = 0
            for a, b in so:
                if b == t:
                    lo = max(lo, position[a] + 1)
            ranges.append(list(range(lo, i + 1)))
        for prefix_lens in itertools.product(*ranges):
            pairs: Set[Tuple[Transaction, Transaction]] = set()
            for i, t in enumerate(commit_sequence):
                for j in range(prefix_lens[i]):
                    pairs.add((commit_sequence[j], t))
            yield Relation(pairs, history.transactions)
        return

    if model == "PSI":
        # Arbitrary subsets of CO-predecessors containing SO-predecessors.
        per_txn: List[List[FrozenSet[Transaction]]] = []
        for i, t in enumerate(commit_sequence):
            forced = {a for a, b in so if b == t}
            optional = [
                commit_sequence[j]
                for j in range(i)
                if commit_sequence[j] not in forced
            ]
            choices = []
            for r in range(len(optional) + 1):
                for combo in itertools.combinations(optional, r):
                    choices.append(frozenset(forced) | frozenset(combo))
            per_txn.append(choices)
        for combo in itertools.product(*per_txn):
            pairs = {
                (a, t)
                for t, sources in zip(commit_sequence, combo)
                for a in sources
            }
            yield Relation(pairs, history.transactions)
        return

    raise ValueError(f"unknown model {model!r}")


def find_execution(
    history: History, model: str, init_tid: Optional[str] = None
) -> Optional[AbstractExecution]:
    """Search for an execution of ``history`` satisfying ``model``'s
    axioms, by direct enumeration of (CO, VIS).

    Args:
        history: the history (≤ ~5 non-initialisation transactions).
        model: ``"SI"``, ``"SER"`` or ``"PSI"``.
        init_tid: id of the initialisation transaction, forced first in
            CO and visible to everyone (the paper's convention).

    Returns:
        A witnessing :class:`AbstractExecution`, or ``None`` if no
        extension satisfies the axioms (``history ∉ HistM``).
    """
    consistency: ConsistencyModel = AXIOMATIC_MODELS[model]
    init = history.by_tid(init_tid) if init_tid is not None else None
    for commit_sequence in _so_linearisations(history):
        if init is not None and commit_sequence[0] != init:
            continue
        co = Relation.total_order(commit_sequence)
        for vis in _visibility_choices(history, commit_sequence, model):
            if init is not None:
                extra = {
                    (init, t)
                    for t in history.transactions
                    if t != init
                }
                if not extra <= set(vis.pairs):
                    vis = vis.union(Relation(extra, history.transactions))
            candidate = AbstractExecution(history, vis, co, validate=False)
            if candidate.well_formedness_violations():
                continue
            if consistency.satisfied_by(candidate):
                return candidate
    return None


def history_allowed(
    history: History, model: str, init_tid: Optional[str] = None
) -> bool:
    """``history ∈ HistM`` by direct execution search (ground truth)."""
    if not history.is_internally_consistent():
        return False
    return find_execution(history, model, init_tid=init_tid) is not None


def classify_history_by_executions(
    history: History, init_tid: Optional[str] = None
) -> Dict[str, bool]:
    """Membership in all three models by direct execution search."""
    return {
        model: history_allowed(history, model, init_tid=init_tid)
        for model in MODELS
    }


def find_execution_for_axioms(
    history: History,
    axioms: Sequence,
    init_tid: Optional[str] = None,
    require_session_order: bool = False,
) -> Optional[AbstractExecution]:
    """Search for an execution satisfying an *arbitrary* axiom set.

    The fully general (and most expensive) enumeration: every SO
    linearisation as CO, every subset of CO-predecessors as each
    transaction's visibility set.  Unlike :func:`find_execution`, SO is
    *not* forced into VIS (so the SESSION axiom itself can be ablated);
    pass ``require_session_order=True`` to restore the pruning when
    SESSION is among the axioms.

    Used by the axiom-ablation study (bench E19): dropping one axiom of
    SI at a time shows exactly which anomaly each axiom excludes.

    Args:
        history: the history (keep it at ≤ ~5 transactions).
        axioms: :class:`repro.core.axioms.Axiom` objects to satisfy.
        init_tid: optional initialisation transaction, forced CO-first and
            globally visible.
        require_session_order: force SO ⊆ VIS during enumeration (sound
            only when SESSION is in ``axioms``; prunes aggressively).
    """
    init = history.by_tid(init_tid) if init_tid is not None else None
    so = history.session_order
    for commit_sequence in _so_linearisations(history):
        if init is not None and commit_sequence[0] != init:
            continue
        co = Relation.total_order(commit_sequence)
        per_txn: List[List[FrozenSet[Transaction]]] = []
        for i, t in enumerate(commit_sequence):
            forced: Set[Transaction] = set()
            if init is not None and t != init:
                forced.add(init)
            if require_session_order:
                forced |= {a for a, b in so if b == t}
            optional = [
                commit_sequence[j]
                for j in range(i)
                if commit_sequence[j] not in forced
            ]
            choices = []
            for r in range(len(optional) + 1):
                for combo in itertools.combinations(optional, r):
                    choices.append(frozenset(forced) | frozenset(combo))
            per_txn.append(choices)
        for combo in itertools.product(*per_txn):
            pairs = {
                (a, t)
                for t, sources in zip(commit_sequence, combo)
                for a in sources
            }
            vis = Relation(pairs, history.transactions)
            candidate = AbstractExecution(history, vis, co, validate=False)
            if candidate.well_formedness_violations():
                continue
            if all(axiom.holds(candidate) for axiom in axioms):
                return candidate
    return None
