"""History-level membership: deciding ``H ∈ HistSI / HistSER / HistPSI``.

Theorems 8, 9 and 21 reduce history membership to the existence of
dependency relations extending the history into a graph of the right class:

    HistM = { H | ∃ WR, WW, RW. (H, WR, WW, RW) ∈ GraphM }.

This module enumerates all well-formed extensions (Definition 6) of a
history — all choices of a writer for each external read that wrote the
value read, and all total write orders per object — and tests the graph
condition.  The search is exponential in the number of writers per object,
but exact; it is the oracle against which the operational MVCC engine and
the static analyses are validated on small histories.

The paper's convention of a distinguished initialisation transaction is
supported: when ``init_tid`` is given, write orders are restricted to place
it first (it "precedes all the other transactions in VIS and CO").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.events import Obj
from ..core.histories import History
from ..core.relations import Relation
from ..core.transactions import Transaction
from ..graphs.classify import in_graph_psi, in_graph_ser, in_graph_si
from ..graphs.dependency import DependencyGraph

GraphPredicate = Callable[[DependencyGraph], bool]

GRAPH_CONDITIONS: Dict[str, GraphPredicate] = {
    "SER": in_graph_ser,
    "SI": in_graph_si,
    "PSI": in_graph_psi,
}


@dataclass(frozen=True)
class Decision:
    """The outcome of a membership query.

    Attributes:
        allowed: whether some extension lies in the requested graph class.
        witness: a witnessing dependency graph when ``allowed``.
        graphs_explored: how many extensions were examined.
    """

    allowed: bool
    witness: Optional[DependencyGraph]
    graphs_explored: int


def candidate_writers(
    history: History, reader: Transaction, obj: Obj
) -> List[Transaction]:
    """Transactions eligible as the WR(x) source for ``reader``'s external
    read of ``obj``: distinct writers whose final write matches the value
    read (Definition 6's conditions on WR)."""
    value = reader.external_read(obj)
    return sorted(
        (
            t
            for t in history.transactions
            if t != reader and t.writes(obj) and t.final_write(obj) == value
        ),
        key=lambda t: t.tid,
    )


def _external_reads(history: History) -> List[Tuple[Transaction, Obj]]:
    """All (transaction, object) pairs with an external read to resolve."""
    out: List[Tuple[Transaction, Obj]] = []
    for t in sorted(history.transactions, key=lambda t: t.tid):
        for obj in sorted(t.external_read_objects):
            out.append((t, obj))
    return out


def _write_orders(
    writers: Sequence[Transaction], init_tid: Optional[str]
) -> Iterator[Tuple[Transaction, ...]]:
    """All candidate WW(x) linearisations; the initialisation transaction,
    when present among the writers, is pinned to the front."""
    writers = sorted(writers, key=lambda t: t.tid)
    init = [t for t in writers if t.tid == init_tid]
    rest = [t for t in writers if t.tid != init_tid]
    if init:
        for perm in itertools.permutations(rest):
            yield (init[0], *perm)
    else:
        yield from itertools.permutations(writers)


def extensions(
    history: History,
    init_tid: Optional[str] = None,
    max_graphs: Optional[int] = None,
) -> Iterator[DependencyGraph]:
    """Lazily enumerate every well-formed dependency-graph extension of
    ``history`` (Definition 6).

    Args:
        history: the history to extend; must be internally consistent for
            any extension to be useful (callers check INT separately —
            Definition 6 itself does not require it).
        init_tid: optional id of the initialisation transaction, pinned
            first in every WW(x).
        max_graphs: optional hard cap on the number of yielded graphs
            (guards against accidental exponential blow-ups in scripts).
    """
    universe = history.transactions
    reads = _external_reads(history)
    read_choices: List[List[Tuple[Transaction, Transaction, Obj]]] = []
    for reader, obj in reads:
        cands = candidate_writers(history, reader, obj)
        if not cands:
            return  # some read can never be satisfied: no extensions
        read_choices.append([(w, reader, obj) for w in cands])

    objs_with_writes = sorted(
        obj for obj in history.objects if len(history.write_transactions(obj)) >= 1
    )
    ww_choices: List[List[Tuple[Obj, Tuple[Transaction, ...]]]] = []
    for obj in objs_with_writes:
        writers = history.write_transactions(obj)
        orders = [(obj, order) for order in _write_orders(writers, init_tid)]
        ww_choices.append(orders)

    count = 0
    for wr_combo in itertools.product(*read_choices):
        wr: Dict[Obj, List[Tuple[Transaction, Transaction]]] = {}
        for writer, reader, obj in wr_combo:
            wr.setdefault(obj, []).append((writer, reader))
        wr_rels = {
            obj: Relation(pairs, universe) for obj, pairs in wr.items()
        }
        for ww_combo in itertools.product(*ww_choices):
            ww_rels = {
                obj: Relation.total_order(order).union(
                    Relation.empty(universe)
                )
                for obj, order in ww_combo
                if len(order) > 1
            }
            if max_graphs is not None and count >= max_graphs:
                return
            count += 1
            yield DependencyGraph(history, wr_rels, ww_rels, validate=False)


def decide(
    history: History,
    model: str,
    init_tid: Optional[str] = None,
    max_graphs: Optional[int] = None,
) -> Decision:
    """Decide ``history ∈ HistM`` for ``M ∈ {"SER", "SI", "PSI"}``.

    Internally-inconsistent histories are rejected immediately (all three
    graph classes require INT).
    """
    try:
        condition = GRAPH_CONDITIONS[model]
    except KeyError:
        raise ValueError(
            f"unknown model {model!r}; expected one of {sorted(GRAPH_CONDITIONS)}"
        ) from None
    if not history.is_internally_consistent():
        return Decision(allowed=False, witness=None, graphs_explored=0)
    explored = 0
    for graph in extensions(history, init_tid=init_tid, max_graphs=max_graphs):
        explored += 1
        if condition(graph):
            return Decision(allowed=True, witness=graph, graphs_explored=explored)
    return Decision(allowed=False, witness=None, graphs_explored=explored)


def history_in_si(
    history: History, init_tid: Optional[str] = None
) -> bool:
    """``history ∈ HistSI`` via Theorem 9 (exact, exponential search)."""
    return decide(history, "SI", init_tid=init_tid).allowed


def history_in_ser(
    history: History, init_tid: Optional[str] = None
) -> bool:
    """``history ∈ HistSER`` via Theorem 8."""
    return decide(history, "SER", init_tid=init_tid).allowed


def history_in_psi(
    history: History, init_tid: Optional[str] = None
) -> bool:
    """``history ∈ HistPSI`` via Theorem 21."""
    return decide(history, "PSI", init_tid=init_tid).allowed


def classify_history(
    history: History, init_tid: Optional[str] = None
) -> Dict[str, bool]:
    """Membership of the history in all three model classes."""
    return {
        model: decide(history, model, init_tid=init_tid).allowed
        for model in GRAPH_CONDITIONS
    }


def search_space_size(history: History, init_tid: Optional[str] = None) -> int:
    """The number of extensions :func:`extensions` would enumerate —
    useful to guard scripts against explosive inputs."""
    import math

    size = 1
    for reader, obj in _external_reads(history):
        size *= max(1, len(candidate_writers(history, reader, obj)))
    for obj in history.objects:
        writers = history.write_transactions(obj)
        n = len(writers)
        if init_tid is not None and any(t.tid == init_tid for t in writers):
            n -= 1
        size *= max(1, math.factorial(n))
    return size
