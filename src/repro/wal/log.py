"""The durable, segmented, group-commit write-ahead log.

:class:`WriteAheadLog` turns the in-memory commit stream of the engines
into a crash-survivable artifact: every
:class:`~repro.mvcc.engine.CommitRecord` is appended as a
CRC32-checksummed frame (:mod:`repro.wal.format`), in **exact commit
order**, to an append-only segment file that rotates at a size bound.

Ordering.  Committers call :meth:`append` concurrently, right after the
engine releases its commit mutex — so records arrive scrambled.  Like
the pipelined monitor feed, the log holds a record back in a reorder
buffer until every earlier commit sequence number (the engines allocate
commit timestamps gaplessly) has arrived, and writes frames strictly in
sequence.  The on-disk log is therefore always a *prefix* of the true
commit order: recovery after a crash at any point yields a
prefix-consistent history.

Group commit.  A dedicated flusher thread owns the file.  Appenders
deposit their encoded frame and (depending on the policy) wait for
durability; the flusher grabs everything writable in one batch, writes
it, and syncs once — so N concurrent committers share one ``fsync``:

* ``fsync_policy="always"`` — no batching at all: the flusher writes
  and syncs one frame per cycle (batching concurrent committers *is*
  group commit, so the per-record policy gets none of it).  This is the
  classic durable-commit cost every commit pays individually;
* ``fsync_policy="group"`` (default) — one ``fsync`` per *batch*;
  appenders wait for the batch sync covering their record.  Batch size
  grows naturally under load: while the flusher syncs, every other
  committer deposits.  Before syncing, the flusher additionally waits —
  up to ``group_window`` seconds — while committers it *knows* are in
  flight (threads currently inside :meth:`append`) have not deposited
  yet, so a round of N concurrent committers shares one ``fsync``
  instead of being split across two;
* ``fsync_policy="none"`` — frames are written to the OS (no sync) and
  :meth:`append` returns without waiting; a crash may lose the tail
  beyond the last OS write-back.

``flush_interval`` bounds how long a deposited frame can sit unwritten
when no appender is pushing the flusher (relevant under ``"none"``,
where nobody waits): the flusher wakes at least that often.

Failure model.  An I/O error poisons the log: every waiting and
subsequent ``append``/``flush``/``close`` raises a fresh
:class:`WalPoisoned` chained to the original cause and carrying the
first failed sequence number (the in-memory commit stands — the service
layer surfaces the error without undoing the commit, the same contract
as a monitor failure; or degrades to read-only, per its
``on_wal_failure`` policy).  The ``wal.write`` and ``wal.fsync``
failpoints (:mod:`repro.faults`) sit in the flusher so fault plans can
inject exactly these failures deterministically.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple, Any

from ..core.errors import StoreError
from ..faults import FAULTS
from ..mvcc.engine import CommitRecord
from .format import (
    SEGMENT_MAGIC,
    commit_record_to_payload,
    encode_frame,
    meta_to_payload,
    segment_index,
    segment_name,
)

FSYNC_POLICIES = ("always", "group", "none")
"""How appends reach the disk (see the module docstring)."""

DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024
"""Default segment rotation bound."""

DEFAULT_FLUSH_INTERVAL = 0.05
"""Default bound on how long a writable frame may wait for the flusher."""

DEFAULT_GROUP_WINDOW = 0.0005
"""Default bound on how long the flusher waits for in-flight committers
to join a group-commit batch before syncing it."""


class WalError(StoreError):
    """The log failed (I/O error, unencodable record, ordering bug).
    Once raised from :meth:`WriteAheadLog.append`, the log is poisoned:
    it can no longer guarantee a gap-free prefix."""


class WalClosed(WalError):
    """Append to a closed log."""


class WalPoisoned(WalError):
    """The log is poisoned and the original cause travels with every
    raise.

    The first failure (an I/O error from the flusher, an unencodable
    record) poisons the log; every *subsequent* ``append``/``flush``/
    ``close`` re-raises a fresh :class:`WalPoisoned` chained (via
    ``__cause__``) to the root failure, so a committer that hits the
    poisoned log minutes later still sees *why* and *where* it died —
    not just "log is broken".

    Attributes:
        first_failed_seq: the commit sequence number whose durability
            failed first (everything below it is on disk and
            recoverable; it and everything after are not).
        root: the original exception that poisoned the log.
    """

    def __init__(
        self,
        detail: str,
        first_failed_seq: int,
        root: Optional[BaseException],
    ):
        super().__init__(detail)
        self.first_failed_seq = first_failed_seq
        self.root = root
        # Chain explicitly so even a bare `raise` (no `from`) of this
        # instance renders the root failure in the traceback.
        self.__cause__ = root


class _BatchFailure(Exception):
    """Internal: a write/fsync failed at ``seq`` for reason ``root``
    (lets the flusher poison the log with the exact failed frame)."""

    def __init__(self, seq: int, root: BaseException):
        super().__init__(f"batch failure at #{seq}: {root}")
        self.seq = seq
        self.root = root


@dataclass
class WalStats:
    """Counters for one log's lifetime (also mirrored into an attached
    :class:`~repro.service.metrics.ServiceMetrics`)."""

    appends: int = 0
    flushes: int = 0
    fsyncs: int = 0
    bytes_written: int = 0
    segments_created: int = 0
    segments_deleted: int = 0
    batch_sizes: List[int] = field(default_factory=list)

    @property
    def mean_batch(self) -> float:
        """Mean group-commit batch size."""
        if not self.batch_sizes:
            return 0.0
        return sum(self.batch_sizes) / len(self.batch_sizes)


class WriteAheadLog:
    """Append-only, segmented, commit-ordered durable log.

    Args:
        directory: where segments live (created if missing; existing
            segments are never touched — a new segment is opened after
            the highest existing index, so a recovered directory can be
            inspected while a fresh service logs elsewhere).
        fsync_policy: one of :data:`FSYNC_POLICIES`.
        segment_max_bytes: rotate to a new segment once the current one
            would exceed this (every segment keeps at least one record).
        retention_segments: keep at most this many segments, deleting
            the oldest after rotation (``None`` = keep everything).
            Recovery from a pruned log yields the surviving suffix.
        flush_interval: the flusher's wake-up bound in seconds.
        group_window: under ``"group"``, how long the flusher may hold a
            batch open waiting for committers already inside
            :meth:`append` to deposit (seconds; ``0`` disables the
            window and syncs whatever is writable immediately).
        start_seq: first commit sequence number expected (one past the
            engine's last commit at attach time; 1 for a fresh engine).
        meta: log description written into every segment header —
            ``engine`` key, ``init`` values, ``init_tid``, ``model``
            (see :class:`~repro.wal.format.LogMeta`).
        metrics: optional :class:`~repro.service.metrics.ServiceMetrics`
            to mirror append/flush counters into (the service attaches
            its own when none is set).
    """

    def __init__(
        self,
        directory: str,
        fsync_policy: str = "group",
        segment_max_bytes: int = DEFAULT_SEGMENT_BYTES,
        retention_segments: Optional[int] = None,
        flush_interval: float = DEFAULT_FLUSH_INTERVAL,
        group_window: float = DEFAULT_GROUP_WINDOW,
        start_seq: int = 1,
        meta: Optional[Mapping[str, Any]] = None,
        metrics: Optional[Any] = None,
    ):
        if fsync_policy not in FSYNC_POLICIES:
            raise WalError(
                f"unknown fsync_policy {fsync_policy!r}; expected one of "
                f"{FSYNC_POLICIES}"
            )
        if segment_max_bytes < 1:
            raise WalError(
                f"segment_max_bytes must be positive, got {segment_max_bytes}"
            )
        if retention_segments is not None and retention_segments < 1:
            raise WalError(
                f"retention_segments must be positive, got "
                f"{retention_segments}"
            )
        if flush_interval <= 0:
            raise WalError(
                f"flush_interval must be positive, got {flush_interval}"
            )
        if group_window < 0:
            raise WalError(
                f"group_window must be non-negative, got {group_window}"
            )
        self.directory = directory
        self.fsync_policy = fsync_policy
        self.segment_max_bytes = segment_max_bytes
        self.retention_segments = retention_segments
        self.flush_interval = flush_interval
        self.group_window = group_window
        self.meta: Dict[str, Any] = dict(meta or {})
        self.metrics = metrics
        self.stats = WalStats()

        # One lock, two wait-sets: the flusher sleeps on `_io_cond`
        # (woken per writable deposit), `flush()`/`close()` sleep on
        # `_durable_cond` (woken once per completed flush).  Committers
        # waiting for durability use `_durable_event` instead — an
        # eventcount the flusher rotates per flush — so a completed
        # batch wakes its whole round without funnelling every waiter
        # back through the lock one by one.
        self._lock = threading.Lock()
        self._io_cond = threading.Condition(self._lock)
        self._durable_cond = threading.Condition(self._lock)
        self._durable_event = threading.Event()
        self._pending: Dict[int, bytes] = {}   # reorder buffer: ts -> frame
        self._writable: List[Tuple[int, bytes]] = []  # in-sequence frames
        self._next_seq = start_seq             # next ts eligible to write
        self._durable_ts = start_seq - 1       # last ts flushed per policy
        self._appenders = 0                    # threads inside append()
        self._error: Optional[BaseException] = None
        self._closed = False

        os.makedirs(directory, exist_ok=True)
        existing = [
            i for i in (
                segment_index(name) for name in os.listdir(directory)
            ) if i is not None
        ]
        self._segment = max(existing, default=0)
        self._file = None  # type: Optional[Any]
        self._segment_bytes = 0
        self._segment_records = 0
        self._open_segment(first_ts=start_seq)

        self._flusher = threading.Thread(
            target=self._flush_loop, name="wal-flusher", daemon=True
        )
        self._flusher.start()

    # ------------------------------------------------------------------
    # Producer side (committers)
    # ------------------------------------------------------------------

    def append(self, record: CommitRecord) -> None:
        """Append one committed transaction.

        Thread-safe; callers may arrive in any order — the record is
        held until every earlier commit sequence number has arrived.
        Under ``"always"``/``"group"`` the call returns once the record
        is durable per the policy; under ``"none"`` it returns as soon
        as the frame is deposited.

        Raises:
            WalClosed: after :meth:`close`.
            WalError: if the log is poisoned (I/O failure, unencodable
                record, duplicate/stale sequence number).
        """
        with self._lock:
            self._appenders += 1  # visible to the group-commit window
        try:
            try:
                frame = encode_frame(commit_record_to_payload(record))
            except Exception as exc:
                # An unencodable record would leave a permanent gap at
                # its sequence number, so the whole log is poisoned.
                with self._lock:
                    if self._error is None:
                        self._error = WalPoisoned(
                            f"cannot encode commit {record.tid}: {exc}",
                            first_failed_seq=record.commit_ts,
                            root=exc,
                        )
                    self._io_cond.notify()
                    self._durable_event.set()
                    self._durable_cond.notify_all()
                    self._reraise_error()
            ts = record.commit_ts
            with self._lock:
                self._check_open()
                if ts < self._next_seq or ts in self._pending:
                    raise WalError(
                        f"append out of sequence: commit #{ts} "
                        f"(next expected #{self._next_seq})"
                    )
                self._pending[ts] = frame
                self.stats.appends += 1
                self.stats.bytes_written += len(frame)
                if self.metrics is not None:
                    self.metrics.record_wal_append(len(frame))
                if self._promote_locked():
                    self._io_cond.notify()  # wake/feed the flusher
                if self.fsync_policy == "none":
                    return
            # Durability wait, outside the lock: grab the current epoch
            # event, re-check, sleep.  The flusher publishes
            # `_durable_ts` and sets the epoch's event under the lock,
            # so a wakeup can never be lost — and N acked committers
            # wake concurrently instead of re-queueing on the lock.
            while self._durable_ts < ts:
                if self._error is not None:
                    self._reraise_error()
                if self._closed:
                    raise WalClosed(
                        f"log closed before commit #{ts} became durable"
                    )
                event = self._durable_event
                if self._durable_ts >= ts:
                    break
                event.wait(self.flush_interval)
            if self._error is not None:
                self._reraise_error()
        finally:
            with self._lock:
                self._appenders -= 1

    def _promote_locked(self) -> bool:
        """Move the contiguous run of pending frames into write order.
        Returns whether anything became writable."""
        grew = False
        while self._next_seq in self._pending:
            self._writable.append(
                (self._next_seq, self._pending.pop(self._next_seq))
            )
            self._next_seq += 1
            grew = True
        return grew

    def _check_open(self) -> None:
        if self._error is not None:
            self._reraise_error()
        if self._closed:
            raise WalClosed(f"write-ahead log {self.directory!r} is closed")

    def _reraise_error(self) -> None:
        """Raise the captured failure.  A poisoned log raises a *fresh*
        :class:`WalPoisoned` every time, chained to the root cause and
        carrying the first failed sequence number — so concurrent
        raisers never share one exception's traceback and every caller
        sees the original failure, however late it arrives."""
        error = self._error
        if isinstance(error, WalPoisoned):
            raise WalPoisoned(
                str(error),
                first_failed_seq=error.first_failed_seq,
                root=error.root,
            )
        raise error

    # ------------------------------------------------------------------
    # Flusher thread
    # ------------------------------------------------------------------

    def _flush_loop(self) -> None:
        while True:
            with self._lock:
                while not self._writable and not self._closed:
                    self._io_cond.wait(self.flush_interval)
                if self._closed and not self._writable:
                    return
                if (
                    self.fsync_policy == "group"
                    and self.group_window > 0
                    and not self._closed
                ):
                    # Group-commit window: committers already inside
                    # append() will deposit momentarily — hold the batch
                    # open for them (bounded) so one fsync covers the
                    # whole concurrent round instead of half of it.
                    deadline = time.monotonic() + self.group_window
                    while (
                        len(self._writable) < self._appenders
                        and not self._closed
                    ):
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                        self._io_cond.wait(remaining)
                if self.fsync_policy == "always":
                    # Per-record durability: one frame per cycle, its
                    # own write + fsync.  The rest stays writable and
                    # the loop comes straight back for it.
                    batch = [self._writable.pop(0)]
                else:
                    batch = self._writable
                    self._writable = []
            # I/O outside the lock: committers keep depositing while we
            # write and sync — that's what grows the group-commit batch.
            error: Optional[BaseException] = None
            fsyncs = 0
            try:
                fsyncs = self._write_batch(batch)
            except BaseException as exc:
                error = exc
            with self._lock:
                if error is not None:
                    if self._error is None:
                        if isinstance(error, _BatchFailure):
                            seq, root = error.seq, error.root
                        else:
                            seq, root = batch[0][0], error
                        self._error = WalPoisoned(
                            f"write-ahead log I/O failure at commit "
                            f"#{seq}: {root}",
                            first_failed_seq=seq,
                            root=root,
                        )
                else:
                    self._durable_ts = batch[-1][0]
                    self.stats.flushes += 1
                    self.stats.fsyncs += fsyncs
                    self.stats.batch_sizes.append(len(batch))
                    if self.metrics is not None:
                        self.metrics.record_wal_flush(len(batch), fsyncs)
                epoch = self._durable_event
                self._durable_event = threading.Event()
                epoch.set()  # wake this batch's committers
                self._durable_cond.notify_all()

    def _write_batch(self, batch: List[Tuple[int, bytes]]) -> int:
        """Write ``batch`` (rotating as needed) and sync per policy.
        Returns the number of fsyncs performed.  Flusher thread only."""
        fsyncs = 0
        for ts, frame in batch:
            try:
                if FAULTS.armed:
                    # A dead disk: an io_error rule here poisons the
                    # log exactly like a failed write(2).
                    FAULTS.fire("wal.write", seq=ts)
                if (
                    self._segment_records > 0
                    and self._segment_bytes + len(frame)
                    > self.segment_max_bytes
                ):
                    self._rotate(next_ts=ts)
                self._file.write(frame)
            except BaseException as exc:
                raise _BatchFailure(ts, exc) from exc
            self._segment_bytes += len(frame)
            self._segment_records += 1
            if self.fsync_policy == "always":
                try:
                    self._fsync()
                except BaseException as exc:
                    raise _BatchFailure(ts, exc) from exc
                fsyncs += 1
        if self.fsync_policy == "group":
            try:
                self._fsync()
            except BaseException as exc:
                # The whole batch was written but none of it is known
                # durable: the first frame is the first failure.
                raise _BatchFailure(batch[0][0], exc) from exc
            fsyncs += 1
        elif self.fsync_policy == "none":
            self._file.flush()
        return fsyncs

    def _fsync(self) -> None:
        """Flush and sync the current segment (flusher thread only).
        The ``wal.fsync`` failpoint sits in front so fault plans can
        model a congested device — the stall is visible to every
        committer waiting on this batch's durability."""
        if FAULTS.armed:
            FAULTS.fire("wal.fsync", segment=self._segment)
        self._file.flush()
        os.fsync(self._file.fileno())

    def _rotate(self, next_ts: int) -> None:
        """Close the current segment and open the next (flusher only)."""
        self._file.flush()
        if self.fsync_policy != "none":
            os.fsync(self._file.fileno())
        self._file.close()
        self._open_segment(first_ts=next_ts)
        self._apply_retention()

    def _open_segment(self, first_ts: int) -> None:
        self._segment += 1
        path = os.path.join(self.directory, segment_name(self._segment))
        self._file = open(path, "wb")
        header = SEGMENT_MAGIC + encode_frame(
            meta_to_payload(self.meta, self._segment, first_ts)
        )
        self._file.write(header)
        self._segment_bytes = len(header)
        self._segment_records = 0
        self.stats.segments_created += 1
        self.stats.bytes_written += len(header)

    def _apply_retention(self) -> None:
        if self.retention_segments is None:
            return
        indices = sorted(
            i for i in (
                segment_index(name) for name in os.listdir(self.directory)
            ) if i is not None
        )
        for index in indices[:-self.retention_segments]:
            os.unlink(os.path.join(self.directory, segment_name(index)))
            self.stats.segments_deleted += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def durable_ts(self) -> int:
        """The highest commit sequence number flushed per the policy."""
        with self._lock:
            return self._durable_ts

    @property
    def pending_gap(self) -> List[int]:
        """Sequence numbers deposited but blocked behind a gap."""
        with self._lock:
            return sorted(self._pending)

    def segments(self) -> List[str]:
        """Current segment file paths, oldest first."""
        names = sorted(
            name for name in os.listdir(self.directory)
            if segment_index(name) is not None
        )
        return [os.path.join(self.directory, name) for name in names]

    # ------------------------------------------------------------------
    # Flushing and shutdown
    # ------------------------------------------------------------------

    def flush(self, timeout: Optional[float] = None) -> None:
        """Block until every in-sequence deposited frame is flushed
        (re-raising a captured error).  Frames stuck behind a sequence
        gap stay pending — see :attr:`pending_gap`."""
        with self._lock:
            done = self._durable_cond.wait_for(
                lambda: (
                    self._error is not None
                    or (not self._writable
                        and self._durable_ts == self._next_seq - 1)
                ),
                timeout=timeout,
            )
            if self._error is not None:
                self._reraise_error()
            if not done:
                raise WalError(
                    f"log flush timed out with "
                    f"{len(self._writable)} frame(s) unwritten"
                )

    def close(self, timeout: Optional[float] = None) -> None:
        """Flush everything in sequence, stop the flusher, close the
        file.  Idempotent.  Raises :class:`WalError` if frames remain
        stuck behind a sequence gap (a committer never arrived) or an
        I/O error was captured."""
        with self._lock:
            already = self._closed
            self._closed = True
            self._io_cond.notify()
            self._durable_event.set()
            self._durable_cond.notify_all()
        if already:
            if self._error is not None:
                self._reraise_error()
            return
        self._flusher.join(timeout)
        if self._flusher.is_alive():
            raise WalError("write-ahead log flusher failed to stop")
        with self._lock:
            if self._file is not None:
                try:
                    self._file.flush()
                    if self.fsync_policy != "none" and self._error is None:
                        os.fsync(self._file.fileno())
                finally:
                    self._file.close()
                    self._file = None
            if self._error is None and self._pending:
                self._error = WalError(
                    f"log closed with a sequence gap: expected commit "
                    f"#{self._next_seq}, holding {sorted(self._pending)}"
                )
            if self._error is not None:
                self._reraise_error()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            try:
                self.close()
            except Exception:
                pass
