"""Crash recovery: scan a write-ahead log, replay it into a fresh engine.

The scanner walks segments in index order, decoding frames until the
first sign of damage — a torn frame header, a truncated payload, a CRC
mismatch, an undecodable document, or a commit-sequence gap (a deleted
or reordered segment).  Everything before the damage is the durable
**prefix**; everything after it is reported as dropped, never replayed,
and never raises: damage is data.

:func:`recover` feeds that prefix through
:meth:`~repro.mvcc.engine.BaseEngine.replay_commit`, which installs each
record without re-running validation (the log only ever contains
commits that already won their validation race).  The recovered engine
reproduces the original's committed state bit-identically — same
commit records, same history, same store contents — and can continue
serving new transactions.

Scanning is streaming: segments are read one at a time and records are
yielded as they decode, so auditing a multi-gigabyte log never
materialises the whole history (:mod:`repro.wal.audit` builds on this).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from ..core.errors import StoreError
from ..io.json_format import FormatError
from ..mvcc.engine import BaseEngine, CommitRecord
from .format import (
    SEGMENT_MAGIC,
    LogMeta,
    commit_record_from_doc,
    meta_from_doc,
    payload_to_doc,
    scan_frames,
    segment_index,
)


@dataclass(frozen=True)
class Damage:
    """One point at which scanning stopped.

    Attributes:
        segment: segment file name.
        offset: byte offset of the first bad byte within the segment
            (-1 when the whole segment is unusable).
        reason: human-readable description.
    """

    segment: str
    offset: int
    reason: str

    def __str__(self) -> str:
        where = f"@{self.offset}" if self.offset >= 0 else ""
        return f"{self.segment}{where}: {self.reason}"


class LogScan:
    """A streaming pass over the decodable prefix of a log directory.

    Iterate it to receive :class:`CommitRecord`s in commit order; after
    (or during) iteration the summary attributes describe what was seen.
    Each ``iter()`` call rescans from the start.

    Attributes:
        meta: the log description (from the first readable segment
            header; ``None`` when no segment header decodes).
        damage: where scanning stopped, if anywhere.
        records_scanned: commit records yielded.
        segments_scanned: segments fully or partially read.
        segments_dropped: segments unreachable past the damage point.
        bytes_scanned: total bytes consumed.
        first_ts / last_ts: commit-sequence range recovered (0/0 when
            empty).
    """

    def __init__(self, directory: str):
        if not os.path.isdir(directory):
            raise StoreError(f"no such log directory: {directory!r}")
        self.directory = directory
        self.meta: Optional[LogMeta] = None
        self.damage: List[Damage] = []
        self.records_scanned = 0
        self.segments_scanned = 0
        self.segments_dropped = 0
        self.bytes_scanned = 0
        self.first_ts = 0
        self.last_ts = 0
        # Eagerly read the first segment's meta so callers (the audit
        # monitor, the recovery engine factory) can configure themselves
        # before streaming.
        for record in self._scan(stop_after_meta=True):  # pragma: no cover
            break

    @property
    def truncated(self) -> bool:
        """Whether scanning stopped at damage."""
        return bool(self.damage)

    def _segments(self) -> List[str]:
        names = sorted(
            name for name in os.listdir(self.directory)
            if segment_index(name) is not None
        )
        return names

    def __iter__(self) -> Iterator[CommitRecord]:
        return self._scan(stop_after_meta=False)

    def _scan(self, stop_after_meta: bool) -> Iterator[CommitRecord]:
        self.damage = []
        self.records_scanned = 0
        self.segments_scanned = 0
        self.segments_dropped = 0
        self.bytes_scanned = 0
        self.first_ts = 0
        self.last_ts = 0
        names = self._segments()
        expected_ts: Optional[int] = None
        for position, name in enumerate(names):
            path = os.path.join(self.directory, name)
            try:
                with open(path, "rb") as f:
                    data = f.read()
            except OSError as exc:
                self._stop(names, position, name, -1,
                           f"unreadable segment: {exc}")
                return
            self.segments_scanned += 1
            self.bytes_scanned += len(data)
            if not data.startswith(SEGMENT_MAGIC):
                self._stop(names, position, name, 0, "bad segment magic")
                return
            payloads, frame_damage, damage_offset = scan_frames(
                data, len(SEGMENT_MAGIC)
            )
            if not payloads:
                self._stop(names, position, name,
                           damage_offset if frame_damage else len(data),
                           frame_damage or "segment has no meta frame")
                return
            try:
                meta = meta_from_doc(payload_to_doc(payloads[0]))
            except FormatError as exc:
                self._stop(names, position, name, len(SEGMENT_MAGIC),
                           f"bad meta frame: {exc}")
                return
            if self.meta is None:
                self.meta = meta
            if expected_ts is not None and meta.first_ts != expected_ts:
                self._stop(
                    names, position, name, len(SEGMENT_MAGIC),
                    f"segment expects commit #{meta.first_ts} but the "
                    f"log's next is #{expected_ts} (missing segment?)",
                )
                return
            if stop_after_meta:
                return
            for payload in payloads[1:]:
                try:
                    record = commit_record_from_doc(payload_to_doc(payload))
                except FormatError as exc:
                    self._stop(names, position, name, -1,
                               f"undecodable commit frame: {exc}")
                    return
                if expected_ts is None:
                    expected_ts = record.commit_ts
                if record.commit_ts != expected_ts:
                    self._stop(
                        names, position, name, -1,
                        f"commit sequence gap: got #{record.commit_ts}, "
                        f"expected #{expected_ts}",
                    )
                    return
                if self.first_ts == 0:
                    self.first_ts = record.commit_ts
                self.last_ts = record.commit_ts
                expected_ts += 1
                self.records_scanned += 1
                yield record
            if expected_ts is None:
                # Segment held only its meta frame; the next segment (if
                # any) continues from its own declared first_ts.
                expected_ts = meta.first_ts
            if frame_damage is not None:
                self._stop(names, position + 1, name, damage_offset,
                           frame_damage)
                return

    def _stop(
        self,
        names: List[str],
        drop_from: int,
        segment: str,
        offset: int,
        reason: str,
    ) -> None:
        """Record the damage point; everything from ``drop_from`` on is
        unreachable (a prefix-consistent recovery must not skip over a
        hole)."""
        self.damage.append(Damage(segment=segment, offset=offset,
                                  reason=reason))
        dropped = len(names) - drop_from
        # The damaged segment itself counts as dropped only when nothing
        # of it was consumed (drop_from points past it otherwise).
        self.segments_dropped = max(dropped, 0)


def scan(directory: str) -> LogScan:
    """A :class:`LogScan` over ``directory`` (meta read eagerly)."""
    return LogScan(directory)


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------


def make_engine(
    key: Optional[str], initial, init_tid: str = "t_init"
) -> BaseEngine:
    """A fresh engine for ``key`` (``"SI"``/``"SER"``/``"PSI"``/
    ``"2PL"``; unknown or ``None`` falls back to SI — replay bypasses
    validation, so any engine can host any log's history)."""
    from ..mvcc import PSIEngine, SerializableEngine, SIEngine
    from ..mvcc.locking import TwoPhaseLockingEngine

    if key == "SER":
        return SerializableEngine(initial, init_tid=init_tid)
    if key == "PSI":
        return PSIEngine(initial, init_tid=init_tid, auto_deliver=True)
    if key == "2PL":
        return TwoPhaseLockingEngine(initial, init_tid=init_tid)
    return SIEngine(initial, init_tid=init_tid)


@dataclass
class RecoveryResult:
    """What :func:`recover` reproduced.

    Attributes:
        engine: the replayed engine (ready to serve new transactions).
        meta: the log description.
        records_recovered: commits replayed.
        damage: where scanning stopped (empty for a clean log).
        segments_scanned / segments_dropped / bytes_scanned: scan stats.
        first_ts / last_ts: recovered commit-sequence range.
        elapsed_seconds: wall-clock recovery time (scan + replay).
    """

    engine: BaseEngine
    meta: Optional[LogMeta]
    records_recovered: int = 0
    damage: List[Damage] = field(default_factory=list)
    segments_scanned: int = 0
    segments_dropped: int = 0
    bytes_scanned: int = 0
    first_ts: int = 0
    last_ts: int = 0
    elapsed_seconds: float = 0.0

    @property
    def truncated(self) -> bool:
        """Whether the log had a damaged / missing tail."""
        return bool(self.damage)

    def describe(self) -> str:
        """A short human-readable summary."""
        lines = [
            f"recovered {self.records_recovered} commit(s) "
            f"(#{self.first_ts}..#{self.last_ts}) from "
            f"{self.segments_scanned} segment(s), "
            f"{self.bytes_scanned} byte(s) "
            f"in {self.elapsed_seconds * 1000:.1f} ms"
        ]
        for d in self.damage:
            lines.append(f"stopped at damage: {d}")
        if self.segments_dropped:
            lines.append(
                f"{self.segments_dropped} segment(s) unreachable past "
                f"the damage were dropped"
            )
        return "\n".join(lines)


def recover(
    directory: str,
    engine: Optional[BaseEngine] = None,
    engine_key: Optional[str] = None,
) -> RecoveryResult:
    """Replay the decodable prefix of a log into a fresh engine.

    Args:
        directory: the log directory.
        engine: replay into this engine instead of building one (its
            initial state must match the log's; it must be fresh).
        engine_key: override the engine class recorded in the log meta.

    Raises:
        StoreError: when no usable segment meta exists (nothing to
            seed an engine from) and no ``engine`` was supplied.
    """
    started = time.perf_counter()
    log_scan = scan(directory)
    if engine is None:
        if log_scan.meta is None:
            raise StoreError(
                f"cannot recover {directory!r}: no readable segment "
                f"meta" + (
                    f" ({log_scan.damage[0]})" if log_scan.damage else ""
                )
            )
        engine = make_engine(
            engine_key or log_scan.meta.engine,
            dict(log_scan.meta.init),
            init_tid=log_scan.meta.init_tid,
        )
    count = 0
    for record in log_scan:
        engine.replay_commit(record)
        count += 1
    return RecoveryResult(
        engine=engine,
        meta=log_scan.meta,
        records_recovered=count,
        damage=list(log_scan.damage),
        segments_scanned=log_scan.segments_scanned,
        segments_dropped=log_scan.segments_dropped,
        bytes_scanned=log_scan.bytes_scanned,
        first_ts=log_scan.first_ts,
        last_ts=log_scan.last_ts,
        elapsed_seconds=time.perf_counter() - started,
    )
