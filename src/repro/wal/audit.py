"""Streaming offline audit: certify a recovered log without replay.

This is the bridge from the operational write-ahead log to the paper's
dependency-graph characterisations: a persisted commit log is exactly
the input a black-box checker needs.  :func:`audit_log` streams the
decodable prefix of a log directory through the same incremental
SI/SER/PSI certifiers the live service uses
(:class:`~repro.monitor.online.ConsistencyMonitor`, or its windowed
variant), one commit record at a time — memory stays bounded by the
monitor's own state, never by the log size, so a multi-gigabyte log is
auditable on a laptop.

Because commits are fed in commit-sequence order with the producer's
initial values and init tid, a clean audit reproduces the live
monitor's verdict exactly: same violations, flagged at the same
commits (``tests/wal/test_service_wal.py`` and the parity suite hold
this equation across engines and monitor modes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.errors import StoreError
from ..monitor.online import ConsistencyMonitor, MonitorError, Violation
from ..monitor.windowed import WindowedMonitor
from .format import LogMeta
from .recovery import Damage, scan


# 2PL produces serialisable executions; the log stores the engine key,
# so map it to the model its commits should certify under.
_ENGINE_DEFAULT_MODEL = {"SI": "SI", "SER": "SER", "PSI": "PSI", "2PL": "SER"}


def default_model(meta: Optional[LogMeta]) -> str:
    """The model a log should be audited under when none is given:
    the producer's recorded model, else the model implied by its engine,
    else SI."""
    if meta is not None:
        if meta.model in ConsistencyMonitor.MODELS:
            return meta.model
        mapped = _ENGINE_DEFAULT_MODEL.get(meta.engine or "")
        if mapped:
            return mapped
    return "SI"


@dataclass
class AuditResult:
    """Verdict of a streaming log audit.

    Attributes:
        model: the consistency model certified against.
        checker: certification back-end used.
        violations: every violation flagged, in detection order.
        commits_observed: commit records fed to the monitor.
        monitor_error: a value-attribution failure that aborted the
            audit, if any (strict mode; the verdict covers the prefix
            before it).
        damage: where log scanning stopped, if anywhere.
        segments_scanned / segments_dropped / bytes_scanned: scan stats.
        first_ts / last_ts: audited commit-sequence range.
        meta: the log description.
    """

    model: str
    checker: str
    violations: List[Violation] = field(default_factory=list)
    commits_observed: int = 0
    monitor_error: Optional[str] = None
    damage: List[Damage] = field(default_factory=list)
    segments_scanned: int = 0
    segments_dropped: int = 0
    bytes_scanned: int = 0
    first_ts: int = 0
    last_ts: int = 0
    meta: Optional[LogMeta] = None

    @property
    def consistent(self) -> bool:
        """True iff no violation was detected (and no abort)."""
        return not self.violations and self.monitor_error is None

    def describe(self) -> str:
        """A short human-readable summary."""
        verdict = "consistent" if self.consistent else "INCONSISTENT"
        lines = [
            f"{self.model} audit ({self.checker}): {verdict} over "
            f"{self.commits_observed} commit(s) "
            f"(#{self.first_ts}..#{self.last_ts})"
        ]
        for v in self.violations:
            lines.append(f"violation: {v.message}")
        if self.monitor_error:
            lines.append(f"audit aborted: {self.monitor_error}")
        for d in self.damage:
            lines.append(f"log damage (audit covers the prefix): {d}")
        return "\n".join(lines)


def audit_log(
    directory: str,
    model: Optional[str] = None,
    window: Optional[int] = None,
    checker: str = "incremental",
    strict_values: bool = True,
) -> AuditResult:
    """Stream a log directory through a consistency monitor.

    Args:
        directory: the log directory.
        model: ``"SI"``/``"SER"``/``"PSI"``; defaults to the model the
            log's producer recorded (falling back to the engine's
            natural model, then SI).
        window: audit with a :class:`WindowedMonitor` of this size
            instead of the full monitor (bounded memory, may miss
            cycles spanning more than a window — matches a live service
            run in windowed mode).
        checker: ``"incremental"`` (default) or ``"rebuild"``.
        strict_values: as for :class:`ConsistencyMonitor`; a strict
            attribution failure aborts the audit and is reported in
            ``monitor_error`` rather than raised.

    Raises:
        StoreError: when the log has no readable segment meta (there is
            nothing to seed the monitor's initial values from).
    """
    log_scan = scan(directory)
    if log_scan.meta is None:
        raise StoreError(
            f"cannot audit {directory!r}: no readable segment meta"
            + (f" ({log_scan.damage[0]})" if log_scan.damage else "")
        )
    meta = log_scan.meta
    chosen = model or default_model(meta)
    if window is not None:
        monitor: ConsistencyMonitor = WindowedMonitor(
            window=window,
            model=chosen,
            initial_values=dict(meta.init),
            strict_values=strict_values,
            init_tid=meta.init_tid,
            checker=checker,
        )
    else:
        monitor = ConsistencyMonitor(
            model=chosen,
            initial_values=dict(meta.init),
            strict_values=strict_values,
            init_tid=meta.init_tid,
            checker=checker,
        )
    result = AuditResult(model=chosen, checker=checker, meta=meta)
    for record in log_scan:
        try:
            violation = monitor.observe_commit(
                record.tid, record.session, list(record.events)
            )
        except MonitorError as exc:
            result.monitor_error = str(exc)
            break
        result.commits_observed += 1
        if violation is not None:
            result.violations.append(violation)
    result.damage = list(log_scan.damage)
    result.segments_scanned = log_scan.segments_scanned
    result.segments_dropped = log_scan.segments_dropped
    result.bytes_scanned = log_scan.bytes_scanned
    result.first_ts = log_scan.first_ts
    result.last_ts = log_scan.last_ts
    return result
