"""Binary framing for the write-ahead commit log.

A log is a directory of *segments* (``wal-00000001.seg``,
``wal-00000002.seg``, ...).  Each segment is::

    SIWAL001                                  8-byte magic
    frame*                                    zero or more frames

and each frame is::

    <u32 payload-length> <u32 crc32(payload)> <payload bytes>

with little-endian header fields.  The first frame of every segment
carries a JSON **meta** payload describing the log (engine key, initial
object values, init tid, segment index, first expected commit sequence
number), so every segment is self-describing — retention may delete old
segments and a surviving suffix still recovers.  Every later frame is
one **commit** payload: a :class:`~repro.mvcc.engine.CommitRecord`
serialised with the type-preserving value codecs of
:mod:`repro.io.json_format` (tuples — the service's tagged values —
survive the round trip bit-identically).

The framing is what makes recovery torn-tail tolerant: a crash mid
``write`` leaves a frame whose header promises more bytes than exist or
whose CRC does not match, and the scanner stops cleanly at the first
such frame instead of propagating garbage.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..core.events import Obj, Value
from ..io.json_format import (
    FormatError,
    op_from_wire,
    op_to_wire,
    value_from_wire,
    value_to_wire,
)
from ..mvcc.engine import CommitRecord

SEGMENT_MAGIC = b"SIWAL001"
"""Leading bytes of every segment file (8 bytes, version included)."""

FRAME_HEADER = struct.Struct("<II")
"""Frame header: payload length, then CRC32 of the payload."""

MAX_FRAME_BYTES = 64 * 1024 * 1024
"""Sanity bound on one frame — a length field beyond this is corruption,
not a gigantic record."""

SEGMENT_SUFFIX = ".seg"
SEGMENT_PREFIX = "wal-"


def segment_name(index: int) -> str:
    """The file name of segment ``index`` (1-based, zero-padded so
    lexicographic order is numeric order)."""
    return f"{SEGMENT_PREFIX}{index:08d}{SEGMENT_SUFFIX}"


def segment_index(name: str) -> Optional[int]:
    """Inverse of :func:`segment_name`; ``None`` for foreign files."""
    if not (name.startswith(SEGMENT_PREFIX) and name.endswith(SEGMENT_SUFFIX)):
        return None
    digits = name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)]
    return int(digits) if digits.isdigit() else None


# ----------------------------------------------------------------------
# Frames
# ----------------------------------------------------------------------


def encode_frame(payload: bytes) -> bytes:
    """One frame: header (length + CRC32) followed by the payload."""
    return FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def scan_frames(
    data: bytes, offset: int = 0
) -> Tuple[List[bytes], Optional[str], int]:
    """Decode consecutive frames from ``data`` starting at ``offset``.

    Returns ``(payloads, damage, damage_offset)``.  ``damage`` is
    ``None`` when the data ends exactly on a frame boundary; otherwise
    it describes the first bad frame (torn header, truncated payload,
    CRC mismatch) and ``damage_offset`` is where it starts.  Decoding
    never raises — damage is data, not an error.
    """
    payloads: List[bytes] = []
    size = len(data)
    while offset < size:
        if size - offset < FRAME_HEADER.size:
            return payloads, (
                f"torn frame header ({size - offset} byte(s), "
                f"need {FRAME_HEADER.size})"
            ), offset
        length, crc = FRAME_HEADER.unpack_from(data, offset)
        if length > MAX_FRAME_BYTES:
            return payloads, (
                f"implausible frame length {length} (corrupt header)"
            ), offset
        start = offset + FRAME_HEADER.size
        if size - start < length:
            return payloads, (
                f"truncated frame payload ({size - start} of "
                f"{length} byte(s))"
            ), offset
        payload = data[start:start + length]
        if zlib.crc32(payload) != crc:
            return payloads, "frame CRC mismatch", offset
        payloads.append(payload)
        offset = start + length
    return payloads, None, offset


# ----------------------------------------------------------------------
# Payloads
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class LogMeta:
    """The log description carried by every segment's first frame.

    Attributes:
        engine: engine key the log was produced under (``"SI"``,
            ``"SER"``, ``"PSI"``, ``"2PL"``, or ``None`` when unknown).
        init: initial object values (the recovered engine's seed).
        init_tid: tid of the implied initialisation transaction.
        model: consistency model the producer certified against, if any.
        segment: the segment's index.
        first_ts: the first commit sequence number expected in this
            segment (recovery uses it to detect a missing predecessor).
    """

    engine: Optional[str]
    init: Dict[Obj, Value]
    init_tid: str
    model: Optional[str]
    segment: int
    first_ts: int
    extra: Mapping[str, Any] = field(default_factory=dict, compare=False)


def meta_to_payload(
    meta: Mapping[str, Any], segment: int, first_ts: int
) -> bytes:
    """Serialise a segment meta frame.

    ``meta`` carries the log-level description (``engine``, ``init``,
    ``init_tid``, ``model``, plus free-form keys); the per-segment
    fields are supplied by the writer.
    """
    doc: Dict[str, Any] = {
        "kind": "meta",
        "segment": segment,
        "first_ts": first_ts,
        "engine": meta.get("engine"),
        "init_tid": meta.get("init_tid", "t_init"),
        "model": meta.get("model"),
        "init": {
            str(obj): value_to_wire(value)
            for obj, value in dict(meta.get("init") or {}).items()
        },
    }
    for key, value in meta.items():
        if key not in doc:
            doc[key] = value
    return _dump(doc)


def commit_record_to_payload(record: CommitRecord) -> bytes:
    """Serialise one commit record frame payload."""
    return _dump({
        "kind": "commit",
        "tid": record.tid,
        "session": record.session,
        "start_ts": record.start_ts,
        "commit_ts": record.commit_ts,
        "events": [op_to_wire(op) for op in record.events],
        "writes": {
            str(obj): value_to_wire(value)
            for obj, value in record.writes.items()
        },
        "visible": sorted(record.visible_tids),
    })


def _dump(doc: Dict[str, Any]) -> bytes:
    return json.dumps(doc, separators=(",", ":"), sort_keys=True).encode()


def payload_to_doc(payload: bytes) -> Dict[str, Any]:
    """Parse a frame payload into its JSON document.

    Raises:
        FormatError: when the payload is not a JSON object with a
            ``kind`` field (scanners treat this as damage).
    """
    try:
        doc = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise FormatError(f"undecodable frame payload: {exc}")
    if not isinstance(doc, dict) or "kind" not in doc:
        raise FormatError("frame payload is not a tagged JSON object")
    return doc


def meta_from_doc(doc: Mapping[str, Any]) -> LogMeta:
    """Deserialise a meta frame document."""
    if doc.get("kind") != "meta":
        raise FormatError(f"expected a meta frame, got {doc.get('kind')!r}")
    try:
        return LogMeta(
            engine=doc.get("engine"),
            init={
                obj: value_from_wire(value)
                for obj, value in dict(doc["init"]).items()
            },
            init_tid=doc["init_tid"],
            model=doc.get("model"),
            segment=int(doc["segment"]),
            first_ts=int(doc["first_ts"]),
            extra={
                k: v
                for k, v in doc.items()
                if k not in (
                    "kind", "engine", "init", "init_tid", "model",
                    "segment", "first_ts",
                )
            },
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise FormatError(f"malformed meta frame: {exc!r}")


def commit_record_from_doc(doc: Mapping[str, Any]) -> CommitRecord:
    """Deserialise a commit frame document, inverse of
    :func:`commit_record_to_payload` (bit-identical round trip)."""
    if doc.get("kind") != "commit":
        raise FormatError(
            f"expected a commit frame, got {doc.get('kind')!r}"
        )
    try:
        return CommitRecord(
            tid=doc["tid"],
            session=doc["session"],
            start_ts=int(doc["start_ts"]),
            commit_ts=int(doc["commit_ts"]),
            events=tuple(op_from_wire(op) for op in doc["events"]),
            writes={
                obj: value_from_wire(value)
                for obj, value in dict(doc["writes"]).items()
            },
            visible_tids=frozenset(doc["visible"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise FormatError(f"malformed commit frame: {exc!r}")
