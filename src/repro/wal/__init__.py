"""Durable write-ahead commit log with group commit, crash recovery,
and streaming offline audit.

The log (:mod:`repro.wal.log`) persists every
:class:`~repro.mvcc.engine.CommitRecord` as a CRC-checksummed frame in
segmented append-only files, batching concurrent committers into one
``fsync`` under the ``"group"`` policy.  Recovery
(:mod:`repro.wal.recovery`) replays the decodable prefix back into a
fresh MVCC engine, stopping cleanly at torn tails or corruption; the
audit pipeline (:mod:`repro.wal.audit`) streams a log through the
online SI/SER/PSI certifiers without materialising the history.
"""

from .audit import AuditResult, audit_log, default_model
from .format import (
    FRAME_HEADER,
    MAX_FRAME_BYTES,
    SEGMENT_MAGIC,
    LogMeta,
    encode_frame,
    scan_frames,
    segment_index,
    segment_name,
)
from .log import (
    DEFAULT_FLUSH_INTERVAL,
    DEFAULT_GROUP_WINDOW,
    DEFAULT_SEGMENT_BYTES,
    FSYNC_POLICIES,
    WalClosed,
    WalPoisoned,
    WalError,
    WalStats,
    WriteAheadLog,
)
from .recovery import Damage, LogScan, RecoveryResult, make_engine, recover, scan

__all__ = [
    "AuditResult",
    "audit_log",
    "default_model",
    "FRAME_HEADER",
    "MAX_FRAME_BYTES",
    "SEGMENT_MAGIC",
    "LogMeta",
    "encode_frame",
    "scan_frames",
    "segment_index",
    "segment_name",
    "DEFAULT_FLUSH_INTERVAL",
    "DEFAULT_GROUP_WINDOW",
    "DEFAULT_SEGMENT_BYTES",
    "FSYNC_POLICIES",
    "WalClosed",
    "WalPoisoned",
    "WalError",
    "WalStats",
    "WriteAheadLog",
    "Damage",
    "LogScan",
    "RecoveryResult",
    "make_engine",
    "recover",
    "scan",
]
