"""Command-line front-end to the analyses.

Usage (also available as ``python -m repro``)::

    repro-si check-history log.json [--model SI|SER|PSI|all] [--exact]
    repro-si check-chopping programs.json [--criterion SI|SER|PSI]
    repro-si check-robustness programs.json [--property si-ser|psi-si]
                               [--vulnerable] [--instances N]
    repro-si serve-bench [--engine SI|SER|PSI|2PL|all] [--mix smallbank|tpcc]
                          [--workers N] [--txns N] [--window W] [--json FILE]
                          [--wal-dir DIR] [--fsync-policy always|group|none]
    repro-si chaos-bench [--engine SI|SER|PSI|2PL|all] [--mix ...]
                          [--profile disk|contention|overload|mixed|poison]
                          [--intensity X] [--fault-plan FILE] [--seed N]
                          [--on-wal-failure fail_stop|read_only]
                          [--recovery-window S] [--json FILE]
    repro-si replay WAL_DIR [--engine SI|SER|PSI|2PL] [--json FILE]
    repro-si audit-log WAL_DIR [--model SI|SER|PSI] [--window W]
                               [--checker incremental|rebuild] [--lenient]
    repro-si demo [case]

``check-history`` decides membership of a captured transaction log in the
requested model class (Theorems 8/9/21 through the membership oracle);
``check-chopping`` and ``check-robustness`` run the Section 5/6 static
analyses on read/write-set descriptions; ``serve-bench`` drives a
transaction mix through the concurrent service with a windowed online
monitor attached (optionally persisting every commit to a write-ahead
log); ``chaos-bench`` drives the same stack through a deterministic,
seed-reproducible fault storm (:mod:`repro.faults`) and asserts the
robustness invariants — no false monitor verdicts, durable prefix
recoverable and audit-clean, bounded return to healthy; ``replay``
recovers a write-ahead log directory into a fresh engine and reports
the prefix-consistent state reached; ``audit-log``
streams a log through the offline SI/SER/PSI certifiers; ``demo``
reproduces a catalog anomaly.  See :mod:`repro.io.json_format` for the
file formats and :mod:`repro.wal` for the log format.

Exit status: 0 when the property holds (history allowed / chopping
correct / application robust / serve-bench violation-free / chaos
invariants all held / log recovered / audit consistent), 1 when it
does not, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..anomalies import ALL_CASES, load as load_case
from ..characterisation.membership import classify_history, decide
from ..chopping.criticality import Criterion
from ..chopping.static import analyse_chopping
from ..robustness.static import (
    check_robustness_against_si,
    check_robustness_psi_to_si,
)
from .json_format import load_history, load_programs


def _cmd_check_history(args: argparse.Namespace) -> int:
    history, init_tid = load_history(args.file)
    if args.model == "all":
        verdicts = classify_history(history, init_tid=init_tid)
        for model, allowed in sorted(verdicts.items()):
            print(f"{model}: {'allowed' if allowed else 'NOT allowed'}")
        return 0 if verdicts["SI"] else 1
    decision = decide(history, args.model, init_tid=init_tid)
    if decision.allowed:
        print(f"history is allowed by {args.model} "
              f"({decision.graphs_explored} extension(s) explored)")
        if args.verbose and decision.witness is not None:
            print(decision.witness.describe())
        if args.dump_witness and decision.witness is not None:
            import json as _json

            from .json_format import graph_to_json

            with open(args.dump_witness, "w") as f:
                _json.dump(graph_to_json(decision.witness), f, indent=2)
            print(f"witness dependency graph written to "
                  f"{args.dump_witness}")
        return 0
    print(f"history is NOT allowed by {args.model} "
          f"({decision.graphs_explored} extension(s) explored)")
    return 1


def _cmd_check_chopping(args: argparse.Namespace) -> int:
    programs = load_programs(args.file)
    criterion = Criterion[args.criterion]
    verdict = analyse_chopping(programs, criterion)
    print(verdict)
    return 0 if verdict.correct else 1


def _cmd_check_robustness(args: argparse.Namespace) -> int:
    programs = load_programs(args.file)
    if args.property == "si-ser":
        verdict = check_robustness_against_si(
            programs,
            instances=args.instances,
            require_vulnerable=args.vulnerable,
        )
    else:
        verdict = check_robustness_psi_to_si(
            programs, instances=args.instances
        )
    print(verdict)
    return 0 if verdict.robust else 1


def _cmd_check_log(args: argparse.Namespace) -> int:
    import json as _json

    from ..monitor import ConsistencyMonitor, MonitorError

    with open(args.file) as f:
        data = _json.load(f)
    history, init_tid = load_history(args.file)
    session_of = {
        t.tid: i
        for i, session in enumerate(history.sessions)
        for t in session
    }
    order = data.get("commit_order")
    if order is None:
        order = [
            t.tid
            for session in history.sessions
            for t in session
            if t.tid != (init_tid or "")
        ]
    initial = data.get("init") or {}
    monitor = ConsistencyMonitor(
        model=args.model,
        initial_values=initial,
        strict_values=not args.lenient,
        init_tid=init_tid or "t_init",
        checker=args.checker,
    )
    try:
        for tid in order:
            txn = history.by_tid(tid)
            violation = monitor.observe_commit(
                tid, f"s{session_of[tid]}", [e.op for e in txn.events]
            )
            if violation is not None:
                print(violation)
                return 1
    except (MonitorError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"log is {args.model}-consistent "
        f"({monitor.commit_count} commits observed)"
    )
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    from ..viz import dependency_graph_to_dot

    history, init_tid = load_history(args.file)
    decision = decide(history, args.model, init_tid=init_tid)
    if not decision.allowed or decision.witness is None:
        print(
            f"history is NOT allowed by {args.model}; nothing to render",
            file=sys.stderr,
        )
        return 1
    dot = dependency_graph_to_dot(decision.witness, name=args.model)
    if args.output:
        with open(args.output, "w") as f:
            f.write(dot + "\n")
        print(f"DOT written to {args.output}")
    else:
        print(dot)
    return 0


SERVE_ENGINES = ("SI", "SER", "PSI", "2PL")
"""Engine keys accepted by ``serve-bench`` (plus ``all``)."""


def _serve_engine(key: str, initial, lock_mode: str = "striped"):
    from ..mvcc import PSIEngine, SerializableEngine, SIEngine
    from ..mvcc.locking import TwoPhaseLockingEngine

    if key == "SI":
        return SIEngine(initial, lock_mode=lock_mode), "SI"
    if key == "SER":
        return SerializableEngine(initial, lock_mode=lock_mode), "SER"
    if key == "PSI":
        # Eager propagation: each worker session gets its own replica,
        # so lazy delivery would just starve every remote read.
        return (
            PSIEngine(initial, auto_deliver=True, lock_mode=lock_mode),
            "PSI",
        )
    if key == "2PL":
        return TwoPhaseLockingEngine(initial, lock_mode=lock_mode), "SER"
    raise KeyError(key)


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    import json as _json
    import os as _os

    from ..core.errors import ReproError
    from ..service import MIXES, LoadGenerator, TransactionService

    engines = SERVE_ENGINES if args.engine == "all" else (args.engine,)
    # The report's metadata block mirrors every knob that shaped the
    # run, so benchmark JSONs are self-describing across PRs.
    report = {
        "mix": args.mix,
        "workers": args.workers,
        "transactions_per_worker": args.txns,
        "window": args.window,
        "checker": args.checker,
        "monitor_mode": args.monitor_mode,
        "lock_mode": args.lock_mode,
        "seed": args.seed,
        "think_time": args.think_time,
        "max_retries": args.max_retries,
        "max_concurrent": args.max_concurrent,
        "duration": args.duration,
        "wal": (
            {"dir": args.wal_dir, "fsync_policy": args.fsync_policy}
            if args.wal_dir
            else None
        ),
        "engines": {},
    }
    total_violations = 0
    for key in engines:
        mix = MIXES[args.mix]()
        engine, model = _serve_engine(
            key, dict(mix.initial), lock_mode=args.lock_mode
        )
        wal = None
        try:
            if args.wal_dir:
                from ..wal import WriteAheadLog

                wal_dir = (
                    args.wal_dir
                    if len(engines) == 1
                    else _os.path.join(args.wal_dir, key)
                )
                wal = WriteAheadLog(
                    wal_dir,
                    fsync_policy=args.fsync_policy,
                    meta={
                        "engine": key,
                        "init": dict(mix.initial),
                        "init_tid": engine.init_tid,
                        "model": model,
                    },
                )
            service = TransactionService.certified(
                engine,
                model=model,
                window=args.window,
                checker=args.checker,
                max_concurrent=args.max_concurrent,
                max_retries=args.max_retries,
                monitor_mode=args.monitor_mode,
                wal=wal,
            )
            result = LoadGenerator(
                service,
                mix,
                workers=args.workers,
                transactions_per_worker=args.txns,
                duration=args.duration,
                seed=args.seed,
                think_time=args.think_time,
            ).run()
            service.close()
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        total_violations += result.violations
        metrics = service.metrics.snapshot()
        report["engines"][key] = {
            "monitor_model": model,
            "monitor_mode": args.monitor_mode,
            "lock_mode": args.lock_mode,
            "committed": result.committed,
            "retry_exhausted": result.retry_exhausted,
            "violations": result.violations,
            "throughput_tps": round(result.throughput, 1),
            "abort_rate": round(service.metrics.abort_rate, 4),
            "latency_seconds": metrics["latency_seconds"],
        }
        if wal is not None:
            report["engines"][key]["wal"] = {
                "dir": wal.directory,
                "fsync_policy": wal.fsync_policy,
                **metrics["wal"],
            }
        print(
            f"{key:<4} ({model} monitor): "
            f"{result.committed} committed, "
            f"{result.retry_exhausted} exhausted, "
            f"{result.violations} violations, "
            f"{result.throughput:.0f} txn/s, "
            f"abort rate {service.metrics.abort_rate:.1%}"
        )
        if wal is not None:
            print(
                f"     wal: {metrics['wal']['appends']} appends, "
                f"{metrics['wal']['fsyncs']} fsyncs, "
                f"{metrics['wal']['bytes']} bytes "
                f"({wal.fsync_policy} policy, {wal.directory})"
            )
    if args.json:
        with open(args.json, "w") as f:
            _json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"metrics written to {args.json}")
    if total_violations:
        print(f"{total_violations} consistency violation(s) detected")
        return 1
    return 0


def _cmd_chaos_bench(args: argparse.Namespace) -> int:
    import json as _json
    import os as _os
    import tempfile as _tempfile

    from ..core.errors import ReproError
    from ..faults import FaultPlan, preset
    from ..faults.chaos import run_chaos

    engines = SERVE_ENGINES if args.engine == "all" else (args.engine,)
    try:
        if args.fault_plan:
            base_plan = FaultPlan.load(args.fault_plan)
        else:
            base_plan = preset(
                args.profile, intensity=args.intensity, seed=args.seed
            )
    except (ReproError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = {
        "mix": args.mix,
        "workers": args.workers,
        "transactions_per_worker": args.txns,
        "calm_transactions_per_worker": args.calm_txns,
        "plan": base_plan.to_doc(),
        "fsync_policy": args.fsync_policy,
        "on_wal_failure": args.on_wal_failure,
        "recovery_window": args.recovery_window,
        "seed": args.seed,
        "engines": {},
    }
    failed = 0
    scratch = None
    if args.wal_dir is None:
        scratch = _tempfile.TemporaryDirectory(prefix="chaos-wal-")
    try:
        root = args.wal_dir or scratch.name
        for key in engines:
            # Each engine gets a fresh plan (hit counters are state)
            # and its own log directory.
            plan = FaultPlan.from_doc(base_plan.to_doc())
            wal_dir = (
                root if len(engines) == 1 else _os.path.join(root, key)
            )
            try:
                result = run_chaos(
                    key,
                    plan,
                    wal_dir,
                    mix_name=args.mix,
                    workers=args.workers,
                    txns_per_worker=args.txns,
                    calm_txns_per_worker=args.calm_txns,
                    seed=args.seed,
                    fsync_policy=args.fsync_policy,
                    on_wal_failure=args.on_wal_failure,
                    recovery_window=args.recovery_window,
                )
            except ReproError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            report["engines"][key] = result.to_doc()
            print(result.describe())
            if not result.ok:
                failed += 1
    finally:
        if scratch is not None:
            scratch.cleanup()
    if args.json:
        with open(args.json, "w") as f:
            _json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"chaos report written to {args.json}")
    if failed:
        print(f"{failed} engine(s) violated a chaos invariant")
        return 1
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    import json as _json

    from ..core.errors import ReproError
    from ..wal import recover

    try:
        result = recover(args.wal_dir, engine_key=args.engine)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(result.describe())
    if args.json:
        doc = {
            "engine": (result.meta.engine if result.meta else None),
            "records_recovered": result.records_recovered,
            "first_ts": result.first_ts,
            "last_ts": result.last_ts,
            "segments_scanned": result.segments_scanned,
            "segments_dropped": result.segments_dropped,
            "bytes_scanned": result.bytes_scanned,
            "truncated": result.truncated,
            "damage": [str(d) for d in result.damage],
            "elapsed_seconds": result.elapsed_seconds,
        }
        with open(args.json, "w") as f:
            _json.dump(doc, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"recovery report written to {args.json}")
    return 0


def _cmd_audit_log(args: argparse.Namespace) -> int:
    from ..core.errors import ReproError
    from ..wal import audit_log

    try:
        result = audit_log(
            args.wal_dir,
            model=args.model,
            window=args.window,
            checker=args.checker,
            strict_values=not args.lenient,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(result.describe())
    return 0 if result.consistent else 1


def _cmd_demo(args: argparse.Namespace) -> int:
    if args.case is None:
        print("available cases:")
        for name in sorted(ALL_CASES):
            print(f"  {name}")
        return 0
    case = load_case(args.case)
    print(case.description)
    print()
    print(case.history.describe())
    verdicts = classify_history(case.history, init_tid=case.init_tid)
    print()
    for model, allowed in sorted(verdicts.items()):
        marker = "allowed" if allowed else "NOT allowed"
        print(f"{model}: {marker}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-si",
        description="Snapshot-isolation analyses "
        "(Cerone & Gotsman, PODC 2016, reproduced)",
    )
    from .. import __version__

    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_hist = sub.add_parser(
        "check-history", help="decide HistSI/HistSER/HistPSI membership"
    )
    p_hist.add_argument("file", help="history JSON document")
    p_hist.add_argument(
        "--model", choices=["SI", "SER", "PSI", "all"], default="SI"
    )
    p_hist.add_argument(
        "--verbose", action="store_true",
        help="print the witnessing dependency graph",
    )
    p_hist.add_argument(
        "--dump-witness", metavar="FILE", default=None,
        help="write the witnessing dependency graph as JSON",
    )
    p_hist.set_defaults(func=_cmd_check_history)

    p_chop = sub.add_parser(
        "check-chopping", help="static chopping analysis (Corollary 18)"
    )
    p_chop.add_argument("file", help="programs JSON document")
    p_chop.add_argument(
        "--criterion", choices=["SI", "SER", "PSI"], default="SI"
    )
    p_chop.set_defaults(func=_cmd_check_chopping)

    p_rob = sub.add_parser(
        "check-robustness", help="static robustness analysis (Section 6)"
    )
    p_rob.add_argument("file", help="programs JSON document")
    p_rob.add_argument(
        "--property", choices=["si-ser", "psi-si"], default="si-ser"
    )
    p_rob.add_argument(
        "--vulnerable", action="store_true",
        help="enable the write-conflict vulnerability refinement",
    )
    p_rob.add_argument("--instances", type=int, default=2)
    p_rob.set_defaults(func=_cmd_check_robustness)

    p_log = sub.add_parser(
        "check-log",
        help="replay a commit-ordered log through the online monitor",
    )
    p_log.add_argument("file", help="history JSON document (optionally "
                       "with a 'commit_order' tid list)")
    p_log.add_argument(
        "--model", choices=["SI", "SER", "PSI"], default="SI"
    )
    p_log.add_argument(
        "--lenient", action="store_true",
        help="attribute ambiguous read values to the latest writer "
             "instead of erroring",
    )
    p_log.add_argument(
        "--checker", choices=["incremental", "rebuild"],
        default="incremental",
        help="certification back-end: incremental dynamic-topological-"
             "order core (default) or full per-commit rebuild (oracle)",
    )
    p_log.set_defaults(func=_cmd_check_log)

    p_dot = sub.add_parser(
        "dot", help="render a history's witness dependency graph as DOT"
    )
    p_dot.add_argument("file", help="history JSON document")
    p_dot.add_argument(
        "--model", choices=["SI", "SER", "PSI"], default="SI",
        help="model whose witness extension to render",
    )
    p_dot.add_argument(
        "-o", "--output", metavar="FILE", default=None,
        help="write DOT here instead of stdout",
    )
    p_dot.set_defaults(func=_cmd_dot)

    p_serve = sub.add_parser(
        "serve-bench",
        help="drive a transaction mix through the concurrent service "
        "with a windowed online monitor attached",
    )
    p_serve.add_argument(
        "--engine", choices=list(SERVE_ENGINES) + ["all"], default="SI",
        help="engine under load (2PL certifies against SER)",
    )
    p_serve.add_argument(
        "--mix", choices=["smallbank", "tpcc"], default="smallbank"
    )
    p_serve.add_argument(
        "--workers", type=int, default=8, help="worker threads"
    )
    p_serve.add_argument(
        "--txns", type=int, default=50,
        help="transactions submitted per worker",
    )
    p_serve.add_argument(
        "--window", type=int, default=64,
        help="monitor window (retained commits)",
    )
    p_serve.add_argument(
        "--checker", choices=["incremental", "rebuild"],
        default="incremental",
        help="monitor certification back-end: incremental dynamic-"
             "topological-order core (default) or full per-commit "
             "rebuild (oracle)",
    )
    p_serve.add_argument(
        "--max-concurrent", type=int, default=None,
        help="admission limit (default: unlimited)",
    )
    p_serve.add_argument(
        "--max-retries", type=int, default=1000,
        help="resubmissions allowed before a transaction gives up",
    )
    p_serve.add_argument(
        "--duration", type=float, default=None,
        help="wall-clock cutoff in seconds",
    )
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument(
        "--monitor-mode", choices=["sync", "pipelined"], default="sync",
        help="feed the monitor inside the commit critical section "
             "(sync — certification) or through the bounded async "
             "feed (pipelined — observe-only)",
    )
    p_serve.add_argument(
        "--lock-mode", choices=["striped", "global-lock"],
        default="striped",
        help="engine locking: striped per-object locks with lock-free "
             "snapshot reads (default) or one global engine lock",
    )
    p_serve.add_argument(
        "--think-time", type=float, default=0.0,
        help="per-transaction client think time in seconds",
    )
    p_serve.add_argument(
        "--wal-dir", metavar="DIR", default=None,
        help="persist every commit to a write-ahead log in DIR "
             "(per-engine subdirectories with --engine all)",
    )
    p_serve.add_argument(
        "--fsync-policy", choices=["always", "group", "none"],
        default="group",
        help="WAL durability: fsync per record (always), one fsync per "
             "group-commit batch (group, default), or OS write-back "
             "only (none)",
    )
    p_serve.add_argument(
        "--json", metavar="FILE", default=None,
        help="write the per-engine metrics report as JSON",
    )
    p_serve.set_defaults(func=_cmd_serve_bench)

    p_chaos = sub.add_parser(
        "chaos-bench",
        help="run a transaction mix through a seeded fault storm and "
        "assert the end-to-end robustness invariants",
    )
    p_chaos.add_argument(
        "--engine", choices=list(SERVE_ENGINES) + ["all"], default="SI",
        help="engine under chaos (2PL certifies against SER)",
    )
    p_chaos.add_argument(
        "--mix", choices=["smallbank", "tpcc"], default="smallbank"
    )
    p_chaos.add_argument(
        "--profile",
        choices=["disk", "contention", "overload", "mixed", "poison"],
        default="mixed",
        help="preset fault-storm profile (ignored with --fault-plan)",
    )
    p_chaos.add_argument(
        "--intensity", type=float, default=0.5,
        help="storm intensity in [0, 1] scaling the preset's "
             "probabilities and delays",
    )
    p_chaos.add_argument(
        "--fault-plan", metavar="FILE", default=None,
        help="load the fault plan from a JSON file instead of a preset",
    )
    p_chaos.add_argument(
        "--workers", type=int, default=8, help="worker threads"
    )
    p_chaos.add_argument(
        "--txns", type=int, default=40,
        help="storm transactions submitted per worker",
    )
    p_chaos.add_argument(
        "--calm-txns", type=int, default=10,
        help="per-round transactions per worker while healing",
    )
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument(
        "--wal-dir", metavar="DIR", default=None,
        help="write-ahead log directory (default: a temporary "
             "directory, removed afterwards; per-engine "
             "subdirectories with --engine all)",
    )
    p_chaos.add_argument(
        "--fsync-policy", choices=["always", "group", "none"],
        default="group",
    )
    p_chaos.add_argument(
        "--on-wal-failure", choices=["fail_stop", "read_only"],
        default="fail_stop",
        help="degradation policy when the log is poisoned: surface "
             "the failure per commit (fail_stop) or refuse updates "
             "and keep serving reads (read_only)",
    )
    p_chaos.add_argument(
        "--recovery-window", type=float, default=10.0,
        help="seconds after the storm within which the service must "
             "return to healthy",
    )
    p_chaos.add_argument(
        "--json", metavar="FILE", default=None,
        help="write the per-engine chaos report as JSON",
    )
    p_chaos.set_defaults(func=_cmd_chaos_bench)

    p_replay = sub.add_parser(
        "replay",
        help="recover a write-ahead log directory into a fresh engine",
    )
    p_replay.add_argument("wal_dir", help="write-ahead log directory")
    p_replay.add_argument(
        "--engine", choices=list(SERVE_ENGINES), default=None,
        help="override the engine class recorded in the log meta",
    )
    p_replay.add_argument(
        "--json", metavar="FILE", default=None,
        help="write the recovery report as JSON",
    )
    p_replay.set_defaults(func=_cmd_replay)

    p_audit = sub.add_parser(
        "audit-log",
        help="stream a write-ahead log through the offline certifiers",
    )
    p_audit.add_argument("wal_dir", help="write-ahead log directory")
    p_audit.add_argument(
        "--model", choices=["SI", "SER", "PSI"], default=None,
        help="model to certify against (default: the one the log's "
             "producer recorded)",
    )
    p_audit.add_argument(
        "--window", type=int, default=None,
        help="audit with a windowed monitor of this size (bounded "
             "memory; default: full graph)",
    )
    p_audit.add_argument(
        "--checker", choices=["incremental", "rebuild"],
        default="incremental",
        help="certification back-end (as for check-log)",
    )
    p_audit.add_argument(
        "--lenient", action="store_true",
        help="attribute ambiguous read values to the latest writer "
             "instead of aborting the audit",
    )
    p_audit.set_defaults(func=_cmd_audit_log)

    p_demo = sub.add_parser("demo", help="reproduce a catalog anomaly")
    p_demo.add_argument("case", nargs="?", default=None)
    p_demo.set_defaults(func=_cmd_demo)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the exit status."""
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return 2 if exc.code not in (0, None) else 0
    try:
        return args.func(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
