"""Serialisation and the command-line front-end."""

from .json_format import (
    FormatError,
    dump_history,
    dump_programs,
    graph_from_json,
    graph_to_json,
    history_from_json,
    history_to_json,
    load_history,
    load_programs,
    program_from_json,
    program_to_json,
    programs_from_json,
    programs_to_json,
    transaction_from_json,
    transaction_to_json,
)
from .cli import build_parser, main

__all__ = [
    "FormatError",
    "history_to_json",
    "history_from_json",
    "transaction_to_json",
    "transaction_from_json",
    "program_to_json",
    "graph_to_json",
    "graph_from_json",
    "program_from_json",
    "programs_to_json",
    "programs_from_json",
    "load_history",
    "load_programs",
    "dump_history",
    "dump_programs",
    "main",
    "build_parser",
]
