"""JSON serialisation of histories, programs and analysis verdicts.

The on-disk formats used by the command-line front-end
(:mod:`repro.io.cli`), chosen to be easy to emit from database logs or
schema descriptions:

History document::

    {
      "init": {"x": 0, "y": 0},            // optional initial values
      "sessions": [
        [ {"tid": "t1", "ops": [["read", "x", 0], ["write", "x", 1]]} ],
        [ {"tid": "t2", "ops": [["read", "x", 1]]} ]
      ]
    }

Programs document (for chopping / robustness)::

    {
      "programs": [
        {"name": "transfer",
         "pieces": [{"reads": ["acct1"], "writes": ["acct1"]},
                    {"reads": ["acct2"], "writes": ["acct2"]}]}
      ]
    }

Values are arbitrary JSON scalars; op kinds are ``"read"``/``"write"``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from ..chopping.programs import Piece, Program, piece
from ..core.errors import ReproError
from ..core.events import Op, OpKind, read as read_op, write as write_op
from ..core.histories import History, with_initialisation
from ..core.transactions import Transaction, transaction


class FormatError(ReproError):
    """The document does not match the expected JSON shape."""


INIT_TID = "t_init"


# ----------------------------------------------------------------------
# Histories
# ----------------------------------------------------------------------


def op_to_json(op: Op) -> List[Any]:
    """``read(x, 1)`` → ``["read", "x", 1]``."""
    return [op.kind.value, op.obj, op.value]


def op_from_json(data: Any) -> Op:
    """Inverse of :func:`op_to_json`."""
    try:
        kind, obj, value = data
    except (TypeError, ValueError):
        raise FormatError(f"operation must be [kind, obj, value]: {data!r}")
    if kind == OpKind.READ.value:
        return read_op(obj, value)
    if kind == OpKind.WRITE.value:
        return write_op(obj, value)
    raise FormatError(f"unknown operation kind {kind!r}")


def transaction_to_json(txn: Transaction) -> Dict[str, Any]:
    """Serialise one transaction."""
    return {"tid": txn.tid, "ops": [op_to_json(e.op) for e in txn.events]}


def transaction_from_json(data: Dict[str, Any]) -> Transaction:
    """Deserialise one transaction."""
    try:
        tid = data["tid"]
        ops = data["ops"]
    except (TypeError, KeyError):
        raise FormatError(
            f"transaction must have 'tid' and 'ops': {data!r}"
        )
    return transaction(tid, *(op_from_json(op) for op in ops))


def history_to_json(history: History) -> Dict[str, Any]:
    """Serialise a history (initialisation transaction included inline)."""
    return {
        "sessions": [
            [transaction_to_json(t) for t in session]
            for session in history.sessions
        ]
    }


def history_from_json(data: Dict[str, Any]) -> Tuple[History, Optional[str]]:
    """Deserialise a history document.

    Returns ``(history, init_tid)``.  When the document carries an
    ``"init"`` object map, an initialisation transaction with tid
    ``t_init`` is synthesised as its own first session and its tid
    returned; when a transaction named ``t_init`` already exists, that
    one is used; otherwise ``init_tid`` is ``None``.
    """
    if not isinstance(data, dict) or "sessions" not in data:
        raise FormatError("history document must have a 'sessions' list")
    sessions = [
        tuple(transaction_from_json(t) for t in session)
        for session in data["sessions"]
    ]
    h = History(tuple(sessions))
    init_values = data.get("init")
    if init_values:
        init = transaction(
            INIT_TID,
            *(write_op(obj, value) for obj, value in sorted(init_values.items())),
        )
        return with_initialisation(h, init), INIT_TID
    try:
        h.by_tid(INIT_TID)
        return h, INIT_TID
    except KeyError:
        return h, None


# ----------------------------------------------------------------------
# Wire values (type-preserving)
# ----------------------------------------------------------------------
#
# Plain JSON maps tuples and lists to the same array syntax, but the
# operational stack distinguishes them: the service's value tagger
# writes ``(logical, seq)`` tuples and `ValueTagger.logical` detects
# them with an isinstance check.  The write-ahead log must reproduce
# committed values bit-identically on recovery, so its payloads encode
# values through these tagged codecs instead of raw JSON.


def value_to_wire(value: Any) -> Any:
    """Encode an arbitrary engine value for JSON transport, preserving
    the Python container type: tuples, lists and dicts each get their
    own one-key wrapper, scalars pass through unchanged."""
    if isinstance(value, tuple):
        return {"t": [value_to_wire(v) for v in value]}
    if isinstance(value, list):
        return {"l": [value_to_wire(v) for v in value]}
    if isinstance(value, dict):
        return {"d": {str(k): value_to_wire(v) for k, v in value.items()}}
    return value


def value_from_wire(data: Any) -> Any:
    """Inverse of :func:`value_to_wire`."""
    if isinstance(data, dict):
        if set(data) == {"t"}:
            return tuple(value_from_wire(v) for v in data["t"])
        if set(data) == {"l"}:
            return [value_from_wire(v) for v in data["l"]]
        if set(data) == {"d"}:
            return {k: value_from_wire(v) for k, v in data["d"].items()}
        raise FormatError(f"malformed wire value: {data!r}")
    return data


def op_to_wire(op: Op) -> List[Any]:
    """Like :func:`op_to_json` but with a type-preserving value."""
    return [op.kind.value, op.obj, value_to_wire(op.value)]


def op_from_wire(data: Any) -> Op:
    """Inverse of :func:`op_to_wire`."""
    try:
        kind, obj, value = data
    except (TypeError, ValueError):
        raise FormatError(f"operation must be [kind, obj, value]: {data!r}")
    value = value_from_wire(value)
    if kind == OpKind.READ.value:
        return read_op(obj, value)
    if kind == OpKind.WRITE.value:
        return write_op(obj, value)
    raise FormatError(f"unknown operation kind {kind!r}")


# ----------------------------------------------------------------------
# Dependency graphs
# ----------------------------------------------------------------------


def graph_to_json(graph) -> Dict[str, Any]:
    """Serialise a dependency graph: its history plus WR/WW edge lists
    per object (RW is derived, so not stored)."""
    def edges(per_obj):
        return {
            obj: sorted((a.tid, b.tid) for a, b in rel)
            for obj, rel in per_obj.items()
            if len(rel) > 0
        }

    return {
        "history": history_to_json(graph.history),
        "wr": edges(graph.wr),
        "ww": edges(graph.ww),
    }


def graph_from_json(data: Dict[str, Any]):
    """Deserialise a dependency graph (validated per Definition 6)."""
    from ..graphs.dependency import dependency_graph

    try:
        history_data = data["history"]
        wr_data = data["wr"]
        ww_data = data["ww"]
    except (TypeError, KeyError):
        raise FormatError(
            "graph document must have 'history', 'wr' and 'ww'"
        )
    h, _ = history_from_json(history_data)

    def resolve(edge_map):
        return {
            obj: [(h.by_tid(a), h.by_tid(b)) for a, b in pairs]
            for obj, pairs in edge_map.items()
        }

    try:
        return dependency_graph(
            h, resolve(wr_data), resolve(ww_data),
            transitively_close_ww=False,
        )
    except KeyError as exc:
        raise FormatError(f"edge mentions unknown transaction: {exc}")


# ----------------------------------------------------------------------
# Programs
# ----------------------------------------------------------------------


def program_to_json(program: Program) -> Dict[str, Any]:
    """Serialise one program (read/write sets only)."""
    return {
        "name": program.name,
        "pieces": [
            {
                "reads": sorted(p.reads),
                "writes": sorted(p.writes),
                **({"label": p.label} if p.label else {}),
            }
            for p in program.pieces
        ],
    }


def program_from_json(data: Dict[str, Any]) -> Program:
    """Deserialise one program."""
    try:
        name = data["name"]
        pieces_data = data["pieces"]
    except (TypeError, KeyError):
        raise FormatError(f"program must have 'name' and 'pieces': {data!r}")
    pieces = [
        piece(
            p.get("reads", ()),
            p.get("writes", ()),
            label=p.get("label", ""),
        )
        for p in pieces_data
    ]
    return Program(name, tuple(pieces))


def programs_to_json(programs: List[Program]) -> Dict[str, Any]:
    """Serialise a programs document."""
    return {"programs": [program_to_json(p) for p in programs]}


def programs_from_json(data: Dict[str, Any]) -> List[Program]:
    """Deserialise a programs document."""
    if not isinstance(data, dict) or "programs" not in data:
        raise FormatError("programs document must have a 'programs' list")
    return [program_from_json(p) for p in data["programs"]]


# ----------------------------------------------------------------------
# File helpers
# ----------------------------------------------------------------------


def load_history(path: str) -> Tuple[History, Optional[str]]:
    """Load a history document from a JSON file."""
    with open(path) as f:
        return history_from_json(json.load(f))


def load_programs(path: str) -> List[Program]:
    """Load a programs document from a JSON file."""
    with open(path) as f:
        return programs_from_json(json.load(f))


def dump_history(history: History, path: str) -> None:
    """Write a history document to a JSON file."""
    with open(path, "w") as f:
        json.dump(history_to_json(history), f, indent=2)


def dump_programs(programs: List[Program], path: str) -> None:
    """Write a programs document to a JSON file."""
    with open(path, "w") as f:
        json.dump(programs_to_json(programs), f, indent=2)
