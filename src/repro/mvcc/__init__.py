"""Operational substrate: multi-version engines, scheduler, workloads.

Implements the paper's idealised SI concurrency-control algorithm
(:class:`SIEngine`), a serializable OCC baseline
(:class:`SerializableEngine`), and a replicated parallel-SI engine
(:class:`PSIEngine`), all recording enough to reconstruct histories and
abstract executions for cross-validation against the declarative theory.
"""

from .store import INIT_WRITER, MVStore, Version
from .engine import (
    LOCK_MODES,
    BaseEngine,
    CommitRecord,
    EngineStats,
    TxContext,
    TxStatus,
)
from .si import SIEngine
from .serializable import SerializableEngine
from .locking import LockMode, LockTable, TwoPhaseLockingEngine
from .psi import PSIEngine, Replica
from .runtime import (
    DELIVER,
    OpRequest,
    ReadOp,
    RunResult,
    Scheduler,
    TxProgram,
    WriteOp,
    run_sequential,
)
from .workloads import (
    RandomWorkload,
    blind_write_program,
    chopped_transfer_session,
    contended_counter_workload,
    deposit_program,
    disjoint_counter_workload,
    long_fork_sessions,
    lookup_program,
    lost_update_sessions,
    random_workload,
    read_pair_program,
    transfer_piece_program,
    withdraw_program,
    write_skew_sessions,
)

__all__ = [
    # store
    "MVStore",
    "Version",
    "INIT_WRITER",
    # engine
    "LOCK_MODES",
    "BaseEngine",
    "TxContext",
    "TxStatus",
    "CommitRecord",
    "EngineStats",
    "SIEngine",
    "SerializableEngine",
    "TwoPhaseLockingEngine",
    "LockTable",
    "LockMode",
    "PSIEngine",
    "Replica",
    # runtime
    "ReadOp",
    "WriteOp",
    "OpRequest",
    "TxProgram",
    "Scheduler",
    "RunResult",
    "run_sequential",
    "DELIVER",
    # workloads
    "RandomWorkload",
    "withdraw_program",
    "deposit_program",
    "blind_write_program",
    "read_pair_program",
    "transfer_piece_program",
    "chopped_transfer_session",
    "lookup_program",
    "write_skew_sessions",
    "lost_update_sessions",
    "long_fork_sessions",
    "random_workload",
    "contended_counter_workload",
    "disjoint_counter_workload",
]
