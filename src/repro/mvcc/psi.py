"""A replicated parallel-SI engine (Definition 20; Sovran et al. [31]).

Parallel SI weakens SI by dropping PREFIX while keeping visibility
transitive (TRANSVIS): transactions on different replicas may observe two
independent writes in different orders — the *long fork* of Figure 2(c).

The engine models a geo-replicated store:

* each session is pinned to a replica (by default its own); a transaction
  reads a snapshot of its replica's *current local state* at start;
* commit performs global write-conflict detection (NOCONFLICT: every
  committed writer of an object I wrote must be in my snapshot), applies
  the writes at the local replica immediately, and queues asynchronous
  deliveries to the other replicas;
* deliveries are causal: a transaction can be applied at a remote replica
  only after everything visible to it has been applied there
  (:meth:`PSIEngine.deliver` enforces the precondition), which yields
  transitive visibility.

Delivery timing is under caller control (:meth:`deliver`,
:meth:`deliver_all`, or ``auto_deliver=True`` for SI-like eager
propagation), so long forks are reproducible deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.errors import ScheduleError, StoreError, TransactionAborted
from ..core.events import Obj, Value
from .engine import BaseEngine, CommitRecord, TxContext


@dataclass
class Replica:
    """One replica: its current object state and the set of transactions
    applied to it (the initialisation writes are implicit)."""

    name: str
    state: Dict[Obj, Value]
    applied: Set[str] = field(default_factory=set)


class PSIEngine(BaseEngine):
    """Replicated parallel snapshot isolation with causal, asynchronous
    propagation and global write-conflict detection."""

    def __init__(
        self,
        initial: Mapping[Obj, Value],
        init_tid: str = "t_init",
        session_replicas: Optional[Mapping[str, str]] = None,
        auto_deliver: bool = False,
        lock_mode: str = "striped",
    ):
        """
        Args:
            initial: the initial object values (replicated everywhere).
            init_tid: id of the initialisation transaction.
            session_replicas: optional session → replica-name pinning;
                sessions not mentioned get a dedicated replica
                ``r_<session>``.
            auto_deliver: when True, every commit is propagated to all
                replicas immediately (useful as an "SI-like" reference
                configuration in benchmarks).
            lock_mode: as for :class:`BaseEngine`.  Replica state and
                the delivery queue always serialise under the commit
                mutex (snapshot capture must not observe a half-applied
                commit); in striped mode the *reads* are nevertheless
                lock-free — they touch only the private snapshot dict
                captured at begin.
        """
        super().__init__(initial, init_tid, lock_mode=lock_mode)
        self._session_replicas: Dict[str, str] = dict(session_replicas or {})
        self._replicas: Dict[str, Replica] = {}
        self._commit_index = 0
        self._snapshots: Dict[str, Tuple[Dict[Obj, Value], frozenset]] = {}
        self._writers_per_obj: Dict[Obj, List[str]] = {}
        self._records_by_tid: Dict[str, CommitRecord] = {}
        self._pending: Set[Tuple[str, str]] = set()  # (tid, replica name)
        self.auto_deliver = auto_deliver

    # ------------------------------------------------------------------
    # Replica management
    # ------------------------------------------------------------------

    def replica_of(self, session: str) -> Replica:
        """The replica serving ``session`` (created on first use)."""
        with self.lock:
            name = self._session_replicas.get(session, f"r_{session}")
            self._session_replicas[session] = name
            if name not in self._replicas:
                self._replicas[name] = Replica(name, dict(self.initial))
                # A replica created after some commits must still receive
                # them: backfill its delivery queue.
                for tid in self._records_by_tid:
                    self._pending.add((tid, name))
                if self.auto_deliver:
                    self.deliver_all()
            return self._replicas[name]

    @property
    def replicas(self) -> Dict[str, Replica]:
        """All replicas by name."""
        return dict(self._replicas)

    # ------------------------------------------------------------------
    # BaseEngine hooks
    # ------------------------------------------------------------------

    def _make_context(self, session: str, tid: str) -> TxContext:
        # Snapshot capture must be atomic with respect to commits
        # applying writes at the replica, so it runs under the commit
        # mutex (begin holds no other lock here).
        with self.lock:
            replica = self.replica_of(session)
            ctx = TxContext(tid=tid, session=session, start_ts=-1)
            self._snapshots[ctx.tid] = (
                dict(replica.state),
                frozenset(replica.applied),
            )
            return ctx

    def read(self, ctx: TxContext, obj: Obj) -> Value:
        """Read from the write buffer, else from the replica snapshot
        (lock-free in striped mode: the snapshot is a private copy only
        this session's thread dereferences)."""
        with self._read_guard:
            ctx.ensure_active()
            if obj in ctx.write_buffer:
                return self._record_read(ctx, obj, ctx.write_buffer[obj])
            snapshot, _ = self._snapshots[ctx.tid]
            if obj not in snapshot:
                raise StoreError(f"unknown object {obj!r}")
            return self._record_read(ctx, obj, snapshot[obj])

    def commit(self, ctx: TxContext) -> CommitRecord:
        """Global NOCONFLICT validation, local apply, queue propagation."""
        with self.lock:
            return self._commit_locked(ctx)

    def _commit_locked(self, ctx: TxContext) -> CommitRecord:
        ctx.ensure_active()
        _, visible = self._snapshots[ctx.tid]
        for obj in sorted(ctx.write_buffer):
            for writer in self._writers_per_obj.get(obj, ()):
                if writer not in visible:
                    raise self._validation_failure(
                        ctx,
                        f"write-write conflict on {obj!r}: concurrent "
                        f"committed writer {writer}",
                    )
        self._commit_index += 1
        record = CommitRecord(
            tid=ctx.tid,
            session=ctx.session,
            start_ts=ctx.start_ts,
            commit_ts=self._commit_index,
            events=tuple(ctx.events),
            writes=dict(ctx.write_buffer),
            visible_tids=visible,
        )
        self._records_by_tid[ctx.tid] = record
        for obj in ctx.write_buffer:
            self._writers_per_obj.setdefault(obj, []).append(ctx.tid)
        # Apply locally, queue remote deliveries.
        local = self.replica_of(ctx.session)
        self._apply(record, local)
        for name in self._replicas:
            if name != local.name:
                self._pending.add((ctx.tid, name))
        self._finish_commit(ctx, record)
        self._snapshots.pop(ctx.tid, None)
        if self.auto_deliver:
            self.deliver_all()
        return record

    def abort(self, ctx: TxContext, reason: str = "client abort") -> None:
        """Abort and discard the replica snapshot."""
        with self.lock:
            super().abort(ctx, reason)
            self._snapshots.pop(ctx.tid, None)

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------

    def _replay_install(self, record: CommitRecord) -> None:
        """Re-register a replayed commit and apply it at every existing
        replica.  A recovered log represents fully durable state, so
        replay treats each commit as fully propagated (replicas created
        later are backfilled by :meth:`replica_of` as usual)."""
        self._commit_index = record.commit_ts
        self._records_by_tid[record.tid] = record
        for obj in record.writes:
            self._writers_per_obj.setdefault(obj, []).append(record.tid)
        for replica in self._replicas.values():
            self._apply(record, replica)

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------

    def _apply(self, record: CommitRecord, replica: Replica) -> None:
        replica.state.update(record.writes)
        replica.applied.add(record.tid)

    def deliverable(self, tid: str, replica_name: str) -> bool:
        """Whether ``tid`` can be applied at the replica now — everything
        it observed must already be applied there (causal delivery)."""
        if (tid, replica_name) not in self._pending:
            return False
        record = self._records_by_tid[tid]
        replica = self._replicas[replica_name]
        return record.visible_tids <= replica.applied

    def deliver(self, tid: str, replica_name: str) -> None:
        """Apply a committed transaction at a remote replica.

        Raises:
            ScheduleError: if the delivery is not pending or would violate
                causality.
        """
        with self.lock:
            if (tid, replica_name) not in self._pending:
                raise ScheduleError(
                    f"no pending delivery of {tid} to {replica_name}"
                )
            if not self.deliverable(tid, replica_name):
                raise ScheduleError(
                    f"delivery of {tid} to {replica_name} violates causality"
                )
            self._apply(
                self._records_by_tid[tid], self._replicas[replica_name]
            )
            self._pending.discard((tid, replica_name))

    def pending_deliveries(self) -> List[Tuple[str, str]]:
        """Pending (tid, replica) deliveries, deterministic order."""
        with self.lock:
            return sorted(self._pending)

    def deliverable_deliveries(self) -> List[Tuple[str, str]]:
        """Pending deliveries whose causal preconditions are met."""
        return [
            (tid, name)
            for tid, name in self.pending_deliveries()
            if self.deliverable(tid, name)
        ]

    def deliver_all(self) -> int:
        """Drain the delivery queue (respecting causality); returns the
        number of deliveries performed."""
        with self.lock:
            count = 0
            progressed = True
            while progressed:
                progressed = False
                for tid, name in self.deliverable_deliveries():
                    self.deliver(tid, name)
                    count += 1
                    progressed = True
            return count
