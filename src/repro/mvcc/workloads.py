"""Workload generators for the operational engines.

Scenario workloads reproduce the paper's motivating examples (write skew,
lost update, long fork, chopped transfers) as transaction programs for the
:class:`~repro.mvcc.runtime.Scheduler`; the random workload generator
drives the cross-validation experiments (operational runs vs. the
axiomatic oracle) and the engine benchmarks.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Mapping, Sequence, Tuple

from ..core.events import Obj, Value
from .runtime import ReadOp, TxProgram, WriteOp


# ----------------------------------------------------------------------
# Scenario programs (Figures 2 and 4)
# ----------------------------------------------------------------------


def withdraw_program(
    target: Obj, other: Obj, amount: int = 100, threshold: int = 100
) -> TxProgram:
    """The write-skew withdrawal of Section 1 / Figure 2(d): withdraw
    ``amount`` from ``target`` if the combined balance exceeds
    ``threshold``."""

    def program():
        own = yield ReadOp(target)
        their = yield ReadOp(other)
        if own + their > threshold:
            yield WriteOp(target, own - amount)

    return program


def deposit_program(acct: Obj, amount: int) -> TxProgram:
    """The lost-update deposit of Figure 2(b): read-modify-write."""

    def program():
        balance = yield ReadOp(acct)
        yield WriteOp(acct, balance + amount)

    return program


def blind_write_program(obj: Obj, value: Value) -> TxProgram:
    """Write ``value`` to ``obj`` without reading (Figure 2(c)'s
    writers)."""

    def program():
        yield WriteOp(obj, value)

    return program


def read_pair_program(first: Obj, second: Obj) -> TxProgram:
    """Read two objects in order (Figure 2(c)'s readers)."""

    def program():
        yield ReadOp(first)
        yield ReadOp(second)

    return program


def transfer_piece_program(acct: Obj, delta: int) -> TxProgram:
    """One piece of the chopped transfer of Figure 4: adjust a single
    account by ``delta``."""

    def program():
        balance = yield ReadOp(acct)
        yield WriteOp(acct, balance + delta)

    return program


def chopped_transfer_session(
    source: Obj = "acct1", dest: Obj = "acct2", amount: int = 100
) -> List[TxProgram]:
    """The ``transfer`` session of Figure 4, chopped into two
    transactions: debit then credit."""
    return [
        transfer_piece_program(source, -amount),
        transfer_piece_program(dest, amount),
    ]


def lookup_program(*accts: Obj) -> TxProgram:
    """Read the given accounts in one transaction (``lookupAll`` /
    ``lookup1`` / ``lookup2`` of Figures 4–6)."""

    def program():
        for acct in accts:
            yield ReadOp(acct)

    return program


def write_skew_sessions(
    acct1: Obj = "acct1", acct2: Obj = "acct2"
) -> Dict[str, List[TxProgram]]:
    """Two sessions racing the Figure 2(d) withdrawals."""
    return {
        "alice": [withdraw_program(acct1, acct2)],
        "bob": [withdraw_program(acct2, acct1)],
    }


def lost_update_sessions(acct: Obj = "acct") -> Dict[str, List[TxProgram]]:
    """Two sessions racing the Figure 2(b) deposits."""
    return {
        "alice": [deposit_program(acct, 50)],
        "bob": [deposit_program(acct, 25)],
    }


def long_fork_sessions(
    x: Obj = "x", y: Obj = "y"
) -> Dict[str, List[TxProgram]]:
    """Four sessions of the Figure 2(c) long fork: two writers, two
    readers observing the writes in opposite orders (on a PSI engine with
    delayed delivery)."""
    return {
        "w1": [blind_write_program(x, 1)],
        "w2": [blind_write_program(y, 1)],
        "r1": [read_pair_program(x, y)],
        "r2": [read_pair_program(x, y)],
    }


# ----------------------------------------------------------------------
# Random workloads
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RandomWorkload:
    """A randomly generated multi-session workload.

    Attributes:
        initial: initial object values (all zero).
        sessions: session name → transaction programs.
    """

    initial: Dict[Obj, Value]
    sessions: Dict[str, List[TxProgram]]


def random_workload(
    seed: int,
    sessions: int = 3,
    transactions_per_session: int = 3,
    objects: int = 4,
    ops_per_transaction: Tuple[int, int] = (1, 4),
    write_fraction: float = 0.5,
) -> RandomWorkload:
    """Generate a seeded random workload of read/write transactions.

    Written values are globally unique (a running counter), which keeps
    dependency extraction unambiguous when cross-validating operational
    runs against the axiomatic membership oracle.
    """
    rng = random.Random(seed)
    objs = [f"x{i}" for i in range(objects)]
    counter = itertools.count(1)

    def make_program() -> TxProgram:
        n_ops = rng.randint(*ops_per_transaction)
        plan: List[Tuple[str, Obj, int]] = []
        for _ in range(n_ops):
            obj = rng.choice(objs)
            if rng.random() < write_fraction:
                plan.append(("w", obj, next(counter)))
            else:
                plan.append(("r", obj, 0))

        def program(plan=tuple(plan)):
            for kind, obj, value in plan:
                if kind == "r":
                    yield ReadOp(obj)
                else:
                    yield WriteOp(obj, value)

        return program

    workload_sessions = {
        f"s{i}": [make_program() for _ in range(transactions_per_session)]
        for i in range(sessions)
    }
    return RandomWorkload(
        initial={obj: 0 for obj in objs}, sessions=workload_sessions
    )


def contended_counter_workload(
    seed: int, sessions: int, increments: int, counters: int = 1
) -> RandomWorkload:
    """All sessions increment a few shared counters — a high-conflict
    workload stressing first-committer-wins abort rates (bench E16)."""
    rng = random.Random(seed)
    objs = [f"c{i}" for i in range(counters)]
    workload_sessions = {
        f"s{i}": [
            deposit_program(rng.choice(objs), 1) for _ in range(increments)
        ]
        for i in range(sessions)
    }
    return RandomWorkload(
        initial={obj: 0 for obj in objs}, sessions=workload_sessions
    )


def disjoint_counter_workload(
    sessions: int, increments: int
) -> RandomWorkload:
    """Each session increments its own counter — a no-conflict workload
    (the contention-free baseline of bench E16)."""
    workload_sessions = {
        f"s{i}": [
            deposit_program(f"c{i}", 1) for _ in range(increments)
        ]
        for i in range(sessions)
    }
    return RandomWorkload(
        initial={f"c{i}": 0 for i in range(sessions)},
        sessions=workload_sessions,
    )
