"""A lock-based serializable engine: strict two-phase locking, no-wait.

The OCC baseline (:class:`~repro.mvcc.serializable.SerializableEngine`)
detects conflicts at commit time; this engine is the classical pessimistic
alternative the databases of the paper's era actually ran for
serializability:

* a transaction acquires a shared lock before reading and an exclusive
  lock before writing (upgrading held shared locks);
* locks are held to commit/abort (strictness), guaranteeing conflict
  serializability in lock-acquisition order;
* lock conflicts follow the **no-wait** policy: a transaction that would
  block aborts immediately (clients retry per §5's discipline).  No-wait
  avoids deadlock entirely — convenient in our cooperative single-thread
  scheduler, where a blocked generator would stall the whole run.

Writes go through the same multi-version store as the other engines (so
histories/executions are reconstructed identically); reads return the
latest committed version, which under S2PL is also the version at the
reader's serialisation point.

Concurrency: the lock table is one shared structure, so it carries its
own internal mutex (a leaf in the lock hierarchy — taken after the
commit mutex, never while holding it does the table acquire anything
else).  Read operations in striped mode touch only the table mutex and
the store's lock-free ``latest`` — reading the newest version without
the engine lock is safe precisely because the held S-lock excludes any
concurrent writer of that object from committing.
"""

from __future__ import annotations

import enum
import threading
from typing import Dict, Mapping, Optional, Set

from ..core.errors import TransactionAborted
from ..core.events import Obj, Value
from .engine import BaseEngine, CommitRecord, TxContext
from .store import MVStore


class LockMode(enum.Enum):
    """Lock modes of the classic shared/exclusive table."""

    SHARED = "S"
    EXCLUSIVE = "X"


class LockTable:
    """A per-object S/X lock table with no-wait conflict resolution.

    All methods are atomic under an internal mutex, so the table can be
    shared by concurrently-running transactions without an engine-wide
    lock.
    """

    def __init__(self):
        self._mutex = threading.RLock()
        self._shared: Dict[Obj, Set[str]] = {}
        self._exclusive: Dict[Obj, str] = {}

    def holders(self, obj: Obj) -> Set[str]:
        """All transactions holding any lock on ``obj``."""
        with self._mutex:
            out = set(self._shared.get(obj, set()))
            if obj in self._exclusive:
                out.add(self._exclusive[obj])
            return out

    def can_acquire(self, tid: str, obj: Obj, mode: LockMode) -> bool:
        """Whether ``tid`` may take the lock right now."""
        with self._mutex:
            return self._can_acquire_locked(tid, obj, mode)

    def _can_acquire_locked(
        self, tid: str, obj: Obj, mode: LockMode
    ) -> bool:
        exclusive = self._exclusive.get(obj)
        if exclusive is not None and exclusive != tid:
            return False
        if mode is LockMode.EXCLUSIVE:
            others = self._shared.get(obj, set()) - {tid}
            return not others
        return True

    def acquire(self, tid: str, obj: Obj, mode: LockMode) -> bool:
        """Try to take (or upgrade to) the lock; False on conflict."""
        with self._mutex:
            if not self._can_acquire_locked(tid, obj, mode):
                return False
            if mode is LockMode.SHARED:
                if self._exclusive.get(obj) == tid:
                    return True  # X subsumes S
                self._shared.setdefault(obj, set()).add(tid)
            else:
                self._shared.get(obj, set()).discard(tid)
                self._exclusive[obj] = tid
            return True

    def release_all(self, tid: str) -> None:
        """Drop every lock held by ``tid`` (commit/abort)."""
        with self._mutex:
            for holders in self._shared.values():
                holders.discard(tid)
            for obj in [
                o for o, t in self._exclusive.items() if t == tid
            ]:
                del self._exclusive[obj]


class TwoPhaseLockingEngine(BaseEngine):
    """Strict 2PL with no-wait conflict handling — always serializable."""

    def __init__(
        self,
        initial: Mapping[Obj, Value],
        init_tid: str = "t_init",
        lock_mode: str = "striped",
    ):
        super().__init__(initial, init_tid, lock_mode=lock_mode)
        self.store = MVStore(initial, init_writer=init_tid)
        self.locks = LockTable()
        self._clock = 0

    def _make_context(self, session: str, tid: str) -> TxContext:
        # start_ts records begin time for bookkeeping; reads do not use
        # it (S2PL reads current committed state under lock).
        return TxContext(tid=tid, session=session, start_ts=self._clock)

    def read(self, ctx: TxContext, obj: Obj) -> Value:
        """Acquire a shared lock, then read the latest committed value
        (own buffered writes first).  The S-lock pins the version: no
        writer of ``obj`` can commit while it is held, so the lock-free
        ``latest`` is stable."""
        with self._read_guard:
            ctx.ensure_active()
            if obj in ctx.write_buffer:
                return self._record_read(ctx, obj, ctx.write_buffer[obj])
            if not self.locks.acquire(ctx.tid, obj, LockMode.SHARED):
                raise self._lock_failure(ctx, obj, LockMode.SHARED)
            version = self.store.latest(obj)
            return self._record_read(ctx, obj, version.value)

    def write(self, ctx: TxContext, obj: Obj, value: Value) -> None:
        """Acquire an exclusive lock, then buffer the write."""
        with self._read_guard:
            ctx.ensure_active()
            if not self.locks.acquire(ctx.tid, obj, LockMode.EXCLUSIVE):
                raise self._lock_failure(ctx, obj, LockMode.EXCLUSIVE)
            super().write(ctx, obj, value)

    def commit(self, ctx: TxContext) -> CommitRecord:
        """Install the writes and release all locks (strictness)."""
        with self.lock:
            ctx.ensure_active()
            self._clock += 1
            commit_ts = self._clock
            if ctx.write_buffer:
                self.store.install(ctx.write_buffer, commit_ts, ctx.tid)
            record = CommitRecord(
                tid=ctx.tid,
                session=ctx.session,
                start_ts=ctx.start_ts,
                commit_ts=commit_ts,
                events=tuple(ctx.events),
                writes=dict(ctx.write_buffer),
                # Under strict 2PL a committed transaction logically
                # observed everything that committed before it.
                visible_tids=frozenset(rec.tid for rec in self.committed),
            )
            self.locks.release_all(ctx.tid)
            self._finish_commit(ctx, record)
            return record

    def abort(self, ctx: TxContext, reason: str = "client abort") -> None:
        """Abort and release every held lock (strictness)."""
        self.locks.release_all(ctx.tid)
        super().abort(ctx, reason)

    def _replay_install(self, record: CommitRecord) -> None:
        """Install a replayed commit at its original timestamp (no locks
        to acquire — the original run already serialised it)."""
        if record.writes:
            self.store.install(record.writes, record.commit_ts, record.tid)
        self._clock = record.commit_ts

    def _lock_failure(
        self, ctx: TxContext, obj: Obj, mode: LockMode
    ) -> TransactionAborted:
        holders = sorted(self.locks.holders(obj) - {ctx.tid})
        self.locks.release_all(ctx.tid)
        return self._validation_failure(
            ctx,
            f"no-wait 2PL: {mode.value} lock on {obj!r} "
            f"blocked by {holders}",
        )
