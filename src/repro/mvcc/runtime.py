"""Clients, sessions and the deterministic scheduler.

Transaction programs are written as Python *generator functions*: the
program yields :class:`ReadOp`/:class:`WriteOp` requests and receives read
values back, giving the scheduler an explicit preemption point at every
operation::

    def withdraw_from_acct1():
        v1 = yield ReadOp("acct1")
        v2 = yield ReadOp("acct2")
        if v1 + v2 > 100:
            yield WriteOp("acct1", v1 - 100)

A *session* is a list of such programs, executed in order; following the
client assumptions of Section 5, a program whose transaction aborts is
resubmitted (as a fresh transaction) until it commits, up to a retry cap.

The :class:`Scheduler` interleaves sessions one operation at a time,
driven either by an explicit schedule (a list of session names, with the
special entry ``"deliver"`` performing one causal delivery on PSI engines)
or by a seeded PRNG — both fully deterministic and replayable.

The scheduler is single-threaded, so it is oblivious to the engine's
``lock_mode``: runs are byte-identical whether the engine uses the
fine-grained striped locking (the default) or the ``"global-lock"``
compatibility mode (``tests/mvcc/test_lock_modes.py`` asserts this on
the anomaly reproductions).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Generator,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
)

from ..core.errors import ScheduleError, TransactionAborted
from ..core.events import Obj, Value
from .engine import BaseEngine, TxContext
from .psi import PSIEngine


@dataclass(frozen=True)
class ReadOp:
    """A request to read ``obj``; the yield evaluates to the value."""

    obj: Obj


@dataclass(frozen=True)
class WriteOp:
    """A request to write ``value`` to ``obj``."""

    obj: Obj
    value: Value


OpRequest = Union[ReadOp, WriteOp]
TxProgram = Callable[[], Generator[OpRequest, Value, None]]
"""A transaction program: a no-argument generator function."""

DELIVER = "deliver"
"""Schedule entry: perform one pending causal delivery (PSI engines)."""


@dataclass
class _SessionState:
    programs: List[TxProgram]
    index: int = 0
    gen: Optional[Generator] = None
    ctx: Optional[TxContext] = None
    to_send: Optional[Value] = None
    retries: int = 0

    @property
    def done(self) -> bool:
        return self.index >= len(self.programs) and self.gen is None


@dataclass
class RunResult:
    """Summary of a scheduler run."""

    steps: int
    commits: int
    aborts: int

    def __str__(self) -> str:
        return (
            f"{self.steps} steps, {self.commits} commits, "
            f"{self.aborts} aborts"
        )


class Scheduler:
    """Deterministic operation-level interleaving of sessions.

    Args:
        engine: the engine to drive (any :class:`BaseEngine`).
        sessions: session name → list of transaction programs.
        max_retries: per-program cap on abort-and-resubmit cycles; beyond
            it :class:`ScheduleError` is raised (livelock guard).
    """

    def __init__(
        self,
        engine: BaseEngine,
        sessions: Mapping[str, Sequence[TxProgram]],
        max_retries: int = 1000,
        crash_rate: float = 0.0,
        crash_seed: int = 0,
    ):
        self.engine = engine
        self.max_retries = max_retries
        self._states: Dict[str, _SessionState] = {
            name: _SessionState(list(programs))
            for name, programs in sessions.items()
        }
        self.steps = 0
        self.crashes = 0
        self._crash_rate = crash_rate
        self._crash_rng = random.Random(crash_seed)

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------

    def runnable_sessions(self) -> List[str]:
        """Sessions that still have work, deterministic order."""
        return sorted(
            name for name, st in self._states.items() if not st.done
        )

    def is_finished(self) -> bool:
        """True when every session has committed all its programs."""
        return not self.runnable_sessions()

    def step(self, session: str) -> None:
        """Advance ``session`` by one operation (or its commit).

        With a non-zero ``crash_rate``, each step may instead *crash* the
        session's in-flight transaction (a system-failure abort, §5's
        client assumptions): the transaction is aborted at the engine and
        the program restarted from scratch on the next step.
        """
        st = self._states[session]
        if st.done:
            raise ScheduleError(f"session {session!r} is already finished")
        if (
            self._crash_rate > 0.0
            and st.ctx is not None
            and self._crash_rng.random() < self._crash_rate
        ):
            self.crash(session)
            return
        if st.gen is None:
            st.ctx = self.engine.begin(session)
            st.gen = st.programs[st.index]()
            st.to_send = None
        self.steps += 1
        try:
            op = st.gen.send(st.to_send)
        except StopIteration:
            self._commit(session, st)
            return
        try:
            if isinstance(op, ReadOp):
                st.to_send = self.engine.read(st.ctx, op.obj)
            elif isinstance(op, WriteOp):
                self.engine.write(st.ctx, op.obj, op.value)
                st.to_send = None
            else:
                raise ScheduleError(
                    f"program in session {session!r} yielded {op!r}; "
                    f"expected ReadOp or WriteOp"
                )
        except TransactionAborted:
            # Pessimistic engines (no-wait 2PL) abort at the operation,
            # not only at commit; the retry discipline is the same.
            self._register_retry(session, st)

    def _commit(self, session: str, st: _SessionState) -> None:
        try:
            self.engine.commit(st.ctx)
            st.index += 1
            st.retries = 0
            st.gen = None
            st.ctx = None
            st.to_send = None
        except TransactionAborted:
            self._register_retry(session, st)

    def _register_retry(self, session: str, st: _SessionState) -> None:
        """An engine-initiated abort: reset for resubmission (§5)."""
        st.gen = None
        st.ctx = None
        st.to_send = None
        st.retries += 1
        if st.retries > self.max_retries:
            raise ScheduleError(
                f"session {session!r} exceeded {self.max_retries} "
                f"retries; workload is livelocked"
            )

    def crash(self, session: str) -> None:
        """Simulate a system failure of the session's active transaction.

        The in-flight transaction is aborted (its buffered writes vanish)
        and the program will be restarted as a fresh transaction — the
        retry discipline of Section 5.  No-op if nothing is in flight.
        """
        st = self._states[session]
        if st.ctx is None:
            return
        self.engine.abort(st.ctx, reason="simulated crash")
        self.crashes += 1
        st.gen = None
        st.ctx = None
        st.to_send = None

    def deliver_one(self) -> bool:
        """On a PSI engine, perform the first deliverable delivery.
        Returns False when nothing is deliverable (no-op otherwise)."""
        if not isinstance(self.engine, PSIEngine):
            return False
        deliverable = self.engine.deliverable_deliveries()
        if not deliverable:
            return False
        tid, replica = deliverable[0]
        self.engine.deliver(tid, replica)
        return True

    # ------------------------------------------------------------------
    # Whole runs
    # ------------------------------------------------------------------

    def run_schedule(self, schedule: Iterable[str]) -> RunResult:
        """Run an explicit schedule (session names and ``"deliver"``),
        then finish any remaining work round-robin."""
        for entry in schedule:
            if entry == DELIVER:
                self.deliver_one()
                continue
            if entry not in self._states:
                raise ScheduleError(f"unknown session {entry!r} in schedule")
            if not self._states[entry].done:
                self.step(entry)
        self.run_round_robin()
        return self._result()

    def run_round_robin(self) -> RunResult:
        """Finish all sessions by cycling through them in name order."""
        while not self.is_finished():
            for name in self.runnable_sessions():
                self.step(name)
        self._drain_deliveries()
        return self._result()

    def run_random(
        self, seed: int, deliver_probability: float = 0.25
    ) -> RunResult:
        """Run to completion with a seeded PRNG choosing the next actor.

        On PSI engines, each step is a pending delivery with probability
        ``deliver_probability`` (when one is deliverable).
        """
        rng = random.Random(seed)
        while not self.is_finished():
            if (
                isinstance(self.engine, PSIEngine)
                and self.engine.deliverable_deliveries()
                and rng.random() < deliver_probability
            ):
                self.deliver_one()
                continue
            name = rng.choice(self.runnable_sessions())
            self.step(name)
        self._drain_deliveries()
        return self._result()

    def _drain_deliveries(self) -> None:
        if isinstance(self.engine, PSIEngine):
            self.engine.deliver_all()

    def _result(self) -> RunResult:
        return RunResult(
            steps=self.steps,
            commits=self.engine.stats.commits,
            aborts=self.engine.stats.aborts,
        )


def run_sequential(
    engine: BaseEngine, sessions: Mapping[str, Sequence[TxProgram]]
) -> RunResult:
    """Run each session to completion one after another (a serial run —
    useful as a baseline and in examples)."""
    scheduler = Scheduler(engine, sessions)
    for name in sorted(sessions):
        while not scheduler._states[name].done:
            scheduler.step(name)
    scheduler._drain_deliveries()
    return scheduler._result()
