"""A serializable engine: snapshot reads plus full OCC validation.

The serializable baseline extends the SI engine's commit-time check from
the write set to the *read set*: a transaction aborts if any object it
read or wrote was modified by a transaction committing after its start.
A transaction passing this validation saw a snapshot that is still current
at commit time, so it can be serialised at its commit point; the resulting
runs satisfy the serializability axioms (Definition 4's ExecSER at the
history level, checked in the tests via Theorem 8's GraphSER condition).

This is the baseline the paper compares SI against (write skew is aborted
here, admitted by :class:`~repro.mvcc.si.SIEngine`).

Concurrency: reads stay lock-free in striped mode — the per-transaction
read set is only touched by the session's own thread, so tracking it
needs no engine lock.  Read-set validation joins SI's write-set
validation inside the commit mutex.
"""

from __future__ import annotations

from typing import Mapping, Set

from ..core.events import Obj, Value
from .engine import CommitRecord, TxContext
from .si import SIEngine


class SerializableEngine(SIEngine):
    """Optimistic concurrency control over the multi-version store:
    snapshot reads, commit-time read- and write-set validation."""

    def __init__(
        self,
        initial: Mapping[Obj, Value],
        init_tid: str = "t_init",
        lock_mode: str = "striped",
    ):
        super().__init__(initial, init_tid, lock_mode=lock_mode)
        self._read_sets: dict = {}

    def _make_context(self, session: str, tid: str) -> TxContext:
        ctx = super()._make_context(session, tid)
        with self._session_lock:
            self._read_sets[ctx.tid] = set()
        return ctx

    def read(self, ctx: TxContext, obj: Obj) -> Value:
        """Snapshot read, additionally tracked for commit validation."""
        with self._read_guard:
            value = super().read(ctx, obj)
            self._read_sets[ctx.tid].add(obj)
            return value

    def commit(self, ctx: TxContext) -> CommitRecord:
        """Validate the read set, then fall back to SI's commit."""
        with self.lock:
            ctx.ensure_active()
            read_set: Set[Obj] = self._read_sets.get(ctx.tid, set())
            for obj in sorted(read_set - set(ctx.write_buffer)):
                if self.store.modified_since(obj, ctx.start_ts):
                    raise self._validation_failure(
                        ctx,
                        f"read-write conflict on {obj!r} "
                        f"(snapshot no longer current)",
                    )
            try:
                return super().commit(ctx)
            finally:
                with self._session_lock:
                    self._read_sets.pop(ctx.tid, None)

    def abort(self, ctx: TxContext, reason: str = "client abort") -> None:
        """Abort and drop the tracked read set (it would otherwise leak
        under a long-running service's abort/retry churn)."""
        with self._session_lock:
            self._read_sets.pop(ctx.tid, None)
            super().abort(ctx, reason)
