"""The snapshot isolation engine — the paper's idealised algorithm (§1).

"A transaction T reads values of shared objects from a snapshot taken at
its start.  The transaction commits only if it passes a write-conflict
detection check: since T started, no other committed transaction has
written to any object that T also wrote to.  If the check fails, T aborts.
Once T commits, its changes become visible to all transactions that take a
snapshot afterwards."

We implement exactly that with a monotonic commit counter:

* ``begin`` takes ``start_ts`` = the current counter value — the snapshot
  contains all transactions with ``commit_ts <= start_ts``;
* ``read`` consults the write buffer first (read-your-writes), then the
  multi-version store at ``start_ts``;
* ``commit`` applies first-committer-wins: abort if any written object has
  a version newer than ``start_ts``; otherwise install all writes at a
  fresh timestamp.

Because every transaction sees *all* previously-committed transactions,
the engine provides the strong session guarantees of Definition 4 (a
session's earlier transactions are always in later snapshots) and its runs
satisfy the SI axioms — Theorem 10(ii) then guarantees the extracted
dependency graphs land in GraphSI, which the test-suite checks on every
recorded run.

Concurrency.  In striped mode reads are entirely lock-free: the start
timestamp plus the store's immutable chains pin the snapshot, so a read
is one binary search.  The commit critical section (the commit mutex)
covers only first-committer-wins validation, the install, and the
clock bump.  The clock is *published last* — writes are installed at
``clock + 1`` and only then does the counter advance — so a concurrent
``begin`` can never observe a timestamp whose versions are still being
installed (snapshots are always closed under the versions they admit).
"""

from __future__ import annotations

from typing import Mapping

from ..core.errors import SnapshotTooOld, TransactionAborted
from ..core.events import Obj, Value
from .engine import BaseEngine, CommitRecord, TxContext
from .store import MVStore


class SIEngine(BaseEngine):
    """Single-node multi-version snapshot isolation with
    first-committer-wins write-conflict detection."""

    def __init__(
        self,
        initial: Mapping[Obj, Value],
        init_tid: str = "t_init",
        lock_mode: str = "striped",
    ):
        super().__init__(initial, init_tid, lock_mode=lock_mode)
        self.store = MVStore(initial, init_writer=init_tid)
        self._clock = 0
        self._active_start_ts: dict = {}

    # ------------------------------------------------------------------
    # BaseEngine hooks
    # ------------------------------------------------------------------

    def _make_context(self, session: str, tid: str) -> TxContext:
        # Reading the clock needs no lock: commits publish it only
        # after their writes are installed, so any observed value
        # denotes a fully-materialised snapshot.
        ctx = TxContext(tid=tid, session=session, start_ts=self._clock)
        with self._session_lock:
            self._active_start_ts[ctx.tid] = ctx.start_ts
        return ctx

    def read(self, ctx: TxContext, obj: Obj) -> Value:
        """Read from the write buffer, else from the start snapshot.

        Lock-free in striped mode (one bisect on the object's immutable
        chain).  A read that needs a vacuumed version aborts the
        transaction (snapshot too old); the client retries with a fresh
        snapshot.
        """
        with self._read_guard:
            ctx.ensure_active()
            if obj in ctx.write_buffer:
                return self._record_read(ctx, obj, ctx.write_buffer[obj])
            try:
                version = self.store.read_at(obj, ctx.start_ts)
            except SnapshotTooOld as exc:
                raise self._validation_failure(
                    ctx, f"snapshot too old: {exc}"
                )
            return self._record_read(ctx, obj, version.value)

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------

    def vacuum(self, aggressive: bool = False) -> int:
        """Discard superseded versions; returns how many were dropped.

        By default the horizon is the oldest *active* snapshot, so no
        running transaction can lose a version it may still read (the
        safe policy).  With ``aggressive=True`` the horizon is the
        current clock regardless of active snapshots — long-running
        transactions may subsequently abort with "snapshot too old",
        reproducing the classic MVCC trade-off.

        Safe to run concurrently with readers: the horizon is computed
        under the session lock, and the store swaps trimmed chains in
        atomically, so a racing reader sees either the old or the new
        chain — never a torn one.  A later ``begin`` always snapshots
        at or above any horizon computed earlier.
        """
        with self._session_lock:
            if aggressive or not self._active_start_ts:
                horizon = self._clock
            else:
                horizon = min(self._active_start_ts.values())
        return self.store.vacuum(horizon)

    def abort(self, ctx: TxContext, reason: str = "client abort") -> None:
        """Abort and release the snapshot's vacuum pin."""
        with self._session_lock:
            self._active_start_ts.pop(ctx.tid, None)
            super().abort(ctx, reason)

    def commit(self, ctx: TxContext) -> CommitRecord:
        """First-committer-wins validation, then atomic install.

        The commit mutex covers validation, timestamp allocation and
        the install; the clock is published after the install so
        concurrent snapshot reads never see a half-visible commit.
        """
        with self.lock:
            ctx.ensure_active()
            for obj in sorted(ctx.write_buffer):
                if self.store.modified_since(obj, ctx.start_ts):
                    raise self._validation_failure(
                        ctx,
                        f"write-write conflict on {obj!r} "
                        f"(first committer wins)",
                    )
            commit_ts = self._clock + 1
            if ctx.write_buffer:
                self.store.install(ctx.write_buffer, commit_ts, ctx.tid)
            record = CommitRecord(
                tid=ctx.tid,
                session=ctx.session,
                start_ts=ctx.start_ts,
                commit_ts=commit_ts,
                events=tuple(ctx.events),
                writes=dict(ctx.write_buffer),
                visible_tids=self._visible_tids(ctx.start_ts),
            )
            with self._session_lock:
                self._active_start_ts.pop(ctx.tid, None)
            self._finish_commit(ctx, record)
            self._clock = commit_ts  # publish: the snapshot frontier moves
            return record

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------

    def _replay_install(self, record: CommitRecord) -> None:
        """Install a replayed commit's writes at its original timestamp
        and move the snapshot frontier there (covers the serializable
        subclass too — replay skips validation either way)."""
        if record.writes:
            self.store.install(record.writes, record.commit_ts, record.tid)
        self._clock = record.commit_ts

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _visible_tids(self, start_ts: int) -> frozenset:
        """The committed transactions included in a snapshot at
        ``start_ts`` (all those that committed no later)."""
        return frozenset(
            rec.tid for rec in self.committed if rec.commit_ts <= start_ts
        )
