"""Engine plumbing shared by the SI / serializable / PSI implementations.

An *engine* executes transactions operationally and records everything
needed to reconstruct the declarative objects of the theory:

* the client-visible :class:`~repro.core.histories.History` (committed
  transactions grouped into sessions, initialisation included);
* an :class:`~repro.core.executions.AbstractExecution` whose VIS/CO
  reflect what the implementation actually did (which snapshot each
  transaction took, in which order transactions committed).

The engines are single-process and deterministic under caller-decided
interleaving (directly or through :mod:`repro.mvcc.runtime`'s
scheduler), so anomaly runs are replayable.

Thread-safety and lock modes.  Every engine runs in one of two modes:

* ``lock_mode="striped"`` (the default) — the fine-grained fast path.
  Snapshot reads take **no engine-wide lock**: a snapshot timestamp
  plus the store's immutable version chains are enough (SI never blocks
  readers, and neither do we).  Commit takes the short
  :attr:`BaseEngine.lock` **commit mutex** covering exactly
  validate + install + timestamp allocation; per-session bookkeeping
  (open sessions, tid allocation, abort counters, vacuum pins) lives
  under its own small :attr:`_session_lock`; per-object chain mutations
  use the store's striped locks.  The lock hierarchy is
  ``commit mutex > session lock > store stripes`` — a thread holding a
  lock may only acquire locks strictly to the right, so the engine is
  deadlock-free by construction.
* ``lock_mode="global-lock"`` — the compatibility mode: every public
  operation additionally serialises under :attr:`BaseEngine.lock`, so
  each operation is one linearizable step exactly as in the original
  coarse-grained engines.  The deterministic replayable scheduler works
  identically in both modes (it is single-threaded, so the locks never
  contend); the mode exists so lock-granularity bugs can be bisected by
  diffing runs.

In both modes, holding :attr:`BaseEngine.lock` across several calls
makes the whole group atomic with respect to *commits* (the service
layer uses this to feed an online monitor in true commit order).  The
single remaining caller obligation is per-session: a session's
transactions must be issued sequentially (the engines check this), so
give each thread its own session.

Transactions follow the client discipline of Section 5: an aborted
transaction raises :class:`TransactionAborted` and is expected to be
resubmitted by the client until it commits (the scheduler does this
automatically).
"""

from __future__ import annotations

import abc
import enum
import re
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from ..core.errors import StoreError, TransactionAborted
from ..core.events import Obj, Op, Value, read as read_op, write as write_op
from ..core.executions import AbstractExecution
from ..core.histories import History
from ..core.relations import Relation
from ..core.transactions import Transaction

LOCK_MODES = ("striped", "global-lock")
"""The engine locking modes (see the module docstring)."""


class _NoLock:
    """A no-op reentrant context manager standing in for a lock."""

    def __enter__(self) -> "_NoLock":
        return self

    def __exit__(self, *exc) -> None:
        return None


class TxStatus(enum.Enum):
    """Lifecycle of an engine transaction."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class TxContext:
    """The mutable state of one running transaction.

    Attributes:
        tid: engine-assigned transaction id.
        session: the session the transaction belongs to.
        start_ts: snapshot timestamp (SI/SER engines) or -1 (PSI).
        write_buffer: uncommitted writes (read-your-writes source).
        events: the operations performed, in program order, with the
            values actually read — the future transaction's event list.
        status: lifecycle state.
    """

    tid: str
    session: str
    start_ts: int
    write_buffer: Dict[Obj, Value] = field(default_factory=dict)
    events: List[Op] = field(default_factory=list)
    status: TxStatus = TxStatus.ACTIVE

    def ensure_active(self) -> None:
        """Raise :class:`StoreError` unless the transaction is active."""
        if self.status is not TxStatus.ACTIVE:
            raise StoreError(
                f"transaction {self.tid} is {self.status.value}, not active"
            )


@dataclass(frozen=True)
class CommitRecord:
    """What the engine remembers about a committed transaction."""

    tid: str
    session: str
    start_ts: int
    commit_ts: int
    events: Tuple[Op, ...]
    writes: Mapping[Obj, Value]
    visible_tids: frozenset
    """The committed transactions included in this one's snapshot."""


@dataclass
class EngineStats:
    """Commit/abort counters, including abort reasons."""

    commits: int = 0
    aborts: int = 0
    abort_reasons: Dict[str, int] = field(default_factory=dict)

    def record_abort(self, reason: str) -> None:
        """Count one abort with its reason key."""
        self.aborts += 1
        self.abort_reasons[reason] = self.abort_reasons.get(reason, 0) + 1


class BaseEngine(abc.ABC):
    """Common API of the operational engines.

    Subclasses implement :meth:`_make_context`, :meth:`read` and
    :meth:`commit`; writes and aborts are shared.  Sessions are
    identified by strings; within a session the caller must run
    transactions sequentially (the engines check this).

    Args:
        initial: initial object values.
        init_tid: tid of the implied initialisation transaction.
        lock_mode: ``"striped"`` (fine-grained, the default) or
            ``"global-lock"`` (every operation under one lock — the
            original coarse-grained behaviour, kept for bisection).
    """

    def __init__(
        self,
        initial: Mapping[Obj, Value],
        init_tid: str = "t_init",
        lock_mode: str = "striped",
    ):
        if not initial:
            raise StoreError("engine needs at least one initial object")
        if lock_mode not in LOCK_MODES:
            raise StoreError(
                f"unknown lock_mode {lock_mode!r}; expected one of "
                f"{LOCK_MODES}"
            )
        self.initial: Dict[Obj, Value] = dict(initial)
        self.init_tid = init_tid
        self.lock_mode = lock_mode
        self.stats = EngineStats()
        self.committed: List[CommitRecord] = []
        self.lock = threading.RLock()
        """The commit mutex: validate + install + timestamp allocation
        happen under it, so commits are totally ordered.  Callers may
        hold it across several calls to group them into one atomic
        action with respect to commits (e.g. commit + monitor
        notification).  In ``global-lock`` mode every other operation
        serialises under it too."""
        if lock_mode == "global-lock":
            # One lock for everything: session bookkeeping and reads
            # alias the commit mutex, restoring operation-level global
            # serialisation.
            self._session_lock: threading.RLock = self.lock
            self._read_guard = self.lock
        else:
            self._session_lock = threading.RLock()
            """Small leaf lock for per-session state: open sessions,
            tid allocation, abort counters, subclass vacuum pins.
            Never held while acquiring another lock."""
            self._read_guard = _NoLock()
            """Snapshot reads are lock-free in striped mode."""
        self._next_tid = 1
        self._open_sessions: Set[str] = set()
        # Reconstruction cache: committed[i] converted to a Transaction,
        # filled lazily by history()/abstract_execution().  `committed`
        # is append-only, so a converted prefix never invalidates.
        self._reconstruction_lock = threading.Lock()
        self._converted: List[Transaction] = []

    # ------------------------------------------------------------------
    # Transaction API
    # ------------------------------------------------------------------

    def begin(self, session: str) -> TxContext:
        """Start a transaction in ``session`` (one at a time per session)."""
        with self._session_lock:
            if session in self._open_sessions:
                raise StoreError(
                    f"session {session!r} already has an active transaction"
                )
            self._open_sessions.add(session)
            tid = self._allocate_tid()
        try:
            return self._make_context(session, tid)
        except BaseException:
            with self._session_lock:
                self._open_sessions.discard(session)
            raise

    def _allocate_tid(self) -> str:
        tid = f"t{self._next_tid}"
        self._next_tid += 1
        return tid

    @abc.abstractmethod
    def _make_context(self, session: str, tid: str) -> TxContext:
        """Create the context (take the snapshot)."""

    @abc.abstractmethod
    def read(self, ctx: TxContext, obj: Obj) -> Value:
        """Read ``obj``: own writes first, then the snapshot."""

    def write(self, ctx: TxContext, obj: Obj, value: Value) -> None:
        """Buffer a write of ``value`` to ``obj``."""
        with self._read_guard:
            ctx.ensure_active()
            if obj not in self.initial:
                raise StoreError(f"unknown object {obj!r}")
            ctx.write_buffer[obj] = value
            ctx.events.append(write_op(obj, value))

    @abc.abstractmethod
    def commit(self, ctx: TxContext) -> CommitRecord:
        """Validate and commit; raise :class:`TransactionAborted` on
        conflict (the transaction is then aborted and must be retried as
        a fresh transaction)."""

    def abort(self, ctx: TxContext, reason: str = "client abort") -> None:
        """Abort an active transaction (also used internally on
        validation failure)."""
        with self._session_lock:
            ctx.ensure_active()
            ctx.status = TxStatus.ABORTED
            self._open_sessions.discard(ctx.session)
            self.stats.record_abort(reason)

    def _finish_commit(self, ctx: TxContext, record: CommitRecord) -> None:
        """Publish a validated commit (caller holds the commit mutex)."""
        ctx.status = TxStatus.COMMITTED
        self.committed.append(record)
        self.stats.commits += 1
        with self._session_lock:
            self._open_sessions.discard(ctx.session)

    def _validation_failure(
        self, ctx: TxContext, reason: str
    ) -> TransactionAborted:
        """Abort ``ctx`` and build the exception to raise."""
        self.abort(ctx, reason)
        return TransactionAborted(ctx.tid, reason)

    def _record_read(self, ctx: TxContext, obj: Obj, value: Value) -> Value:
        ctx.events.append(read_op(obj, value))
        return value

    # ------------------------------------------------------------------
    # Replay (crash recovery)
    # ------------------------------------------------------------------

    _TID_PATTERN = re.compile(r"^t(\d+)$")

    def replay_commit(self, record: CommitRecord) -> None:
        """Install an already-validated commit from a durable log.

        Used by :mod:`repro.wal.recovery`: the record won its validation
        race in the original run, so no conflict check is re-run — the
        writes are installed, the commit log and counters are updated,
        and tid allocation is advanced past the replayed tid so the
        recovered engine can keep serving fresh transactions.  The
        stored record object itself is appended, making the recovered
        ``committed`` list bit-identical to the producer's prefix.

        Raises:
            StoreError: when transactions are in flight (replay requires
                a quiescent engine) or the record's commit timestamp
                does not extend the commit order.
        """
        with self.lock:
            with self._session_lock:
                if self._open_sessions:
                    raise StoreError(
                        f"cannot replay into an engine with active "
                        f"transactions: {sorted(self._open_sessions)}"
                    )
            if self.committed and record.commit_ts <= self.committed[-1].commit_ts:
                raise StoreError(
                    f"replayed commit #{record.commit_ts} ({record.tid}) "
                    f"does not extend the commit order (last is "
                    f"#{self.committed[-1].commit_ts})"
                )
            self._replay_install(record)
            self.committed.append(record)
            self.stats.commits += 1
            match = self._TID_PATTERN.match(record.tid)
            if match:
                with self._session_lock:
                    self._next_tid = max(
                        self._next_tid, int(match.group(1)) + 1
                    )

    @abc.abstractmethod
    def _replay_install(self, record: CommitRecord) -> None:
        """Apply a replayed commit's writes to the engine's store and
        advance its clock (caller holds the commit mutex; no validation,
        no session bookkeeping)."""

    # ------------------------------------------------------------------
    # Reconstruction of declarative objects
    # ------------------------------------------------------------------

    def initialisation(self) -> Transaction:
        """The initialisation transaction implied by the initial state."""
        from ..core.transactions import transaction

        ops = [write_op(obj, self.initial[obj]) for obj in sorted(self.initial)]
        return transaction(self.init_tid, *ops)

    def _committed_snapshot(self) -> List[CommitRecord]:
        """A stable prefix of the commit log (under the commit mutex)."""
        with self.lock:
            return list(self.committed)

    def _transactions_for(
        self, committed: List[CommitRecord]
    ) -> List[Transaction]:
        """Committed records as Transactions, via the incremental cache.

        Only records beyond the cached prefix are converted; repeated
        reconstruction calls during a run never re-convert old records.
        Runs outside the engine locks (conversion can be expensive), so
        it never blocks the transaction hot path.
        """
        with self._reconstruction_lock:
            while len(self._converted) < len(committed):
                rec = committed[len(self._converted)]
                self._converted.append(
                    Transaction(
                        rec.tid,
                        tuple(
                            _indexed_event(i, op)
                            for i, op in enumerate(rec.events)
                        ),
                    )
                )
            return self._converted[: len(committed)]

    def history(self) -> History:
        """The history of committed transactions, initialisation first.

        Sessions appear in first-commit order; within a session,
        transactions appear in execution order.  Only the commit-log
        snapshot happens under the engine lock; all Transaction
        construction runs outside it (and is cached across calls).
        """
        committed = self._committed_snapshot()
        return self._history_from(committed)

    def _history_from(self, committed: List[CommitRecord]) -> History:
        txns = self._transactions_for(committed)
        sessions: Dict[str, List[Transaction]] = {}
        order: List[str] = []
        for rec, t in zip(committed, txns):
            if rec.session not in sessions:
                sessions[rec.session] = []
                order.append(rec.session)
            sessions[rec.session].append(t)
        all_sessions = [(self.initialisation(),)] + [
            tuple(sessions[s]) for s in order
        ]
        return History(tuple(all_sessions))

    def abstract_execution(self) -> AbstractExecution:
        """The abstract execution realised by this run.

        VIS edges are the recorded snapshot inclusions (plus the
        initialisation transaction, visible to everyone); CO follows the
        engine's commit timestamps.  Built from one consistent
        commit-log snapshot, with all Relation construction outside the
        engine lock.
        """
        committed = self._committed_snapshot()
        h = self._history_from(committed)
        records = sorted(committed, key=lambda r: r.commit_ts)
        by_tid = {t.tid: t for t in h.transactions}
        init = by_tid[self.init_tid]
        vis: Set[Tuple[Transaction, Transaction]] = set()
        co_sequence = [init] + [by_tid[r.tid] for r in records]
        for rec in records:
            s = by_tid[rec.tid]
            vis.add((init, s))
            for tid in rec.visible_tids:
                if tid in by_tid and tid != rec.tid:
                    vis.add((by_tid[tid], s))
        co = Relation.total_order(co_sequence)
        return AbstractExecution(h, Relation(vis, h.transactions), co)


def _indexed_event(index: int, op: Op):
    from ..core.events import Event

    return Event(index, op)
