"""Engine plumbing shared by the SI / serializable / PSI implementations.

An *engine* executes transactions operationally and records everything
needed to reconstruct the declarative objects of the theory:

* the client-visible :class:`~repro.core.histories.History` (committed
  transactions grouped into sessions, initialisation included);
* an :class:`~repro.core.executions.AbstractExecution` whose VIS/CO
  reflect what the implementation actually did (which snapshot each
  transaction took, in which order transactions committed).

The engines are single-process and deterministic: all interleaving is
decided by the caller (directly or through
:mod:`repro.mvcc.runtime`'s scheduler), so anomaly runs are replayable.

Thread-safety: every public engine operation (``begin``, ``read``,
``write``, ``commit``, ``abort``, the reconstruction views) is atomic
under the engine's reentrant :attr:`BaseEngine.lock`, so an engine may
be hammered from many threads — each operation is one linearizable
step, and the interleaving of steps is then decided by the OS scheduler
instead of a replayable schedule.  Holding :attr:`BaseEngine.lock`
across several calls makes the whole group atomic; the service layer
(:mod:`repro.service`) uses this to feed an online monitor in true
commit order.  The single remaining caller obligation is per-session:
a session's transactions must be issued sequentially (the engines
check this), so give each thread its own session.

Transactions follow the client discipline of Section 5: an aborted
transaction raises :class:`TransactionAborted` and is expected to be
resubmitted by the client until it commits (the scheduler does this
automatically).
"""

from __future__ import annotations

import abc
import enum
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from ..core.errors import StoreError, TransactionAborted
from ..core.events import Obj, Op, Value, read as read_op, write as write_op
from ..core.executions import AbstractExecution
from ..core.histories import History
from ..core.relations import Relation
from ..core.transactions import Transaction


class TxStatus(enum.Enum):
    """Lifecycle of an engine transaction."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class TxContext:
    """The mutable state of one running transaction.

    Attributes:
        tid: engine-assigned transaction id.
        session: the session the transaction belongs to.
        start_ts: snapshot timestamp (SI/SER engines) or -1 (PSI).
        write_buffer: uncommitted writes (read-your-writes source).
        events: the operations performed, in program order, with the
            values actually read — the future transaction's event list.
        status: lifecycle state.
    """

    tid: str
    session: str
    start_ts: int
    write_buffer: Dict[Obj, Value] = field(default_factory=dict)
    events: List[Op] = field(default_factory=list)
    status: TxStatus = TxStatus.ACTIVE

    def ensure_active(self) -> None:
        """Raise :class:`StoreError` unless the transaction is active."""
        if self.status is not TxStatus.ACTIVE:
            raise StoreError(
                f"transaction {self.tid} is {self.status.value}, not active"
            )


@dataclass(frozen=True)
class CommitRecord:
    """What the engine remembers about a committed transaction."""

    tid: str
    session: str
    start_ts: int
    commit_ts: int
    events: Tuple[Op, ...]
    writes: Mapping[Obj, Value]
    visible_tids: frozenset
    """The committed transactions included in this one's snapshot."""


@dataclass
class EngineStats:
    """Commit/abort counters, including abort reasons."""

    commits: int = 0
    aborts: int = 0
    abort_reasons: Dict[str, int] = field(default_factory=dict)

    def record_abort(self, reason: str) -> None:
        """Count one abort with its reason key."""
        self.aborts += 1
        self.abort_reasons[reason] = self.abort_reasons.get(reason, 0) + 1


class BaseEngine(abc.ABC):
    """Common API of the operational engines.

    Subclasses implement :meth:`begin`, :meth:`read` and :meth:`commit`;
    writes and aborts are shared.  Sessions are identified by strings;
    within a session the caller must run transactions sequentially (the
    engines check this).
    """

    def __init__(self, initial: Mapping[Obj, Value], init_tid: str = "t_init"):
        if not initial:
            raise StoreError("engine needs at least one initial object")
        self.initial: Dict[Obj, Value] = dict(initial)
        self.init_tid = init_tid
        self.stats = EngineStats()
        self.committed: List[CommitRecord] = []
        self.lock = threading.RLock()
        """Reentrant lock making each engine operation one atomic step.

        Callers may hold it across several calls to group them into one
        atomic action (e.g. commit + monitor notification)."""
        self._next_tid = 1
        self._open_sessions: Set[str] = set()

    # ------------------------------------------------------------------
    # Transaction API
    # ------------------------------------------------------------------

    def begin(self, session: str) -> TxContext:
        """Start a transaction in ``session`` (one at a time per session)."""
        with self.lock:
            if session in self._open_sessions:
                raise StoreError(
                    f"session {session!r} already has an active transaction"
                )
            self._open_sessions.add(session)
            ctx = self._make_context(session)
            return ctx

    def _allocate_tid(self) -> str:
        tid = f"t{self._next_tid}"
        self._next_tid += 1
        return tid

    @abc.abstractmethod
    def _make_context(self, session: str) -> TxContext:
        """Create the context (take the snapshot)."""

    @abc.abstractmethod
    def read(self, ctx: TxContext, obj: Obj) -> Value:
        """Read ``obj``: own writes first, then the snapshot."""

    def write(self, ctx: TxContext, obj: Obj, value: Value) -> None:
        """Buffer a write of ``value`` to ``obj``."""
        with self.lock:
            ctx.ensure_active()
            if obj not in self.initial:
                raise StoreError(f"unknown object {obj!r}")
            ctx.write_buffer[obj] = value
            ctx.events.append(write_op(obj, value))

    @abc.abstractmethod
    def commit(self, ctx: TxContext) -> CommitRecord:
        """Validate and commit; raise :class:`TransactionAborted` on
        conflict (the transaction is then aborted and must be retried as
        a fresh transaction)."""

    def abort(self, ctx: TxContext, reason: str = "client abort") -> None:
        """Abort an active transaction (also used internally on
        validation failure)."""
        with self.lock:
            ctx.ensure_active()
            ctx.status = TxStatus.ABORTED
            self._open_sessions.discard(ctx.session)
            self.stats.record_abort(reason)

    def _finish_commit(self, ctx: TxContext, record: CommitRecord) -> None:
        ctx.status = TxStatus.COMMITTED
        self._open_sessions.discard(ctx.session)
        self.committed.append(record)
        self.stats.commits += 1

    def _validation_failure(
        self, ctx: TxContext, reason: str
    ) -> TransactionAborted:
        """Abort ``ctx`` and build the exception to raise."""
        self.abort(ctx, reason)
        return TransactionAborted(ctx.tid, reason)

    def _record_read(self, ctx: TxContext, obj: Obj, value: Value) -> Value:
        ctx.events.append(read_op(obj, value))
        return value

    # ------------------------------------------------------------------
    # Reconstruction of declarative objects
    # ------------------------------------------------------------------

    def initialisation(self) -> Transaction:
        """The initialisation transaction implied by the initial state."""
        from ..core.transactions import transaction

        ops = [write_op(obj, self.initial[obj]) for obj in sorted(self.initial)]
        return transaction(self.init_tid, *ops)

    def history(self) -> History:
        """The history of committed transactions, initialisation first.

        Sessions appear in first-commit order; within a session,
        transactions appear in execution order.
        """
        sessions: Dict[str, List[Transaction]] = {}
        order: List[str] = []
        with self.lock:
            committed = list(self.committed)
        for rec in committed:
            t = Transaction(
                rec.tid,
                tuple(
                    _indexed_event(i, op) for i, op in enumerate(rec.events)
                ),
            )
            if rec.session not in sessions:
                sessions[rec.session] = []
                order.append(rec.session)
            sessions[rec.session].append(t)
        all_sessions = [(self.initialisation(),)] + [
            tuple(sessions[s]) for s in order
        ]
        return History(tuple(all_sessions))

    def abstract_execution(self) -> AbstractExecution:
        """The abstract execution realised by this run.

        VIS edges are the recorded snapshot inclusions (plus the
        initialisation transaction, visible to everyone); CO follows the
        engine's commit timestamps.
        """
        with self.lock:
            h = self.history()
            records = sorted(self.committed, key=lambda r: r.commit_ts)
        by_tid = {t.tid: t for t in h.transactions}
        init = by_tid[self.init_tid]
        vis: Set[Tuple[Transaction, Transaction]] = set()
        co_sequence = [init] + [by_tid[r.tid] for r in records]
        for rec in records:
            s = by_tid[rec.tid]
            vis.add((init, s))
            for tid in rec.visible_tids:
                if tid in by_tid and tid != rec.tid:
                    vis.add((by_tid[tid], s))
        co = Relation.total_order(co_sequence)
        return AbstractExecution(h, Relation(vis, h.transactions), co)


def _indexed_event(index: int, op: Op):
    from ..core.events import Event

    return Event(index, op)
