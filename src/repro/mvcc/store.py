"""A multi-version object store.

The operational substrate keeps, per object, the full list of committed
versions tagged with the commit timestamp and writer transaction.  Reads
at a snapshot timestamp return the latest version no newer than the
snapshot — exactly the "reads from a snapshot taken at start" behaviour of
the idealised SI algorithm sketched in the paper's introduction.

Initial versions are installed at timestamp 0 by a designated
initialisation writer (default tid ``t_init``), mirroring the paper's
special transaction writing initial values of all objects.

Concurrency model.  Version chains are append-only: a committed version
is immutable and chains only ever grow at the tail (vacuum swaps in a
fresh chain object rather than mutating one in place).  Snapshot reads
(:meth:`MVStore.read_at`, :meth:`MVStore.latest`,
:meth:`MVStore.modified_since`) therefore take **no lock at all**: they
grab the chain reference once and binary-search an immutable prefix.
Mutations (:meth:`install`, :meth:`vacuum`) synchronise per object
through a small array of striped locks (``hash(obj) → stripe``), so
writers of disjoint objects never contend.  Callers must still serialise
*timestamp allocation* (the engines do, inside their commit critical
section): versions of one object are installed in strictly increasing
timestamp order.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..core.errors import SnapshotTooOld, StoreError
from ..core.events import Obj, Value
from ..faults import FAULTS

INIT_WRITER = "t_init"
"""Default tid of the initialisation writer."""

DEFAULT_STRIPES = 16
"""Default number of lock stripes guarding chain mutations."""


@dataclass(frozen=True)
class Version:
    """One committed version of an object.

    Attributes:
        value: the stored value.
        commit_ts: the writer's commit timestamp (0 for initial versions).
        writer: the tid of the writing transaction.
    """

    value: Value
    commit_ts: int
    writer: str


class _VersionChain:
    """One object's committed versions plus a parallel timestamp list.

    ``ts[i] == versions[i].commit_ts`` for every published index, kept
    as a plain int list so :func:`bisect.bisect_right` probes touch no
    Python attribute access.  Appends publish ``versions`` first and
    ``ts`` second, so ``len(ts)`` is always a safe upper bound for
    lock-free readers: every index below it has both entries final.
    """

    __slots__ = ("versions", "ts")

    def __init__(self, versions: List[Version]):
        self.versions = versions
        self.ts = [v.commit_ts for v in versions]

    def append(self, version: Version) -> None:
        self.versions.append(version)
        self.ts.append(version.commit_ts)


class MVStore:
    """A multi-version store keyed by object name.

    Versions per object are kept sorted by commit timestamp; timestamps
    are assigned by the engines (strictly increasing), so at most one
    version per object per timestamp exists.
    """

    def __init__(
        self,
        initial: Mapping[Obj, Value],
        init_writer: str = INIT_WRITER,
        stripes: int = DEFAULT_STRIPES,
    ):
        if not initial:
            raise StoreError("store needs at least one initial object")
        if stripes < 1:
            raise StoreError(f"need at least one lock stripe, got {stripes}")
        # The object universe is fixed at construction, so the dict
        # itself is never resized — lock-free readers may look chains up
        # without synchronisation.
        self._chains: Dict[Obj, _VersionChain] = {
            obj: _VersionChain([Version(value, 0, init_writer)])
            for obj, value in initial.items()
        }
        self._stripes = [threading.Lock() for _ in range(stripes)]
        self.init_writer = init_writer
        self.initial: Dict[Obj, Value] = dict(initial)

    # ------------------------------------------------------------------
    # Internal accessors
    # ------------------------------------------------------------------

    def _stripe(self, obj: Obj) -> threading.Lock:
        return self._stripes[hash(obj) % len(self._stripes)]

    def _chain(self, obj: Obj) -> _VersionChain:
        """The live chain of ``obj`` — the no-copy internal read path.

        The returned chain is append-only and safe to read without a
        lock (indices below ``len(chain.ts)`` are immutable); it must
        never be mutated by callers.
        """
        try:
            return self._chains[obj]
        except KeyError:
            raise StoreError(f"unknown object {obj!r}") from None

    # ------------------------------------------------------------------
    # Reads (lock-free)
    # ------------------------------------------------------------------

    @property
    def objects(self) -> List[Obj]:
        """All objects the store knows about (sorted)."""
        return sorted(self._chains)

    def versions(self, obj: Obj) -> List[Version]:
        """All committed versions of ``obj``, oldest first (a copy —
        the public, mutation-safe contract)."""
        chain = self._chain(obj)
        return chain.versions[: len(chain.ts)]

    def read_at(self, obj: Obj, snapshot_ts: int) -> Version:
        """The latest version of ``obj`` with ``commit_ts <= snapshot_ts``.

        This is the snapshot read of the idealised SI algorithm —
        O(log versions) via binary search, no lock taken.

        Raises:
            SnapshotTooOld: when garbage collection discarded every
                version old enough for the snapshot (newer versions
                exist, so the object is known but its history is gone).
        """
        if FAULTS.armed:
            FAULTS.fire("store.read", obj=obj, snapshot_ts=snapshot_ts)
        chain = self._chain(obj)
        ts = chain.ts
        index = bisect_right(ts, snapshot_ts, 0, len(ts))
        if index == 0:
            raise SnapshotTooOld(
                f"no version of {obj!r} at or before timestamp "
                f"{snapshot_ts}: vacuumed (oldest retained is "
                f"{ts[0]})"
            )
        return chain.versions[index - 1]

    def latest(self, obj: Obj) -> Version:
        """The newest committed version of ``obj``."""
        chain = self._chain(obj)
        return chain.versions[len(chain.ts) - 1]

    def latest_commit_ts(self, obj: Obj) -> int:
        """The commit timestamp of the newest version of ``obj``."""
        chain = self._chain(obj)
        return chain.ts[len(chain.ts) - 1]

    def modified_since(self, obj: Obj, ts: int) -> bool:
        """True iff some committed version of ``obj`` is newer than ``ts``.

        This is the first-committer-wins write-conflict test: a committing
        transaction with start timestamp ``ts`` must abort if any object it
        wrote was modified since.  O(1): only the chain tail is examined.
        """
        return self.latest_commit_ts(obj) > ts

    def snapshot_at(self, snapshot_ts: int) -> Dict[Obj, Value]:
        """The full object state visible at ``snapshot_ts`` (diagnostics)."""
        return {
            obj: self.read_at(obj, snapshot_ts).value
            for obj in self._chains
        }

    # ------------------------------------------------------------------
    # Mutations (striped locking)
    # ------------------------------------------------------------------

    def install(
        self, writes: Mapping[Obj, Value], commit_ts: int, writer: str
    ) -> None:
        """Atomically install a transaction's writes at ``commit_ts``.

        Installs at distinct timestamps must be externally serialised
        (the engines call this inside their commit critical section);
        the striped locks only order each append against a concurrent
        :meth:`vacuum` of the same object.
        """
        for obj in writes:
            if obj not in self._chains:
                raise StoreError(f"unknown object {obj!r}")
            if self.latest_commit_ts(obj) >= commit_ts:
                raise StoreError(
                    f"commit timestamp {commit_ts} not newer than latest "
                    f"version of {obj!r}"
                )
        for obj, value in writes.items():
            with self._stripe(obj):
                if FAULTS.armed:
                    # Deliberately inside the stripe lock: a delay here
                    # models a descheduled writer pinning the stripe
                    # against concurrent vacuums and installs.
                    FAULTS.fire("store.install", obj=obj, writer=writer)
                self._chains[obj].append(Version(value, commit_ts, writer))

    def vacuum(self, horizon_ts: int) -> int:
        """Discard versions superseded at or before ``horizon_ts``.

        For each object, the newest version with
        ``commit_ts <= horizon_ts`` is retained (it is still the visible
        version for snapshots at the horizon), along with everything
        newer; older versions are discarded.  Returns the number of
        versions dropped.

        Safe to run concurrently with lock-free readers: the trimmed
        chain is built aside and swapped in as a whole, so a reader
        holds either the complete old chain or the complete new one —
        a racing read of a dropped version yields at worst
        :class:`SnapshotTooOld`, never a wrong value.
        """
        dropped = 0
        for obj in self._chains:
            with self._stripe(obj):
                chain = self._chains[obj]
                published = len(chain.ts)
                cut = bisect_right(chain.ts, horizon_ts, 0, published) - 1
                if cut > 0:
                    self._chains[obj] = _VersionChain(
                        chain.versions[cut:published]
                    )
                    dropped += cut
        return dropped
