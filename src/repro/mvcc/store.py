"""A multi-version object store.

The operational substrate keeps, per object, the full list of committed
versions tagged with the commit timestamp and writer transaction.  Reads
at a snapshot timestamp return the latest version no newer than the
snapshot — exactly the "reads from a snapshot taken at start" behaviour of
the idealised SI algorithm sketched in the paper's introduction.

Initial versions are installed at timestamp 0 by a designated
initialisation writer (default tid ``t_init``), mirroring the paper's
special transaction writing initial values of all objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..core.errors import SnapshotTooOld, StoreError
from ..core.events import Obj, Value

INIT_WRITER = "t_init"
"""Default tid of the initialisation writer."""


@dataclass(frozen=True)
class Version:
    """One committed version of an object.

    Attributes:
        value: the stored value.
        commit_ts: the writer's commit timestamp (0 for initial versions).
        writer: the tid of the writing transaction.
    """

    value: Value
    commit_ts: int
    writer: str


class MVStore:
    """A multi-version store keyed by object name.

    Versions per object are kept sorted by commit timestamp; timestamps
    are assigned by the engines (strictly increasing), so at most one
    version per object per timestamp exists.
    """

    def __init__(
        self,
        initial: Mapping[Obj, Value],
        init_writer: str = INIT_WRITER,
    ):
        if not initial:
            raise StoreError("store needs at least one initial object")
        self._versions: Dict[Obj, List[Version]] = {
            obj: [Version(value, 0, init_writer)]
            for obj, value in initial.items()
        }
        self.init_writer = init_writer
        self.initial: Dict[Obj, Value] = dict(initial)

    @property
    def objects(self) -> List[Obj]:
        """All objects the store knows about (sorted)."""
        return sorted(self._versions)

    def versions(self, obj: Obj) -> List[Version]:
        """All committed versions of ``obj``, oldest first."""
        try:
            return list(self._versions[obj])
        except KeyError:
            raise StoreError(f"unknown object {obj!r}") from None

    def read_at(self, obj: Obj, snapshot_ts: int) -> Version:
        """The latest version of ``obj`` with ``commit_ts <= snapshot_ts``.

        This is the snapshot read of the idealised SI algorithm.

        Raises:
            SnapshotTooOld: when garbage collection discarded every
                version old enough for the snapshot (newer versions
                exist, so the object is known but its history is gone).
        """
        versions = self.versions(obj)
        candidates = [v for v in versions if v.commit_ts <= snapshot_ts]
        if not candidates:
            raise SnapshotTooOld(
                f"no version of {obj!r} at or before timestamp "
                f"{snapshot_ts}: vacuumed (oldest retained is "
                f"{versions[0].commit_ts})"
            )
        return candidates[-1]

    def vacuum(self, horizon_ts: int) -> int:
        """Discard versions superseded at or before ``horizon_ts``.

        For each object, the newest version with
        ``commit_ts <= horizon_ts`` is retained (it is still the visible
        version for snapshots at the horizon), along with everything
        newer; older versions are discarded.  Returns the number of
        versions dropped.
        """
        dropped = 0
        for obj, versions in self._versions.items():
            keep_from = 0
            for i, version in enumerate(versions):
                if version.commit_ts <= horizon_ts:
                    keep_from = i
            if keep_from > 0:
                dropped += keep_from
                self._versions[obj] = versions[keep_from:]
        return dropped

    def latest(self, obj: Obj) -> Version:
        """The newest committed version of ``obj``."""
        return self.versions(obj)[-1]

    def latest_commit_ts(self, obj: Obj) -> int:
        """The commit timestamp of the newest version of ``obj``."""
        return self.latest(obj).commit_ts

    def modified_since(self, obj: Obj, ts: int) -> bool:
        """True iff some committed version of ``obj`` is newer than ``ts``.

        This is the first-committer-wins write-conflict test: a committing
        transaction with start timestamp ``ts`` must abort if any object it
        wrote was modified since.
        """
        return self.latest_commit_ts(obj) > ts

    def install(
        self, writes: Mapping[Obj, Value], commit_ts: int, writer: str
    ) -> None:
        """Atomically install a transaction's writes at ``commit_ts``."""
        for obj in writes:
            if obj not in self._versions:
                raise StoreError(f"unknown object {obj!r}")
            if self._versions[obj][-1].commit_ts >= commit_ts:
                raise StoreError(
                    f"commit timestamp {commit_ts} not newer than latest "
                    f"version of {obj!r}"
                )
        for obj, value in writes.items():
            self._versions[obj].append(Version(value, commit_ts, writer))

    def snapshot_at(self, snapshot_ts: int) -> Dict[Obj, Value]:
        """The full object state visible at ``snapshot_ts`` (diagnostics)."""
        return {
            obj: self.read_at(obj, snapshot_ts).value
            for obj in self._versions
        }
