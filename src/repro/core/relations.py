"""A small algebra of finite binary relations.

The paper's proofs manipulate relations over transactions with union,
relational (sequential) composition ``;``, inverses, reflexive closure
``R? = R ∪ id``, transitive closure ``R+`` and reflexive-transitive closure
``R*``, together with predicates such as acyclicity, irreflexivity and
totality.  This module implements exactly that vocabulary over finite sets of
hashable elements, so the code of the characterisation (Lemma 15,
Theorem 10) can be written as a direct transcription of the paper.

:class:`Relation` is immutable; every operation returns a fresh relation.
A relation optionally carries a *universe* — the carrier set over which
identity-dependent operations (``reflexive``, ``is_total_on`` with no
argument, complements) are interpreted.  Unions and compositions merge
universes.

The implementation favours clarity over asymptotic cleverness, but closures
use breadth-first reachability per source node (O(V·E)), which comfortably
handles the graph sizes used in the analyses and benchmarks (thousands of
transactions).
"""

from __future__ import annotations

from collections import deque
from typing import (
    AbstractSet,
    Callable,
    Dict,
    FrozenSet,
    Generic,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    TypeVar,
)

T = TypeVar("T", bound=Hashable)

Pair = Tuple[T, T]


class Relation(Generic[T]):
    """An immutable finite binary relation over hashable elements.

    Args:
        pairs: the pairs ``(a, b)`` meaning ``a R b``.
        universe: optional carrier set; defaults to the field (elements
            appearing in some pair).  Operations that need identity edges
            (``reflexive``, ``reflexive_transitive_closure``) use it.
    """

    __slots__ = ("_pairs", "_universe", "_succ", "_pred")

    def __init__(
        self,
        pairs: Iterable[Pair] = (),
        universe: Optional[Iterable[T]] = None,
    ):
        self._pairs: FrozenSet[Pair] = frozenset(pairs)
        field: Set[T] = set()
        for a, b in self._pairs:
            field.add(a)
            field.add(b)
        if universe is None:
            self._universe: FrozenSet[T] = frozenset(field)
        else:
            self._universe = frozenset(universe) | frozenset(field)
        self._succ: Optional[Dict[T, Set[T]]] = None
        self._pred: Optional[Dict[T, Set[T]]] = None

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------

    @property
    def pairs(self) -> FrozenSet[Pair]:
        """The set of pairs of the relation."""
        return self._pairs

    @property
    def universe(self) -> FrozenSet[T]:
        """The carrier set (always a superset of the field)."""
        return self._universe

    @property
    def field(self) -> FrozenSet[T]:
        """Elements that appear in at least one pair."""
        elems: Set[T] = set()
        for a, b in self._pairs:
            elems.add(a)
            elems.add(b)
        return frozenset(elems)

    def __contains__(self, pair: Pair) -> bool:
        return pair in self._pairs

    def __iter__(self) -> Iterator[Pair]:
        return iter(self._pairs)

    def __len__(self) -> int:
        return len(self._pairs)

    def __bool__(self) -> bool:
        return bool(self._pairs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._pairs == other._pairs

    def __hash__(self) -> int:
        return hash(self._pairs)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"({a!r}, {b!r})" for a, b in sorted(self._pairs, key=repr)
        )
        return f"Relation({{{inner}}})"

    # ------------------------------------------------------------------
    # Adjacency views (cached)
    # ------------------------------------------------------------------

    def successors_map(self) -> Dict[T, Set[T]]:
        """Adjacency map ``a -> {b | a R b}`` (cached, do not mutate)."""
        if self._succ is None:
            succ: Dict[T, Set[T]] = {}
            for a, b in self._pairs:
                succ.setdefault(a, set()).add(b)
            self._succ = succ
        return self._succ

    def predecessors_map(self) -> Dict[T, Set[T]]:
        """Adjacency map ``b -> {a | a R b}`` (cached, do not mutate)."""
        if self._pred is None:
            pred: Dict[T, Set[T]] = {}
            for a, b in self._pairs:
                pred.setdefault(b, set()).add(a)
            self._pred = pred
        return self._pred

    def successors(self, a: T) -> FrozenSet[T]:
        """The image ``R(a) = {b | a R b}``."""
        return frozenset(self.successors_map().get(a, set()))

    def predecessors(self, b: T) -> FrozenSet[T]:
        """The pre-image ``R^{-1}(b) = {a | a R b}`` (paper's notation)."""
        return frozenset(self.predecessors_map().get(b, set()))

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------

    def union(self, *others: "Relation[T]") -> "Relation[T]":
        """Union of this relation with ``others``; universes are merged."""
        pairs: Set[Pair] = set(self._pairs)
        universe: Set[T] = set(self._universe)
        for other in others:
            pairs |= other._pairs
            universe |= other._universe
        return Relation(pairs, universe)

    def __or__(self, other: "Relation[T]") -> "Relation[T]":
        return self.union(other)

    def intersection(self, other: "Relation[T]") -> "Relation[T]":
        """Intersection of two relations."""
        return Relation(self._pairs & other._pairs, self._universe | other._universe)

    def __and__(self, other: "Relation[T]") -> "Relation[T]":
        return self.intersection(other)

    def difference(self, other: "Relation[T]") -> "Relation[T]":
        """Pairs of this relation not in ``other``."""
        return Relation(self._pairs - other._pairs, self._universe)

    def __sub__(self, other: "Relation[T]") -> "Relation[T]":
        return self.difference(other)

    def compose(self, other: "Relation[T]") -> "Relation[T]":
        """Sequential composition ``self ; other``.

        ``(a, b) ∈ self ; other`` iff there exists ``c`` with
        ``(a, c) ∈ self`` and ``(c, b) ∈ other`` — the paper's ``R1 ; R2``.
        """
        other_succ = other.successors_map()
        pairs: Set[Pair] = set()
        for a, c in self._pairs:
            for b in other_succ.get(c, ()):
                pairs.add((a, b))
        return Relation(pairs, self._universe | other._universe)

    def inverse(self) -> "Relation[T]":
        """The converse relation ``R^{-1}``."""
        return Relation(((b, a) for a, b in self._pairs), self._universe)

    def reflexive(self) -> "Relation[T]":
        """The reflexive closure ``R? = R ∪ {(a, a) | a ∈ universe}``."""
        pairs = set(self._pairs)
        pairs.update((a, a) for a in self._universe)
        return Relation(pairs, self._universe)

    def irreflexive_part(self) -> "Relation[T]":
        """The relation with all self-loops removed."""
        return Relation(
            ((a, b) for a, b in self._pairs if a != b), self._universe
        )

    def restrict(self, elements: AbstractSet[T]) -> "Relation[T]":
        """The restriction of the relation to ``elements × elements``."""
        elems = set(elements)
        return Relation(
            ((a, b) for a, b in self._pairs if a in elems and b in elems),
            elems,
        )

    def filter(self, predicate: Callable[[T, T], bool]) -> "Relation[T]":
        """Keep only the pairs satisfying ``predicate(a, b)``."""
        return Relation(
            ((a, b) for a, b in self._pairs if predicate(a, b)),
            self._universe,
        )

    def map(self, fn: Callable[[T], T]) -> "Relation[T]":
        """Apply ``fn`` to both components of every pair.

        Used by the splicing construction (Section 5) to lift dependencies
        from chopped transactions to their spliced representatives.
        """
        return Relation(
            ((fn(a), fn(b)) for a, b in self._pairs),
            (fn(a) for a in self._universe),
        )

    # ------------------------------------------------------------------
    # Closures
    # ------------------------------------------------------------------

    def transitive_closure(self) -> "Relation[T]":
        """The transitive closure ``R+`` (BFS from every source node)."""
        succ = self.successors_map()
        pairs: Set[Pair] = set()
        for start in succ:
            seen: Set[T] = set()
            queue: deque = deque(succ[start])
            while queue:
                node = queue.popleft()
                if node in seen:
                    continue
                seen.add(node)
                queue.extend(succ.get(node, ()))
            pairs.update((start, node) for node in seen)
        return Relation(pairs, self._universe)

    def reflexive_transitive_closure(self) -> "Relation[T]":
        """The reflexive-transitive closure ``R*`` over the universe."""
        return self.transitive_closure().reflexive()

    def is_transitive(self) -> bool:
        """True iff ``R ; R ⊆ R``."""
        return self.compose(self).pairs <= self._pairs

    # ------------------------------------------------------------------
    # Order-theoretic predicates
    # ------------------------------------------------------------------

    def is_irreflexive(self) -> bool:
        """True iff no pair ``(a, a)`` is present."""
        return all(a != b for a, b in self._pairs)

    def is_acyclic(self) -> bool:
        """True iff the relation, viewed as a digraph, has no cycle.

        Self-loops count as cycles.  Implemented with an iterative
        depth-first search (three-colour marking).
        """
        succ = self.successors_map()
        WHITE, GREY, BLACK = 0, 1, 2
        colour: Dict[T, int] = {}
        for root in succ:
            if colour.get(root, WHITE) != WHITE:
                continue
            stack: List[Tuple[T, Iterator[T]]] = [(root, iter(succ.get(root, ())))]
            colour[root] = GREY
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    c = colour.get(nxt, WHITE)
                    if c == GREY:
                        return False
                    if c == WHITE:
                        colour[nxt] = GREY
                        stack.append((nxt, iter(succ.get(nxt, ()))))
                        advanced = True
                        break
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
        return True

    def is_strict_partial_order(self) -> bool:
        """True iff the relation is transitive and irreflexive."""
        return self.is_irreflexive() and self.is_transitive()

    def is_total_on(self, elements: Optional[AbstractSet[T]] = None) -> bool:
        """True iff every two distinct elements are related one way or the
        other.  Defaults to the relation's universe."""
        elems = list(self._universe if elements is None else elements)
        for i, a in enumerate(elems):
            for b in elems[i + 1 :]:
                if (a, b) not in self._pairs and (b, a) not in self._pairs:
                    return False
        return True

    def is_strict_total_order(
        self, elements: Optional[AbstractSet[T]] = None
    ) -> bool:
        """True iff the relation is a strict partial order, total over
        ``elements`` (default: universe)."""
        return self.is_strict_partial_order() and self.is_total_on(elements)

    def unrelated_pairs(
        self, elements: Optional[AbstractSet[T]] = None
    ) -> Iterator[Pair]:
        """Yield pairs of distinct elements related in neither direction.

        Used by the commit-order totalisation of Theorem 10(i), which picks
        "an arbitrary pair of transactions unrelated by CO".
        """
        elems = sorted(
            self._universe if elements is None else elements, key=repr
        )
        for i, a in enumerate(elems):
            for b in elems[i + 1 :]:
                if (a, b) not in self._pairs and (b, a) not in self._pairs:
                    yield (a, b)

    def find_cycle(self) -> Optional[List[T]]:
        """Return one cycle ``[a0, a1, ..., a0]`` if the relation has one,
        else ``None``.  Useful for diagnostics in error messages."""
        succ = self.successors_map()
        WHITE, GREY, BLACK = 0, 1, 2
        colour: Dict[T, int] = {}
        parent: Dict[T, T] = {}
        for root in succ:
            if colour.get(root, WHITE) != WHITE:
                continue
            stack: List[Tuple[T, Iterator[T]]] = [(root, iter(succ.get(root, ())))]
            colour[root] = GREY
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    c = colour.get(nxt, WHITE)
                    if c == GREY:
                        cycle = [nxt]
                        cur = node
                        while cur != nxt:
                            cycle.append(cur)
                            cur = parent[cur]
                        cycle.append(nxt)
                        cycle.reverse()
                        return cycle
                    if c == WHITE:
                        colour[nxt] = GREY
                        parent[nxt] = node
                        stack.append((nxt, iter(succ.get(nxt, ()))))
                        advanced = True
                        break
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
        return None

    # ------------------------------------------------------------------
    # Extrema (the paper's max_R / min_R)
    # ------------------------------------------------------------------

    def max_element(self, elements: AbstractSet[T]) -> T:
        """The paper's ``max_R(A)``: the element of ``elements`` that every
        other element of ``elements`` reaches via R.

        Raises :class:`ValueError` when undefined (empty set, or no element
        dominates all others — e.g. R not total over the set).
        """
        if not elements:
            raise ValueError("max_R of an empty set is undefined")
        for a in elements:
            if all(b == a or (b, a) in self._pairs for b in elements):
                return a
        raise ValueError(
            f"max_R undefined: no maximum among {sorted(elements, key=repr)!r}"
        )

    def min_element(self, elements: AbstractSet[T]) -> T:
        """The paper's ``min_R(A)``; dual of :meth:`max_element`."""
        if not elements:
            raise ValueError("min_R of an empty set is undefined")
        for a in elements:
            if all(b == a or (a, b) in self._pairs for b in elements):
                return a
        raise ValueError(
            f"min_R undefined: no minimum among {sorted(elements, key=repr)!r}"
        )

    # ------------------------------------------------------------------
    # Linearisation
    # ------------------------------------------------------------------

    def topological_order(self) -> List[T]:
        """A list of the universe's elements consistent with the relation.

        Raises :class:`ValueError` if the relation is cyclic.  Ties are
        broken deterministically by ``repr`` so results are reproducible.
        """
        succ = self.successors_map()
        indeg: Dict[T, int] = {a: 0 for a in self._universe}
        for _, b in self._pairs:
            if b in indeg:
                indeg[b] += 1
        ready = sorted((a for a, d in indeg.items() if d == 0), key=repr)
        out: List[T] = []
        ready_set = list(ready)
        while ready_set:
            node = ready_set.pop(0)
            out.append(node)
            for nxt in sorted(succ.get(node, ()), key=repr):
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    # Insert keeping deterministic order.
                    ready_set.append(nxt)
            ready_set.sort(key=repr)
        if len(out) != len(self._universe):
            raise ValueError("relation is cyclic; no topological order exists")
        return out

    def totalise(self) -> "Relation[T]":
        """Extend an acyclic relation to a strict total order on its
        universe via a deterministic topological linearisation."""
        order = self.topological_order()
        pairs: Set[Pair] = set()
        for i, a in enumerate(order):
            for b in order[i + 1 :]:
                pairs.add((a, b))
        return Relation(pairs, self._universe)

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------

    @staticmethod
    def empty(universe: Iterable[T] = ()) -> "Relation[T]":
        """The empty relation over ``universe``."""
        return Relation((), universe)

    @staticmethod
    def identity(universe: Iterable[T]) -> "Relation[T]":
        """The identity relation over ``universe``."""
        elems = list(universe)
        return Relation(((a, a) for a in elems), elems)

    @staticmethod
    def total_order(sequence: Sequence[T]) -> "Relation[T]":
        """The strict total order induced by a sequence (earlier < later)."""
        pairs: Set[Pair] = set()
        for i, a in enumerate(sequence):
            for b in sequence[i + 1 :]:
                pairs.add((a, b))
        return Relation(pairs, sequence)

    @staticmethod
    def from_edges(edges: Iterable[Pair], universe: Iterable[T] = ()) -> "Relation[T]":
        """Build a relation from an iterable of pairs."""
        return Relation(edges, universe)


def union_all(relations: Iterable[Relation[T]]) -> Relation[T]:
    """Union of an iterable of relations (empty union is empty)."""
    rels = list(relations)
    if not rels:
        return Relation()
    return rels[0].union(*rels[1:])
