"""Histories and sessions (Definition 2).

A history is a set of transactions together with a *session order* SO: the
union of total orders on disjoint groups of transactions (the sessions).  We
represent a history concretely as a tuple of sessions, each session being a
program-ordered tuple of transactions; SO is derived.

Transactions in a history must carry pairwise-distinct tids (they are
distinct set elements in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .errors import MalformedHistoryError
from .events import Obj, Value
from .relations import Relation
from .transactions import Transaction, all_internally_consistent


@dataclass(frozen=True)
class History:
    """A history ``H = (T, SO)``.

    Attributes:
        sessions: the sessions; each is a non-empty tuple of transactions in
            session order.  SO relates earlier to later transactions within
            a session.
    """

    sessions: Tuple[Tuple[Transaction, ...], ...] = field()

    def __post_init__(self) -> None:
        seen: Set[str] = set()
        for session in self.sessions:
            if not session:
                raise MalformedHistoryError("history contains an empty session")
            for t in session:
                if t.tid in seen:
                    raise MalformedHistoryError(
                        f"duplicate transaction id {t.tid!r} in history"
                    )
                seen.add(t.tid)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    @property
    def transactions(self) -> FrozenSet[Transaction]:
        """The set of transactions ``T`` of the history."""
        return frozenset(t for session in self.sessions for t in session)

    @property
    def transaction_list(self) -> List[Transaction]:
        """The transactions in a deterministic (session-major) order."""
        return [t for session in self.sessions for t in session]

    def __len__(self) -> int:
        return sum(len(session) for session in self.sessions)

    def __contains__(self, t: Transaction) -> bool:
        return any(t in session for session in self.sessions)

    def by_tid(self, tid: str) -> Transaction:
        """Look up a transaction by identifier."""
        for session in self.sessions:
            for t in session:
                if t.tid == tid:
                    return t
        raise KeyError(tid)

    @property
    def session_order(self) -> Relation[Transaction]:
        """The session order SO: a union of total orders, one per session."""
        pairs: Set[Tuple[Transaction, Transaction]] = set()
        for session in self.sessions:
            for i, a in enumerate(session):
                for b in session[i + 1 :]:
                    pairs.add((a, b))
        return Relation(pairs, self.transactions)

    def session_of(self, t: Transaction) -> int:
        """The index of the session containing ``t``."""
        for i, session in enumerate(self.sessions):
            if t in session:
                return i
        raise KeyError(t.tid)

    def same_session(self, a: Transaction, b: Transaction) -> bool:
        """The equivalence ``a ≈_H b``: same session (or same transaction).

        This is the relation ``SO ∪ SO^{-1} ∪ id`` used by the chopping
        analysis of Section 5.
        """
        return self.session_of(a) == self.session_of(b)

    # ------------------------------------------------------------------
    # Object-level views
    # ------------------------------------------------------------------

    @property
    def objects(self) -> FrozenSet[Obj]:
        """All objects accessed by any transaction."""
        objs: Set[Obj] = set()
        for t in self.transactions:
            objs |= t.objects
        return frozenset(objs)

    def write_transactions(self, obj: Obj) -> FrozenSet[Transaction]:
        """The paper's ``WriteTx_x``: transactions writing to ``obj``."""
        return frozenset(t for t in self.transactions if t.writes(obj))

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------

    def is_internally_consistent(self) -> bool:
        """``T_H ⊨ INT``: every transaction is internally consistent."""
        return all_internally_consistent(self.transactions)

    def describe(self) -> str:
        """A human-readable multi-line rendering of the history."""
        lines: List[str] = []
        for i, session in enumerate(self.sessions):
            lines.append(f"session {i}:")
            for t in session:
                lines.append(f"  {t!r}")
        return "\n".join(lines)


def history(*sessions: Sequence[Transaction]) -> History:
    """Build a history from sessions given as sequences of transactions.

    Example::

        h = history([t1, t2], [t3])   # two sessions
    """
    return History(tuple(tuple(s) for s in sessions))


def single_session(*transactions_: Transaction) -> History:
    """A history with all transactions in one session."""
    return History((tuple(transactions_),))


def singleton_sessions(*transactions_: Transaction) -> History:
    """A history where every transaction is its own session (SO = ∅)."""
    return History(tuple((t,) for t in transactions_))


def with_initialisation(h: History, init: Transaction) -> History:
    """Add an initialisation transaction as its own session.

    The initialisation transaction plays the role of the paper's special
    transaction writing the initial versions of all objects.
    """
    return History(((init,),) + h.sessions)
