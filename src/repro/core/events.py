"""Events and operations (Definition 1 of the paper).

The paper models a transaction as a finite set of *events*, each labelled by
an operation ``read(x, n)`` or ``write(x, n)`` over an object ``x`` (drawn
from a set Obj) and an integer value ``n``.  We follow that model literally:

* :class:`Op` is the operation label — kind, object and value;
* :class:`Event` is an occurrence of an operation inside a transaction,
  distinguished from other occurrences by an event identifier.

Objects are arbitrary strings (the paper uses names such as ``acct1``) and
values are arbitrary hashable Python objects, with integers used throughout
the examples to match the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Hashable

Obj = str
"""Type alias for object (key) names; the paper's set Obj."""

Value = Hashable
"""Type alias for the values stored in objects; the paper uses integers."""


class OpKind(enum.Enum):
    """The two kinds of primitive operations a transaction performs."""

    READ = "read"
    WRITE = "write"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Op:
    """An operation label ``read(x, n)`` or ``write(x, n)``.

    Attributes:
        kind: whether the operation is a read or a write.
        obj: the object (key) the operation touches.
        value: the value read or written.
    """

    kind: OpKind
    obj: Obj
    value: Value

    @property
    def is_read(self) -> bool:
        """True iff this is a ``read(x, n)`` operation."""
        return self.kind is OpKind.READ

    @property
    def is_write(self) -> bool:
        """True iff this is a ``write(x, n)`` operation."""
        return self.kind is OpKind.WRITE

    def __str__(self) -> str:
        return f"{self.kind}({self.obj}, {self.value!r})"


def read(obj: Obj, value: Value) -> Op:
    """Construct a ``read(x, n)`` operation label."""
    return Op(OpKind.READ, obj, value)


def write(obj: Obj, value: Value) -> Op:
    """Construct a ``write(x, n)`` operation label."""
    return Op(OpKind.WRITE, obj, value)


@dataclass(frozen=True)
class Event:
    """An event: a single occurrence of an operation inside a transaction.

    Two events with the same operation are distinct occurrences if their
    identifiers differ, mirroring the paper's treatment of ``E`` as a set of
    events with an operation labelling function ``op``.

    Attributes:
        eid: event identifier, unique within the enclosing transaction.
        op: the operation label of this event (compare-excluded so that
            identity is determined by ``eid`` alone within a transaction;
            equality across transactions is never needed because events are
            always considered relative to their transaction).
    """

    eid: int
    op: Op = field(compare=True)

    @property
    def is_read(self) -> bool:
        """True iff the event's operation is a read."""
        return self.op.is_read

    @property
    def is_write(self) -> bool:
        """True iff the event's operation is a write."""
        return self.op.is_write

    @property
    def obj(self) -> Obj:
        """The object the event operates on."""
        return self.op.obj

    @property
    def value(self) -> Value:
        """The value read or written by the event."""
        return self.op.value

    def __str__(self) -> str:
        return f"e{self.eid}:{self.op}"
