"""Transactions (Definition 1) and the derived read/write judgements of §2.

A transaction is a pair ``(E, po)`` of a finite, non-empty set of events and
a total *program order* over them.  We represent the pair as a tuple of
events, whose positional order *is* the program order; event identifiers are
their indices.  Transactions are identified by a ``tid`` string — two
transaction objects are equal iff their tids are equal, matching the paper's
convention that a history is a *set* of transactions (occurrences are
distinguished even when they perform the same operations).

The module also implements the judgements used by the axioms:

* ``T ⊢ write(x, n)`` — ``T`` writes to ``x`` and the *last* value written
  is ``n`` (:meth:`Transaction.final_write`);
* ``T ⊢ read(x, n)``  — ``T`` reads ``x`` *before* writing to it, and ``n``
  is the value returned by the first such read
  (:meth:`Transaction.external_read`);
* the internal consistency axiom INT (:func:`check_internal_consistency`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from .errors import InternalConsistencyError
from .events import Event, Obj, Op, OpKind, Value, read, write


@dataclass(frozen=True)
class Transaction:
    """A transaction: an identifier plus a program-ordered event sequence.

    Attributes:
        tid: the transaction identifier; determines equality and hashing.
        events: the events in program order.  Event ``eid``s are expected to
            equal their index (use :func:`transaction` to guarantee this).
    """

    tid: str
    events: Tuple[Event, ...] = field(compare=False)

    def __post_init__(self) -> None:
        if not self.events:
            raise ValueError(f"transaction {self.tid!r} must be non-empty")

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __repr__(self) -> str:
        ops = "; ".join(str(e.op) for e in self.events)
        return f"Transaction({self.tid!r}: {ops})"

    @property
    def objects(self) -> FrozenSet[Obj]:
        """All objects accessed (read or written) by the transaction."""
        return frozenset(e.obj for e in self.events)

    @property
    def read_objects(self) -> FrozenSet[Obj]:
        """Objects with at least one read event."""
        return frozenset(e.obj for e in self.events if e.is_read)

    @property
    def written_objects(self) -> FrozenSet[Obj]:
        """Objects with at least one write event.

        This is the paper's ``{x | T ∈ WriteTx_x}``.
        """
        return frozenset(e.obj for e in self.events if e.is_write)

    def events_on(self, obj: Obj) -> List[Event]:
        """The events on ``obj`` in program order."""
        return [e for e in self.events if e.obj == obj]

    # ------------------------------------------------------------------
    # Judgements of §2
    # ------------------------------------------------------------------

    def writes(self, obj: Obj) -> bool:
        """True iff the transaction writes to ``obj`` (``T ∈ WriteTx_obj``)."""
        return obj in self.written_objects

    def final_write(self, obj: Obj) -> Optional[Value]:
        """The value ``n`` with ``T ⊢ write(obj, n)``: the last value the
        transaction writes to ``obj``; ``None`` if it never writes ``obj``."""
        for e in reversed(self.events):
            if e.is_write and e.obj == obj:
                return e.value
        return None

    def external_read(self, obj: Obj) -> Optional[Value]:
        """The value ``n`` with ``T ⊢ read(obj, n)``.

        Defined iff the *first* event of the transaction on ``obj`` is a
        read; the value of that read is returned.  Such reads are the ones
        whose values are constrained externally (axiom EXT); later reads are
        governed by INT.  Returns ``None`` when undefined.
        """
        for e in self.events:
            if e.obj == obj:
                return e.value if e.is_read else None
        return None

    def reads_externally(self, obj: Obj) -> bool:
        """True iff ``T ⊢ read(obj, _)`` is defined."""
        for e in self.events:
            if e.obj == obj:
                return e.is_read
        return False

    @property
    def external_read_objects(self) -> FrozenSet[Obj]:
        """Objects ``x`` with ``T ⊢ read(x, _)`` defined."""
        return frozenset(
            obj for obj in self.objects if self.reads_externally(obj)
        )

    # ------------------------------------------------------------------
    # Internal consistency (axiom INT)
    # ------------------------------------------------------------------

    def internal_violations(self) -> List[str]:
        """Describe all violations of the INT axiom within this transaction.

        INT: a read event on ``x`` that is preceded in program order by
        another event on ``x`` must return the value of the *last* such
        preceding event (the value written, for a write; the value read,
        for a read).
        """
        violations: List[str] = []
        last_value: Dict[Obj, Value] = {}
        for e in self.events:
            if e.is_read and e.obj in last_value:
                expected = last_value[e.obj]
                if e.value != expected:
                    violations.append(
                        f"{self.tid}: event {e} should return "
                        f"{expected!r} (last preceding access to {e.obj})"
                    )
            last_value[e.obj] = e.value
        return violations

    def is_internally_consistent(self) -> bool:
        """True iff the transaction satisfies INT."""
        return not self.internal_violations()


def transaction(tid: str, *ops: Op) -> Transaction:
    """Build a transaction from operation labels, assigning event ids.

    Example::

        t1 = transaction("t1", read("acct", 0), write("acct", 50))
    """
    events = tuple(Event(i, op) for i, op in enumerate(ops))
    return Transaction(tid, events)


def read_only(tid: str, reads: Iterable[Tuple[Obj, Value]]) -> Transaction:
    """Build a transaction consisting only of reads."""
    return transaction(tid, *(read(x, n) for x, n in reads))


def write_only(tid: str, writes: Iterable[Tuple[Obj, Value]]) -> Transaction:
    """Build a transaction consisting only of writes."""
    return transaction(tid, *(write(x, n) for x, n in writes))


def initialisation_transaction(
    objects: Iterable[Obj], value: Value = 0, tid: str = "t_init"
) -> Transaction:
    """The special transaction writing initial versions of all objects.

    The paper's figures omit it; Definition 4's discussion introduces it so
    that the set of visible writers in EXT is never empty.  We make it an
    explicit, ordinary transaction.
    """
    objs = sorted(set(objects))
    if not objs:
        raise ValueError("initialisation transaction needs at least one object")
    return transaction(tid, *(write(x, value) for x in objs))


def check_internal_consistency(transactions: Iterable[Transaction]) -> None:
    """Raise :class:`InternalConsistencyError` if any transaction in the
    collection violates INT (the paper's ``T ⊨ INT``)."""
    violations: List[str] = []
    for t in transactions:
        violations.extend(t.internal_violations())
    if violations:
        raise InternalConsistencyError("; ".join(violations))


def all_internally_consistent(transactions: Iterable[Transaction]) -> bool:
    """True iff every transaction satisfies INT (``T ⊨ INT``)."""
    return all(t.is_internally_consistent() for t in transactions)
