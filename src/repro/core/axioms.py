"""The consistency axioms of Figure 1 (plus TRANSVIS, Definition 20).

Each axiom is a function from a (pre-)execution to a list of human-readable
violation descriptions; an empty list means the axiom holds.  The axioms:

* ``INT`` — internal consistency: a read preceded in its transaction by an
  operation on the same object returns the last such value.
* ``EXT`` — external consistency: a transaction ``T`` with ``T ⊢ read(x, n)``
  reads from the CO-latest transaction among the writers of ``x`` visible
  to ``T``.
* ``SESSION`` — SO ⊆ VIS: snapshots include all preceding transactions of
  the same session (strong session guarantee).
* ``PREFIX`` — CO ; VIS ⊆ VIS: a snapshot including ``S`` includes every
  transaction committing before ``S``.
* ``NOCONFLICT`` — two distinct writers of the same object are related by
  VIS one way or the other (write-conflict detection).
* ``TOTALVIS`` — VIS totally orders the transactions (serializability).
* ``TRANSVIS`` — VIS is transitive (used by parallel SI, Definition 20).

An :class:`Axiom` bundles the checker with its name so consistency models
(:mod:`repro.core.models`) can be declared as axiom sets, exactly as in
Definition 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from .executions import PreExecution
from .transactions import Transaction


@dataclass(frozen=True)
class Axiom:
    """A named consistency axiom over (pre-)executions."""

    name: str
    check: Callable[[PreExecution], List[str]]

    def holds(self, execution: PreExecution) -> bool:
        """True iff the axiom has no violations on ``execution``."""
        return not self.check(execution)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


# ----------------------------------------------------------------------
# INT
# ----------------------------------------------------------------------


def check_int(execution: PreExecution) -> List[str]:
    """INT: each transaction is internally consistent (Figure 1)."""
    violations: List[str] = []
    for t in execution.history.transactions:
        violations.extend(t.internal_violations())
    return violations


# ----------------------------------------------------------------------
# EXT
# ----------------------------------------------------------------------


def check_ext(execution: PreExecution) -> List[str]:
    """EXT: external reads return the CO-latest visible write (Figure 1).

    For every ``T`` and ``x`` with ``T ⊢ read(x, n)``, the set
    ``VIS^{-1}(T) ∩ WriteTx_x`` must be non-empty, have a CO-maximum, and
    that maximum ``S`` must satisfy ``S ⊢ write(x, n)``.

    Following the paper's simplification, an empty visible-writer set is a
    violation (ensured in well-formed workloads by the initialisation
    transaction).
    """
    violations: List[str] = []
    history = execution.history
    for t in sorted(history.transactions, key=lambda t: t.tid):
        for obj in sorted(t.external_read_objects):
            n = t.external_read(obj)
            writers = execution.visible_writers(t, obj)
            if not writers:
                violations.append(
                    f"EXT: {t.tid} reads {obj} but no visible "
                    f"transaction writes it"
                )
                continue
            try:
                latest = execution.co.max_element(writers)
            except ValueError:
                violations.append(
                    f"EXT: visible writers of {obj} for {t.tid} have no "
                    f"CO-maximum: {sorted(w.tid for w in writers)}"
                )
                continue
            written = latest.final_write(obj)
            if written != n:
                violations.append(
                    f"EXT: {t.tid} reads {obj}={n!r} but the latest visible "
                    f"writer {latest.tid} wrote {written!r}"
                )
    return violations


# ----------------------------------------------------------------------
# SESSION
# ----------------------------------------------------------------------


def check_session(execution: PreExecution) -> List[str]:
    """SESSION: SO ⊆ VIS (Figure 1)."""
    missing = execution.session_order.pairs - execution.vis.pairs
    return [
        f"SESSION: {a.tid} --SO--> {b.tid} not in VIS"
        for a, b in sorted(missing, key=lambda p: (p[0].tid, p[1].tid))
    ]


# ----------------------------------------------------------------------
# PREFIX
# ----------------------------------------------------------------------


def check_prefix(execution: PreExecution) -> List[str]:
    """PREFIX: CO ; VIS ⊆ VIS (Figure 1)."""
    missing = execution.co.compose(execution.vis).pairs - execution.vis.pairs
    return [
        f"PREFIX: {a.tid} --CO;VIS--> {b.tid} not in VIS"
        for a, b in sorted(missing, key=lambda p: (p[0].tid, p[1].tid))
    ]


# ----------------------------------------------------------------------
# NOCONFLICT
# ----------------------------------------------------------------------


def check_noconflict(execution: PreExecution) -> List[str]:
    """NOCONFLICT: distinct writers of an object are VIS-related (Figure 1)."""
    violations: List[str] = []
    history = execution.history
    vis = execution.vis
    for obj in sorted(history.objects):
        writers = sorted(history.write_transactions(obj), key=lambda t: t.tid)
        for i, a in enumerate(writers):
            for b in writers[i + 1 :]:
                if (a, b) not in vis and (b, a) not in vis:
                    violations.append(
                        f"NOCONFLICT: {a.tid} and {b.tid} both write {obj} "
                        f"but are unrelated by VIS"
                    )
    return violations


# ----------------------------------------------------------------------
# TOTALVIS
# ----------------------------------------------------------------------


def check_totalvis(execution: PreExecution) -> List[str]:
    """TOTALVIS: VIS is total over the transactions (serializability)."""
    violations: List[str] = []
    vis = execution.vis
    txns = sorted(execution.history.transactions, key=lambda t: t.tid)
    for i, a in enumerate(txns):
        for b in txns[i + 1 :]:
            if (a, b) not in vis and (b, a) not in vis:
                violations.append(
                    f"TOTALVIS: {a.tid} and {b.tid} unrelated by VIS"
                )
    return violations


# ----------------------------------------------------------------------
# TRANSVIS
# ----------------------------------------------------------------------


def check_transvis(execution: PreExecution) -> List[str]:
    """TRANSVIS: VIS is transitive (parallel SI, Definition 20)."""
    missing = execution.vis.compose(execution.vis).pairs - execution.vis.pairs
    return [
        f"TRANSVIS: {a.tid} --VIS;VIS--> {b.tid} not in VIS"
        for a, b in sorted(missing, key=lambda p: (p[0].tid, p[1].tid))
    ]


INT = Axiom("INT", check_int)
EXT = Axiom("EXT", check_ext)
SESSION = Axiom("SESSION", check_session)
PREFIX = Axiom("PREFIX", check_prefix)
NOCONFLICT = Axiom("NOCONFLICT", check_noconflict)
TOTALVIS = Axiom("TOTALVIS", check_totalvis)
TRANSVIS = Axiom("TRANSVIS", check_transvis)

ALL_AXIOMS = (INT, EXT, SESSION, PREFIX, NOCONFLICT, TOTALVIS, TRANSVIS)
