"""Abstract executions and pre-executions (Definitions 3 and 11).

An *abstract execution* extends a history with two relations that
declaratively describe how the transactional system processed the
transactions:

* ``VIS`` (visibility): ``T --VIS--> S`` means the writes of ``T`` are
  included in the snapshot taken by ``S``;
* ``CO`` (commit order): ``T --CO--> S`` means ``T`` commits before ``S``.

Definition 3 requires VIS ⊆ CO, with CO a strict *total* order.
Definition 11 relaxes totality: a *pre-execution* only requires CO to be a
strict partial order.  The soundness construction of Theorem 10(i) works
through a chain of pre-executions whose commit orders grow until total.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Optional, Set, Tuple

from .errors import MalformedExecutionError
from .histories import History
from .relations import Relation
from .transactions import Transaction


@dataclass(frozen=True)
class PreExecution:
    """A pre-execution ``P = (T, SO, VIS, CO)`` (Definition 11).

    CO is a strict partial order containing VIS; it need not be total.
    Construct with ``validate=False`` to skip the well-formedness checks
    (used internally by hot loops that guarantee them by construction).
    """

    history: History
    vis: Relation[Transaction]
    co: Relation[Transaction]
    validate: bool = field(default=True, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.validate:
            self.check_well_formed()

    # ------------------------------------------------------------------
    # Well-formedness (Definitions 3 / 11, minus totality)
    # ------------------------------------------------------------------

    def well_formedness_violations(self) -> List[str]:
        """Describe violations of the pre-execution conditions."""
        violations: List[str] = []
        txns = self.history.transactions
        for name, rel in (("VIS", self.vis), ("CO", self.co)):
            stray = rel.field - txns
            if stray:
                violations.append(
                    f"{name} mentions transactions outside the history: "
                    f"{sorted(t.tid for t in stray)}"
                )
            if not rel.is_irreflexive():
                violations.append(f"{name} is not irreflexive")
        # CO must be a strict partial order (total orders are checked by
        # AbstractExecution).  VIS need only be irreflexive and included in
        # CO: transitivity of VIS is an *axiom* (TRANSVIS; for SI it follows
        # from PREFIX and VIS ⊆ CO), not a well-formedness condition.
        if not self.co.is_transitive():
            violations.append("CO is not transitive")
        if not self.co.is_acyclic():
            violations.append("CO is cyclic")
        if not self.vis.pairs <= self.co.pairs:
            violations.append("VIS is not included in CO")
        return violations

    def check_well_formed(self) -> None:
        """Raise :class:`MalformedExecutionError` on any violation."""
        violations = self.well_formedness_violations()
        if violations:
            raise MalformedExecutionError("; ".join(violations))

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    @property
    def transactions(self) -> FrozenSet[Transaction]:
        """The transactions of the underlying history."""
        return self.history.transactions

    @property
    def session_order(self) -> Relation[Transaction]:
        """The session order SO of the underlying history."""
        return self.history.session_order

    def visible_writers(self, s: Transaction, obj: str) -> FrozenSet[Transaction]:
        """``VIS^{-1}(S) ∩ WriteTx_x``: the writers of ``obj`` visible to
        ``s`` — the candidate set in the EXT axiom."""
        return self.vis.predecessors(s) & self.history.write_transactions(obj)

    def co_is_total(self) -> bool:
        """True iff CO totally orders the history's transactions."""
        return self.co.is_total_on(self.history.transactions)

    def as_execution(self) -> "AbstractExecution":
        """Promote to an abstract execution; CO must already be total."""
        return AbstractExecution(self.history, self.vis, self.co)

    def describe(self) -> str:
        """Human-readable rendering (history plus relation edges)."""
        lines = [self.history.describe()]
        lines.append(
            "VIS: " + ", ".join(
                f"{a.tid}->{b.tid}" for a, b in sorted(self.vis, key=repr)
            )
        )
        lines.append(
            "CO:  " + ", ".join(
                f"{a.tid}->{b.tid}" for a, b in sorted(self.co, key=repr)
            )
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class AbstractExecution(PreExecution):
    """An abstract execution ``X = (T, SO, VIS, CO)`` (Definition 3).

    In addition to the pre-execution conditions, CO must be a strict total
    order over the history's transactions.
    """

    def well_formedness_violations(self) -> List[str]:
        """Pre-execution conditions plus totality of CO (Definition 3)."""
        violations = super().well_formedness_violations()
        if not self.co.is_total_on(self.history.transactions):
            violations.append("CO is not total over the history's transactions")
        return violations

    @property
    def commit_sequence(self) -> List[Transaction]:
        """The transactions listed in commit order (CO linearised)."""
        remaining = set(self.history.transactions)
        out: List[Transaction] = []
        co = self.co
        while remaining:
            t = co.min_element(remaining)
            out.append(t)
            remaining.remove(t)
        return out


def execution(
    history: History,
    vis: Iterable[Tuple[Transaction, Transaction]],
    co: Iterable[Tuple[Transaction, Transaction]],
    transitively_close: bool = True,
) -> AbstractExecution:
    """Convenience constructor for an abstract execution.

    Args:
        history: the underlying history.
        vis: visibility edges (will be transitively closed when
            ``transitively_close``; Definition 3 plus PREFIX make VIS
            transitive in all models we study).
        co: commit-order edges; closed transitively likewise.
        transitively_close: close both relations before validation.
    """
    universe = history.transactions
    vis_rel: Relation[Transaction] = Relation(vis, universe)
    co_rel: Relation[Transaction] = Relation(co, universe)
    if transitively_close:
        vis_rel = vis_rel.transitive_closure()
        co_rel = co_rel.transitive_closure()
    return AbstractExecution(history, vis_rel, co_rel)


def pre_execution(
    history: History,
    vis: Iterable[Tuple[Transaction, Transaction]],
    co: Iterable[Tuple[Transaction, Transaction]],
    transitively_close: bool = True,
) -> PreExecution:
    """Convenience constructor for a pre-execution (Definition 11)."""
    universe = history.transactions
    vis_rel: Relation[Transaction] = Relation(vis, universe)
    co_rel: Relation[Transaction] = Relation(co, universe)
    if transitively_close:
        vis_rel = vis_rel.transitive_closure()
        co_rel = co_rel.transitive_closure()
    return PreExecution(history, vis_rel, co_rel)


def execution_from_commit_sequence(
    history: History,
    commit_sequence: List[Transaction],
    vis: Optional[Iterable[Tuple[Transaction, Transaction]]] = None,
) -> AbstractExecution:
    """Build an execution whose CO is the total order of ``commit_sequence``.

    When ``vis`` is omitted, VIS is taken equal to CO — the *serial* reading
    where every transaction sees all previously-committed ones (this always
    satisfies PREFIX and TOTALVIS; whether EXT holds depends on values).
    """
    co_rel: Relation[Transaction] = Relation.total_order(commit_sequence)
    if vis is None:
        vis_rel = co_rel
    else:
        vis_rel = Relation(vis, history.transactions).transitive_closure()
    return AbstractExecution(history, vis_rel, co_rel)
