"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised by the library derive from :class:`ReproError`, so a
caller can catch everything coming out of the reproduction code with a single
``except`` clause while still being able to discriminate the failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class MalformedHistoryError(ReproError):
    """A history violates the well-formedness conditions of Definition 2.

    Examples: two sessions share a transaction, a transaction appears twice
    in a session, or duplicate transaction identifiers exist.
    """


class MalformedExecutionError(ReproError):
    """An abstract (pre-)execution violates Definition 3 / Definition 11.

    Examples: VIS not included in CO, CO not a strict (total) order, or a
    relation mentioning transactions that are not part of the history.
    """


class MalformedDependencyGraphError(ReproError):
    """A dependency graph violates the conditions of Definition 6.

    Examples: a WR(x) edge whose source did not write ``x`` or whose target
    does not read the written value, a read without a WR source, two WR(x)
    sources for the same read, or WW(x) not a total order over the writers
    of ``x``.
    """


class InternalConsistencyError(ReproError):
    """A set of transactions violates the INT axiom (Figure 1)."""


class NotInGraphSIError(ReproError):
    """Raised when a construction requires ``G in GraphSI`` but the input
    dependency graph contains a cycle without two adjacent anti-dependency
    edges (Theorem 9)."""


class SolverError(ReproError):
    """The inequality solver (Lemma 15) was used outside its preconditions,
    e.g. asked to totalise a commit order whose closure became cyclic."""


class TransactionAborted(ReproError):
    """An MVCC transaction failed its commit-time validation.

    For the SI engine this corresponds to the first-committer-wins
    write-conflict check; for the serializable engine it additionally covers
    read-set invalidation.  Clients following the retry discipline of
    Section 5 catch this and resubmit the transaction.
    """

    def __init__(self, tid: str, reason: str):
        super().__init__(f"transaction {tid!r} aborted: {reason}")
        self.tid = tid
        self.reason = reason


class RetryExhausted(ReproError):
    """A transaction kept aborting past the service's retry cap.

    The retry discipline of Section 5 assumes an aborted transaction is
    resubmitted until it commits; a real service must bound that loop.
    :class:`~repro.service.TransactionService` raises this once the cap
    is hit, carrying the attempt count, the last abort reason, and the
    per-attempt latencies so the caller can distinguish contention
    collapse (many fast aborts) from a stalled resource (few slow ones).
    """

    def __init__(
        self,
        session: str,
        attempts: int,
        last_reason: str,
        attempt_latencies=None,
    ):
        super().__init__(
            f"transaction in session {session!r} aborted {attempts} "
            f"time(s), exceeding the retry cap; last reason: {last_reason}"
        )
        self.session = session
        self.attempts = attempts
        self.last_reason = last_reason
        self.attempt_latencies = list(attempt_latencies or [])
        """Wall-clock seconds each attempt took (begin to abort), in
        attempt order; empty when the service did not track them."""


class DeadlineExceeded(ReproError):
    """A transaction's deadline elapsed before it could commit.

    Bounded-retry is not enough under injected stalls: a transaction
    can spend its whole life waiting (admission, backoff, a stalled
    fsync) without ever burning its retry budget.  A per-transaction
    deadline bounds wall-clock time instead; backoff sleeps are clamped
    so the service never sleeps past a caller's deadline.
    """

    def __init__(
        self,
        session: str,
        attempts: int,
        elapsed_seconds: float,
        last_reason: str = "deadline elapsed",
        attempt_latencies=None,
    ):
        super().__init__(
            f"transaction in session {session!r} exceeded its deadline "
            f"after {elapsed_seconds * 1000:.1f} ms ({attempts} "
            f"attempt(s)); last reason: {last_reason}"
        )
        self.session = session
        self.attempts = attempts
        self.elapsed_seconds = elapsed_seconds
        self.last_reason = last_reason
        self.attempt_latencies = list(attempt_latencies or [])


class ServiceOverloaded(ReproError):
    """The service's admission circuit breaker shed this transaction.

    Raised instead of queueing when the health state machine is in the
    ``shedding`` state (abort rate or WAL latency past the shedding
    thresholds).  Shed work was never admitted: no engine transaction
    was started, so the caller may retry later without an abort having
    been recorded against it.
    """

    def __init__(self, session: str, state: str, detail: str = ""):
        message = (
            f"transaction in session {session!r} shed by the admission "
            f"circuit breaker (service is {state})"
        )
        if detail:
            message += f": {detail}"
        super().__init__(message)
        self.session = session
        self.state = state


class ServiceReadOnly(ReproError):
    """An update was refused because the service degraded to read-only.

    With ``on_wal_failure="read_only"`` a poisoned write-ahead log stops
    being able to make new commits durable, so the service keeps serving
    snapshot reads but refuses transactions that write.  The underlying
    WAL failure is chained as ``__cause__``.
    """

    def __init__(self, session: str, detail: str = ""):
        message = (
            f"update in session {session!r} refused: the service is in "
            f"read-only degraded mode (write-ahead log failed)"
        )
        if detail:
            message += f"; {detail}"
        super().__init__(message)
        self.session = session


class FaultInjected(ReproError):
    """An armed failpoint fired an ``abort``/``error`` action.

    Raised out of :meth:`repro.faults.FaultInjector.fire` at the
    instrumented site; layers translate it into their native failure
    (the service aborts the transaction, the WAL poisons itself).
    """

    def __init__(self, point: str, detail: str = ""):
        message = f"injected fault at failpoint {point!r}"
        if detail:
            message += f": {detail}"
        super().__init__(message)
        self.point = point


class StoreError(ReproError):
    """Misuse of the multi-version store or a transaction handle, e.g.
    operating on a transaction that already committed or aborted."""


class SnapshotTooOld(StoreError):
    """A snapshot read needs a version that garbage collection discarded.

    The multi-version store's analogue of Oracle's ORA-01555: after
    aggressive vacuuming, a long-running transaction's snapshot timestamp
    may predate the oldest retained version of an object.  The SI engine
    converts this into an abort-and-retry.
    """


class ScheduleError(ReproError):
    """The deterministic scheduler was given an invalid schedule, e.g. a
    step index for a client that has already finished."""
