"""Core model: events, transactions, histories, executions, axioms, models.

This subpackage implements Section 2 of the paper: the client-visible
objects (events, transactions, histories with sessions) and the declarative
machinery used to specify consistency models (abstract executions with
visibility and commit orders, the axioms of Figure 1, and the SI / SER /
PSI models of Definitions 4 and 20).
"""

from .errors import (
    InternalConsistencyError,
    MalformedDependencyGraphError,
    MalformedExecutionError,
    MalformedHistoryError,
    NotInGraphSIError,
    ReproError,
    ScheduleError,
    SolverError,
    StoreError,
    TransactionAborted,
)
from .events import Event, Obj, Op, OpKind, Value, read, write
from .relations import Relation, union_all
from .transactions import (
    Transaction,
    all_internally_consistent,
    check_internal_consistency,
    initialisation_transaction,
    read_only,
    transaction,
    write_only,
)
from .histories import (
    History,
    history,
    single_session,
    singleton_sessions,
    with_initialisation,
)
from .executions import (
    AbstractExecution,
    PreExecution,
    execution,
    execution_from_commit_sequence,
    pre_execution,
)
from .axioms import (
    ALL_AXIOMS,
    Axiom,
    EXT,
    INT,
    NOCONFLICT,
    PREFIX,
    SESSION,
    TOTALVIS,
    TRANSVIS,
)
from .models import (
    AXIOMATIC_MODELS,
    MODELS,
    PC,
    PSI,
    SER,
    SI,
    ConsistencyModel,
    in_exec_psi,
    in_exec_ser,
    in_exec_si,
    in_pre_exec_si,
)

__all__ = [
    # errors
    "ReproError",
    "MalformedHistoryError",
    "MalformedExecutionError",
    "MalformedDependencyGraphError",
    "InternalConsistencyError",
    "NotInGraphSIError",
    "SolverError",
    "TransactionAborted",
    "StoreError",
    "ScheduleError",
    # events
    "Event",
    "Obj",
    "Op",
    "OpKind",
    "Value",
    "read",
    "write",
    # relations
    "Relation",
    "union_all",
    # transactions
    "Transaction",
    "transaction",
    "read_only",
    "write_only",
    "initialisation_transaction",
    "check_internal_consistency",
    "all_internally_consistent",
    # histories
    "History",
    "history",
    "single_session",
    "singleton_sessions",
    "with_initialisation",
    # executions
    "AbstractExecution",
    "PreExecution",
    "execution",
    "pre_execution",
    "execution_from_commit_sequence",
    # axioms
    "Axiom",
    "INT",
    "EXT",
    "SESSION",
    "PREFIX",
    "NOCONFLICT",
    "TOTALVIS",
    "TRANSVIS",
    "ALL_AXIOMS",
    # models
    "ConsistencyModel",
    "SI",
    "SER",
    "PSI",
    "PC",
    "MODELS",
    "AXIOMATIC_MODELS",
    "in_exec_si",
    "in_exec_ser",
    "in_exec_psi",
    "in_pre_exec_si",
]
