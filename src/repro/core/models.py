"""Consistency models as axiom sets (Definitions 4 and 20).

A consistency model is a named set of axioms; an abstract execution belongs
to the model's execution set iff it satisfies all of them, and a history is
allowed by the model iff *some* extension with VIS/CO satisfies them:

* ``SI``  = {INT, EXT, SESSION, PREFIX, NOCONFLICT}      (ExecSI, Def. 4)
* ``SER`` = {INT, EXT, SESSION, TOTALVIS}                (ExecSER, Def. 4)
* ``PSI`` = {INT, EXT, SESSION, TRANSVIS, NOCONFLICT}    (ExecPSI, Def. 20)

Deciding *history*-level membership (HistSI etc.) requires searching over
the extensions; that decision procedure lives in
:mod:`repro.characterisation.membership`, which exploits the dependency
graph characterisations (Theorems 8, 9, 21) instead of enumerating VIS/CO
directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .axioms import (
    Axiom,
    EXT,
    INT,
    NOCONFLICT,
    PREFIX,
    SESSION,
    TOTALVIS,
    TRANSVIS,
)
from .executions import AbstractExecution, PreExecution


@dataclass(frozen=True)
class ConsistencyModel:
    """A consistency model: a name plus the axioms of Figure 1 it imposes."""

    name: str
    axioms: Tuple[Axiom, ...]

    def violations(self, execution: PreExecution) -> Dict[str, List[str]]:
        """Map each violated axiom name to its list of violations."""
        out: Dict[str, List[str]] = {}
        for axiom in self.axioms:
            found = axiom.check(execution)
            if found:
                out[axiom.name] = found
        return out

    def satisfied_by(self, execution: PreExecution) -> bool:
        """True iff ``execution`` satisfies every axiom of the model.

        For :class:`AbstractExecution` inputs this decides membership in
        the model's execution set (e.g. ExecSI); for pre-executions it
        decides membership in the pre-execution set (e.g. PreExecSI of
        Definition 11).
        """
        return all(axiom.holds(execution) for axiom in self.axioms)

    def explain(self, execution: PreExecution) -> str:
        """A one-line verdict plus any violations, for diagnostics."""
        violations = self.violations(execution)
        if not violations:
            return f"execution satisfies {self.name}"
        lines = [f"execution violates {self.name}:"]
        for axiom, items in violations.items():
            for item in items:
                lines.append(f"  [{axiom}] {item}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


SI = ConsistencyModel("SI", (INT, EXT, SESSION, PREFIX, NOCONFLICT))
"""(Strong session) snapshot isolation — ExecSI of Definition 4."""

SER = ConsistencyModel("SER", (INT, EXT, SESSION, TOTALVIS))
"""(Strong session) serializability — ExecSER of Definition 4."""

PSI = ConsistencyModel("PSI", (INT, EXT, SESSION, TRANSVIS, NOCONFLICT))
"""Parallel snapshot isolation — ExecPSI of Definition 20."""

PC = ConsistencyModel("PC", (INT, EXT, SESSION, PREFIX))
"""Prefix consistency — SI without write-conflict detection.

Not defined in the paper's main development, but it is the model its §7
names as the natural next target for the commit-order-construction
technique ("prefix consistency [33]").  Dropping NOCONFLICT admits the
lost update (concurrent writers need not see each other) while PREFIX
still forbids the long fork; write skew remains allowed.  PC has no
dependency-graph characterisation here (that is precisely the open
problem §7 points at), so membership is decided only by the direct
execution search (:func:`repro.characterisation.exec_search`).
"""

MODELS: Dict[str, ConsistencyModel] = {m.name: m for m in (SI, SER, PSI)}
"""The paper's three models — the ones with dependency-graph
characterisations (Theorems 8, 9, 21)."""

AXIOMATIC_MODELS: Dict[str, ConsistencyModel] = {
    m.name: m for m in (SI, SER, PSI, PC)
}
"""All axiomatically-specified models, including extensions without a
known graph characterisation (decidable only by execution search)."""


def in_exec_si(execution: AbstractExecution) -> bool:
    """``execution ∈ ExecSI`` (Definition 4)."""
    return SI.satisfied_by(execution)


def in_exec_ser(execution: AbstractExecution) -> bool:
    """``execution ∈ ExecSER`` (Definition 4)."""
    return SER.satisfied_by(execution)


def in_exec_psi(execution: AbstractExecution) -> bool:
    """``execution ∈ ExecPSI`` (Definition 20)."""
    return PSI.satisfied_by(execution)


def in_pre_exec_si(pre: PreExecution) -> bool:
    """``pre ∈ PreExecSI`` (Definition 11)."""
    return SI.satisfied_by(pre)
