"""Graphviz DOT export for the library's graph structures.

Renders dependency graphs (with the paper's figure conventions — bold
dependency edges, labelled per object), chopping graphs (successor /
predecessor / conflict edges), static dependency graphs and abstract
executions (VIS solid, CO dotted) as DOT source text.  No graphviz
dependency: the functions emit plain strings, ready for ``dot -Tpdf``
or online renderers.

Edge styling follows the paper's figures where it has them:

* WR — solid bold;
* WW — solid bold, open arrowhead;
* RW — dashed bold (the figures' distinctive anti-dependency arrows);
* SO / successor — thin solid; predecessor — thin dashed, grey;
* VIS — solid; CO — dotted grey.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..core.executions import PreExecution
from ..graphs.cycles import EdgeKind, LabeledDigraph
from ..graphs.dependency import DependencyGraph

_EDGE_STYLE: Dict[EdgeKind, str] = {
    EdgeKind.WR: 'color="black", style=bold',
    EdgeKind.WW: 'color="black", style=bold, arrowhead=empty',
    EdgeKind.RW: 'color="black", style="bold,dashed"',
    EdgeKind.SO: 'color="gray40"',
    EdgeKind.SUCCESSOR: 'color="gray40"',
    EdgeKind.PREDECESSOR: 'color="gray60", style=dashed',
}


def _quote(name: object) -> str:
    text = str(name).replace('"', r"\"")
    return f'"{text}"'


def _edge_line(src: object, dst: object, kind: EdgeKind,
               obj: Optional[str]) -> str:
    label = kind.value if obj is None else f"{kind.value}({obj})"
    style = _EDGE_STYLE.get(kind, "")
    attrs = f'label="{label}"'
    if style:
        attrs += f", {style}"
    return f"  {_quote(src)} -> {_quote(dst)} [{attrs}];"


def labeled_digraph_to_dot(
    graph: LabeledDigraph, name: str = "G"
) -> str:
    """DOT source for any labelled multigraph (chopping graphs, static
    dependency graphs)."""
    lines: List[str] = [f"digraph {_quote(name)} {{", "  rankdir=LR;"]
    for node in sorted(graph.nodes, key=str):
        lines.append(f"  {_quote(node)};")
    for edge in sorted(graph.edges, key=str):
        lines.append(_edge_line(edge.src, edge.dst, edge.kind, edge.obj))
    lines.append("}")
    return "\n".join(lines)


def dependency_graph_to_dot(
    graph: DependencyGraph, name: str = "G", include_so: bool = True
) -> str:
    """DOT source for a dependency graph, in the style of Figure 2/4.

    Transactions are boxes labelled with their operations; dependency
    edges carry their kind and object.
    """
    lines: List[str] = [f"digraph {_quote(name)} {{", "  rankdir=LR;",
                        "  node [shape=box, fontsize=10];"]
    for t in sorted(graph.transactions, key=lambda t: t.tid):
        ops = r"\n".join(str(e.op) for e in t.events)
        lines.append(f"  {_quote(t.tid)} [label=\"{t.tid}\\n{ops}\"];")
    if include_so:
        for a, b in sorted(
            graph.session_order, key=lambda p: (p[0].tid, p[1].tid)
        ):
            lines.append(_edge_line(a.tid, b.tid, EdgeKind.SO, None))
    for kind, per_obj in (
        (EdgeKind.WR, graph.wr),
        (EdgeKind.WW, graph.ww),
        (EdgeKind.RW, graph.rw),
    ):
        for obj in sorted(per_obj):
            for a, b in sorted(
                per_obj[obj], key=lambda p: (p[0].tid, p[1].tid)
            ):
                lines.append(_edge_line(a.tid, b.tid, kind, obj))
    lines.append("}")
    return "\n".join(lines)


def execution_to_dot(
    execution: PreExecution, name: str = "X", transitive_reduction: bool = True
) -> str:
    """DOT source for an abstract execution: VIS solid, CO dotted.

    With ``transitive_reduction`` (default), only covering edges of each
    relation are drawn — closures render as unreadable cliques.
    """
    import networkx as nx

    lines: List[str] = [f"digraph {_quote(name)} {{", "  rankdir=LR;",
                        "  node [shape=box, fontsize=10];"]
    for t in sorted(execution.history.transactions, key=lambda t: t.tid):
        lines.append(f"  {_quote(t.tid)};")

    def reduced(pairs):
        if not transitive_reduction:
            return [(a.tid, b.tid) for a, b in pairs]
        g = nx.DiGraph()
        g.add_edges_from((a.tid, b.tid) for a, b in pairs)
        if not nx.is_directed_acyclic_graph(g):
            return [(a.tid, b.tid) for a, b in pairs]
        return list(nx.transitive_reduction(g).edges())

    for a, b in sorted(reduced(execution.vis)):
        lines.append(f'  {_quote(a)} -> {_quote(b)} [label="VIS"];')
    for a, b in sorted(reduced(execution.co)):
        lines.append(
            f'  {_quote(a)} -> {_quote(b)} '
            f'[label="CO", style=dotted, color="gray50"];'
        )
    lines.append("}")
    return "\n".join(lines)
