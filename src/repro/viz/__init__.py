"""Visualisation: Graphviz DOT export of graphs and executions."""

from .dot import (
    dependency_graph_to_dot,
    execution_to_dot,
    labeled_digraph_to_dot,
)

__all__ = [
    "dependency_graph_to_dot",
    "execution_to_dot",
    "labeled_digraph_to_dot",
]
