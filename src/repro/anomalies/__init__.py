"""Canonical anomaly scenarios from the paper's figures (see catalog)."""

from .catalog import (
    ALL_CASES,
    AnomalyCase,
    INIT_TID,
    fig4_g1,
    fractured_read,
    non_monotonic_reads,
    session_violation,
    fig4_g2,
    fig11_h6,
    fig12_g7,
    fig13_execution,
    load,
    long_fork,
    lost_update,
    session_guarantees,
    write_skew,
)

__all__ = [
    "AnomalyCase",
    "ALL_CASES",
    "INIT_TID",
    "load",
    "session_guarantees",
    "lost_update",
    "long_fork",
    "write_skew",
    "fractured_read",
    "session_violation",
    "non_monotonic_reads",
    "fig4_g1",
    "fig4_g2",
    "fig11_h6",
    "fig12_g7",
    "fig13_execution",
]
