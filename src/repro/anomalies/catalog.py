"""The canonical histories and executions from the paper's figures.

Each catalog entry packages a named history (with its initialisation
transaction), optionally a canonical abstract execution realising it, and
the paper's expected classification under SER / SI / PSI:

* ``session_guarantees``  — Figure 2(a): allowed everywhere.
* ``lost_update``         — Figure 2(b): allowed by none of the models.
* ``long_fork``           — Figure 2(c): in HistPSI \\ HistSI.
* ``write_skew``          — Figure 2(d): in HistSI \\ HistSER.
* ``fig4_g1`` / ``fig4_g2`` — Figure 4's chopped-transfer graphs (the
  running example of Section 5); G1 is not spliceable, G2 is.
* ``fig11_h6``            — Appendix B.1: chopping correct under SI but
  whose splice is a write skew (not serializable).
* ``fig12_g7``            — Appendix B.2: chopping correct under PSI but
  whose splice is a long fork (not in HistSI).
* ``fig13_execution``     — Appendix B.3: an SI execution whose *direct*
  splicing produces a cyclic commit order, motivating graph splicing.

Values are concrete (the paper leaves some implicit): initial balances are
zero unless the scenario dictates otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..core.events import read, write
from ..core.executions import AbstractExecution, execution
from ..core.histories import History, history
from ..core.transactions import (
    Transaction,
    initialisation_transaction,
    transaction,
)
from ..graphs.dependency import DependencyGraph, dependency_graph

INIT_TID = "t_init"


@dataclass(frozen=True)
class AnomalyCase:
    """A named scenario from the paper with its expected classification.

    Attributes:
        name: catalog key.
        description: what the scenario illustrates.
        history: the client-visible history, initialisation included.
        expected: expected history-level membership per model name.
        execution: a canonical abstract execution of the history, when the
            figure specifies one (used by axiom-level tests).
        graph: a canonical dependency graph, when the figure draws one
            (used by chopping/robustness tests).
    """

    name: str
    description: str
    history: History
    expected: Dict[str, bool]
    execution: Optional[AbstractExecution] = None
    graph: Optional[DependencyGraph] = None

    @property
    def init_tid(self) -> str:
        """The id of the initialisation transaction."""
        return INIT_TID


def session_guarantees() -> AnomalyCase:
    """Figure 2(a): a session write followed by a session read of it.

    ``T1`` writes ``x = 1``; ``T2``, later in the same session, must see
    the write (SESSION forces ``T1 --VIS--> T2``).  Allowed by every model.
    """
    init = initialisation_transaction(["x"])
    t1 = transaction("t1", write("x", 1))
    t2 = transaction("t2", read("x", 1))
    h = history([init], [t1, t2])
    vis = [(init, t1), (init, t2), (t1, t2)]
    co = [(init, t1), (t1, t2)]
    return AnomalyCase(
        name="session_guarantees",
        description="Figure 2(a): session order forces visibility",
        history=h,
        expected={"SER": True, "SI": True, "PSI": True},
        execution=execution(h, vis, co),
    )


def lost_update() -> AnomalyCase:
    """Figure 2(b): two concurrent increments, one deposit lost.

    Both transactions read ``acct = 0`` and write back their own deposit;
    NOCONFLICT (the write-conflict check) rules this out under SI and PSI,
    and it is trivially not serializable.  Allowed by no model.
    """
    init = initialisation_transaction(["acct"])
    t1 = transaction("t1", read("acct", 0), write("acct", 50))
    t2 = transaction("t2", read("acct", 0), write("acct", 25))
    h = history([init], [t1], [t2])
    return AnomalyCase(
        name="lost_update",
        description="Figure 2(b): lost update — concurrent blind increments",
        history=h,
        expected={"SER": False, "SI": False, "PSI": False},
    )


def long_fork() -> AnomalyCase:
    """Figure 2(c): two independent writes observed in opposite orders.

    ``T3`` sees ``T1``'s write to ``x`` but not ``T2``'s to ``y``; ``T4``
    the converse.  PREFIX rules this out under SI; parallel SI allows it.
    """
    init = initialisation_transaction(["x", "y"])
    t1 = transaction("t1", write("x", 1))
    t2 = transaction("t2", write("y", 1))
    t3 = transaction("t3", read("x", 1), read("y", 0))
    t4 = transaction("t4", read("x", 0), read("y", 1))
    h = history([init], [t1], [t2], [t3], [t4])
    return AnomalyCase(
        name="long_fork",
        description="Figure 2(c): long fork — PSI-only anomaly",
        history=h,
        expected={"SER": False, "SI": False, "PSI": True},
    )


def write_skew() -> AnomalyCase:
    """Figure 2(d): the characteristic SI anomaly (Section 1's example).

    Both transactions check ``acct1 + acct2 > 100`` against the initial
    balances (70 + 80) and withdraw 100 from *different* accounts, driving
    the combined balance negative.  Allowed by SI (and PSI) but not by
    serializability.
    """
    init = transaction(INIT_TID, write("acct1", 70), write("acct2", 80))
    t1 = transaction(
        "t1", read("acct1", 70), read("acct2", 80), write("acct1", -30)
    )
    t2 = transaction(
        "t2", read("acct1", 70), read("acct2", 80), write("acct2", -20)
    )
    h = history([init], [t1], [t2])
    vis = [(init, t1), (init, t2)]
    co = [(init, t1), (t1, t2)]
    return AnomalyCase(
        name="write_skew",
        description="Figure 2(d): write skew — allowed by SI, not SER",
        history=h,
        expected={"SER": False, "SI": True, "PSI": True},
        execution=execution(h, vis, co),
    )


def fig4_g1() -> AnomalyCase:
    """Figure 4's graph ``G1``: a chopped transfer observed mid-flight.

    The ``transfer`` program is chopped into a session of two transactions
    (``t_tr1`` debits acct1, ``t_tr2`` credits acct2); the ``lookupAll``
    transaction ``s`` sees the debit but not the credit.  The *chopped*
    history is perfectly consistent (even serializable: init, t_tr1, s,
    t_tr2) — the problem is that the chopping is not spliceable: the
    spliced lookup would observe half a transfer, so splice(H_G1) is not
    in HistSI.
    """
    init = initialisation_transaction(["acct1", "acct2"])
    t_tr1 = transaction("t_tr1", read("acct1", 0), write("acct1", -100))
    t_tr2 = transaction("t_tr2", read("acct2", 0), write("acct2", 100))
    s = transaction("s", read("acct1", -100), read("acct2", 0))
    h = history([init], [t_tr1, t_tr2], [s])
    graph = dependency_graph(
        h,
        wr={
            "acct1": [(init, t_tr1), (t_tr1, s)],
            "acct2": [(init, t_tr2), (init, s)],
        },
        ww={
            "acct1": [(init, t_tr1)],
            "acct2": [(init, t_tr2)],
        },
    )
    return AnomalyCase(
        name="fig4_g1",
        description="Figure 4 G1: chopped transfer seen mid-flight (not spliceable)",
        history=h,
        expected={"SER": True, "SI": True, "PSI": True},
        graph=graph,
    )


def fig4_g2() -> AnomalyCase:
    """Figure 4's graph ``G2``: the same chopped transfer with per-account
    lookups (``lookup1``, ``lookup2``).  Spliceable: the lookups cannot
    observe an inconsistent cross-account state."""
    init = initialisation_transaction(["acct1", "acct2"])
    t_tr1 = transaction("t_tr1", read("acct1", 0), write("acct1", -100))
    t_tr2 = transaction("t_tr2", read("acct2", 0), write("acct2", 100))
    s1 = transaction("s1", read("acct1", -100))
    s2 = transaction("s2", read("acct2", 100))
    h = history([init], [t_tr1, t_tr2], [s1], [s2])
    graph = dependency_graph(
        h,
        wr={
            "acct1": [(init, t_tr1), (t_tr1, s1)],
            "acct2": [(init, t_tr2), (t_tr2, s2)],
        },
        ww={
            "acct1": [(init, t_tr1)],
            "acct2": [(init, t_tr2)],
        },
    )
    return AnomalyCase(
        name="fig4_g2",
        description="Figure 4 G2: chopped transfer with single-account lookups (spliceable)",
        history=h,
        expected={"SER": True, "SI": True, "PSI": True},
        graph=graph,
    )


def fig11_h6() -> AnomalyCase:
    """Appendix B.1 (Figure 11): chopping correct under SI, not under SER.

    Sessions ``write1 = [read x; write y]`` and ``write2 = [read y;
    write x]``, both chopped into two transactions reading the initial
    snapshot.  The chopped history is serializable; its *splice* is a
    write skew — demonstrating that P3's chopping is incorrect under
    serializability yet correct under SI.
    """
    init = transaction(INIT_TID, write("x", 5), write("y", 7))
    t11 = transaction("t11", read("x", 5))
    t12 = transaction("t12", write("y", 5))
    t21 = transaction("t21", read("y", 7))
    t22 = transaction("t22", write("x", 7))
    h = history([init], [t11, t12], [t21, t22])
    graph = dependency_graph(
        h,
        wr={"x": [(init, t11)], "y": [(init, t21)]},
        ww={"x": [(init, t22)], "y": [(init, t12)]},
    )
    return AnomalyCase(
        name="fig11_h6",
        description="Figure 11 H6: chopped cross-write whose splice is a write skew",
        history=h,
        expected={"SER": True, "SI": True, "PSI": True},
        graph=graph,
    )


def fig12_g7() -> AnomalyCase:
    """Appendix B.2 (Figure 12): chopping correct under PSI, not under SI.

    ``write1``/``write2`` publish posts ``x`` and ``y``; chopped readers
    ``read1 = [a := y; b := x]`` and ``read2 = [a := x; b := y]`` observe
    the two posts in opposite orders.  The chopped history is allowed by
    SI; its splice is a long fork — not in HistSI.
    """
    init = initialisation_transaction(["x", "y"])
    w1 = transaction("w1", write("x", 1))
    w2 = transaction("w2", write("y", 1))
    r1a = transaction("r1a", read("y", 0))
    r1b = transaction("r1b", read("x", 1))
    r2a = transaction("r2a", read("x", 0))
    r2b = transaction("r2b", read("y", 1))
    h = history([init], [w1], [w2], [r1a, r1b], [r2a, r2b])
    graph = dependency_graph(
        h,
        wr={
            "x": [(w1, r1b), (init, r2a)],
            "y": [(w2, r2b), (init, r1a)],
        },
        ww={
            "x": [(init, w1)],
            "y": [(init, w2)],
        },
    )
    return AnomalyCase(
        name="fig12_g7",
        description="Figure 12 G7: chopped reads whose splice is a long fork",
        history=h,
        expected={"SER": True, "SI": True, "PSI": True},
        graph=graph,
    )


def fig13_execution() -> AnomalyCase:
    """Appendix B.3 (Figure 13): why executions are not spliced directly.

    An SI execution with sessions ``[T1, T2]`` and ``[S1, S2]`` whose
    commit order interleaves the sessions (``T1 < S1 < T2 < S2``).  Lifting
    CO to spliced transactions relates the two sessions in both directions,
    so the "spliced execution" has a cyclic commit order; splicing the
    *dependency graph* instead succeeds.
    """
    init = initialisation_transaction(["x", "y"])
    t1 = transaction("T1", write("x", 1))
    s1 = transaction("S1", read("x", 1))
    t2 = transaction("T2", write("y", 1))
    s2 = transaction("S2", read("y", 1))
    h = history([init], [t1, t2], [s1, s2])
    vis = [
        (init, t1),
        (init, s1),
        (init, t2),
        (init, s2),
        (t1, s1),
        (t1, t2),
        (s1, s2),
        (t2, s2),
        (t1, s2),
    ]
    co = [(init, t1), (t1, s1), (s1, t2), (t2, s2)]
    return AnomalyCase(
        name="fig13_execution",
        description="Figure 13: SI execution whose direct splice has cyclic CO",
        history=h,
        expected={"SER": True, "SI": True, "PSI": True},
        execution=execution(h, vis, co),
    )


def fractured_read() -> AnomalyCase:
    """Fractured read: observing half of another transaction's writes.

    ``T1`` writes both ``x`` and ``y``; ``T2`` reads ``T1``'s ``x`` but
    the initial ``y``.  Every model in this paper takes atomic snapshots
    (EXT reads all of a visible transaction's writes), so all three
    forbid it — unlike e.g. read-committed systems.  Not a paper figure;
    included because it delimits what SESSION/EXT already give.
    """
    init = initialisation_transaction(["x", "y"])
    t1 = transaction("t1", write("x", 1), write("y", 1))
    t2 = transaction("t2", read("x", 1), read("y", 0))
    h = history([init], [t1], [t2])
    return AnomalyCase(
        name="fractured_read",
        description="fractured read — half of T1's writes observed",
        history=h,
        expected={"SER": False, "SI": False, "PSI": False},
    )


def session_violation() -> AnomalyCase:
    """A strong-session violation: a transaction missing its own
    session's earlier write.

    ``T1`` writes ``x = 1`` and ``T2``, later in the *same session*,
    reads the initial ``x = 0``.  SESSION forces ``T1 --VIS--> T2`` in
    every model here (Definition 4 is the *strong session* variant), so
    all three reject it; plain (sessionless) SI would allow it.
    """
    init = initialisation_transaction(["x"])
    t1 = transaction("t1", write("x", 1))
    t2 = transaction("t2", read("x", 0))
    h = history([init], [t1, t2])
    return AnomalyCase(
        name="session_violation",
        description="stale session read — violates the SESSION axiom",
        history=h,
        expected={"SER": False, "SI": False, "PSI": False},
    )


def non_monotonic_reads() -> AnomalyCase:
    """Observations travelling backwards within a session.

    ``T1`` (session A) reads ``x = 1`` (so ``w``'s write is visible);
    ``T2``, later in session A, reads ``x = 0`` again.  Forbidden by all
    three models: SESSION plus EXT make a session's snapshots grow
    monotonically (for SI/SER via PREFIX/TOTALVIS, for PSI via TRANSVIS:
    ``w VIS T1 SO⊆VIS T2`` forces ``w VIS T2``).
    """
    init = initialisation_transaction(["x"])
    w = transaction("w", write("x", 1))
    t1 = transaction("t1", read("x", 1))
    t2 = transaction("t2", read("x", 0))
    h = history([init], [w], [t1, t2])
    return AnomalyCase(
        name="non_monotonic_reads",
        description="session re-reads an older value — snapshots must grow",
        history=h,
        expected={"SER": False, "SI": False, "PSI": False},
    )


ALL_CASES = {
    case().name: case
    for case in (
        session_guarantees,
        lost_update,
        long_fork,
        write_skew,
        fractured_read,
        session_violation,
        non_monotonic_reads,
        fig4_g1,
        fig4_g2,
        fig11_h6,
        fig12_g7,
        fig13_execution,
    )
}
"""Catalog index: name → zero-argument constructor."""


def load(name: str) -> AnomalyCase:
    """Fetch a catalog case by name."""
    try:
        return ALL_CASES[name]()
    except KeyError:
        raise KeyError(
            f"unknown case {name!r}; available: {sorted(ALL_CASES)}"
        ) from None
