"""A pipelined, commit-sequenced feed from the engines to a monitor.

In synchronous certification the engine's commit mutex is held across
``commit + observe_commit``, so the monitor's (comparatively expensive)
graph maintenance sits inside the commit critical section and every
committer queues behind it.  Observe-only deployments don't need that:
the monitor must merely see every commit *in commit order*, not *before
the commit returns*.

:class:`PipelinedMonitorFeed` decouples the two.  Committers submit
their :class:`~repro.mvcc.engine.CommitRecord` to a **bounded** queue
right after the engine releases the commit mutex; a dedicated drain
thread reorders records by their engine-assigned commit timestamp (the
engines allocate them gaplessly — 1, 2, 3, … — under the commit mutex,
so the timestamp *is* the commit sequence number) and feeds the monitor
in exact commit order.

Properties:

* **Order** — records may arrive scrambled (submission happens outside
  the commit mutex), but the drain thread holds back a record until
  every earlier sequence number has been observed, so the monitor sees
  the engine's true commit order.
* **Backpressure, never drops** — the queue is bounded; when the
  monitor falls behind, ``submit`` blocks the committer instead of
  dropping an observation.  The reorder buffer cannot deadlock the
  queue: the drain thread always moves records out of the queue into
  the buffer immediately, so slots free up even while a sequence gap
  is outstanding (the buffer is bounded by the number of in-flight
  committers).
* **Errors surface** — an exception raised by the observer (e.g.
  :class:`~repro.monitor.online.MonitorError`) is captured, further
  observations stop (the monitor's state is suspect), and the error is
  re-raised to the next ``submit`` and to ``close``.  The drain thread
  keeps consuming the queue so blocked committers are released.
* **Drain on close** — ``close`` flushes every pending observation
  before returning (and re-raises any captured error).
"""

from __future__ import annotations

import queue
import threading
from typing import Callable, Dict, Optional

from ..core.errors import StoreError
from ..faults import FAULTS
from ..mvcc.engine import CommitRecord

DEFAULT_FEED_CAPACITY = 256
"""Default bound on the feed queue (submitted-but-unobserved commits)."""

_SENTINEL = object()


class FeedClosed(StoreError):
    """Submission to a feed that has been closed."""


class PipelinedMonitorFeed:
    """Asynchronous commit-ordered delivery of records to an observer.

    Args:
        observe: called with each :class:`CommitRecord`, in commit-ts
            order, from the single drain thread.
        capacity: queue bound — at most this many submitted commits may
            be awaiting observation before ``submit`` blocks.
        start_seq: the first commit timestamp the feed expects (one
            past the engine's last commit at attach time).
    """

    def __init__(
        self,
        observe: Callable[[CommitRecord], None],
        capacity: int = DEFAULT_FEED_CAPACITY,
        start_seq: int = 1,
    ):
        if capacity < 1:
            raise StoreError(
                f"feed capacity must be positive, got {capacity}"
            )
        self._observe = observe
        self._queue: "queue.Queue" = queue.Queue(maxsize=capacity)
        self._pending: Dict[int, CommitRecord] = {}
        self._next_seq = start_seq
        self._cond = threading.Condition()
        self._submitted = 0
        self._drained = 0
        self._error: Optional[BaseException] = None
        self._closed = False
        self._thread = threading.Thread(
            target=self._drain_loop, name="monitor-feed", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # Producer side (committers)
    # ------------------------------------------------------------------

    def submit(self, record: CommitRecord) -> None:
        """Enqueue one committed transaction for observation.

        Blocks while the queue is full (backpressure).  Raises the
        observer's error if one has been captured, and
        :class:`FeedClosed` after :meth:`close`.
        """
        with self._cond:
            if self._error is not None:
                raise self._error
            if self._closed:
                raise FeedClosed(
                    "monitor feed is closed; commit "
                    f"{record.tid} not observed"
                )
            self._submitted += 1
        self._queue.put(record)

    # ------------------------------------------------------------------
    # Drain side
    # ------------------------------------------------------------------

    def _drain_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SENTINEL:
                break
            # Move into the reorder buffer unconditionally: the queue
            # slot is released even while a sequence gap is open.
            self._pending[item.commit_ts] = item
            while self._next_seq in self._pending:
                record = self._pending.pop(self._next_seq)
                self._next_seq += 1
                if self._error is None:
                    try:
                        if FAULTS.armed:
                            # A stalled consumer: the bounded queue
                            # backs up into committer backpressure.
                            FAULTS.fire(
                                "feed.observe", seq=record.commit_ts
                            )
                        self._observe(record)
                    except BaseException as exc:  # surfaced to callers
                        with self._cond:
                            self._error = exc
                            self._cond.notify_all()
                with self._cond:
                    self._drained += 1
                    self._cond.notify_all()

    # ------------------------------------------------------------------
    # Flushing and shutdown
    # ------------------------------------------------------------------

    @property
    def lag(self) -> int:
        """Commits submitted but not yet run through the observer."""
        with self._cond:
            return self._submitted - self._drained

    def flush(self, timeout: Optional[float] = None) -> None:
        """Block until every submitted commit has been observed (or an
        observer error has been captured — re-raised here)."""
        with self._cond:
            done = self._cond.wait_for(
                lambda: self._drained >= self._submitted
                or self._error is not None,
                timeout=timeout,
            )
            if self._error is not None:
                raise self._error
            if not done:
                raise StoreError(
                    f"monitor feed flush timed out with "
                    f"{self._submitted - self._drained} commit(s) pending"
                )

    def close(self, timeout: Optional[float] = None) -> None:
        """Stop accepting submissions, drain everything, join the
        thread, and re-raise any captured observer error.  Idempotent."""
        with self._cond:
            already = self._closed
            self._closed = True
        if not already:
            self._queue.put(_SENTINEL)
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise StoreError("monitor feed drain thread failed to stop")
        if self._error is None:
            with self._cond:
                if self._pending:
                    self._error = StoreError(
                        f"monitor feed closed with a sequence gap: "
                        f"expected commit #{self._next_seq}, holding "
                        f"{sorted(self._pending)}"
                    )
                elif self._drained < self._submitted:
                    # A submit raced close (producers must stop first).
                    self._error = StoreError(
                        f"monitor feed closed while "
                        f"{self._submitted - self._drained} commit(s) "
                        f"were still in flight"
                    )
        if self._error is not None:
            raise self._error
