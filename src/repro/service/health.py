"""The service health state machine and admission circuit breaker.

Graceful degradation needs a place where the service admits it is in
trouble.  :class:`HealthTracker` watches two gauges — a sliding-window
abort rate over recent attempts and an EWMA of write-ahead-log append
latency — and walks a three-state machine::

    healthy  --gauges past degraded thresholds-->  degraded
    degraded --gauges past shedding thresholds-->  shedding
    shedding --gauges clean for `cooldown`------>  degraded --> healthy

Escalation is immediate (a collapsing service must not average its way
out of noticing); de-escalation is hysteretic — one level at a time,
only after the gauges have stayed below the *de-escalation* thresholds
(half the escalation ones) for ``cooldown`` seconds, so the state does
not flap at a threshold boundary.

In the ``shedding`` state the admission path becomes a circuit
breaker: new transactions are refused with
:class:`~repro.core.errors.ServiceOverloaded` instead of queueing,
except for a trickle of *probes* (one per ``probe_interval``) that keep
feeding the gauges so recovery is observable — the classic half-open
breaker.  Enforcement is opt-in (``HealthPolicy(enforce=True)``): a
plain service tracks and reports its state but never sheds, so existing
deployments keep their semantics.

A write-ahead-log failure is a separate, sticky signal: the service
notes it here so the state floor becomes ``degraded`` (a service that
cannot make commits durable is not healthy, whatever its abort rate).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

HEALTHY = "healthy"
DEGRADED = "degraded"
SHEDDING = "shedding"

HEALTH_STATES = (HEALTHY, DEGRADED, SHEDDING)
"""States in escalation order."""

_LEVEL = {HEALTHY: 0, DEGRADED: 1, SHEDDING: 2}
_STATE = {level: state for state, level in _LEVEL.items()}


@dataclass(frozen=True)
class HealthPolicy:
    """Thresholds and timing of the health state machine.

    Attributes:
        enforce: whether the ``shedding`` state actually sheds at
            admission (False = observe-only; the default so attaching
            health tracking never changes service semantics).
        window: attempts in the sliding abort-rate window.
        min_samples: attempts required before the abort-rate gauge is
            trusted (a cold service is healthy, not unmeasured-shedding).
        degraded_abort_rate / shedding_abort_rate: escalation
            thresholds on the windowed abort rate.
        degraded_wal_latency / shedding_wal_latency: escalation
            thresholds (seconds) on the WAL append-latency EWMA.
        cooldown: seconds the gauges must stay below the de-escalation
            thresholds (half the escalation ones) before stepping down
            one level.
        probe_interval: while shedding, one probe transaction is
            admitted per this many seconds (keeps the gauges fed).
        wal_latency_alpha: EWMA smoothing factor for append latency.
    """

    enforce: bool = False
    window: int = 64
    min_samples: int = 16
    degraded_abort_rate: float = 0.5
    shedding_abort_rate: float = 0.85
    degraded_wal_latency: float = 0.05
    shedding_wal_latency: float = 0.25
    cooldown: float = 0.2
    probe_interval: float = 0.05
    wal_latency_alpha: float = 0.2


class HealthTracker:
    """Tracks the health state of one service (thread-safe).

    Args:
        policy: thresholds/timing (defaults observe-only).
        clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        policy: Optional[HealthPolicy] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.policy = policy or HealthPolicy()
        self._clock = clock
        self._lock = threading.Lock()
        self._level = 0
        self._attempts: Deque[bool] = deque(maxlen=self.policy.window)
        self._abort_count = 0  # aborts currently inside the window
        self._wal_latency_ewma = 0.0
        self._wal_latency_seen = False
        self._wal_failed = False
        self._below_since: Optional[float] = None
        self._last_probe = float("-inf")
        self.transitions: List[Tuple[float, str, str]] = []
        """Every state change as ``(monotonic time, from, to)``."""

    # ------------------------------------------------------------------
    # Gauge feeds
    # ------------------------------------------------------------------

    def note_attempt(self, aborted: bool) -> None:
        """One transaction attempt finished (commit or abort)."""
        with self._lock:
            if len(self._attempts) == self._attempts.maxlen:
                if self._attempts[0]:
                    self._abort_count -= 1
            self._attempts.append(aborted)
            if aborted:
                self._abort_count += 1
            self._evaluate_locked()

    def note_wal_latency(self, seconds: float) -> None:
        """One durable append completed in ``seconds``."""
        with self._lock:
            if not self._wal_latency_seen:
                self._wal_latency_ewma = seconds
                self._wal_latency_seen = True
            else:
                a = self.policy.wal_latency_alpha
                self._wal_latency_ewma = (
                    a * seconds + (1 - a) * self._wal_latency_ewma
                )
            self._evaluate_locked()

    def note_wal_failure(self) -> None:
        """The write-ahead log failed; the state floor is degraded
        from here on (durability cannot silently look healthy)."""
        with self._lock:
            self._wal_failed = True
            self._evaluate_locked()

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        """The current health state (re-evaluates time-based
        de-escalation first, so an idle service can recover)."""
        with self._lock:
            self._evaluate_locked()
            return _STATE[self._level]

    @property
    def wal_failed(self) -> bool:
        """Whether a WAL failure has been noted."""
        with self._lock:
            return self._wal_failed

    def abort_rate(self) -> float:
        """Abort rate over the sliding window (0.0 when under-sampled)."""
        with self._lock:
            return self._abort_rate_locked()

    def wal_latency(self) -> float:
        """The WAL append-latency EWMA in seconds."""
        with self._lock:
            return self._wal_latency_ewma

    def _abort_rate_locked(self) -> float:
        n = len(self._attempts)
        if n < self.policy.min_samples:
            return 0.0
        return self._abort_count / n

    def _target_level_locked(self) -> int:
        """The level the gauges currently call for (escalation
        thresholds), with the WAL-failure floor applied."""
        rate = self._abort_rate_locked()
        lat = self._wal_latency_ewma if self._wal_latency_seen else 0.0
        p = self.policy
        if rate >= p.shedding_abort_rate or lat >= p.shedding_wal_latency:
            level = 2
        elif rate >= p.degraded_abort_rate or lat >= p.degraded_wal_latency:
            level = 1
        else:
            level = 0
        if self._wal_failed:
            level = max(level, 1)
        return level

    def _calm_level_locked(self) -> int:
        """The level under the (halved) de-escalation thresholds —
        hysteresis so the state does not flap at a boundary."""
        rate = self._abort_rate_locked()
        lat = self._wal_latency_ewma if self._wal_latency_seen else 0.0
        p = self.policy
        if (
            rate >= p.shedding_abort_rate / 2
            or lat >= p.shedding_wal_latency / 2
        ):
            level = 2
        elif (
            rate >= p.degraded_abort_rate / 2
            or lat >= p.degraded_wal_latency / 2
        ):
            level = 1
        else:
            level = 0
        if self._wal_failed:
            level = max(level, 1)
        return level

    def _evaluate_locked(self) -> None:
        now = self._clock()
        target = self._target_level_locked()
        if target > self._level:
            self._transition_locked(now, target)
            self._below_since = None
            return
        calm = self._calm_level_locked()
        if calm < self._level:
            if self._below_since is None:
                self._below_since = now
            elif now - self._below_since >= self.policy.cooldown:
                self._transition_locked(now, self._level - 1)
                # The next step down needs its own full cooldown.
                self._below_since = now
        else:
            self._below_since = None

    def _transition_locked(self, now: float, level: int) -> None:
        old = _STATE[self._level]
        self._level = level
        self.transitions.append((now, old, _STATE[level]))

    # ------------------------------------------------------------------
    # The circuit breaker
    # ------------------------------------------------------------------

    def allow_admission(self) -> bool:
        """Whether a new transaction may be admitted right now.

        Always True unless the policy enforces and the state is
        ``shedding``; while shedding, one probe per ``probe_interval``
        is still allowed so the gauges keep moving and recovery is
        observable.
        """
        with self._lock:
            self._evaluate_locked()
            if not self.policy.enforce or self._level < 2:
                return True
            now = self._clock()
            if now - self._last_probe >= self.policy.probe_interval:
                self._last_probe = now
                return True
            return False

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """The tracker's state as a plain dict."""
        with self._lock:
            self._evaluate_locked()
            return {
                "state": _STATE[self._level],
                "enforce": self.policy.enforce,
                "window_abort_rate": round(self._abort_rate_locked(), 4),
                "wal_latency_ewma": round(self._wal_latency_ewma, 6),
                "wal_failed": self._wal_failed,
                "transitions": len(self.transitions),
            }
