"""A thread-safe concurrent transaction service over the MVCC engines.

Everything below the service is caller-scheduled and deterministic; the
service is where the reproduction starts *serving* concurrent traffic.
It wraps any :class:`~repro.mvcc.engine.BaseEngine` behind per-client
session handles with:

* **begin/read/write/commit/abort** passing through the engine's
  operation-level atomicity (:attr:`BaseEngine.lock`);
* **automatic retry with exponential backoff** of aborted transactions
  (:meth:`ServiceSession.run`) — the client discipline of Section 5,
  bounded by a retry cap that raises
  :class:`~repro.core.errors.RetryExhausted` instead of livelocking;
* an **admission limit**: at most ``max_concurrent`` transactions in
  flight, the rest queueing on a semaphore (queue depth is metered);
* optional **online monitoring** in one of two modes: with
  ``monitor_mode="sync"`` (certification) an attached
  :class:`~repro.monitor.online.ConsistencyMonitor` (typically the
  windowed variant) observes every commit *in true commit order* inside
  the commit critical section — the engine lock is held across
  commit + observation, so the commit's outcome carries the verdict;
  with ``monitor_mode="pipelined"`` (observe-only) commits are handed
  to a bounded, commit-sequence-numbered queue drained by a dedicated
  thread (:class:`~repro.service.feed.PipelinedMonitorFeed`) — the
  engine lock is *not* held across the observation, commit latency no
  longer pays for graph maintenance, and the monitor still sees exact
  commit order because records are sequenced by their engine-assigned
  commit timestamps.  Call :meth:`TransactionService.drain` before
  reading :attr:`violations` and :meth:`TransactionService.close` at
  the end of the service's life;
* optional **durability**: with ``wal=`` a
  :class:`~repro.wal.log.WriteAheadLog` receives every commit record
  *off the engine lock*, sequenced by the engine's gapless commit
  timestamps exactly like the pipelined feed — the log's reorder buffer
  restores true commit order, so the on-disk log is always a prefix of
  the commit history and a killed service recovers to a
  prefix-consistent state via :func:`repro.wal.recovery.recover`.
  Under ``fsync_policy="always"``/``"group"`` the commit call returns
  only once its record is durable; a WAL failure is surfaced to the
  committer *after* the in-memory commit stands (same contract as a
  monitor error);
* :class:`~repro.service.metrics.ServiceMetrics` counting commits,
  aborts, retries and latency histograms (plus WAL durability counters
  when a log is attached), JSON-exportable.

Sessions map 1:1 onto engine sessions: a handle is meant to be driven
by one thread at a time (the engines enforce one active transaction per
session), so give each worker thread its own handle via
:meth:`TransactionService.session`.
"""

from __future__ import annotations

import itertools
import random
import threading
import time
from dataclasses import dataclass
from typing import List, Optional

from ..core.errors import (
    DeadlineExceeded,
    FaultInjected,
    RetryExhausted,
    ServiceOverloaded,
    ServiceReadOnly,
    StoreError,
    TransactionAborted,
)
from ..core.events import Obj, Value
from ..faults import FAULTS
from ..monitor.online import ConsistencyMonitor, Violation
from ..mvcc.engine import BaseEngine, CommitRecord, TxContext
from ..mvcc.runtime import ReadOp, TxProgram, WriteOp
from .feed import DEFAULT_FEED_CAPACITY, PipelinedMonitorFeed
from .health import HealthPolicy, HealthTracker
from .metrics import ServiceMetrics

MONITOR_MODES = ("sync", "pipelined")
"""How an attached monitor is fed: inside the commit critical section
(``sync`` — certification) or through the bounded asynchronous feed
(``pipelined`` — observe-only)."""

WAL_FAILURE_POLICIES = ("fail_stop", "read_only")
"""What a write-ahead-log failure does to the service: ``fail_stop``
(every subsequent commit surfaces the poisoned log's chained error) or
``read_only`` (reads keep serving, updates are refused with
:class:`ServiceReadOnly`)."""


class _AdmissionTimeout(StoreError):
    """Internal: the admission wait outlived the caller's deadline
    (translated into :class:`DeadlineExceeded` by the session)."""


@dataclass(frozen=True)
class TxOutcome:
    """The result of one successfully committed service transaction.

    Attributes:
        record: the engine's commit record.
        attempts: how many attempts were needed (1 = no retry).
        violation: the monitor's verdict on this commit, if a monitor is
            attached and flagged it (the commit itself stands — the
            monitor certifies, it does not veto).
    """

    record: CommitRecord
    attempts: int
    violation: Optional[Violation] = None


class TransactionService:
    """Concurrent front-end to one engine.

    Args:
        engine: any :class:`BaseEngine`; the service relies on its
            operation-level locking.
        monitor: optional online monitor fed every commit in commit
            order (use :class:`~repro.monitor.windowed.WindowedMonitor`
            for sustained load).
        max_concurrent: admission limit — at most this many
            transactions in flight at once (``None`` = unlimited).
        max_retries: resubmissions allowed per transaction before
            :class:`RetryExhausted` (the livelock bound).
        backoff_base: first backoff sleep in seconds; attempt ``n``
            sleeps ``min(backoff_cap, backoff_base * 2**(n-1))`` scaled
            by a deterministic per-session jitter in [0.5, 1.0).  Zero
            disables sleeping (useful in tests).
        backoff_seed: seed for the jitter streams.
        metrics: share an existing :class:`ServiceMetrics` (one is
            created otherwise).
        monitor_mode: ``"sync"`` (default — the monitor runs inside the
            commit critical section and its verdict is returned on the
            committing :class:`TxOutcome`) or ``"pipelined"`` (the
            monitor runs on a dedicated drain thread behind a bounded
            commit-ordered queue; verdicts land in :attr:`violations`
            asynchronously — call :meth:`drain` to wait for them).
        feed_capacity: bound of the pipelined feed queue; when the
            monitor falls this far behind, commits block (backpressure,
            never drops).  Ignored in sync mode.
        wal: optional :class:`~repro.wal.log.WriteAheadLog` appended to
            on every commit, outside the engine lock.  Its ``start_seq``
            must be one past the engine's last commit timestamp (1 for
            a fresh engine); the service adopts it — :meth:`drain`
            flushes it and :meth:`close` closes it.
        default_deadline: per-transaction wall-clock budget in seconds
            applied by :meth:`ServiceSession.run` when the caller gives
            none (``None`` = unbounded).  Backoff sleeps and admission
            waits never extend past a deadline; on expiry the session
            raises :class:`DeadlineExceeded`.
        health_policy: thresholds/timing for the health state machine
            (:class:`~repro.service.health.HealthPolicy`).  The tracker
            always runs; only a policy with ``enforce=True`` turns the
            ``shedding`` state into an admission circuit breaker.
        on_wal_failure: one of :data:`WAL_FAILURE_POLICIES` —
            ``"fail_stop"`` (default: the poisoned log's error, with
            its root cause chained, is raised to this and every later
            committer) or ``"read_only"`` (the failed append is
            absorbed, the service degrades to read-only: snapshot reads
            keep serving, updates raise :class:`ServiceReadOnly`).
    """

    def __init__(
        self,
        engine: BaseEngine,
        monitor: Optional[ConsistencyMonitor] = None,
        max_concurrent: Optional[int] = None,
        max_retries: int = 25,
        backoff_base: float = 0.0002,
        backoff_cap: float = 0.02,
        backoff_seed: int = 0,
        metrics: Optional[ServiceMetrics] = None,
        monitor_mode: str = "sync",
        feed_capacity: int = DEFAULT_FEED_CAPACITY,
        wal=None,
        default_deadline: Optional[float] = None,
        health_policy: Optional[HealthPolicy] = None,
        on_wal_failure: str = "fail_stop",
    ):
        if max_concurrent is not None and max_concurrent < 1:
            raise StoreError(
                f"max_concurrent must be positive, got {max_concurrent}"
            )
        if max_retries < 0:
            raise StoreError(f"max_retries must be >= 0, got {max_retries}")
        if monitor_mode not in MONITOR_MODES:
            raise StoreError(
                f"unknown monitor_mode {monitor_mode!r}; expected one of "
                f"{MONITOR_MODES}"
            )
        if on_wal_failure not in WAL_FAILURE_POLICIES:
            raise StoreError(
                f"unknown on_wal_failure {on_wal_failure!r}; expected "
                f"one of {WAL_FAILURE_POLICIES}"
            )
        if default_deadline is not None and default_deadline <= 0:
            raise StoreError(
                f"default_deadline must be positive, got {default_deadline}"
            )
        self.engine = engine
        self.monitor = monitor
        self.monitor_mode = monitor_mode
        self.metrics = metrics or ServiceMetrics()
        self.health = HealthTracker(health_policy)
        self.wal = wal
        self.on_wal_failure = on_wal_failure
        self.default_deadline = default_deadline
        self.read_only = False
        """True once a WAL failure degraded the service to read-only
        (``on_wal_failure="read_only"`` only)."""
        self.wal_error: Optional[BaseException] = None
        """The first WAL failure absorbed or surfaced, if any."""
        if wal is not None and wal.metrics is None:
            wal.metrics = self.metrics
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.backoff_seed = backoff_seed
        self.violations: List[Violation] = []
        self._admission = (
            threading.Semaphore(max_concurrent)
            if max_concurrent is not None
            else None
        )
        self._session_counter = itertools.count(1)
        self._lock = threading.Lock()
        self._feed: Optional[PipelinedMonitorFeed] = None
        if monitor is not None and monitor_mode == "pipelined":
            with engine.lock:
                start_seq = (
                    max(
                        (r.commit_ts for r in engine.committed),
                        default=0,
                    )
                    + 1
                )
            self._feed = PipelinedMonitorFeed(
                self._observe, capacity=feed_capacity, start_seq=start_seq
            )

    @classmethod
    def certified(
        cls,
        engine: BaseEngine,
        model: str = "SI",
        window: Optional[int] = None,
        checker: str = "incremental",
        strict_values: bool = True,
        **kwargs,
    ) -> "TransactionService":
        """A service with an attached online monitor built from the
        engine's own initial state.

        Args:
            engine: the engine to front (its ``initial`` seeds the
                monitor's version attribution).
            model: the consistency model to certify against.
            window: retain only this many commits as graph nodes
                (:class:`~repro.monitor.windowed.WindowedMonitor`);
                ``None`` keeps the full graph.
            checker: certification back-end — ``"incremental"``
                (default; dynamic-topological-order core, amortised
                per-commit cost) or ``"rebuild"`` (full per-commit
                recheck, the differential-testing oracle).
            strict_values: as for :class:`ConsistencyMonitor`.
            **kwargs: forwarded to the service constructor
                (``max_concurrent``, ``max_retries``, ...).
        """
        from ..monitor.windowed import WindowedMonitor

        if window is None:
            monitor: ConsistencyMonitor = ConsistencyMonitor(
                model=model,
                initial_values=dict(engine.initial),
                strict_values=strict_values,
                init_tid=engine.init_tid,
                checker=checker,
            )
        else:
            monitor = WindowedMonitor(
                window,
                model=model,
                initial_values=dict(engine.initial),
                strict_values=strict_values,
                init_tid=engine.init_tid,
                checker=checker,
            )
        return cls(engine, monitor, **kwargs)

    def session(self, name: Optional[str] = None) -> "ServiceSession":
        """A new session handle (drive it from a single thread)."""
        if name is None:
            with self._lock:
                name = f"client-{next(self._session_counter)}"
        return ServiceSession(self, name)

    def run(self, program: TxProgram) -> TxOutcome:
        """Run one program on a fresh throwaway session (convenience)."""
        return self.session().run(program)

    # ------------------------------------------------------------------
    # Internals shared with the session handles
    # ------------------------------------------------------------------

    def _admit(
        self,
        deadline_ts: Optional[float] = None,
        session: str = "",
    ) -> None:
        """Admission: circuit breaker first, then the (metered)
        semaphore wait, bounded by the caller's deadline when one is
        set.  Raises :class:`ServiceOverloaded` when shedding and
        :class:`_AdmissionTimeout` when the deadline elapses first."""
        if not self.health.allow_admission():
            self.metrics.record_shed()
            raise ServiceOverloaded(session, self.health.state)
        if FAULTS.armed:
            FAULTS.fire("service.admit", session=session)
        if self._admission is None:
            return
        if self._admission.acquire(blocking=False):
            return
        self.metrics.enter_admission_queue()
        try:
            if deadline_ts is None:
                self._admission.acquire()
                return
            remaining = deadline_ts - time.perf_counter()
            if remaining <= 0 or not self._admission.acquire(
                timeout=remaining
            ):
                raise _AdmissionTimeout(
                    f"session {session!r} timed out waiting for an "
                    f"admission slot"
                )
        finally:
            self.metrics.leave_admission_queue()

    def _note_wal_failure(self, error: BaseException) -> bool:
        """Record a failed WAL append and apply the degradation
        policy.  Returns True when the error was absorbed (read-only
        mode) and False when the committer should surface it
        (fail-stop)."""
        self.metrics.record_wal_failure()
        self.health.note_wal_failure()
        with self._lock:
            if self.wal_error is None:
                self.wal_error = error
            if self.on_wal_failure == "read_only":
                self.read_only = True
                return True
        return False

    def _release(self) -> None:
        if self._admission is not None:
            self._admission.release()

    def drain(self) -> None:
        """Wait until the pipelined feed has observed every submitted
        commit and the write-ahead log has flushed every in-sequence
        frame (no-ops for absent components); re-raises a captured
        observer or I/O error."""
        if self._feed is not None:
            self._feed.flush()
        if self.wal is not None and not self.read_only:
            self.wal.flush()

    def close(self) -> None:
        """Shut the service down: drain and stop the pipelined feed and
        the write-ahead log (re-raising any captured observer or I/O
        error — the feed's error wins when both fail).  Idempotent;
        no-op without attached components."""
        feed_error: Optional[BaseException] = None
        if self._feed is not None:
            try:
                self._feed.close()
            except BaseException as exc:
                feed_error = exc
        if self.wal is not None:
            try:
                self.wal.close()
            except BaseException:
                # In read-only degraded mode the log's poisoning was
                # already absorbed and surfaced through the health
                # state; closing it again must not re-raise.
                if not self.read_only and feed_error is None:
                    raise
        if feed_error is not None:
            raise feed_error

    def __enter__(self) -> "TransactionService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Don't mask an in-flight exception with a feed error.
        if exc_type is None:
            self.close()
        else:
            try:
                self.close()
            except Exception:
                pass

    def _observe(self, record: CommitRecord) -> Optional[Violation]:
        """Feed a commit to the monitor (in sync mode the caller holds
        the engine lock; in pipelined mode only the drain thread calls
        this, already in commit order)."""
        if self.monitor is None:
            return None
        violation = self.monitor.observe_commit(
            record.tid, record.session, list(record.events)
        )
        if violation is not None:
            self.metrics.record_violation()
            with self._lock:
                self.violations.append(violation)
        return violation


class ServiceSession:
    """One client's handle: explicit transaction control plus
    :meth:`run` for the retry discipline.  Not thread-safe — one thread
    per handle (matching the engines' one-transaction-per-session
    rule).

    An engine-initiated abort keeps the handle's logical-transaction
    bookkeeping (attempt count, start time) alive: per Section 5's
    client discipline the aborted transaction is expected to be
    resubmitted, and the eventual commit's latency covers every failed
    attempt.  A deliberate :meth:`abort` resets it.
    """

    def __init__(self, service: TransactionService, name: str):
        self.service = service
        self.name = name
        self._ctx: Optional[TxContext] = None
        self._txn_started: Optional[float] = None
        self._attempts = 0
        self._attempt_started: Optional[float] = None
        self._attempt_latencies: List[float] = []
        self._deadline_ts: Optional[float] = None
        self._deadline_anchor: Optional[float] = None
        self._rng = random.Random(f"{service.backoff_seed}:{name}")

    # ------------------------------------------------------------------
    # Explicit transaction control
    # ------------------------------------------------------------------

    def begin(self) -> TxContext:
        """Admit and start a transaction (attempt).

        Raises :class:`ServiceOverloaded` when the admission circuit
        breaker is shedding and :class:`DeadlineExceeded` when a
        :meth:`run` deadline elapses while queueing for admission.
        """
        if self._ctx is not None:
            raise StoreError(
                f"session {self.name!r} already has an open transaction"
            )
        try:
            self.service._admit(
                deadline_ts=self._deadline_ts, session=self.name
            )
        except _AdmissionTimeout:
            self.service.metrics.record_deadline_exceeded()
            attempts = self._attempts
            latencies = list(self._attempt_latencies)
            elapsed = time.perf_counter() - (
                self._deadline_anchor or time.perf_counter()
            )
            self._reset_logical()
            raise DeadlineExceeded(
                self.name,
                attempts,
                elapsed,
                "timed out waiting for admission",
                latencies,
            ) from None
        try:
            ctx = self.service.engine.begin(self.name)
        except BaseException:
            self.service._release()
            raise
        self._ctx = ctx
        if self._txn_started is None:
            self._txn_started = time.perf_counter()
        self._attempt_started = time.perf_counter()
        self._attempts += 1
        self.service.metrics.record_begin()
        return ctx

    def read(self, obj: Obj) -> Value:
        """Read ``obj`` in the open transaction."""
        try:
            return self.service.engine.read(self._open_ctx(), obj)
        except TransactionAborted:
            self._finish_aborted()
            raise

    def write(self, obj: Obj, value: Value) -> None:
        """Write ``value`` to ``obj`` in the open transaction.

        In read-only degraded mode (``on_wal_failure="read_only"``
        after a WAL failure) the transaction is aborted and
        :class:`ServiceReadOnly` raised — updates cannot be made
        durable, so they are refused before touching the engine.
        """
        if self.service.read_only:
            self._refuse_read_only()
        try:
            self.service.engine.write(self._open_ctx(), obj, value)
        except TransactionAborted:
            # Pessimistic engines abort at the operation (no-wait 2PL).
            self._finish_aborted()
            raise

    def _refuse_read_only(self) -> None:
        """Abort the open transaction and raise
        :class:`ServiceReadOnly` (chained to the WAL's root failure)."""
        ctx = self._open_ctx()
        self.service.engine.abort(ctx, "service is read-only")
        # An administrative refusal, not a conflict: it must not feed
        # the abort-rate gauge (the WAL-failure floor already keeps the
        # state at degraded; refusals driving it to shedding would shut
        # off the reads the policy exists to keep serving).
        self._finish_aborted(note_health=False)
        self._reset_logical()
        self.service.metrics.record_read_only_refusal()
        raise ServiceReadOnly(self.name) from self.service.wal_error

    def commit(self) -> TxOutcome:
        """Commit.  In sync mode the attached monitor certifies the
        commit while the engine lock is still held, so it observes true
        commit order and the outcome carries the verdict.  In pipelined
        mode the record is handed to the feed right after the engine
        releases the commit mutex; verdicts land asynchronously in
        ``service.violations`` (the outcome's ``violation`` is None).
        With an attached write-ahead log the record is appended off the
        engine lock (before the feed hand-off) — under a durable fsync
        policy the call returns only once the record is on disk."""
        ctx = self._open_ctx()
        if self.service.read_only and ctx.write_buffer:
            self._refuse_read_only()
        engine = self.service.engine
        feed = self.service._feed
        wal = self.service.wal
        violation: Optional[Violation] = None
        monitor_error: Optional[BaseException] = None
        if FAULTS.armed:
            try:
                FAULTS.fire(
                    "service.commit", tid=ctx.tid, session=self.name
                )
            except FaultInjected as exc:
                # An injected validation storm: abort exactly like an
                # engine conflict so the retry discipline takes over.
                engine.abort(ctx, f"injected fault at {exc.point}")
                self._finish_aborted()
                raise TransactionAborted(
                    ctx.tid, f"injected fault at {exc.point}"
                ) from exc
        try:
            if feed is not None:
                record = engine.commit(ctx)
            else:
                with engine.lock:
                    record = engine.commit(ctx)
                    try:
                        violation = self.service._observe(record)
                    except Exception as exc:
                        # Monitor misuse must not leak the admission
                        # slot; the commit itself stands.
                        monitor_error = exc
            # Durability and the monitor feed run off the engine lock:
            # concurrent committers deposit into the log's reorder
            # buffer while earlier ones fsync (that is the group-commit
            # batch), and the feed preserves commit order on its own.
            if wal is not None and not self.service.read_only:
                append_started = time.perf_counter()
                try:
                    wal.append(record)
                except Exception as exc:
                    # The in-memory commit stands; durability failed.
                    # The policy decides whether the committer sees it
                    # (fail_stop) or the service degrades (read_only).
                    if not self.service._note_wal_failure(exc):
                        if monitor_error is None:
                            monitor_error = exc
                else:
                    append_latency = (
                        time.perf_counter() - append_started
                    )
                    self.service.metrics.record_wal_append_latency(
                        append_latency
                    )
                    self.service.health.note_wal_latency(append_latency)
            if feed is not None:
                try:
                    feed.submit(record)
                except Exception as exc:
                    # Feed closed, or a prior observer error resurfacing
                    # — the commit itself stands.
                    if monitor_error is None:
                        monitor_error = exc
        except TransactionAborted:
            self._finish_aborted()
            raise
        latency = time.perf_counter() - (
            self._txn_started or time.perf_counter()
        )
        outcome = TxOutcome(
            record=record, attempts=self._attempts, violation=violation
        )
        self._ctx = None
        self._reset_logical()
        self.service._release()
        self.service.metrics.record_commit(latency)
        self.service.health.note_attempt(aborted=False)
        if monitor_error is not None:
            raise monitor_error
        return outcome

    def abort(self, reason: str = "client abort") -> None:
        """Deliberately abort the open transaction (no retry implied)."""
        self.service.engine.abort(self._open_ctx(), reason)
        self._finish_aborted()
        self._reset_logical()

    # ------------------------------------------------------------------
    # The retry discipline
    # ------------------------------------------------------------------

    def run(
        self,
        program: TxProgram,
        max_retries: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> TxOutcome:
        """Execute ``program`` (a generator of Read/Write ops) as one
        transaction, resubmitting on abort with exponential backoff.

        Args:
            program: the transaction program.
            max_retries: override the service's retry cap.
            deadline: wall-clock budget in seconds for the whole
                logical transaction (admission waits, every attempt,
                every backoff sleep).  Defaults to the service's
                ``default_deadline``.  Backoff never sleeps past the
                deadline.

        Raises:
            RetryExhausted: after ``max_retries`` resubmissions (the
                transaction is left aborted); carries the last abort
                reason and the per-attempt latencies.
            DeadlineExceeded: when the deadline elapses first.
            ServiceOverloaded: when the admission circuit breaker is
                shedding (the transaction was never admitted).
            ServiceReadOnly: when the service degraded to read-only
                and the program writes.
        """
        cap = self.service.max_retries if max_retries is None else max_retries
        budget = (
            deadline
            if deadline is not None
            else self.service.default_deadline
        )
        self._deadline_anchor = time.perf_counter()
        self._deadline_ts = (
            self._deadline_anchor + budget if budget is not None else None
        )
        try:
            while True:
                try:
                    return self._attempt(program)
                except TransactionAborted as exc:
                    now = time.perf_counter()
                    if (
                        self._deadline_ts is not None
                        and now >= self._deadline_ts
                    ):
                        attempts = self._attempts
                        latencies = list(self._attempt_latencies)
                        elapsed = now - self._deadline_anchor
                        self._reset_logical()
                        self.service.metrics.record_deadline_exceeded()
                        raise DeadlineExceeded(
                            self.name,
                            attempts,
                            elapsed,
                            exc.reason,
                            latencies,
                        ) from exc
                    if self._attempts > cap:
                        attempts = self._attempts
                        latencies = list(self._attempt_latencies)
                        self._reset_logical()
                        self.service.metrics.record_retry_exhausted()
                        raise RetryExhausted(
                            self.name, attempts, exc.reason, latencies
                        ) from exc
                    self.service.metrics.record_retry()
                    self._backoff(self._attempts)
                except (ServiceOverloaded, ServiceReadOnly):
                    # Never admitted / refused: the logical transaction
                    # is over (readonly refusal already reset).
                    self._reset_logical()
                    raise
        finally:
            self._deadline_ts = None
            self._deadline_anchor = None

    def _attempt(self, program: TxProgram) -> TxOutcome:
        """One attempt: begin, drive the generator, commit."""
        self.begin()
        gen = program()
        to_send: Optional[Value] = None
        try:
            while True:
                try:
                    op = gen.send(to_send)
                except StopIteration:
                    break
                if isinstance(op, ReadOp):
                    to_send = self.read(op.obj)
                elif isinstance(op, WriteOp):
                    self.write(op.obj, op.value)
                    to_send = None
                else:
                    raise StoreError(
                        f"program in session {self.name!r} yielded "
                        f"{op!r}; expected ReadOp or WriteOp"
                    )
        except TransactionAborted:
            raise
        except BaseException:
            # Program bug or client cancellation: abort, do not retry.
            if self._ctx is not None:
                self.abort("program error")
            raise
        return self.commit()

    def _backoff(self, attempts: int) -> None:
        base = self.service.backoff_base
        if base <= 0:
            return
        delay = min(self.service.backoff_cap, base * 2 ** (attempts - 1))
        delay *= 0.5 + self._rng.random() / 2
        if self._deadline_ts is not None:
            # Never sleep past the caller's deadline: the very next
            # attempt (or the deadline check in run()) should happen
            # the moment the budget runs out, not a backoff later.
            delay = min(
                delay, max(0.0, self._deadline_ts - time.perf_counter())
            )
        if delay > 0:
            time.sleep(delay)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _open_ctx(self) -> TxContext:
        if self._ctx is None:
            raise StoreError(
                f"session {self.name!r} has no open transaction"
            )
        return self._ctx

    def _finish_aborted(self, note_health: bool = True) -> None:
        """Release the slot after an abort; the logical transaction's
        attempt count and start time survive for the retry.
        ``note_health=False`` keeps administrative refusals out of the
        health tracker's abort-rate gauge."""
        if self._attempt_started is not None:
            self._attempt_latencies.append(
                time.perf_counter() - self._attempt_started
            )
            self._attempt_started = None
        self._ctx = None
        self.service._release()
        self.service.metrics.record_abort()
        if note_health:
            self.service.health.note_attempt(aborted=True)

    def _reset_logical(self) -> None:
        """Forget the logical transaction (called when it ends for any
        reason: commit, give-up, refusal)."""
        self._txn_started = None
        self._attempts = 0
        self._attempt_started = None
        self._attempt_latencies = []
