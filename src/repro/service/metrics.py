"""Observability for the transaction service.

The service layer is the first place the reproduction meets sustained
concurrent traffic, so it carries its own instrumentation: per-service
counters (commits, aborts, retries, retry exhaustions, monitor
violations), a fixed-bucket latency histogram for end-to-end
transaction latency (including retries), admission-queue gauges, and —
when a write-ahead log is attached — durability counters
(appends/fsyncs/bytes) plus a group-commit batch-size histogram, so
the cost of each fsync policy is visible in the same snapshot as the
throughput it bought.  Everything is thread-safe, snapshot-able as
plain dicts, and JSON exportable so benches and CI can track the
numbers across PRs.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence


def _default_buckets() -> List[float]:
    # 10 µs .. ~84 s in powers of two: 24 buckets cover every latency a
    # single-process service can plausibly produce.
    return [1e-5 * 2**i for i in range(24)]


class LatencyHistogram:
    """A fixed-boundary histogram of durations in seconds.

    Quantiles are answered from the bucket counts (the reported value is
    the upper bound of the bucket containing the quantile), which makes
    recording O(log buckets) and memory O(buckets) — no samples kept.
    """

    def __init__(self, buckets: Optional[Sequence[float]] = None):
        self._bounds = sorted(buckets) if buckets else _default_buckets()
        self._counts = [0] * (len(self._bounds) + 1)
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def record(self, seconds: float) -> None:
        """Record one duration."""
        index = bisect_left(self._bounds, seconds)
        with self._lock:
            self._counts[index] += 1
            self.count += 1
            self.total += seconds
            if seconds > self.max:
                self.max = seconds

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0 < q <= 1) as a bucket upper bound."""
        with self._lock:
            if self.count == 0:
                return 0.0
            target = q * self.count
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                cumulative += bucket_count
                if cumulative >= target:
                    if index < len(self._bounds):
                        return self._bounds[index]
                    return self.max
            return self.max

    @property
    def mean(self) -> float:
        """Arithmetic mean of the recorded durations."""
        with self._lock:
            return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, float]:
        """Summary statistics as a plain dict (seconds)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "max": self.max,
        }


class ServiceMetrics:
    """Thread-safe counters and gauges for one transaction service."""

    def __init__(self):
        self._lock = threading.Lock()
        self.begins = 0
        self.commits = 0
        self.aborts = 0
        self.retries = 0
        self.retry_exhausted = 0
        self.deadline_exceeded = 0
        self.shed = 0
        self.read_only_refused = 0
        self.violations = 0
        self.in_flight = 0
        self.admission_waiting = 0
        self.peak_in_flight = 0
        self.peak_admission_waiting = 0
        self.txn_latency = LatencyHistogram()
        self.wal_appends = 0
        self.wal_flushes = 0
        self.wal_fsyncs = 0
        self.wal_bytes = 0
        self.wal_failures = 0
        self.wal_append_latency = LatencyHistogram()
        # Batch sizes are small integers, so reuse the histogram's
        # fixed-bound machinery with power-of-two record-count bounds.
        self.wal_batch = LatencyHistogram(
            buckets=[float(2**i) for i in range(13)]
        )

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record_begin(self) -> None:
        """One transaction attempt admitted and started."""
        with self._lock:
            self.begins += 1
            self.in_flight += 1
            if self.in_flight > self.peak_in_flight:
                self.peak_in_flight = self.in_flight

    def record_commit(self, latency_seconds: float) -> None:
        """One transaction committed; latency is end-to-end including
        every aborted attempt and backoff sleep."""
        with self._lock:
            self.commits += 1
            self.in_flight -= 1
        self.txn_latency.record(latency_seconds)

    def record_abort(self) -> None:
        """One attempt aborted (engine validation failure or client)."""
        with self._lock:
            self.aborts += 1
            self.in_flight -= 1

    def record_retry(self) -> None:
        """An aborted transaction is being resubmitted."""
        with self._lock:
            self.retries += 1

    def record_retry_exhausted(self) -> None:
        """A transaction gave up after the retry cap."""
        with self._lock:
            self.retry_exhausted += 1

    def record_deadline_exceeded(self) -> None:
        """A transaction's wall-clock deadline elapsed before commit
        (counted separately from conflict aborts: the attempts that led
        here were already counted as aborts, this is the give-up)."""
        with self._lock:
            self.deadline_exceeded += 1

    def record_shed(self) -> None:
        """The admission circuit breaker refused a transaction (no
        engine transaction was started, so no abort is counted)."""
        with self._lock:
            self.shed += 1

    def record_read_only_refusal(self) -> None:
        """An update was refused because the service is in read-only
        degraded mode after a write-ahead-log failure."""
        with self._lock:
            self.read_only_refused += 1

    def record_violation(self) -> None:
        """The attached monitor flagged a consistency violation."""
        with self._lock:
            self.violations += 1

    def record_wal_append(self, nbytes: int) -> None:
        """One commit record appended to the write-ahead log."""
        with self._lock:
            self.wal_appends += 1
            self.wal_bytes += nbytes

    def record_wal_append_latency(self, seconds: float) -> None:
        """End-to-end latency of one durable append as seen by the
        committer (deposit + group-commit wait); the health tracker's
        WAL-latency gauge feeds from the same measurement."""
        self.wal_append_latency.record(seconds)

    def record_wal_failure(self) -> None:
        """The write-ahead log raised from an append (poisoned or
        closed); the service's degradation policy decides what happens
        next, this just makes the failure visible."""
        with self._lock:
            self.wal_failures += 1

    def record_wal_flush(self, batch_size: int, fsyncs: int) -> None:
        """One flusher batch written (``fsyncs`` syncs issued for it)."""
        with self._lock:
            self.wal_flushes += 1
            self.wal_fsyncs += fsyncs
        self.wal_batch.record(float(batch_size))

    def enter_admission_queue(self) -> None:
        """A client started waiting for an admission slot."""
        with self._lock:
            self.admission_waiting += 1
            if self.admission_waiting > self.peak_admission_waiting:
                self.peak_admission_waiting = self.admission_waiting

    def leave_admission_queue(self) -> None:
        """A waiting client was admitted (or gave up)."""
        with self._lock:
            self.admission_waiting -= 1

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    @property
    def abort_rate(self) -> float:
        """Aborted attempts over all finished attempts."""
        finished = self.commits + self.aborts
        return self.aborts / finished if finished else 0.0

    def snapshot(self) -> Dict[str, object]:
        """All counters, gauges and latency stats as a plain dict."""
        with self._lock:
            counters = {
                "begins": self.begins,
                "commits": self.commits,
                "aborts": self.aborts,
                "retries": self.retries,
                "retry_exhausted": self.retry_exhausted,
                "deadline_exceeded": self.deadline_exceeded,
                "shed": self.shed,
                "read_only_refused": self.read_only_refused,
                "violations": self.violations,
            }
            gauges = {
                "in_flight": self.in_flight,
                "admission_waiting": self.admission_waiting,
                "peak_in_flight": self.peak_in_flight,
                "peak_admission_waiting": self.peak_admission_waiting,
            }
            wal = {
                "appends": self.wal_appends,
                "flushes": self.wal_flushes,
                "fsyncs": self.wal_fsyncs,
                "bytes": self.wal_bytes,
                "failures": self.wal_failures,
            }
        batch = self.wal_batch.snapshot()
        append_latency = self.wal_append_latency.snapshot()
        return {
            "counters": counters,
            "gauges": gauges,
            "abort_rate": self.abort_rate,
            "latency_seconds": self.txn_latency.snapshot(),
            "wal": {
                **wal,
                "batch_records": batch,
                "append_latency_seconds": append_latency,
            },
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)
