"""A multi-threaded load generator for the transaction service.

Drives SmallBank- and TPC-C-style transaction mixes over N worker
threads, each with its own :class:`~repro.service.service.ServiceSession`
following the retry discipline.  The interesting wrinkle is *value
tagging*: the online monitor attributes reads to writers by value, and
bank-balance arithmetic happily produces the same integer twice (two
deposits of 10 into accounts holding 100).  Every write therefore goes
through a :class:`ValueTagger` that pairs the logical value with a
globally unique sequence number — the same trick the deterministic
:func:`~repro.mvcc.workloads.random_workload` uses — so strict
attribution never becomes ambiguous and any violation the monitor
flags under the generator is a real one.
"""

from __future__ import annotations

import itertools
import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..apps import smallbank, tpcc
from ..core.errors import (
    DeadlineExceeded,
    RetryExhausted,
    ServiceOverloaded,
    ServiceReadOnly,
    StoreError,
)
from ..wal.log import WalError
from ..core.events import Obj, Value
from ..mvcc.runtime import ReadOp, TxProgram, WriteOp
from .service import TransactionService


class ValueTagger:
    """Makes every written value globally unique.

    :meth:`tag` wraps a logical value as ``(logical, seq)`` with a
    process-unique ``seq``; :meth:`logical` unwraps either form.  The
    monitor sees distinct values per write, the workload still computes
    with the logical part.
    """

    def __init__(self) -> None:
        self._counter = itertools.count(1)
        self._lock = threading.Lock()

    def tag(self, logical: Value) -> Tuple[Value, int]:
        """Wrap ``logical`` with a fresh unique sequence number."""
        with self._lock:
            return (logical, next(self._counter))

    @staticmethod
    def logical(value: Value) -> Value:
        """The logical part of a possibly tagged value (initial values
        are plain, written values are ``(logical, seq)`` pairs)."""
        if isinstance(value, tuple) and len(value) == 2:
            return value[0]
        return value


ProgramFactory = Callable[[random.Random], TxProgram]


class WorkloadMix:
    """A named, weighted distribution over transaction programs.

    Args:
        name: mix name (appears in results and bench output).
        initial: initial object values for the engine and monitor.
        choices: ``{label: (weight, factory)}`` where ``factory(rng)``
            builds one fresh transaction program.
    """

    def __init__(
        self,
        name: str,
        initial: Dict[Obj, Value],
        choices: Dict[str, Tuple[int, ProgramFactory]],
    ):
        if not choices:
            raise StoreError(f"mix {name!r} has no transaction types")
        self.name = name
        self.initial = dict(initial)
        self._labels = list(choices)
        self._weights = [choices[label][0] for label in self._labels]
        self._factories = [choices[label][1] for label in self._labels]

    def next_program(self, rng: random.Random) -> TxProgram:
        """Draw one transaction program according to the weights."""
        index = rng.choices(range(len(self._labels)), self._weights)[0]
        return self._factories[index](rng)


# ----------------------------------------------------------------------
# SmallBank mix (operational, value-tagged)
# ----------------------------------------------------------------------


SMALLBANK_READ_HEAVY: Dict[str, int] = {
    "Balance": 60,
    "DepositChecking": 15,
    "TransactSavings": 5,
    "WriteCheck": 15,
    "Amalgamate": 5,
}
"""A read-heavy SmallBank weighting (60% read-only Balance) — the mix
where lock-free snapshot reads pay off most."""

SMALLBANK_WRITE_HEAVY: Dict[str, int] = {
    "Balance": 5,
    "DepositChecking": 30,
    "TransactSavings": 20,
    "WriteCheck": 25,
    "Amalgamate": 20,
}
"""A write-heavy SmallBank weighting (95% updating transactions) — the
mix that stresses the commit critical section and first-committer-wins
aborts."""


def smallbank_mix(
    customers: int = 4,
    balance: int = 100,
    weights: Optional[Dict[str, int]] = None,
) -> WorkloadMix:
    """The SmallBank transaction mix over ``customers`` customers.

    Logical semantics follow :mod:`repro.apps.smallbank`'s operational
    programs; every write is value-tagged for unambiguous monitor
    attribution.

    Args:
        customers: number of (savings, checking) account pairs.
        balance: initial balance per account.
        weights: override the default :data:`~repro.apps.smallbank.MIX_WEIGHTS`
            per transaction type (e.g. :data:`SMALLBANK_READ_HEAVY`,
            :data:`SMALLBANK_WRITE_HEAVY`); unknown keys are rejected.
    """
    if customers < 1:
        raise StoreError(f"need at least one customer, got {customers}")
    chosen = dict(smallbank.MIX_WEIGHTS)
    if weights is not None:
        unknown = set(weights) - set(chosen)
        if unknown:
            raise StoreError(
                f"unknown SmallBank transaction types: {sorted(unknown)}"
            )
        chosen.update(weights)
    tagger = ValueTagger()
    logical = ValueTagger.logical

    def balance_f(rng: random.Random) -> TxProgram:
        n = rng.randrange(customers)

        def tx():
            yield ReadOp(smallbank.savings(n))
            yield ReadOp(smallbank.checking(n))

        return tx

    def deposit_checking_f(rng: random.Random) -> TxProgram:
        n = rng.randrange(customers)
        amount = rng.randint(1, 50)

        def tx():
            value = yield ReadOp(smallbank.checking(n))
            yield WriteOp(
                smallbank.checking(n), tagger.tag(logical(value) + amount)
            )

        return tx

    def transact_savings_f(rng: random.Random) -> TxProgram:
        n = rng.randrange(customers)
        amount = rng.randint(-60, 60) or 10

        def tx():
            value = yield ReadOp(smallbank.savings(n))
            if logical(value) + amount >= 0:
                yield WriteOp(
                    smallbank.savings(n),
                    tagger.tag(logical(value) + amount),
                )

        return tx

    def write_check_f(rng: random.Random) -> TxProgram:
        n = rng.randrange(customers)
        amount = rng.randint(1, 120)

        def tx():
            s = yield ReadOp(smallbank.savings(n))
            c = yield ReadOp(smallbank.checking(n))
            total = logical(s) + logical(c)
            penalty = 0 if total >= amount else 1
            yield WriteOp(
                smallbank.checking(n),
                tagger.tag(logical(c) - amount - penalty),
            )

        return tx

    def amalgamate_f(rng: random.Random) -> TxProgram:
        src = rng.randrange(customers)
        dst = (src + 1) % customers if customers > 1 else src

        def tx():
            s = yield ReadOp(smallbank.savings(src))
            c = yield ReadOp(smallbank.checking(src))
            d = yield ReadOp(smallbank.checking(dst))
            yield WriteOp(smallbank.savings(src), tagger.tag(0))
            yield WriteOp(smallbank.checking(src), tagger.tag(0))
            yield WriteOp(
                smallbank.checking(dst),
                tagger.tag(logical(d) + logical(s) + logical(c)),
            )

        return tx

    factories = {
        "Balance": balance_f,
        "DepositChecking": deposit_checking_f,
        "TransactSavings": transact_savings_f,
        "WriteCheck": write_check_f,
        "Amalgamate": amalgamate_f,
    }
    return WorkloadMix(
        name="smallbank",
        initial=smallbank.initial_state(customers, balance),
        choices={
            label: (chosen[label], factory)
            for label, factory in factories.items()
        },
    )


# ----------------------------------------------------------------------
# TPC-C mix (table granularity, operational, value-tagged)
# ----------------------------------------------------------------------


def tpcc_mix() -> WorkloadMix:
    """The TPC-C mix at table granularity (one warehouse/district).

    Read/write sets follow :mod:`repro.apps.tpcc`; a table that is both
    read and written becomes a read-modify-write (logical increment), a
    written-only table a value-tagged blind write.
    """
    tagger = ValueTagger()
    logical = ValueTagger.logical

    def factory_for(program) -> ProgramFactory:
        piece = program.pieces[0]
        reads = sorted(piece.reads)
        writes = sorted(piece.writes)
        read_set = set(reads)

        def factory(rng: random.Random) -> TxProgram:
            def tx():
                seen: Dict[str, Value] = {}
                for table in reads:
                    seen[table] = yield ReadOp(table)
                for table in writes:
                    if table in read_set:
                        new = logical(seen[table]) + 1
                    else:
                        new = 0
                    yield WriteOp(table, tagger.tag(new))

            return tx

        return factory

    choices: Dict[str, Tuple[int, ProgramFactory]] = {}
    for program in tpcc.tpcc_programs():
        choices[program.name] = (
            tpcc.MIX_WEIGHTS[program.name],
            factory_for(program),
        )
    return WorkloadMix(
        name="tpcc", initial=tpcc.initial_state(), choices=choices
    )


MIXES: Dict[str, Callable[[], WorkloadMix]] = {
    "smallbank": smallbank_mix,
    "tpcc": tpcc_mix,
}
"""The named mixes the CLI and benches can ask for."""


# ----------------------------------------------------------------------
# The generator
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class LoadResult:
    """The outcome of one load run.

    Attributes:
        mix: name of the workload mix.
        workers: worker-thread count.
        committed: transactions that eventually committed.
        retry_exhausted: transactions abandoned past the retry cap.
        violations: monitor violations recorded during the run.
        elapsed_seconds: wall-clock duration of the run.
        deadline_exceeded: transactions abandoned at their wall-clock
            deadline (only under a service ``default_deadline``).
        shed: transactions refused by the admission circuit breaker.
        read_only_refused: updates refused in read-only degraded mode.
        wal_errors: commits whose durability failed (``fail_stop``
            surfaces the poisoned log to the committer; the in-memory
            commit stands and is *not* in ``committed``).
    """

    mix: str
    workers: int
    committed: int
    retry_exhausted: int
    violations: int
    elapsed_seconds: float
    deadline_exceeded: int = 0
    shed: int = 0
    read_only_refused: int = 0
    wal_errors: int = 0

    @property
    def throughput(self) -> float:
        """Committed transactions per second."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.committed / self.elapsed_seconds


class LoadGenerator:
    """Drives a :class:`TransactionService` with concurrent workers.

    Args:
        service: the service under load (its engine must have been
            seeded with ``mix.initial``).
        mix: the workload mix to draw transactions from.
        workers: number of worker threads (each gets its own session).
        transactions_per_worker: transactions each worker submits.
        duration: optional wall-clock cutoff in seconds — workers stop
            drawing new transactions once it elapses, even if they have
            submissions left.
        seed: seeds the per-worker RNG streams (runs are reproducible
            up to thread scheduling).
        think_time: per-transaction client think time in seconds (slept
            before each submission).  Models the request round-trip of a
            closed-loop client; with it, threads overlap their waits and
            throughput scales with workers until the engine's critical
            sections saturate — the regime the scaling bench measures.
    """

    def __init__(
        self,
        service: TransactionService,
        mix: WorkloadMix,
        workers: int = 8,
        transactions_per_worker: int = 50,
        duration: Optional[float] = None,
        seed: int = 0,
        think_time: float = 0.0,
    ):
        if workers < 1:
            raise StoreError(f"need at least one worker, got {workers}")
        if transactions_per_worker < 1:
            raise StoreError(
                "need at least one transaction per worker, got "
                f"{transactions_per_worker}"
            )
        if think_time < 0:
            raise StoreError(f"think_time must be >= 0, got {think_time}")
        self.service = service
        self.mix = mix
        self.workers = workers
        self.transactions_per_worker = transactions_per_worker
        self.duration = duration
        self.seed = seed
        self.think_time = think_time

    def run(self) -> LoadResult:
        """Run the load to completion and summarise it."""
        committed = [0] * self.workers
        exhausted = [0] * self.workers
        deadlined = [0] * self.workers
        shed = [0] * self.workers
        refused = [0] * self.workers
        wal_errors = [0] * self.workers
        errors: List[BaseException] = []
        barrier = threading.Barrier(self.workers + 1)
        deadline_holder: List[float] = []

        def worker(index: int) -> None:
            rng = random.Random(f"{self.seed}:{self.mix.name}:{index}")
            session = self.service.session(f"worker-{index}")
            barrier.wait()
            deadline = deadline_holder[0] if deadline_holder else None
            for _ in range(self.transactions_per_worker):
                if deadline is not None and time.perf_counter() > deadline:
                    break
                if self.think_time > 0:
                    time.sleep(self.think_time)
                program = self.mix.next_program(rng)
                try:
                    session.run(program)
                    committed[index] += 1
                except RetryExhausted:
                    exhausted[index] += 1
                except DeadlineExceeded:
                    deadlined[index] += 1
                except ServiceOverloaded:
                    shed[index] += 1
                except ServiceReadOnly:
                    refused[index] += 1
                except WalError:
                    # fail_stop surfaces the poisoned log per commit;
                    # under load that is a counted outcome, not a crash.
                    wal_errors[index] += 1
                except BaseException as exc:  # surface, don't swallow
                    errors.append(exc)
                    break

        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(self.workers)
        ]
        for thread in threads:
            thread.start()
        if self.duration is not None:
            deadline_holder.append(time.perf_counter() + self.duration)
        started = time.perf_counter()
        barrier.wait()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        if errors:
            raise errors[0]
        # With a pipelined monitor, verdicts trail the commits; wait for
        # the feed so the violation count below is complete.
        try:
            self.service.drain()
        except WalError:
            # A poisoned log discovered only at drain (fsync_policy
            # "none" acks before I/O): count it rather than lose the
            # whole run's numbers.
            if sum(wal_errors) == 0:
                wal_errors[0] += 1
        return LoadResult(
            mix=self.mix.name,
            workers=self.workers,
            committed=sum(committed),
            retry_exhausted=sum(exhausted),
            violations=len(self.service.violations),
            elapsed_seconds=elapsed,
            deadline_exceeded=sum(deadlined),
            shed=sum(shed),
            read_only_refused=sum(refused),
            wal_errors=sum(wal_errors),
        )
