"""The concurrent transaction service (Section 5 made operational).

Everything below this package runs transactions one caller-scheduled
step at a time; here the reproduction serves real concurrent traffic:
:class:`TransactionService` fronts one MVCC engine with per-client
sessions, bounded retry-with-backoff, an admission limit, online
certification via an attached (typically windowed) monitor, and
JSON-exportable metrics.  :mod:`~repro.service.loadgen` drives
SmallBank/TPC-C-style mixes over worker threads.
"""

from .loadgen import (
    MIXES,
    LoadGenerator,
    LoadResult,
    ValueTagger,
    WorkloadMix,
    smallbank_mix,
    tpcc_mix,
)
from .metrics import LatencyHistogram, ServiceMetrics
from .service import ServiceSession, TransactionService, TxOutcome

__all__ = [
    "LatencyHistogram",
    "LoadGenerator",
    "LoadResult",
    "MIXES",
    "ServiceMetrics",
    "ServiceSession",
    "TransactionService",
    "TxOutcome",
    "ValueTagger",
    "WorkloadMix",
    "smallbank_mix",
    "tpcc_mix",
]
