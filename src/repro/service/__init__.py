"""The concurrent transaction service (Section 5 made operational).

Everything below this package runs transactions one caller-scheduled
step at a time; here the reproduction serves real concurrent traffic:
:class:`TransactionService` fronts one MVCC engine with per-client
sessions, bounded retry-with-backoff, an admission limit, online
certification via an attached (typically windowed) monitor, and
JSON-exportable metrics.  :mod:`~repro.service.loadgen` drives
SmallBank/TPC-C-style mixes over worker threads.  Monitoring runs
either synchronously inside the commit critical section (certification)
or through :class:`~repro.service.feed.PipelinedMonitorFeed` — a
bounded, commit-sequence-ordered queue drained off the commit path
(observe-only deployments).
"""

from .feed import DEFAULT_FEED_CAPACITY, FeedClosed, PipelinedMonitorFeed
from .health import HEALTH_STATES, HealthPolicy, HealthTracker
from .loadgen import (
    MIXES,
    SMALLBANK_READ_HEAVY,
    SMALLBANK_WRITE_HEAVY,
    LoadGenerator,
    LoadResult,
    ValueTagger,
    WorkloadMix,
    smallbank_mix,
    tpcc_mix,
)
from .metrics import LatencyHistogram, ServiceMetrics
from .service import (
    MONITOR_MODES,
    WAL_FAILURE_POLICIES,
    ServiceSession,
    TransactionService,
    TxOutcome,
)

__all__ = [
    "DEFAULT_FEED_CAPACITY",
    "FeedClosed",
    "HEALTH_STATES",
    "HealthPolicy",
    "HealthTracker",
    "WAL_FAILURE_POLICIES",
    "LatencyHistogram",
    "LoadGenerator",
    "LoadResult",
    "MIXES",
    "MONITOR_MODES",
    "PipelinedMonitorFeed",
    "SMALLBANK_READ_HEAVY",
    "SMALLBANK_WRITE_HEAVY",
    "ServiceMetrics",
    "ServiceSession",
    "TransactionService",
    "TxOutcome",
    "ValueTagger",
    "WorkloadMix",
    "smallbank_mix",
    "tpcc_mix",
]
