"""Labelled-cycle machinery shared by the characterisations and analyses.

The paper's conditions — Theorem 9's "every cycle has at least two adjacent
anti-dependency edges", Theorem 21's "at least two anti-dependency edges",
and the critical-cycle definitions of Sections 5 and Appendix B — all speak
about *cycles in an edge-labelled directed multigraph* (a transaction or
program-piece graph whose parallel edges carry labels such as SO, WR, WW,
RW, successor, predecessor).

This module provides:

* :class:`LabeledEdge` / :class:`LabeledDigraph` — the multigraph;
* :class:`Cycle` — a cyclic sequence of labelled edges with the
  rotation-aware helpers the conditions need (adjacent-pair scans,
  consecutive-fragment search, subsequence projections);
* :func:`simple_cycles` — lazy enumeration of all simple cycles, expanding
  parallel-edge label choices, built on networkx's vertex-cycle enumerator.

Cycle conditions are rotation-invariant, so all helpers treat the edge
sequence as circular.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    TypeVar,
)

import networkx as nx

Node = TypeVar("Node", bound=Hashable)


class EdgeKind(enum.Enum):
    """Labels occurring on dependency-graph and chopping-graph edges."""

    SO = "SO"
    """Session order (dependency graphs)."""
    WR = "WR"
    """Read dependency (also a *conflict* edge in chopping graphs)."""
    WW = "WW"
    """Write dependency (also a *conflict* edge in chopping graphs)."""
    RW = "RW"
    """Anti-dependency (also a *conflict* edge in chopping graphs)."""
    SUCCESSOR = "S"
    """Chopping graphs: SO within a session (successor edge)."""
    PREDECESSOR = "P"
    """Chopping graphs: reverse of SO within a session (predecessor edge)."""

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


CONFLICT_KINDS: FrozenSet[EdgeKind] = frozenset(
    {EdgeKind.WR, EdgeKind.WW, EdgeKind.RW}
)
"""The chopping-graph *conflict* edge kinds (Section 5)."""

DEPENDENCY_KINDS: FrozenSet[EdgeKind] = frozenset(
    {EdgeKind.WR, EdgeKind.WW}
)
"""Read/write dependencies — the separators in SI-critical condition (iii)."""


@dataclass(frozen=True)
class LabeledEdge:
    """A directed edge with a kind label and an optional object annotation."""

    src: Hashable
    dst: Hashable
    kind: EdgeKind
    obj: Optional[str] = None

    def __str__(self) -> str:
        obj = f"({self.obj})" if self.obj else ""
        return f"{self.src}--{self.kind}{obj}-->{self.dst}"


@dataclass(frozen=True)
class Cycle:
    """A cycle: a non-empty edge sequence with ``edges[i].dst ==
    edges[(i+1) % n].src``.  All predicates are rotation-invariant."""

    edges: Tuple[LabeledEdge, ...]

    def __post_init__(self) -> None:
        n = len(self.edges)
        if n == 0:
            raise ValueError("a cycle must contain at least one edge")
        for i, e in enumerate(self.edges):
            nxt = self.edges[(i + 1) % n]
            if e.dst != nxt.src:
                raise ValueError(
                    f"edge {e} does not connect to {nxt} in cycle"
                )

    def __len__(self) -> int:
        return len(self.edges)

    def __iter__(self) -> Iterator[LabeledEdge]:
        return iter(self.edges)

    def __str__(self) -> str:
        return " ; ".join(str(e) for e in self.edges)

    @property
    def nodes(self) -> Tuple[Hashable, ...]:
        """The visited nodes, one per edge (the edge sources)."""
        return tuple(e.src for e in self.edges)

    @property
    def kinds(self) -> Tuple[EdgeKind, ...]:
        """The cyclic label sequence."""
        return tuple(e.kind for e in self.edges)

    def is_simple(self) -> bool:
        """True iff no vertex occurs twice (condition (i) of criticality)."""
        nodes = self.nodes
        return len(set(nodes)) == len(nodes)

    def count(self, kind: EdgeKind) -> int:
        """Number of edges of the given kind."""
        return sum(1 for e in self.edges if e.kind is kind)

    # ------------------------------------------------------------------
    # Rotation-invariant pattern predicates
    # ------------------------------------------------------------------

    def has_adjacent_pair(
        self, predicate: Callable[[EdgeKind], bool]
    ) -> bool:
        """True iff two *cyclically consecutive* edges both satisfy
        ``predicate``.  A single-edge cycle is adjacent to itself.

        With ``predicate = (k is RW)`` this is Theorem 9's "two adjacent
        anti-dependency edges"; a graph is in GraphSI iff *every* cycle
        passes this test.
        """
        kinds = self.kinds
        n = len(kinds)
        return any(
            predicate(kinds[i]) and predicate(kinds[(i + 1) % n])
            for i in range(n)
        )

    def has_fragment(self, pattern: Sequence[Callable[[EdgeKind], bool]]) -> bool:
        """True iff some rotation starts with consecutive edges matching
        ``pattern`` (a sequence of kind predicates).

        With ``pattern = [conflict, predecessor, conflict]`` this is
        condition (ii) of the critical-cycle definitions.

        Patterns longer than the cycle wrap around and may revisit edges:
        walking a two-edge cycle does traverse its edges repeatedly, so a
        "conflict, predecessor, conflict" fragment on a conflict/predecessor
        2-cycle matches (the conservative reading; such mixed 2-cycles
        cannot occur in real chopping graphs anyway, since conflict edges
        cross sessions while predecessor edges stay inside one).
        """
        kinds = self.kinds
        n = len(kinds)
        m = len(pattern)
        for start in range(n):
            if all(pattern[j](kinds[(start + j) % n]) for j in range(m)):
                return True
        return False

    def project(
        self, predicate: Callable[[LabeledEdge], bool]
    ) -> Tuple[LabeledEdge, ...]:
        """The cyclic subsequence of edges satisfying ``predicate``,
        preserving order (e.g. the conflict edges of a chopping cycle)."""
        return tuple(e for e in self.edges if predicate(e))

    def rotations(self) -> Iterator["Cycle"]:
        """All rotations of the cycle (mostly for testing invariance)."""
        n = len(self.edges)
        for i in range(n):
            yield Cycle(self.edges[i:] + self.edges[:i])


class LabeledDigraph:
    """A directed multigraph with labelled edges and lazy cycle enumeration.

    Parallel edges of different kinds between the same node pair are kept
    separately; :meth:`simple_cycles` expands every combination of parallel
    edge choices so each yielded :class:`Cycle` has a definite label
    sequence.
    """

    def __init__(self, edges: Iterable[LabeledEdge] = ()):
        self._edges: Set[LabeledEdge] = set()
        self._by_pair: Dict[Tuple[Hashable, Hashable], List[LabeledEdge]] = {}
        self._nodes: Set[Hashable] = set()
        for e in edges:
            self.add_edge(e)

    def add_edge(self, edge: LabeledEdge) -> None:
        """Insert an edge (idempotent)."""
        if edge in self._edges:
            return
        self._edges.add(edge)
        self._by_pair.setdefault((edge.src, edge.dst), []).append(edge)
        self._nodes.add(edge.src)
        self._nodes.add(edge.dst)

    def add_node(self, node: Hashable) -> None:
        """Insert an isolated node."""
        self._nodes.add(node)

    @property
    def edges(self) -> FrozenSet[LabeledEdge]:
        """All edges of the graph."""
        return frozenset(self._edges)

    @property
    def nodes(self) -> FrozenSet[Hashable]:
        """All nodes of the graph."""
        return frozenset(self._nodes)

    def edges_between(self, src: Hashable, dst: Hashable) -> List[LabeledEdge]:
        """The parallel edges from ``src`` to ``dst``."""
        return list(self._by_pair.get((src, dst), ()))

    def __len__(self) -> int:
        return len(self._edges)

    def to_networkx(self) -> "nx.MultiDiGraph":
        """Export to a networkx multigraph (edge data under ``'edge'``)."""
        g = nx.MultiDiGraph()
        g.add_nodes_from(self._nodes)
        for e in self._edges:
            g.add_edge(e.src, e.dst, edge=e)
        return g

    def simple_cycles(
        self, length_bound: Optional[int] = None
    ) -> Iterator[Cycle]:
        """Lazily enumerate all simple cycles, one per parallel-edge choice.

        Node cycles come from networkx's ``simple_cycles`` (Johnson's
        algorithm); every combination of parallel labelled edges along a
        node cycle yields one :class:`Cycle`.  ``length_bound`` caps the
        number of *nodes* per cycle, pruning the enumeration.

        The enumeration is exponential in the worst case — the analyses
        only apply it to chopping/static graphs, which are small (their
        size is the number of program pieces, not of runtime transactions).
        """
        base = nx.DiGraph()
        base.add_nodes_from(self._nodes)
        base.add_edges_from(self._by_pair.keys())
        for node_cycle in nx.simple_cycles(base, length_bound=length_bound):
            yield from self._expand_node_cycle(node_cycle)

    def _expand_node_cycle(self, node_cycle: List[Hashable]) -> Iterator[Cycle]:
        """Expand a vertex cycle into all labelled cycles it supports."""
        n = len(node_cycle)
        choice_lists = [
            self.edges_between(node_cycle[i], node_cycle[(i + 1) % n])
            for i in range(n)
        ]
        # Iterative cartesian product, lazily.
        def product(i: int, acc: List[LabeledEdge]) -> Iterator[Cycle]:
            if i == n:
                yield Cycle(tuple(acc))
                return
            for edge in choice_lists[i]:
                acc.append(edge)
                yield from product(i + 1, acc)
                acc.pop()

        yield from product(0, [])

    def find_cycle(
        self,
        predicate: Callable[[Cycle], bool],
        length_bound: Optional[int] = None,
    ) -> Optional[Cycle]:
        """The first enumerated simple cycle satisfying ``predicate``, or
        ``None``.  Early-exits as soon as a witness is found."""
        for cycle in self.simple_cycles(length_bound=length_bound):
            if predicate(cycle):
                return cycle
        return None

    def all_cycles_satisfy(
        self,
        predicate: Callable[[Cycle], bool],
        length_bound: Optional[int] = None,
    ) -> bool:
        """True iff every simple cycle satisfies ``predicate``."""
        return self.find_cycle(lambda c: not predicate(c), length_bound) is None


def is_conflict(kind: EdgeKind) -> bool:
    """True for chopping-graph conflict edges (WR/WW/RW)."""
    return kind in CONFLICT_KINDS


def is_predecessor(kind: EdgeKind) -> bool:
    """True for chopping-graph predecessor edges."""
    return kind is EdgeKind.PREDECESSOR


def is_antidependency(kind: EdgeKind) -> bool:
    """True for anti-dependency (RW) edges."""
    return kind is EdgeKind.RW


def is_dependency(kind: EdgeKind) -> bool:
    """True for read/write dependency (WR/WW) edges."""
    return kind in DEPENDENCY_KINDS
