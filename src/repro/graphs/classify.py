"""Dependency-graph characterisations of SER, SI and PSI.

The three theorems of the paper characterise the histories allowed by each
model via conditions on dependency graphs:

* **GraphSER** (Theorem 8):  ``SO ∪ WR ∪ WW ∪ RW`` is acyclic.
* **GraphSI** (Theorem 9):   ``(SO ∪ WR ∪ WW) ; RW?`` is acyclic — every
  cycle of the graph has at least two *adjacent* anti-dependency edges.
* **GraphPSI** (Theorem 21): ``(SO ∪ WR ∪ WW)+ ; RW?`` is irreflexive —
  every cycle has at least two anti-dependency edges (not necessarily
  adjacent).

All three checks are polynomial (relation composition plus cycle
detection).  For validation, the module also offers the *cycle-based*
formulations — direct scans of all simple cycles of the labelled graph —
which must agree with the compositional ones; tests and an ablation bench
exercise this equivalence.
"""

from __future__ import annotations

from typing import Optional

from ..core.errors import InternalConsistencyError
from ..core.relations import Relation
from ..core.transactions import Transaction
from .cycles import (
    Cycle,
    EdgeKind,
    LabeledDigraph,
    LabeledEdge,
    is_antidependency,
)
from .dependency import DependencyGraph


# ----------------------------------------------------------------------
# Compositional (polynomial) characterisations
# ----------------------------------------------------------------------


def in_graph_ser(graph: DependencyGraph) -> bool:
    """``G ∈ GraphSER`` (Theorem 8): INT holds and
    ``SO ∪ WR ∪ WW ∪ RW`` is acyclic."""
    if not graph.history.is_internally_consistent():
        return False
    return graph.all_edges.is_acyclic()


def si_composite_relation(graph: DependencyGraph) -> Relation[Transaction]:
    """The relation ``(SO ∪ WR ∪ WW) ; RW?`` from Theorem 9."""
    deps = graph.dependencies
    rw_reflexive = graph.rw_union.reflexive()
    return deps.compose(rw_reflexive)


def in_graph_si(graph: DependencyGraph) -> bool:
    """``G ∈ GraphSI`` (Theorem 9): INT holds and
    ``(SO ∪ WR ∪ WW) ; RW?`` is acyclic."""
    if not graph.history.is_internally_consistent():
        return False
    return si_composite_relation(graph).is_acyclic()


def psi_composite_relation(graph: DependencyGraph) -> Relation[Transaction]:
    """The relation ``(SO ∪ WR ∪ WW)+ ; RW?`` from Theorem 21."""
    deps_plus = graph.dependencies.transitive_closure()
    rw_reflexive = graph.rw_union.reflexive()
    return deps_plus.compose(rw_reflexive)


def in_graph_psi(graph: DependencyGraph) -> bool:
    """``G ∈ GraphPSI`` (Theorem 21): INT holds and
    ``(SO ∪ WR ∪ WW)+ ; RW?`` is irreflexive."""
    if not graph.history.is_internally_consistent():
        return False
    return psi_composite_relation(graph).is_irreflexive()


def classify(graph: DependencyGraph) -> dict:
    """Membership of ``graph`` in all three graph classes at once."""
    return {
        "SER": in_graph_ser(graph),
        "SI": in_graph_si(graph),
        "PSI": in_graph_psi(graph),
    }


# ----------------------------------------------------------------------
# Labelled-graph view and cycle-based (validation) characterisations
# ----------------------------------------------------------------------


def to_labeled_digraph(graph: DependencyGraph) -> LabeledDigraph:
    """The dependency graph as an edge-labelled multigraph over tids.

    Nodes are transaction ids; edges carry :class:`EdgeKind` labels and the
    object of per-object dependencies.  Used by the cycle-based validation
    checks and by diagnostics (witness cycles).
    """
    g = LabeledDigraph()
    for t in graph.transactions:
        g.add_node(t.tid)
    for a, b in graph.session_order:
        g.add_edge(LabeledEdge(a.tid, b.tid, EdgeKind.SO))
    for obj, rel in graph.wr.items():
        for a, b in rel:
            g.add_edge(LabeledEdge(a.tid, b.tid, EdgeKind.WR, obj))
    for obj, rel in graph.ww.items():
        for a, b in rel:
            g.add_edge(LabeledEdge(a.tid, b.tid, EdgeKind.WW, obj))
    for obj, rel in graph.rw.items():
        for a, b in rel:
            g.add_edge(LabeledEdge(a.tid, b.tid, EdgeKind.RW, obj))
    return g


def cycle_allowed_by_si(cycle: Cycle) -> bool:
    """Theorem 9's per-cycle condition: the cycle contains at least two
    *cyclically adjacent* anti-dependency edges."""
    return cycle.has_adjacent_pair(is_antidependency)


def cycle_allowed_by_psi(cycle: Cycle) -> bool:
    """Theorem 21's per-cycle condition: at least two anti-dependency
    edges (adjacency not required)."""
    if cycle.count(EdgeKind.RW) >= 2:
        return True
    # A single RW edge cyclically adjacent to itself (the whole cycle is
    # that one edge) cannot happen since RW is irreflexive, so < 2 RW edges
    # always disqualifies the cycle.
    return False


def in_graph_si_by_cycles(graph: DependencyGraph) -> bool:
    """GraphSI membership by exhaustive cycle scan (validation variant).

    Exponential in the worst case; used in tests/benches to cross-check
    :func:`in_graph_si` and to produce witness cycles.
    """
    if not graph.history.is_internally_consistent():
        return False
    return to_labeled_digraph(graph).all_cycles_satisfy(cycle_allowed_by_si)


def in_graph_psi_by_cycles(graph: DependencyGraph) -> bool:
    """GraphPSI membership by exhaustive cycle scan (validation variant)."""
    if not graph.history.is_internally_consistent():
        return False
    return to_labeled_digraph(graph).all_cycles_satisfy(cycle_allowed_by_psi)


def in_graph_ser_by_cycles(graph: DependencyGraph) -> bool:
    """GraphSER membership by cycle scan: no cycles at all."""
    if not graph.history.is_internally_consistent():
        return False
    return to_labeled_digraph(graph).find_cycle(lambda c: True) is None


def si_violation_witness(graph: DependencyGraph) -> Optional[Cycle]:
    """A cycle violating Theorem 9's condition (no two adjacent RW edges),
    or ``None`` when the graph is in GraphSI.  For diagnostics."""
    return to_labeled_digraph(graph).find_cycle(
        lambda c: not cycle_allowed_by_si(c)
    )


def ser_violation_witness(graph: DependencyGraph) -> Optional[Cycle]:
    """Any cycle of the graph (a witness of non-serializability), or
    ``None`` when acyclic."""
    return to_labeled_digraph(graph).find_cycle(lambda c: True)


def psi_violation_witness(graph: DependencyGraph) -> Optional[Cycle]:
    """A cycle with fewer than two anti-dependency edges, or ``None``."""
    return to_labeled_digraph(graph).find_cycle(
        lambda c: not cycle_allowed_by_psi(c)
    )
