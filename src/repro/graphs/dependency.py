"""Dependency graphs (Definition 6) — Adya-style direct serialization graphs.

A dependency graph extends a history with three families of per-object
relations between transactions:

* ``WR(x)`` — *read dependency*: ``T --WR(x)--> S`` means ``S`` reads the
  value of ``x`` written by ``T``;
* ``WW(x)`` — *write dependency*: ``T --WW(x)--> S`` means ``S`` overwrites
  ``T``'s write to ``x``; ``WW(x)`` is a strict total order over the
  transactions writing ``x``;
* ``RW(x)`` — *anti-dependency*, derived from WR and WW (Definition 5):
  ``T --RW(x)--> S`` iff ``T ≠ S`` and some ``T'`` satisfies
  ``T' --WR(x)--> T`` and ``T' --WW(x)--> S`` (``S`` overwrites the write
  read by ``T``).

Definition 6's well-formedness conditions on WR: the source must write the
value the target reads externally, every external read has exactly one WR
source, and sources are unique per (object, reader).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from ..core.errors import MalformedDependencyGraphError
from ..core.events import Obj
from ..core.histories import History
from ..core.relations import Relation, union_all
from ..core.transactions import Transaction

PerObject = Mapping[Obj, Relation[Transaction]]


def derive_rw(
    history: History,
    wr: PerObject,
    ww: PerObject,
) -> Dict[Obj, Relation[Transaction]]:
    """Derive the anti-dependency relations RW(x) per Definition 5.

    ``T --RW(x)--> S`` iff ``T ≠ S ∧ ∃T'. T' --WR(x)--> T ∧ T' --WW(x)--> S``.
    """
    universe = history.transactions
    rw: Dict[Obj, Relation[Transaction]] = {}
    objs = set(wr) | set(ww)
    for obj in objs:
        wr_x = wr.get(obj, Relation.empty(universe))
        ww_x = ww.get(obj, Relation.empty(universe))
        pairs: Set[Tuple[Transaction, Transaction]] = set()
        ww_succ = ww_x.successors_map()
        for t_prime, t in wr_x:
            for s in ww_succ.get(t_prime, ()):
                if t != s:
                    pairs.add((t, s))
        rw[obj] = Relation(pairs, universe)
    return rw


@dataclass(frozen=True)
class DependencyGraph:
    """A dependency graph ``G = (T, SO, WR, WW, RW)`` (Definition 6).

    RW is always derived from WR and WW; it is exposed as a property rather
    than stored, so the graph cannot become internally inconsistent.

    Construct with ``validate=False`` to skip Definition 6's checks (used by
    generators that guarantee well-formedness).
    """

    history: History
    wr: Mapping[Obj, Relation[Transaction]]
    ww: Mapping[Obj, Relation[Transaction]]
    validate: bool = field(default=True, compare=False, repr=False)

    def __post_init__(self) -> None:
        # Normalise mappings to plain dicts with no empty junk entries.
        object.__setattr__(self, "wr", dict(self.wr))
        object.__setattr__(self, "ww", dict(self.ww))
        if self.validate:
            self.check_well_formed()

    # ------------------------------------------------------------------
    # Definition 6 well-formedness
    # ------------------------------------------------------------------

    def well_formedness_violations(self) -> List[str]:
        """Describe violations of Definition 6's conditions."""
        violations: List[str] = []
        txns = self.history.transactions

        for obj, rel in self.wr.items():
            sources_per_reader: Dict[Transaction, List[Transaction]] = {}
            for t, s in rel:
                if t not in txns or s not in txns:
                    violations.append(
                        f"WR({obj}) mentions transactions outside the history"
                    )
                    continue
                if t == s:
                    violations.append(f"WR({obj}): self-edge on {t.tid}")
                    continue
                n = s.external_read(obj)
                if n is None:
                    violations.append(
                        f"WR({obj}): {s.tid} has no external read of {obj}"
                    )
                elif t.final_write(obj) != n:
                    violations.append(
                        f"WR({obj}): {t.tid} writes "
                        f"{t.final_write(obj)!r} but {s.tid} reads {n!r}"
                    )
                sources_per_reader.setdefault(s, []).append(t)
            for s, sources in sources_per_reader.items():
                if len(sources) > 1:
                    violations.append(
                        f"WR({obj}): {s.tid} has multiple sources "
                        f"{sorted(t.tid for t in sources)}"
                    )

        # Every external read must have a WR source.
        for t in txns:
            for obj in t.external_read_objects:
                rel = self.wr.get(obj, Relation.empty())
                if not any(s == t for _, s in rel):
                    violations.append(
                        f"WR({obj}): external read by {t.tid} has no source"
                    )

        # WW(x) must be a strict total order over WriteTx_x.
        for obj in self.history.objects:
            writers = self.history.write_transactions(obj)
            rel = self.ww.get(obj, Relation.empty(writers))
            stray = rel.field - writers
            if stray:
                violations.append(
                    f"WW({obj}) mentions non-writers: "
                    f"{sorted(t.tid for t in stray)}"
                )
            if len(writers) > 1 or rel.pairs:
                if not rel.is_strict_total_order(writers):
                    violations.append(
                        f"WW({obj}) is not a strict total order over "
                        f"{sorted(t.tid for t in writers)}"
                    )
        return violations

    def check_well_formed(self) -> None:
        """Raise :class:`MalformedDependencyGraphError` on any violation."""
        violations = self.well_formedness_violations()
        if violations:
            raise MalformedDependencyGraphError("; ".join(violations))

    # ------------------------------------------------------------------
    # Derived relations
    # ------------------------------------------------------------------

    @cached_property
    def rw(self) -> Dict[Obj, Relation[Transaction]]:
        """The anti-dependency relations RW(x), derived per Definition 5."""
        return derive_rw(self.history, self.wr, self.ww)

    @property
    def transactions(self) -> FrozenSet[Transaction]:
        """The transactions of the underlying history."""
        return self.history.transactions

    @property
    def session_order(self) -> Relation[Transaction]:
        """The session order SO of the underlying history."""
        return self.history.session_order

    @cached_property
    def wr_union(self) -> Relation[Transaction]:
        """``WR = ⋃_x WR(x)`` as a single relation over transactions."""
        return union_all(self.wr.values()).union(
            Relation.empty(self.history.transactions)
        )

    @cached_property
    def ww_union(self) -> Relation[Transaction]:
        """``WW = ⋃_x WW(x)``."""
        return union_all(self.ww.values()).union(
            Relation.empty(self.history.transactions)
        )

    @cached_property
    def rw_union(self) -> Relation[Transaction]:
        """``RW = ⋃_x RW(x)``."""
        return union_all(self.rw.values()).union(
            Relation.empty(self.history.transactions)
        )

    @cached_property
    def dependencies(self) -> Relation[Transaction]:
        """``SO ∪ WR ∪ WW`` — the non-anti-dependency edges used by the
        characterisations of Theorems 9 and 21."""
        return self.session_order.union(self.wr_union, self.ww_union)

    @cached_property
    def all_edges(self) -> Relation[Transaction]:
        """``SO ∪ WR ∪ WW ∪ RW`` — the full edge set (Theorem 8)."""
        return self.dependencies.union(self.rw_union)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def wr_on(self, obj: Obj) -> Relation[Transaction]:
        """WR(obj), empty if no reads of ``obj`` exist."""
        return self.wr.get(obj, Relation.empty(self.history.transactions))

    def ww_on(self, obj: Obj) -> Relation[Transaction]:
        """WW(obj), empty if fewer than two writers exist."""
        return self.ww.get(obj, Relation.empty(self.history.transactions))

    def rw_on(self, obj: Obj) -> Relation[Transaction]:
        """RW(obj), derived."""
        return self.rw.get(obj, Relation.empty(self.history.transactions))

    def describe(self) -> str:
        """Human-readable rendering: history plus labelled edges."""

        def render(per_obj: Mapping[Obj, Relation[Transaction]]) -> str:
            parts = []
            for obj in sorted(per_obj):
                for a, b in sorted(
                    per_obj[obj], key=lambda p: (p[0].tid, p[1].tid)
                ):
                    parts.append(f"{a.tid}-({obj})->{b.tid}")
            return ", ".join(parts) if parts else "(none)"

        return "\n".join(
            [
                self.history.describe(),
                f"WR: {render(self.wr)}",
                f"WW: {render(self.ww)}",
                f"RW: {render(self.rw)}",
            ]
        )


def dependency_graph(
    history: History,
    wr: Mapping[Obj, Iterable[Tuple[Transaction, Transaction]]],
    ww: Mapping[Obj, Iterable[Tuple[Transaction, Transaction]]],
    transitively_close_ww: bool = True,
    validate: bool = True,
) -> DependencyGraph:
    """Convenience constructor from edge iterables.

    WW(x) may be given as the covering (successor) edges of the intended
    total order; with ``transitively_close_ww`` (default) it is closed
    transitively before validation.
    """
    universe = history.transactions
    wr_rels = {obj: Relation(edges, universe) for obj, edges in wr.items()}
    ww_rels = {obj: Relation(edges, universe) for obj, edges in ww.items()}
    if transitively_close_ww:
        ww_rels = {obj: rel.transitive_closure() for obj, rel in ww_rels.items()}
    return DependencyGraph(history, wr_rels, ww_rels, validate=validate)
