"""Extracting dependency graphs from abstract executions (Definition 5).

Given an execution ``X = (H, VIS, CO)``:

* ``T --WR_X(x)--> S``  iff ``S ⊢ read(x, _)`` and
  ``T = max_CO(VIS^{-1}(S) ∩ WriteTx_x)``;
* ``T --WW_X(x)--> S``  iff ``T --CO--> S`` and both write ``x``;
* ``RW_X(x)`` is derived from the two as usual.

Proposition 7 states that for ``X ∈ ExecSI`` the result is a well-formed
dependency graph; :func:`graph_of` validates by default, so extraction
doubles as an executable check of the proposition (exercised heavily in the
test suite).  Proposition 14's alternative characterisation of
anti-dependencies via visibility is provided for cross-validation.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from ..core.events import Obj
from ..core.executions import PreExecution
from ..core.relations import Relation
from ..core.transactions import Transaction
from .dependency import DependencyGraph


def extract_wr(execution: PreExecution) -> Dict[Obj, Relation[Transaction]]:
    """The read-dependency relations WR_X(x) of Definition 5."""
    history = execution.history
    universe = history.transactions
    wr: Dict[Obj, Set[Tuple[Transaction, Transaction]]] = {}
    for s in universe:
        for obj in s.external_read_objects:
            writers = execution.visible_writers(s, obj)
            if not writers:
                continue  # undefined max — caught by Definition 6 validation
            try:
                t = execution.co.max_element(writers)
            except ValueError:
                continue
            wr.setdefault(obj, set()).add((t, s))
    return {obj: Relation(pairs, universe) for obj, pairs in wr.items()}


def extract_ww(execution: PreExecution) -> Dict[Obj, Relation[Transaction]]:
    """The write-dependency relations WW_X(x) of Definition 5: the commit
    order restricted to the writers of each object."""
    history = execution.history
    universe = history.transactions
    ww: Dict[Obj, Relation[Transaction]] = {}
    for obj in history.objects:
        writers = history.write_transactions(obj)
        if len(writers) < 2:
            continue
        ww[obj] = execution.co.restrict(writers).union(
            Relation.empty(universe)
        )
    return ww


def graph_of(execution: PreExecution, validate: bool = True) -> DependencyGraph:
    """The paper's ``graph(X)`` — also applicable to pre-executions, as in
    Section 4.  With ``validate`` (default) the result is checked against
    Definition 6, making Proposition 7 executable."""
    return DependencyGraph(
        execution.history,
        extract_wr(execution),
        extract_ww(execution),
        validate=validate,
    )


def antidependencies_via_visibility(
    execution: PreExecution,
) -> Relation[Transaction]:
    """Proposition 14's characterisation of anti-dependencies.

    For ``X ∈ ExecSI``:  ``S --RW_X--> T``  iff  ``S ≠ T`` and there is an
    object ``x`` with ``S ⊢ read(x, _)``, ``T ⊢ write(x, _)`` and
    ``¬(T --VIS--> S)``.

    Returned as a single (object-union) relation; tests compare it against
    the RW derived from the extracted WR/WW to validate the proposition.
    """
    history = execution.history
    universe = history.transactions
    vis = execution.vis
    pairs: Set[Tuple[Transaction, Transaction]] = set()
    for s in universe:
        for obj in s.external_read_objects:
            for t in history.write_transactions(obj):
                if t != s and (t, s) not in vis:
                    pairs.add((s, t))
    return Relation(pairs, universe)
