"""Dependency graphs (Section 3) and their model characterisations.

Implements Adya-style dependency graphs (Definition 6), their extraction
from abstract executions (Definition 5, Propositions 7 and 14), labelled
cycle machinery, and the graph classes GraphSER / GraphSI / GraphPSI
(Theorems 8, 9 and 21).
"""

from .dependency import DependencyGraph, dependency_graph, derive_rw
from .extraction import (
    antidependencies_via_visibility,
    extract_wr,
    extract_ww,
    graph_of,
)
from .cycles import (
    CONFLICT_KINDS,
    Cycle,
    DEPENDENCY_KINDS,
    EdgeKind,
    LabeledDigraph,
    LabeledEdge,
    is_antidependency,
    is_conflict,
    is_dependency,
    is_predecessor,
)
from .classify import (
    classify,
    cycle_allowed_by_psi,
    cycle_allowed_by_si,
    in_graph_psi,
    in_graph_psi_by_cycles,
    in_graph_ser,
    in_graph_ser_by_cycles,
    in_graph_si,
    in_graph_si_by_cycles,
    psi_composite_relation,
    psi_violation_witness,
    ser_violation_witness,
    si_composite_relation,
    si_violation_witness,
    to_labeled_digraph,
)

__all__ = [
    "DependencyGraph",
    "dependency_graph",
    "derive_rw",
    "graph_of",
    "extract_wr",
    "extract_ww",
    "antidependencies_via_visibility",
    "Cycle",
    "EdgeKind",
    "LabeledDigraph",
    "LabeledEdge",
    "CONFLICT_KINDS",
    "DEPENDENCY_KINDS",
    "is_conflict",
    "is_predecessor",
    "is_antidependency",
    "is_dependency",
    "classify",
    "in_graph_ser",
    "in_graph_si",
    "in_graph_psi",
    "in_graph_ser_by_cycles",
    "in_graph_si_by_cycles",
    "in_graph_psi_by_cycles",
    "si_composite_relation",
    "psi_composite_relation",
    "cycle_allowed_by_si",
    "cycle_allowed_by_psi",
    "si_violation_witness",
    "ser_violation_witness",
    "psi_violation_witness",
]
