"""``python -m repro`` — the command-line front-end."""

import sys

from .io.cli import main

sys.exit(main())
