"""repro — an executable reproduction of *Analysing Snapshot Isolation*
(Cerone & Gotsman, PODC 2016).

The library provides:

* :mod:`repro.core` — events, transactions, histories with sessions,
  abstract executions, the consistency axioms of Figure 1, and the SI /
  SER / PSI models (Definitions 1–4, 20);
* :mod:`repro.graphs` — Adya-style dependency graphs and the graph classes
  GraphSER / GraphSI / GraphPSI (Section 3; Theorems 8, 9, 21);
* :mod:`repro.characterisation` — the inequality solver (Lemma 15), the
  soundness construction realising GraphSI graphs as SI executions
  (Theorem 10), and an exact history-membership oracle;
* :mod:`repro.chopping` — transaction chopping under SI: splicing, dynamic
  and static chopping graphs, critical cycles (Section 5, Appendix B);
* :mod:`repro.robustness` — robustness analyses against SER and from PSI
  towards SI (Section 6);
* :mod:`repro.mvcc` — an operational multi-version concurrency-control
  substrate (SI / serializable / parallel-SI engines) with deterministic
  scheduling and history recording, used to cross-validate the theory;
* :mod:`repro.anomalies` — the canonical scenarios of the paper's figures;
* :mod:`repro.search` — random history/graph generators for property-based
  testing and benchmarks.

Quickstart::

    from repro.anomalies import write_skew
    from repro.characterisation import classify_history

    case = write_skew()
    print(classify_history(case.history, init_tid=case.init_tid))
    # {'SER': False, 'SI': True, 'PSI': True}
"""

from . import (
    anomalies,
    apps,
    characterisation,
    chopping,
    core,
    graphs,
    io,
    monitor,
    mvcc,
    robustness,
    search,
)
from .core import (
    AbstractExecution,
    ConsistencyModel,
    History,
    PSI,
    PreExecution,
    Relation,
    SER,
    SI,
    Transaction,
    history,
    read,
    transaction,
    write,
)
from .characterisation import (
    classify_history,
    construct_execution,
    history_in_psi,
    history_in_ser,
    history_in_si,
    least_solution,
)
from .graphs import (
    DependencyGraph,
    dependency_graph,
    graph_of,
    in_graph_psi,
    in_graph_ser,
    in_graph_si,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # subpackages
    "core",
    "graphs",
    "characterisation",
    "chopping",
    "robustness",
    "mvcc",
    "anomalies",
    "search",
    "apps",
    "monitor",
    "io",
    # core re-exports
    "Transaction",
    "transaction",
    "read",
    "write",
    "History",
    "history",
    "AbstractExecution",
    "PreExecution",
    "Relation",
    "ConsistencyModel",
    "SI",
    "SER",
    "PSI",
    # graphs re-exports
    "DependencyGraph",
    "dependency_graph",
    "graph_of",
    "in_graph_si",
    "in_graph_ser",
    "in_graph_psi",
    # characterisation re-exports
    "construct_execution",
    "least_solution",
    "history_in_si",
    "history_in_ser",
    "history_in_psi",
    "classify_history",
]
