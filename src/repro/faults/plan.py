"""Deterministic, seed-reproducible fault plans.

A :class:`FaultPlan` is a schedule of fault events over the named
failpoints threaded through the stack (see
:mod:`repro.faults.failpoints` for the catalog).  Each
:class:`FaultRule` targets one failpoint and describes *when* it fires
(a hit-count window plus a per-hit probability drawn from a seeded
stream) and *what* it does:

* ``"delay"`` — sleep at the site (fsync stalls, lock-stripe pauses,
  slow monitor consumers, admission spikes);
* ``"io_error"`` — raise :class:`OSError` (the WAL's flusher treats it
  exactly like a real disk failure and poisons the log);
* ``"abort"`` — raise :class:`~repro.core.errors.FaultInjected`, which
  the service translates into a transaction abort feeding the retry
  discipline.

Determinism.  Every rule owns its own ``random.Random`` stream seeded
from ``(plan seed, rule index, point name)``, and trigger decisions
depend only on the rule's own hit counter — never on wall-clock time or
a shared RNG.  Given the same sequence of hits at a failpoint, a plan
therefore injects exactly the same faults, which is what makes chaos
runs replayable from ``(plan, seed)`` alone.  (Across threads the *hit
order* still follows the thread schedule; the per-rule streams mean
the decisions for the k-th hit are fixed regardless of which thread
lands it.)

Plans are JSON round-trippable (``to_doc``/``from_doc``) so a chaos run
can be described in a file and attached to a bug report, and
:func:`preset` builds the named storm profiles the chaos bench sweeps
(``disk``, ``contention``, ``overload``, ``mixed``, ``poison``) at a
given intensity.
"""

from __future__ import annotations

import json
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..core.errors import FaultInjected, StoreError

FAULT_KINDS = ("delay", "io_error", "abort")
"""The actions a rule may take when it triggers."""


@dataclass(frozen=True)
class FaultRule:
    """One scheduled fault over one failpoint.

    Attributes:
        point: failpoint name (e.g. ``"wal.fsync"``).
        kind: one of :data:`FAULT_KINDS`.
        probability: chance that an eligible hit triggers, drawn from
            the rule's seeded stream (1.0 = every eligible hit).
        delay: sleep duration in seconds for ``"delay"`` (also applied
            before raising for the error kinds when non-zero).
        start: hits to skip before the rule becomes eligible (the
            rule's k-th eligible hit is overall hit ``start + k``).
        stop: hit index at which the rule stops being eligible
            (``None`` = never).
        limit: maximum number of triggers (``None`` = unlimited).
        detail: free-form text carried into the raised error.
    """

    point: str
    kind: str
    probability: float = 1.0
    delay: float = 0.0
    start: int = 0
    stop: Optional[int] = None
    limit: Optional[int] = None
    detail: str = ""

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise StoreError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise StoreError(
                f"fault probability must be in [0, 1], got "
                f"{self.probability}"
            )
        if self.delay < 0:
            raise StoreError(f"fault delay must be >= 0, got {self.delay}")
        if self.start < 0:
            raise StoreError(f"fault start must be >= 0, got {self.start}")
        if self.stop is not None and self.stop <= self.start:
            raise StoreError(
                f"fault stop ({self.stop}) must be past start "
                f"({self.start})"
            )
        if self.limit is not None and self.limit < 1:
            raise StoreError(f"fault limit must be >= 1, got {self.limit}")

    def to_doc(self) -> Dict[str, Any]:
        """The rule as a plain JSON-able dict."""
        return {
            "point": self.point,
            "kind": self.kind,
            "probability": self.probability,
            "delay": self.delay,
            "start": self.start,
            "stop": self.stop,
            "limit": self.limit,
            "detail": self.detail,
        }

    @classmethod
    def from_doc(cls, doc: Mapping[str, Any]) -> "FaultRule":
        """Rebuild a rule from :meth:`to_doc`'s shape (unknown keys are
        rejected so typos in a hand-written plan fail loudly)."""
        known = {
            "point", "kind", "probability", "delay", "start", "stop",
            "limit", "detail",
        }
        unknown = set(doc) - known
        if unknown:
            raise StoreError(
                f"unknown fault rule key(s): {sorted(unknown)}"
            )
        if "point" not in doc or "kind" not in doc:
            raise StoreError("fault rule needs 'point' and 'kind'")
        return cls(**dict(doc))


class _RuleState:
    """Mutable trigger bookkeeping for one rule (guarded by the plan
    lock): its seeded decision stream, hits seen, triggers fired."""

    __slots__ = ("rng", "hits", "triggers")

    def __init__(self, seed: int, index: int, point: str):
        self.rng = random.Random(f"{seed}:{index}:{point}")
        self.hits = 0
        self.triggers = 0


class FaultPlan:
    """A seeded schedule of fault events over named failpoints.

    Arm it on the process-wide injector
    (:func:`repro.faults.failpoints.armed`) and every instrumented site
    consults it; :meth:`fire` is the decision entry point.

    Args:
        rules: the fault rules (evaluated in order on every hit of
            their failpoint; several rules may target one point).
        seed: seeds every rule's decision stream.
        name: label carried into reports.
    """

    def __init__(
        self,
        rules: Sequence[FaultRule] = (),
        seed: int = 0,
        name: str = "custom",
    ):
        self.rules: List[FaultRule] = list(rules)
        self.seed = seed
        self.name = name
        self._lock = threading.Lock()
        self._states = [
            _RuleState(seed, i, rule.point)
            for i, rule in enumerate(self.rules)
        ]
        self._hit_counts: Dict[str, int] = {}
        self._trigger_counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Decision path (called from the armed injector)
    # ------------------------------------------------------------------

    def fire(self, point: str, **context: Any) -> None:
        """Evaluate every rule targeting ``point`` for this hit.

        Sleeps for ``"delay"`` triggers (outside the plan lock), raises
        :class:`OSError` for ``"io_error"`` and
        :class:`~repro.core.errors.FaultInjected` for ``"abort"``.
        """
        sleep_for = 0.0
        error: Optional[BaseException] = None
        with self._lock:
            self._hit_counts[point] = self._hit_counts.get(point, 0) + 1
            for rule, state in zip(self.rules, self._states):
                if rule.point != point:
                    continue
                state.hits += 1
                hit = state.hits - 1  # 0-based hit index for this rule
                if hit < rule.start:
                    continue
                if rule.stop is not None and hit >= rule.stop:
                    continue
                if rule.limit is not None and state.triggers >= rule.limit:
                    continue
                if rule.probability < 1.0:
                    if state.rng.random() >= rule.probability:
                        continue
                state.triggers += 1
                self._trigger_counts[point] = (
                    self._trigger_counts.get(point, 0) + 1
                )
                if rule.delay > 0:
                    sleep_for += rule.delay
                if rule.kind == "io_error" and error is None:
                    error = OSError(
                        f"injected I/O error at {point!r}"
                        + (f" ({rule.detail})" if rule.detail else "")
                    )
                elif rule.kind == "abort" and error is None:
                    error = FaultInjected(point, rule.detail)
        if sleep_for > 0:
            time.sleep(sleep_for)
        if error is not None:
            raise error

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def points(self) -> List[str]:
        """The failpoints this plan targets (sorted, unique)."""
        return sorted({rule.point for rule in self.rules})

    def hit_counts(self) -> Dict[str, int]:
        """Hits seen per failpoint since arming (copy)."""
        with self._lock:
            return dict(self._hit_counts)

    def trigger_counts(self) -> Dict[str, int]:
        """Faults actually injected per failpoint (copy)."""
        with self._lock:
            return dict(self._trigger_counts)

    @property
    def total_triggers(self) -> int:
        """Faults injected across every failpoint."""
        with self._lock:
            return sum(self._trigger_counts.values())

    def poisons_wal(self) -> bool:
        """Whether any rule can poison the write-ahead log (an
        ``io_error`` on a ``wal.*`` failpoint) — chaos invariants flip
        from "returns to healthy" to "degrades as configured" then."""
        return any(
            rule.kind == "io_error" and rule.point.startswith("wal.")
            for rule in self.rules
        )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_doc(self) -> Dict[str, Any]:
        """The plan as a plain JSON-able dict."""
        return {
            "name": self.name,
            "seed": self.seed,
            "rules": [rule.to_doc() for rule in self.rules],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The plan as a JSON document."""
        return json.dumps(self.to_doc(), indent=indent, sort_keys=True)

    @classmethod
    def from_doc(cls, doc: Mapping[str, Any]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_doc`'s shape."""
        rules = [FaultRule.from_doc(r) for r in doc.get("rules", [])]
        return cls(
            rules,
            seed=int(doc.get("seed", 0)),
            name=str(doc.get("name", "custom")),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_json`'s output."""
        return cls.from_doc(json.loads(text))

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        """Read a plan from a JSON file."""
        with open(path) as f:
            return cls.from_doc(json.load(f))


# ----------------------------------------------------------------------
# Storm profiles
# ----------------------------------------------------------------------

PROFILES = ("disk", "contention", "overload", "mixed", "poison")
"""Named storm profiles :func:`preset` can build."""


def preset(
    profile: str, intensity: float = 0.5, seed: int = 0
) -> FaultPlan:
    """A named storm profile at the given intensity.

    ``intensity`` in [0, 1] scales both the probability and the
    duration of the injected faults; 0 yields an empty plan (the
    baseline the chaos bench compares against).

    Profiles:

    * ``disk`` — fsync stalls and slow segment writes in the WAL
      flusher (durability latency without data loss);
    * ``contention`` — injected commit-time aborts plus thread pauses
      inside the store's lock stripes (write-conflict storms);
    * ``overload`` — admission spikes plus a slow monitor consumer
      backing up the pipelined feed;
    * ``mixed`` — all of the above at once;
    * ``poison`` — a ``mixed`` storm that additionally kills the log
      with one injected I/O error partway through (exercises the
      ``on_wal_failure`` degradation policy and crash recovery).
    """
    if profile not in PROFILES:
        raise StoreError(
            f"unknown chaos profile {profile!r}; expected one of "
            f"{PROFILES}"
        )
    if not 0.0 <= intensity <= 1.0:
        raise StoreError(
            f"chaos intensity must be in [0, 1], got {intensity}"
        )
    if intensity == 0.0:
        return FaultPlan([], seed=seed, name=f"{profile}@0")

    rules: List[FaultRule] = []
    p = intensity

    def disk_rules() -> List[FaultRule]:
        return [
            FaultRule(
                "wal.fsync", "delay", probability=min(1.0, 0.6 * p),
                delay=0.002 + 0.008 * p, detail="fsync stall",
            ),
            FaultRule(
                "wal.write", "delay", probability=min(1.0, 0.3 * p),
                delay=0.001 * p, detail="slow segment write",
            ),
        ]

    def contention_rules() -> List[FaultRule]:
        return [
            FaultRule(
                "service.commit", "abort", probability=min(1.0, 0.35 * p),
                detail="injected validation storm",
            ),
            FaultRule(
                "store.install", "delay", probability=min(1.0, 0.25 * p),
                delay=0.0005 + 0.002 * p, detail="stripe-holder pause",
            ),
        ]

    def overload_rules() -> List[FaultRule]:
        return [
            FaultRule(
                "service.admit", "delay", probability=min(1.0, 0.4 * p),
                delay=0.001 + 0.004 * p, detail="admission spike",
            ),
            FaultRule(
                "feed.observe", "delay", probability=min(1.0, 0.5 * p),
                delay=0.001 + 0.003 * p, detail="slow monitor consumer",
            ),
        ]

    if profile == "disk":
        rules += disk_rules()
    elif profile == "contention":
        rules += contention_rules()
    elif profile == "overload":
        rules += overload_rules()
    else:  # mixed / poison
        rules += disk_rules() + contention_rules() + overload_rules()
    if profile == "poison":
        # One unrecoverable disk error partway into the storm; scale
        # the onset with intensity so harder storms die earlier.
        rules.append(
            FaultRule(
                "wal.write", "io_error",
                start=max(5, int(60 * (1.0 - 0.5 * p))), limit=1,
                detail="injected disk death",
            )
        )
    return FaultPlan(rules, seed=seed, name=f"{profile}@{intensity:g}")
