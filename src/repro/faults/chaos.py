"""The chaos harness: a workload, a storm, and the invariants.

:func:`run_chaos` is the headline robustness experiment (CLI verb
``repro-si chaos-bench``, bench E27): build a full service stack —
engine, windowed online monitor, write-ahead log, health tracker with
an enforcing admission breaker — arm a seeded :class:`FaultPlan`, drive
a SmallBank/TPC-C load *through* the storm, disarm, let the service
calm down, then shut everything off and check what the paper's
machinery promised all along:

1. **No false verdicts** — the live monitor certifies real engine
   executions; injected I/O errors, stalls and aborts must never make
   it cry wolf (a violation under chaos would be a *soundness* bug).
2. **Durability survives** — after the storm, the log's durable prefix
   recovers contiguously into a fresh engine and the offline audit
   certifies it, whatever the flusher was doing when faults hit.
3. **Bounded recovery** — once faults stop, the health state machine
   returns to ``healthy`` within a bounded window; a plan that poisons
   the log is the one excuse (durability loss is sticky: the floor is
   ``degraded``, and under ``on_wal_failure="read_only"`` the service
   must still be serving reads).

This module imports the service layer, so the package root does not
import it — use ``import repro.faults.chaos`` (the CLI and bench do).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..core.errors import StoreError
from ..service import MIXES, LoadGenerator, LoadResult, TransactionService
from ..service.health import DEGRADED, HEALTHY, HealthPolicy
from ..wal import WriteAheadLog, audit_log, recover
from ..wal.log import WalError
from .failpoints import armed
from .plan import FaultPlan

CHAOS_ENGINES = ("SI", "SER", "PSI", "2PL")
"""Engine keys the harness accepts (2PL certifies against SER)."""


def _build_engine(key: str, initial: Dict[str, Any], lock_mode: str):
    from ..mvcc import PSIEngine, SerializableEngine, SIEngine
    from ..mvcc.locking import TwoPhaseLockingEngine

    if key == "SI":
        return SIEngine(initial, lock_mode=lock_mode), "SI"
    if key == "SER":
        return SerializableEngine(initial, lock_mode=lock_mode), "SER"
    if key == "PSI":
        return (
            PSIEngine(initial, auto_deliver=True, lock_mode=lock_mode),
            "PSI",
        )
    if key == "2PL":
        return TwoPhaseLockingEngine(initial, lock_mode=lock_mode), "SER"
    raise StoreError(
        f"unknown engine {key!r}; expected one of {CHAOS_ENGINES}"
    )


def _load_dict(result: LoadResult) -> Dict[str, Any]:
    return {
        "committed": result.committed,
        "retry_exhausted": result.retry_exhausted,
        "deadline_exceeded": result.deadline_exceeded,
        "shed": result.shed,
        "read_only_refused": result.read_only_refused,
        "wal_errors": result.wal_errors,
        "violations": result.violations,
        "throughput_tps": round(result.throughput, 1),
        "elapsed_seconds": round(result.elapsed_seconds, 4),
    }


@dataclass
class ChaosReport:
    """Everything one chaos run produced, invariants included.

    ``invariants`` maps each named end-to-end invariant to whether it
    held; :attr:`ok` is their conjunction — the harness's verdict.
    """

    engine: str
    model: str
    mix: str
    plan_name: str
    seed: int
    on_wal_failure: str
    storm: Dict[str, Any]
    calm: Dict[str, Any]
    calm_rounds: int
    fault_triggers: Dict[str, int]
    total_triggers: int
    end_state: str
    wal_failed: bool
    read_only: bool
    time_to_healthy: Optional[float]
    recovery_window: float
    durable_ts: int
    recovered_records: int
    recovered_contiguous: bool
    audit_consistent: bool
    audit_error: Optional[str]
    violations: int
    invariants: Dict[str, bool] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether every invariant held."""
        return all(self.invariants.values())

    def to_doc(self) -> Dict[str, Any]:
        """The report as a JSON-ready dict."""
        return {
            "engine": self.engine,
            "model": self.model,
            "mix": self.mix,
            "plan": self.plan_name,
            "seed": self.seed,
            "on_wal_failure": self.on_wal_failure,
            "storm": self.storm,
            "calm": self.calm,
            "calm_rounds": self.calm_rounds,
            "fault_triggers": self.fault_triggers,
            "total_triggers": self.total_triggers,
            "end_state": self.end_state,
            "wal_failed": self.wal_failed,
            "read_only": self.read_only,
            "time_to_healthy": (
                round(self.time_to_healthy, 4)
                if self.time_to_healthy is not None
                else None
            ),
            "recovery_window": self.recovery_window,
            "durable_ts": self.durable_ts,
            "recovered_records": self.recovered_records,
            "recovered_contiguous": self.recovered_contiguous,
            "audit_consistent": self.audit_consistent,
            "audit_error": self.audit_error,
            "violations": self.violations,
            "invariants": dict(self.invariants),
            "ok": self.ok,
            "elapsed_seconds": round(self.elapsed_seconds, 4),
        }

    def describe(self) -> str:
        """A human-readable multi-line summary."""
        lines = [
            f"chaos: {self.engine} ({self.model} monitor), "
            f"{self.mix} mix, plan {self.plan_name!r} seed {self.seed}",
            f"storm: {self.storm['committed']} committed, "
            f"{self.total_triggers} fault(s) fired, "
            f"{self.storm['violations']} violations",
            f"calm: {self.calm['committed']} committed over "
            f"{self.calm_rounds} round(s); end state {self.end_state}"
            + (
                f" (healthy after {self.time_to_healthy:.2f}s)"
                if self.time_to_healthy is not None
                else " (never healthy in window)"
            ),
            f"recovery: {self.recovered_records} record(s) "
            f"(durable prefix {self.durable_ts}), audit "
            + ("consistent" if self.audit_consistent else "INCONSISTENT"),
        ]
        for name, held in sorted(self.invariants.items()):
            lines.append(f"  [{'ok' if held else 'FAIL'}] {name}")
        return "\n".join(lines)


def run_chaos(
    engine_key: str,
    plan: FaultPlan,
    wal_dir: str,
    mix_name: str = "smallbank",
    workers: int = 8,
    txns_per_worker: int = 40,
    calm_txns_per_worker: int = 10,
    seed: int = 0,
    monitor_mode: str = "sync",
    window: int = 64,
    lock_mode: str = "striped",
    fsync_policy: str = "group",
    on_wal_failure: str = "fail_stop",
    default_deadline: Optional[float] = None,
    max_concurrent: Optional[int] = None,
    recovery_window: float = 10.0,
    health_policy: Optional[HealthPolicy] = None,
) -> ChaosReport:
    """Run one chaos experiment and check its invariants.

    Args:
        engine_key: one of :data:`CHAOS_ENGINES`.
        plan: the fault schedule to arm for the storm phase.
        wal_dir: write-ahead log directory (must not hold a live log;
            recovery and audit run against it after shutdown).
        mix_name: a :data:`~repro.service.loadgen.MIXES` key.
        workers / txns_per_worker: storm load shape.
        calm_txns_per_worker: per-round load while waiting for the
            service to heal (rounds repeat until healthy or the
            ``recovery_window`` closes; at least one round always runs).
        seed: seeds the load generator streams (the fault plan carries
            its own seed).
        monitor_mode / window / lock_mode / fsync_policy /
        on_wal_failure / default_deadline / max_concurrent: service
            stack knobs, as for ``serve-bench``.
        recovery_window: seconds after disarm within which the service
            must reach ``healthy`` (unless the plan poisoned the log).
        health_policy: override the enforcing default
            (``HealthPolicy(enforce=True)``).
    """
    started = time.perf_counter()
    mix = MIXES[mix_name]()
    engine, model = _build_engine(
        engine_key, dict(mix.initial), lock_mode=lock_mode
    )
    wal = WriteAheadLog(
        wal_dir,
        fsync_policy=fsync_policy,
        meta={
            "engine": engine_key,
            "init": dict(mix.initial),
            "init_tid": engine.init_tid,
            "model": model,
        },
    )
    service = TransactionService.certified(
        engine,
        model=model,
        window=window,
        monitor_mode=monitor_mode,
        wal=wal,
        max_concurrent=max_concurrent,
        health_policy=health_policy or HealthPolicy(enforce=True),
        on_wal_failure=on_wal_failure,
        default_deadline=default_deadline,
    )

    # Phase 1: the storm — faults armed, full load.
    with armed(plan):
        storm = LoadGenerator(
            service,
            mix,
            workers=workers,
            transactions_per_worker=txns_per_worker,
            seed=seed,
        ).run()
    disarmed_at = time.perf_counter()

    # Phase 2: calm — keep a light load running (the health gauges are
    # fed by attempts; an idle service can only age out by time) until
    # the tracker reports healthy or the window closes.  One round
    # always runs: "the service still serves traffic" is part of the
    # claim even when it never degraded.
    calm_deadline = disarmed_at + recovery_window
    calm_rounds: List[LoadResult] = []
    time_to_healthy: Optional[float] = None
    while True:
        calm_rounds.append(
            LoadGenerator(
                service,
                mix,
                workers=max(2, workers // 2),
                transactions_per_worker=calm_txns_per_worker,
                seed=seed + 1000 + len(calm_rounds),
            ).run()
        )
        state = service.health.state
        if state == HEALTHY:
            time_to_healthy = time.perf_counter() - disarmed_at
            break
        if service.health.wal_failed and state == DEGRADED:
            # The WAL-failure floor is sticky: degraded is the best a
            # poisoned service can reach, so it has settled.
            break
        if time.perf_counter() >= calm_deadline:
            break
        # A degraded service finishes tiny rounds instantly (shedding
        # or refusing); pace the probe rounds instead of spinning.
        time.sleep(0.02)

    end_state = service.health.state
    wal_failed = service.health.wal_failed
    read_only = service.read_only
    violations = len(service.violations)
    durable_ts = wal.durable_ts
    try:
        service.close()
    except WalError:
        # A poisoned log cannot close cleanly; the failure already
        # shaped the report (wal_failed / read_only / wal_errors).
        pass

    # Phase 3: the wreckage — recover the log into a fresh engine and
    # certify the recovered prefix offline.
    recovery = recover(wal_dir)
    audit = audit_log(wal_dir, window=window)
    recovered = recovery.records_recovered
    contiguous = recovered == 0 or (
        recovery.first_ts is not None
        and recovery.last_ts is not None
        and recovery.last_ts - recovery.first_ts + 1 == recovered
    )

    calm_total = {
        key: sum(d[key] for d in map(_load_dict, calm_rounds))
        for key in (
            "committed",
            "retry_exhausted",
            "deadline_exceeded",
            "shed",
            "read_only_refused",
            "wal_errors",
            "violations",
        )
    }
    invariants = {
        # The live monitor never cried wolf: the engines only produce
        # executions of their own model, so any verdict is a false one.
        "no_false_violations": violations == 0
        and storm.violations == 0,
        # Every commit the log acknowledged as durable is on disk, the
        # recovered history is a contiguous prefix, and the offline
        # certifier agrees with the online one.
        "durable_prefix_recovered": recovered >= durable_ts and contiguous,
        "audit_clean": audit.consistent and audit.monitor_error is None,
        # Faults stopped => the service healed within the window; a
        # poisoned log is the one legitimate exception (sticky degraded
        # floor — and under read_only, reads must still have flowed).
        "recovered_in_window": (
            time_to_healthy is not None
            if not wal_failed
            else end_state != "shedding"
            and (
                on_wal_failure == "fail_stop"
                or calm_total["committed"] > 0
            )
        ),
    }
    return ChaosReport(
        engine=engine_key,
        model=model,
        mix=mix_name,
        plan_name=plan.name,
        seed=plan.seed,
        on_wal_failure=on_wal_failure,
        storm=_load_dict(storm),
        calm=calm_total,
        calm_rounds=len(calm_rounds),
        fault_triggers=plan.trigger_counts(),
        total_triggers=plan.total_triggers,
        end_state=end_state,
        wal_failed=wal_failed,
        read_only=read_only,
        time_to_healthy=time_to_healthy,
        recovery_window=recovery_window,
        durable_ts=durable_ts,
        recovered_records=recovered,
        recovered_contiguous=contiguous,
        audit_consistent=audit.consistent,
        audit_error=(
            str(audit.monitor_error) if audit.monitor_error else None
        ),
        violations=violations,
        invariants=invariants,
        elapsed_seconds=time.perf_counter() - started,
    )
