"""The process-wide failpoint registry.

A *failpoint* is a named hook compiled into a hot path; when no plan is
armed it costs one attribute read.  The stack is instrumented at:

=================  ====================================================
``wal.write``      WAL flusher, before writing each frame (an
                   ``io_error`` here poisons the log like a dead disk).
``wal.fsync``      WAL flusher, before each ``fsync`` (stalls model a
                   congested device; latency is visible to committers
                   waiting for durability).
``store.install``  :meth:`~repro.mvcc.store.MVStore.install`, per
                   object, **while holding the stripe lock** (a delay
                   models a descheduled writer pinning a stripe).
``store.read``     :meth:`~repro.mvcc.store.MVStore.read_at` (slow
                   snapshot reads).
``feed.observe``   the pipelined monitor feed's drain thread, before
                   each observation (a slow consumer backs the bounded
                   queue up into committer backpressure).
``service.admit``  :meth:`TransactionService._admit`, before the
                   admission semaphore (admission spikes).
``service.commit`` :meth:`ServiceSession.commit`, before the engine
                   commit (an ``abort`` feeds the retry discipline
                   exactly like a validation failure).
=================  ====================================================

Arming is global (one process, one plan) because the instrumented
sites span components that are wired together long before a fault plan
exists; :func:`armed` is the context-manager entry point and guarantees
disarming.  Tests and the chaos harness arm per-run and the registry
refuses double-arming, so plans cannot silently overlap.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterator, Optional

from ..core.errors import StoreError
from .plan import FaultPlan


class FaultInjector:
    """Holds the (single) armed :class:`FaultPlan` and routes hits.

    ``armed`` is a plain attribute so instrumented sites can guard the
    call (``if FAULTS.armed: FAULTS.fire(...)``) with one global load —
    the disarmed overhead on hot paths stays negligible.
    """

    def __init__(self) -> None:
        self.armed = False
        self._plan: Optional[FaultPlan] = None
        self._lock = threading.Lock()

    @property
    def plan(self) -> Optional[FaultPlan]:
        """The armed plan, if any."""
        return self._plan

    def arm(self, plan: FaultPlan) -> None:
        """Arm ``plan``; refuses if another plan is already armed."""
        with self._lock:
            if self._plan is not None:
                raise StoreError(
                    f"a fault plan ({self._plan.name!r}) is already "
                    f"armed; disarm it first"
                )
            self._plan = plan
            self.armed = True

    def disarm(self) -> Optional[FaultPlan]:
        """Disarm and return the previously armed plan (idempotent)."""
        with self._lock:
            plan, self._plan = self._plan, None
            self.armed = False
            return plan

    def fire(self, point: str, **context: Any) -> None:
        """Evaluate the armed plan at ``point`` (no-op when disarmed).

        May sleep or raise per the plan's rules; see
        :meth:`FaultPlan.fire`.
        """
        plan = self._plan
        if plan is not None:
            plan.fire(point, **context)


FAULTS = FaultInjector()
"""The process-wide injector every instrumented site consults."""


@contextmanager
def armed(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Arm ``plan`` on :data:`FAULTS` for the duration of the block."""
    FAULTS.arm(plan)
    try:
        yield plan
    finally:
        FAULTS.disarm()
