"""Deterministic fault injection and the chaos harness.

The paper's analyses promise *sound* verdicts; this package is how the
repo checks that the promise survives a failing environment.  It has
three layers:

* :mod:`~repro.faults.plan` — :class:`FaultPlan`: seed-reproducible
  schedules of fault events (I/O errors, fsync stalls, lock-stripe
  pauses, slow consumers, injected aborts, admission spikes) plus the
  named storm profiles the bench sweeps;
* :mod:`~repro.faults.failpoints` — the process-wide registry of named
  failpoints threaded through ``wal``, ``mvcc``, and ``service``
  (near-zero cost when disarmed);
* :mod:`~repro.faults.chaos` — the harness: run a workload against a
  storm, then assert the end-to-end invariants (no false monitor
  verdicts, durable prefix recoverable and audit-clean, service back to
  healthy within a bounded window).  Imported lazily by the CLI's
  ``chaos-bench`` verb — import it as ``repro.faults.chaos`` (it pulls
  in the service layer, which this package root must not).

See ``docs/FAULTS.md`` for the failpoint catalog and plan format.
"""

from .failpoints import FAULTS, FaultInjector, armed
from .plan import FAULT_KINDS, PROFILES, FaultPlan, FaultRule, preset

__all__ = [
    "FAULTS",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "PROFILES",
    "armed",
    "preset",
]
