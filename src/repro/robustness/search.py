"""Polynomial dangerous-cycle searches for the static robustness analyses.

The §6 analyses need two cycle-shape queries over static dependency
graphs:

* **adjacent anti-dependencies** (Theorem 19's shape): a cycle containing
  two consecutive RW edges ``a --RW--> b --RW--> c`` (both *vulnerable*,
  when the refinement is on), closed by any path ``c ⇒ a``;
* **non-adjacent anti-dependencies** (Theorem 22's shape): a cycle with
  at least two RW edges, no two of which are cyclically consecutive.

Enumerating simple cycles (as the chopping analyser does on its small
piece graphs) is exponential and blows up on replicated application
graphs, which are nearly complete.  Both queries are answered here in
polynomial time instead:

* the first by scanning RW-edge pairs sharing a middle node and testing
  plain reachability for the closing path;
* the second by a BFS over a product automaton with states
  ``(node, last edge was RW, a second RW was seen)``, started after each
  candidate "first" RW edge; wrap-around adjacency is handled by
  accepting only states whose last edge is not an RW.

Note that the dependency-graph cycles of Theorems 19/22 need not be
vertex-simple (unlike the *critical* cycles of the chopping analyses), so
closing paths may revisit nodes — which is exactly what makes the
reachability formulation complete.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from ..graphs.cycles import Cycle, EdgeKind, LabeledDigraph, LabeledEdge

EdgePredicate = Callable[[LabeledEdge], bool]


def _edges_by_source(
    graph: LabeledDigraph,
) -> Dict[Hashable, List[LabeledEdge]]:
    out: Dict[Hashable, List[LabeledEdge]] = {}
    for edge in sorted(graph.edges, key=str):
        out.setdefault(edge.src, []).append(edge)
    return out


def _shortest_path(
    graph: LabeledDigraph, source: Hashable, target: Hashable
) -> Optional[List[LabeledEdge]]:
    """A shortest edge path ``source ⇒ target`` (empty when equal)."""
    if source == target:
        return []
    by_source = _edges_by_source(graph)
    parent: Dict[Hashable, LabeledEdge] = {}
    queue = deque([source])
    seen = {source}
    while queue:
        node = queue.popleft()
        for edge in by_source.get(node, ()):
            if edge.dst in seen:
                continue
            parent[edge.dst] = edge
            if edge.dst == target:
                path: List[LabeledEdge] = []
                cur = target
                while cur != source:
                    path.append(parent[cur])
                    cur = parent[cur].src
                path.reverse()
                return path
            seen.add(edge.dst)
            queue.append(edge.dst)
    return None


def find_adjacent_rw_cycle(
    graph: LabeledDigraph,
    vulnerable: EdgePredicate = lambda edge: True,
) -> Optional[Cycle]:
    """A cycle containing two consecutive (vulnerable) RW edges, or None.

    This is the dangerous shape of the robustness-against-SI analysis
    (§6.1 / Theorem 19).  Runs in O(#RW-pairs × E).
    """
    rw_out: Dict[Hashable, List[LabeledEdge]] = {}
    rw_in: Dict[Hashable, List[LabeledEdge]] = {}
    for edge in sorted(graph.edges, key=str):
        if edge.kind is EdgeKind.RW and vulnerable(edge):
            rw_out.setdefault(edge.src, []).append(edge)
            rw_in.setdefault(edge.dst, []).append(edge)
    for middle in sorted(rw_out.keys() & rw_in.keys(), key=str):
        for first in rw_in[middle]:
            for second in rw_out[middle]:
                closing = _shortest_path(graph, second.dst, first.src)
                if closing is not None:
                    return Cycle((first, second, *closing))
    return None


def find_nonadjacent_rw_cycle(graph: LabeledDigraph) -> Optional[Cycle]:
    """A cycle with ≥ 2 RW edges, no two cyclically consecutive, or None.

    This is the dangerous shape of the PSI-towards-SI analysis (§6.2 /
    Theorem 22).  BFS over ``(node, lastRW, sawSecondRW)`` states per
    starting RW edge: O(#RW × E).
    """
    by_source = _edges_by_source(graph)
    rw_edges = [
        e for e in sorted(graph.edges, key=str) if e.kind is EdgeKind.RW
    ]
    State = Tuple[Hashable, bool, bool]
    for start in rw_edges:
        # The cycle begins with `start`; walk until back at start.src with
        # the incoming edge non-RW (wrap adjacency) and ≥ 1 further RW.
        initial: State = (start.dst, True, False)
        parent: Dict[State, Tuple[State, LabeledEdge]] = {}
        queue = deque([initial])
        seen = {initial}
        goal: Optional[State] = None
        while queue and goal is None:
            node, last_rw, saw_rw = queue.popleft()
            for edge in by_source.get(node, ()):
                is_rw = edge.kind is EdgeKind.RW
                if is_rw and last_rw:
                    continue  # two adjacent RWs: forbidden
                nxt: State = (edge.dst, is_rw, saw_rw or is_rw)
                if nxt in seen:
                    continue
                seen.add(nxt)
                parent[nxt] = ((node, last_rw, saw_rw), edge)
                if nxt == (start.src, False, True):
                    goal = nxt
                    break
                queue.append(nxt)
        if goal is not None:
            path: List[LabeledEdge] = []
            cur = goal
            while cur != initial:
                prev, edge = parent[cur]
                path.append(edge)
                cur = prev
            path.reverse()
            return Cycle((start, *path))
    return None
