"""Robustness analyses (Section 6): dynamic criteria and static checks.

Dynamic: decide whether a dependency graph lies in GraphSI \\ GraphSER
(Theorem 19) or GraphPSI \\ GraphSI (Theorem 22).  Static: prove from
read/write sets that an application is robust against SI (towards
serializability) or against parallel SI (towards SI).
"""

from .dynamic import (
    exhibits_psi_only_behaviour,
    exhibits_psi_only_behaviour_by_cycles,
    exhibits_si_only_behaviour,
    exhibits_si_only_behaviour_by_cycles,
    psi_anomaly_witness,
    si_anomaly_witness,
)
from .static import (
    RobustnessVerdict,
    check_robustness_against_si,
    check_robustness_psi_to_si,
    robust_against_si,
    robust_psi_to_si,
    robustness_report,
    static_dependency_graph,
)

__all__ = [
    "exhibits_si_only_behaviour",
    "exhibits_si_only_behaviour_by_cycles",
    "exhibits_psi_only_behaviour",
    "exhibits_psi_only_behaviour_by_cycles",
    "si_anomaly_witness",
    "psi_anomaly_witness",
    "static_dependency_graph",
    "RobustnessVerdict",
    "check_robustness_against_si",
    "check_robustness_psi_to_si",
    "robust_against_si",
    "robust_psi_to_si",
    "robustness_report",
]
