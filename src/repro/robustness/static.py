"""Static robustness analyses (Sections 6.1 and 6.2).

The analyses abstract an application by a set of programs with read and
write sets (each program is one *whole* transaction — chopping is not
involved here), build a *static dependency graph* over-approximating the
dependencies of any execution, and search it for dangerous cycles:

* **Robustness against SI** (§6.1, from Theorem 19): if the static graph
  has *no cycle with two adjacent anti-dependency edges*, the application
  produces no history in HistSI \\ HistSER — running it under SI gives
  exactly the serializable behaviours.
* **Robustness against parallel SI towards SI** (§6.2, from Theorem 22):
  if the static graph has *no cycle with at least two anti-dependency
  edges none of which are adjacent*, the application produces no history
  in HistPSI \\ HistSI.

Both dangerous-cycle queries run in polynomial time
(:mod:`repro.robustness.search`), so the analyses scale to replicated
application graphs (which are nearly complete digraphs).

The static dependency graph has an edge per conflict between *different*
program nodes.  Because several sessions may run the same program
concurrently, each program is instantiated ``instances`` times (default 2)
before the graph is built — the standard device for making read/write-set
analyses account for self-conflicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..chopping.programs import Program, replicate
from ..graphs.cycles import (
    Cycle,
    EdgeKind,
    LabeledDigraph,
    LabeledEdge,
)
from .search import find_adjacent_rw_cycle, find_nonadjacent_rw_cycle


def static_dependency_graph(
    programs: Sequence[Program], instances: int = 2
) -> LabeledDigraph:
    """The static dependency graph of §6's analyses.

    Nodes are (replicated) program names; edges over-approximate runtime
    dependencies from the read/write sets:

    * WR when ``W_1 ∩ R_2 ≠ ∅``;
    * WW when ``W_1 ∩ W_2 ≠ ∅``;
    * RW when ``R_1 ∩ W_2 ≠ ∅``.

    Args:
        programs: the application's transaction programs (whole
            transactions; pieces are merged via ``Program.unchopped``).
        instances: how many concurrent instances of each program to
            model (≥ 2 captures conflicts of a program with itself).
    """
    if instances < 1:
        raise ValueError("instances must be >= 1")
    expanded = replicate(list(programs), instances)
    graph = LabeledDigraph()
    whole = [(p.name, p.unchopped().pieces[0]) for p in expanded]
    for name, _ in whole:
        graph.add_node(name)
    for n1, p1 in whole:
        for n2, p2 in whole:
            if n1 == n2:
                continue
            for obj in sorted(p1.writes & p2.reads):
                graph.add_edge(LabeledEdge(n1, n2, EdgeKind.WR, obj))
            for obj in sorted(p1.writes & p2.writes):
                graph.add_edge(LabeledEdge(n1, n2, EdgeKind.WW, obj))
            for obj in sorted(p1.reads & p2.writes):
                graph.add_edge(LabeledEdge(n1, n2, EdgeKind.RW, obj))
    return graph


@dataclass(frozen=True)
class RobustnessVerdict:
    """Outcome of a static robustness analysis.

    Attributes:
        property_name: which robustness property was checked.
        robust: True when no dangerous cycle exists (sound, conservative).
        witness: a dangerous cycle otherwise — a potential anomaly shape.
    """

    property_name: str
    robust: bool
    witness: Optional[Cycle]

    def __str__(self) -> str:
        if self.robust:
            return f"application is {self.property_name}"
        return (
            f"application may not be {self.property_name}; "
            f"dangerous static cycle: {self.witness}"
        )


def check_robustness_against_si(
    programs: Sequence[Program],
    instances: int = 2,
    require_vulnerable: bool = False,
) -> RobustnessVerdict:
    """§6.1's analysis: is the application robust against SI (i.e. does
    running under SI give only serializable behaviours)?

    Looks for Theorem 19's dangerous shape — a cycle with two adjacent
    anti-dependency edges — in the static dependency graph.

    Args:
        programs: the application's transaction programs.
        instances: concurrent instances modelled per program.
        require_vulnerable: enable the Fekete-style refinement — only
            count adjacent anti-dependency pairs whose edges connect
            programs *without* write-write conflicts (which could thus run
            concurrently; SI's first-committer-wins serialises
            write-conflicting pairs).  Off by default to match the
            paper's plain analysis; turning it on reproduces the
            dangerous-structure analysis of Fekete et al. [18], e.g.
            proving TPC-C robust.
    """
    graph = static_dependency_graph(programs, instances)
    if require_vulnerable:
        expanded = replicate(list(programs), instances)
        by_name = {p.name: p for p in expanded}

        def vulnerable(edge: LabeledEdge) -> bool:
            src, dst = by_name[edge.src], by_name[edge.dst]
            return not (src.writes & dst.writes)

        witness = find_adjacent_rw_cycle(graph, vulnerable)
    else:
        witness = find_adjacent_rw_cycle(graph)
    return RobustnessVerdict(
        "robust against SI (SI ⇒ serializable)", witness is None, witness
    )


def check_robustness_psi_to_si(
    programs: Sequence[Program], instances: int = 2
) -> RobustnessVerdict:
    """§6.2's analysis: is the application robust against parallel SI
    towards SI (i.e. does running under PSI give only SI behaviours)?

    Looks for Theorem 22's dangerous shape — a cycle with at least two
    anti-dependency edges, no two adjacent — in the static graph.
    """
    graph = static_dependency_graph(programs, instances)
    witness = find_nonadjacent_rw_cycle(graph)
    return RobustnessVerdict(
        "robust against parallel SI towards SI (PSI ⇒ SI)",
        witness is None,
        witness,
    )


def robust_against_si(
    programs: Sequence[Program],
    instances: int = 2,
    require_vulnerable: bool = False,
) -> bool:
    """Boolean form of :func:`check_robustness_against_si`."""
    return check_robustness_against_si(
        programs, instances, require_vulnerable
    ).robust


def robust_psi_to_si(
    programs: Sequence[Program], instances: int = 2
) -> bool:
    """Boolean form of :func:`check_robustness_psi_to_si`."""
    return check_robustness_psi_to_si(programs, instances).robust


def robustness_report(
    applications: Dict[str, Sequence[Program]], instances: int = 2
) -> Dict[str, Dict[str, bool]]:
    """Robustness of several applications under both properties."""
    return {
        name: {
            "SI=>SER": robust_against_si(programs, instances),
            "PSI=>SI": robust_psi_to_si(programs, instances),
        }
        for name, programs in applications.items()
    }
