"""Dynamic robustness criteria (Theorems 19 and 22).

* **Theorem 19** — ``G ∈ GraphSI \\ GraphSER`` iff ``T_G ⊨ INT``, ``G``
  contains a cycle, and all its cycles have at least two *adjacent*
  anti-dependency edges.  A dependency graph in this difference witnesses
  behaviour possible under SI but not under serializability; an
  application none of whose graphs fall in it is *robust against SI*.
* **Theorem 22** — ``G ∈ GraphPSI \\ GraphSI`` iff ``T_G ⊨ INT``, ``G``
  contains at least one cycle with *no* adjacent anti-dependency edges,
  and all its cycles have at least two anti-dependency edges.  This is
  the dynamic criterion for robustness *against parallel SI towards SI*.

Both criteria are implemented twice: compositionally (set difference of
the polynomial graph-class checks) and by direct cycle scans following the
theorem statements.  Tests verify the two agree — an executable proof
sketch of the theorems on the explored instances.
"""

from __future__ import annotations

from typing import Optional

from ..graphs.classify import (
    cycle_allowed_by_psi,
    cycle_allowed_by_si,
    in_graph_psi,
    in_graph_ser,
    in_graph_si,
    to_labeled_digraph,
)
from ..graphs.cycles import Cycle, is_antidependency
from ..graphs.dependency import DependencyGraph


def exhibits_si_only_behaviour(graph: DependencyGraph) -> bool:
    """``G ∈ GraphSI \\ GraphSER`` — the compositional form of Theorem 19.

    True when the graph is realisable under SI but not under
    serializability (e.g. a write skew).
    """
    return in_graph_si(graph) and not in_graph_ser(graph)


def exhibits_si_only_behaviour_by_cycles(graph: DependencyGraph) -> bool:
    """Theorem 19's cycle-based statement, verbatim: INT holds, at least
    one cycle exists, and every cycle has two adjacent anti-dependencies.

    Exponential; used to cross-validate the compositional form.
    """
    if not graph.history.is_internally_consistent():
        return False
    labeled = to_labeled_digraph(graph)
    has_cycle = labeled.find_cycle(lambda c: True) is not None
    if not has_cycle:
        return False
    return labeled.all_cycles_satisfy(cycle_allowed_by_si)


def exhibits_psi_only_behaviour(graph: DependencyGraph) -> bool:
    """``G ∈ GraphPSI \\ GraphSI`` — the compositional form of Theorem 22.

    True when the graph is realisable under parallel SI but not under SI
    (e.g. a long fork).
    """
    return in_graph_psi(graph) and not in_graph_si(graph)


def exhibits_psi_only_behaviour_by_cycles(graph: DependencyGraph) -> bool:
    """Theorem 22's cycle-based statement, verbatim: INT holds, some cycle
    has no adjacent anti-dependency edges, and all cycles have at least
    two anti-dependency edges."""
    if not graph.history.is_internally_consistent():
        return False
    labeled = to_labeled_digraph(graph)
    witness = labeled.find_cycle(
        lambda c: not c.has_adjacent_pair(is_antidependency)
    )
    if witness is None:
        return False
    return labeled.all_cycles_satisfy(cycle_allowed_by_psi)


def si_anomaly_witness(graph: DependencyGraph) -> Optional[Cycle]:
    """For a graph in ``GraphSI \\ GraphSER``: a cycle (necessarily with
    two adjacent anti-dependencies) witnessing non-serializability."""
    return to_labeled_digraph(graph).find_cycle(lambda c: True)


def psi_anomaly_witness(graph: DependencyGraph) -> Optional[Cycle]:
    """For a graph in ``GraphPSI \\ GraphSI``: a cycle with no adjacent
    anti-dependency edges (the long-fork-style witness)."""
    return to_labeled_digraph(graph).find_cycle(
        lambda c: not c.has_adjacent_pair(is_antidependency)
    )
