"""Online consistency monitoring (the §7 run-time-monitoring application).

:class:`ConsistencyMonitor` watches a stream of committed transactions,
maintains the dependency graph incrementally, and flags the first commit
whose accumulated behaviour leaves GraphSI / GraphSER / GraphPSI.
:class:`WindowedMonitor` adds transaction-window garbage collection so
the per-commit cost stays bounded under sustained service load.
"""

from .online import (
    ConsistencyMonitor,
    MonitorError,
    Violation,
    watch_engine,
)
from .windowed import WindowedMonitor

__all__ = [
    "ConsistencyMonitor",
    "MonitorError",
    "Violation",
    "WindowedMonitor",
    "watch_engine",
]
