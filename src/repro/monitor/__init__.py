"""Online consistency monitoring (the §7 run-time-monitoring application).

:class:`ConsistencyMonitor` watches a stream of committed transactions,
maintains the dependency graph incrementally, and flags the first commit
whose accumulated behaviour leaves GraphSI / GraphSER / GraphPSI.
"""

from .online import (
    ConsistencyMonitor,
    MonitorError,
    Violation,
    watch_engine,
)

__all__ = [
    "ConsistencyMonitor",
    "MonitorError",
    "Violation",
    "watch_engine",
]
