"""Online consistency monitoring (the §7 run-time-monitoring application).

:class:`ConsistencyMonitor` watches a stream of committed transactions,
maintains the dependency graph incrementally, and flags the first commit
whose accumulated behaviour leaves GraphSI / GraphSER / GraphPSI.
Certification runs on one of two back-ends selected by the ``checker``
knob: the default ``"incremental"`` core
(:mod:`repro.monitor.incremental`) maintains the composed relation as a
DAG under a Pearce–Kelly dynamic topological order so the common
no-violation commit costs amortised near-constant work, while
``"rebuild"`` re-derives the full condition each commit and serves as
the differential-testing oracle.  :class:`WindowedMonitor` adds
transaction-window garbage collection so memory stays bounded under
sustained service load.
"""

from .incremental import (
    CHECKERS,
    DynamicTopoOrder,
    IncrementalChecker,
    PsiIncrementalChecker,
    SerIncrementalChecker,
    SiIncrementalChecker,
    make_checker,
)
from .online import (
    ConsistencyMonitor,
    MonitorError,
    Violation,
    watch_engine,
)
from .windowed import WindowedMonitor

__all__ = [
    "CHECKERS",
    "ConsistencyMonitor",
    "DynamicTopoOrder",
    "IncrementalChecker",
    "MonitorError",
    "PsiIncrementalChecker",
    "SerIncrementalChecker",
    "SiIncrementalChecker",
    "Violation",
    "WindowedMonitor",
    "make_checker",
    "watch_engine",
]
