"""Windowed online monitoring: bounded-cost certification under load.

:class:`~repro.monitor.online.ConsistencyMonitor` keeps the full
dependency graph forever, so its per-commit check grows linearly with
run length — fine for replaying a bench, unusable against a service
that commits millions of transactions.  :class:`WindowedMonitor` keeps
only the last ``window`` committed transactions as graph nodes and
garbage-collects everything older, which bounds both memory and the
per-commit cycle test by the window size.

Garbage collection is *sound within the window*: eviction only removes
nodes older than the window together with their incident edges, and
never touches an edge between two retained transactions.  Hence any
violating cycle whose transactions all lie within one window is still
detected, at the same commit as the full monitor would flag
(``tests/monitor/test_windowed.py`` proves this against the full
monitor on adversarial streams).  The price is cycles *spanning* more
than a window: a cycle involving a transaction evicted before the
cycle closes is missed, so the window must be chosen larger than the
anomaly horizon of interest (for the MVCC engines: the maximum number
of commits overlapping any transaction's lifetime).

Version attribution survives eviction: the per-object value table
keeps the attribution of each object's *current* version even when its
writer has been evicted (a later reader of that version is then placed
after the eviction frontier — it gains anti-dependencies to all
retained overwriters, but no WR edge to the dead node).  A *superseded*
version's attribution is kept until the transaction that overwrote it
is itself evicted: what bounds a read's staleness is how long ago the
version was *overwritten*, not how long ago it was written (an
in-flight snapshot can legitimately return a version whose writer left
the window long ago, as long as the overwrite is recent).  Only once
the overwriter has also aged out of the window is the attribution
dropped; in strict mode a read of such a version is reported as
unattributable rather than silently misclassified.  Retained stale
attributions are bounded by the number of in-window overwrites, so
memory stays O(window + objects).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from ..core.events import Obj, Op, Value
from .online import ConsistencyMonitor, MonitorError, Violation


class WindowedMonitor(ConsistencyMonitor):
    """A :class:`ConsistencyMonitor` with transaction-window GC.

    Args:
        window: how many of the most recent committed transactions to
            retain as dependency-graph nodes (at least 2).
        model, initial_values, strict_values, init_tid, checker: as for
            :class:`ConsistencyMonitor`.  With the default
            ``checker="incremental"`` eviction is pure bookkeeping —
            removing nodes and edges never invalidates the maintained
            topological order, so no re-check or reorder happens.
    """

    def __init__(
        self,
        window: int,
        model: str = "SI",
        initial_values: Optional[Dict[Obj, Value]] = None,
        strict_values: bool = True,
        init_tid: str = "t_init",
        checker: str = "incremental",
    ):
        if window < 2:
            raise MonitorError(
                f"window must be at least 2 transactions, got {window}"
            )
        super().__init__(
            model=model,
            initial_values=initial_values,
            strict_values=strict_values,
            init_tid=init_tid,
            checker=checker,
        )
        self.window = window
        self.evicted_count = 0
        self._evicted: Set[str] = set()
        # Per retained commit: the (obj, value) attributions its writes
        # superseded — dropped from the value table when *it* is
        # evicted (see the module docstring on staleness horizons).
        self._superseded_by: Dict[str, List[tuple]] = {}

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def observe_commit(
        self, tid: str, session: str, events: Sequence[Op]
    ) -> Optional[Violation]:
        """Feed one committed transaction, then evict beyond the window."""
        if tid in self._evicted:
            raise MonitorError(
                f"transaction {tid!r} observed twice (first occurrence "
                f"already garbage-collected)"
            )
        previous = {
            op.obj: self._latest_value[op.obj]
            for op in events
            if op.is_write and op.obj in self._latest_value
        }
        violation = super().observe_commit(tid, session, events)
        superseded = [
            (obj, value)
            for obj, value in previous.items()
            if self._latest_value.get(obj) != value
        ]
        if superseded:
            self._superseded_by[tid] = superseded
        while len(self._commit_order) > self.window:
            self._evict(self._commit_order.pop(0))
        self._prune_evicted_set()
        return violation

    # ------------------------------------------------------------------
    # Hook overrides (attribution across the eviction frontier)
    # ------------------------------------------------------------------

    def _in_graph(self, tid: str) -> bool:
        return super()._in_graph(tid) and tid not in self._evicted

    def _overwriters_of(self, obj: Obj, writer: str) -> List[str]:
        if writer in self._evicted:
            # The evicted writer preceded every retained writer of the
            # object (eviction follows commit order), so all of them
            # overwrote its version.  The seeded initialisation writer
            # is not an overwriter — it precedes everything.
            return [
                t
                for t in self._writers.get(obj, [])
                if t != self.init_tid
            ]
        return super()._overwriters_of(obj, writer)

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------

    def _evict(self, old: str) -> None:
        """Remove ``old`` and every incident edge from the graph."""
        record = self._records.pop(old)
        self._evicted.add(old)
        self.evicted_count += 1
        if self._core is not None:
            self._core.remove_node(old)
        session_tids = self._sessions.get(record.session)
        if session_tids is not None:
            if old in session_tids:
                session_tids.remove(old)
            if not session_tids:
                del self._sessions[record.session]
        for edges in (self._so, self._wr, self._ww, self._rw):
            edges.difference_update(
                [(a, b) for a, b in edges if a == old or b == old]
            )
        for obj in record.txn.external_read_objects:
            readers = self._readers.get(obj)
            if readers is not None:
                readers.pop(old, None)
                if not readers:
                    del self._readers[obj]
        for obj in record.txn.written_objects:
            seq = self._writers.get(obj)
            if seq and old in seq:
                seq.remove(old)
        # The versions ``old`` overwrote have now been stale for a full
        # window: no attributable read can still return them.  (The
        # versions ``old`` *wrote* stay attributed until their own
        # overwriters are evicted.)
        for obj, value in self._superseded_by.pop(old, ()):
            table = self._value_writer.get(obj, {})
            if value in table and self._latest_value.get(obj) != value:
                del table[value]

    def _prune_evicted_set(self) -> None:
        """Forget evicted tids nothing references any more, keeping the
        tombstone set (and so total memory) bounded by the window."""
        retained_attributions = sum(
            len(table) for table in self._value_writer.values()
        )
        if len(self._evicted) <= self.window + retained_attributions:
            return
        referenced = {
            version
            for readers in self._readers.values()
            for version in readers.values()
        }
        for table in self._value_writer.values():
            # Every retained attribution (current or superseded-but-
            # still-readable) keeps its writer's tombstone: a later
            # read of that value must see the writer as evicted, not
            # as an unknown live node.
            referenced.update(table.values())
        self._evicted &= referenced

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def commit_count(self) -> int:
        """Number of commits observed (including evicted ones)."""
        return len(self._commit_order) + self.evicted_count

    @property
    def retained_count(self) -> int:
        """Number of transactions currently in the graph."""
        return len(self._commit_order)

    def state_size(self) -> Dict[str, int]:
        """Rough sizes of the GC-bounded structures (for tests/benches)."""
        return {
            "records": len(self._records),
            "edges": sum(
                len(s) for s in (self._so, self._wr, self._ww, self._rw)
            ),
            "read_versions": sum(
                len(readers) for readers in self._readers.values()
            ),
            "value_attributions": sum(
                len(t) for t in self._value_writer.values()
            ),
            "evicted_tombstones": len(self._evicted),
        }
