"""Online consistency monitoring (the §7 application of Theorem 9).

The paper notes that dependency-graph specifications are what run-time
monitors need: a monitor sees committed transactions (their reads and
writes) and must decide whether the accumulated behaviour is still
explainable by the claimed consistency model — *without* guessing
implementation internals like snapshot timestamps.

:class:`ConsistencyMonitor` does exactly that.  It observes commits in
commit order, incrementally maintains the dependency graph —

* **WR** by attributing each external read to the writer of the value
  (the monitor tracks, per object, which committed transaction wrote each
  value; ambiguous duplicate values are rejected in strict mode);
* **WW** as the observed commit order restricted to each object's writers
  (Definition 5 with CO = real commit order);
* **RW** derived incrementally: when ``T`` overwrites a version, every
  earlier reader of that version gains an anti-dependency to ``T``; when
  ``T`` reads a version that was already overwritten, ``T`` gains
  anti-dependencies to the overwriters —

and after every commit re-checks the model's graph condition
(Theorem 9 for SI, Theorem 8 for SER, Theorem 21 for PSI).  On a
violation it reports the offending cycle, and the monitor keeps the full
graph so post-mortem extraction is possible.

The per-commit check is a linear-time cycle test over the composite
relation, so monitoring a run of ``n`` transactions costs ``O(n·(V+E))``
overall — adequate for test harnesses and the bench.  For sustained
production load use :class:`~repro.monitor.windowed.WindowedMonitor`,
which garbage-collects transactions outside a sliding commit window so
the per-commit cost stays bounded (at the price of missing cycles that
span more than a window).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.errors import ReproError
from ..core.events import Obj, Op, Value
from ..core.histories import History
from ..core.relations import Relation
from ..core.transactions import Transaction
from ..graphs.dependency import DependencyGraph
from ..mvcc.engine import BaseEngine


class MonitorError(ReproError):
    """Misuse of the monitor (duplicate tids, unattributable reads, ...)."""


@dataclass(frozen=True)
class Violation:
    """A detected consistency violation.

    Attributes:
        model: the model whose condition failed.
        tid: the transaction whose commit triggered the detection.
        cycle: a witness cycle, as a list of tids (first == last).
        message: human-readable explanation.
    """

    model: str
    tid: str
    cycle: List[str]
    message: str

    def __str__(self) -> str:
        return self.message


@dataclass
class _TxnRecord:
    txn: Transaction
    session: str
    index: int  # commit position


class ConsistencyMonitor:
    """Online checker for SI / SER / PSI over an observed commit stream.

    Args:
        model: ``"SI"`` (default), ``"SER"`` or ``"PSI"``.
        initial_values: object → initial value; an implicit initialisation
            transaction owns these versions.
        strict_values: reject runs in which a read value cannot be
            attributed to a unique writer (the default); with ``False``
            the most recent writer of the value wins.
        init_tid: the tid used for the implicit initialisation writer.
    """

    MODELS = ("SI", "SER", "PSI")

    def __init__(
        self,
        model: str = "SI",
        initial_values: Optional[Dict[Obj, Value]] = None,
        strict_values: bool = True,
        init_tid: str = "t_init",
    ):
        if model not in self.MODELS:
            raise MonitorError(
                f"unknown model {model!r}; expected one of {self.MODELS}"
            )
        self.model = model
        self.strict_values = strict_values
        self.init_tid = init_tid
        self._records: Dict[str, _TxnRecord] = {}
        self._commit_order: List[str] = []
        self._sessions: Dict[str, List[str]] = {}
        # Per object: the committed writer sequence and value attribution.
        self._writers: Dict[Obj, List[str]] = {}
        self._value_writer: Dict[Obj, Dict[Value, str]] = {}
        self._collided: Dict[Obj, Set[Value]] = {}
        # Which version (writer tid) each reader read, per object.
        self._read_version: Dict[Tuple[str, Obj], str] = {}
        # Per object: the value of the newest committed version.
        self._latest_value: Dict[Obj, Value] = {}
        # Dependency edges over tids.
        self._so: Set[Tuple[str, str]] = set()
        self._wr: Set[Tuple[str, str]] = set()
        self._ww: Set[Tuple[str, str]] = set()
        self._rw: Set[Tuple[str, str]] = set()
        self.violations: List[Violation] = []
        if initial_values:
            for obj, value in initial_values.items():
                self._writers[obj] = [init_tid]
                self._value_writer.setdefault(obj, {})[value] = init_tid
                self._latest_value[obj] = value

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def observe_commit(
        self, tid: str, session: str, events: Sequence[Op]
    ) -> Optional[Violation]:
        """Feed one committed transaction (in real commit order).

        Returns a :class:`Violation` if the accumulated behaviour is no
        longer allowed by the model, else ``None``.  Monitoring continues
        after a violation (further commits are still processed).
        """
        if tid in self._records:
            raise MonitorError(f"transaction {tid!r} observed twice")
        txn = _make_transaction(tid, events)
        record = _TxnRecord(txn, session, len(self._commit_order))
        self._records[tid] = record
        self._commit_order.append(tid)

        # SO: edges from every earlier transaction of the session.
        earlier = self._sessions.setdefault(session, [])
        for prev in earlier:
            self._so.add((prev, tid))
        earlier.append(tid)

        # WR and RW-in: attribute external reads to writers.
        for obj in sorted(txn.external_read_objects):
            value = txn.external_read(obj)
            writer = self._attribute_read(tid, obj, value)
            self._read_version[(tid, obj)] = writer
            if writer != tid and self._in_graph(writer):
                self._wr.add((writer, tid))
            # RW out of this reader towards every later overwriter of
            # that version (writers after `writer` in the object's order).
            for later in self._overwriters_of(obj, writer):
                if later != tid:
                    self._rw.add((tid, later))

        # WW and RW-in for writes: this transaction overwrites the
        # current last version of each object it writes.
        for obj in sorted(txn.written_objects):
            seq = self._writers.setdefault(obj, [])
            for prev in seq:
                if prev != tid and self._in_graph(prev):
                    self._ww.add((prev, tid))
            # Readers of any earlier version of obj gain RW edges to tid.
            for (reader, robj), version in self._read_version.items():
                if robj == obj and reader != tid:
                    # tid overwrites `version` iff version committed
                    # earlier (it did: it's in seq already).
                    self._rw.add((reader, tid))
            seq.append(tid)
            value = txn.final_write(obj)
            table = self._value_writer.setdefault(obj, {})
            if value in table and table[value] != tid:
                self._collided.setdefault(obj, set()).add(value)
            table[value] = tid
            self._latest_value[obj] = value

        violation = self._check(tid)
        if violation is not None:
            self.violations.append(violation)
        return violation

    def _known(self, tid: str) -> bool:
        return tid in self._records

    def _in_graph(self, tid: str) -> bool:
        """Whether ``tid`` is a node of the maintained graph — edges to
        or from other transactions are dropped (the implicit
        initialisation writer is not a node; a windowing subclass also
        excludes garbage-collected transactions)."""
        return tid != self.init_tid or self._known(tid)

    def _overwriters_of(self, obj: Obj, writer: str) -> List[str]:
        """The retained transactions that overwrote ``writer``'s version
        of ``obj`` (everything after it in the object's writer order)."""
        seq = self._writers.get(obj, [])
        if writer in seq:
            return seq[seq.index(writer) + 1 :]
        return []

    def _attribute_read(self, tid: str, obj: Obj, value: Value) -> str:
        table = self._value_writer.get(obj, {})
        if self.strict_values and value in self._collided.get(obj, set()):
            raise MonitorError(
                f"{tid}: read of {obj}={value!r} is ambiguous — several "
                f"transactions wrote that value (disable strict_values to "
                f"attribute to the most recent one)"
            )
        if value in table:
            return table[value]
        if self.strict_values:
            raise MonitorError(
                f"{tid}: read of {obj}={value!r} matches no committed write"
            )
        return self.init_tid

    # ------------------------------------------------------------------
    # Checking
    # ------------------------------------------------------------------

    def _dependency_relations(self):
        universe = set(self._records)
        universe.add(self.init_tid)
        so = Relation(self._so, universe)
        wr = Relation(self._wr, universe)
        ww = Relation(self._ww, universe)
        rw = Relation(self._rw, universe)
        return so, wr, ww, rw

    def _check(self, tid: str) -> Optional[Violation]:
        so, wr, ww, rw = self._dependency_relations()
        deps = so.union(wr, ww)
        if self.model == "SER":
            target = deps.union(rw)
            bad = not target.is_acyclic()
        elif self.model == "SI":
            target = deps.compose(rw.reflexive())
            bad = not target.is_acyclic()
        else:  # PSI
            target = deps.transitive_closure().compose(rw.reflexive())
            bad = not target.is_irreflexive()
            if bad:
                # Build a representative loop for the witness.
                loops = [a for a, b in target if a == b]
                return Violation(
                    model=self.model,
                    tid=tid,
                    cycle=[loops[0], loops[0]],
                    message=(
                        f"{self.model} violated at commit of {tid}: "
                        f"transaction {loops[0]} reaches itself through "
                        f"dependencies followed by an anti-dependency"
                    ),
                )
        if not bad:
            return None
        cycle = target.find_cycle() or []
        return Violation(
            model=self.model,
            tid=tid,
            cycle=list(cycle),
            message=(
                f"{self.model} violated at commit of {tid}: "
                f"dependency cycle {' -> '.join(map(str, cycle))}"
            ),
        )

    # ------------------------------------------------------------------
    # Post-mortem views
    # ------------------------------------------------------------------

    @property
    def consistent(self) -> bool:
        """True iff no violation has been detected so far."""
        return not self.violations

    @property
    def commit_count(self) -> int:
        """Number of commits observed."""
        return len(self._commit_order)

    def dependency_edges(self) -> Dict[str, Set[Tuple[str, str]]]:
        """The accumulated dependency edges (over tids), for inspection."""
        return {
            "SO": set(self._so),
            "WR": set(self._wr),
            "WW": set(self._ww),
            "RW": set(self._rw),
        }


def watch_engine(
    engine: BaseEngine, model: str = "SI", strict_values: bool = True
) -> Tuple[ConsistencyMonitor, List[Violation]]:
    """Replay an engine's committed records through a fresh monitor.

    Returns the monitor and the list of violations found.  The engine's
    initial values provide the implicit initialisation versions.
    """
    monitor = ConsistencyMonitor(
        model=model,
        initial_values=dict(engine.initial),
        strict_values=strict_values,
        init_tid=engine.init_tid,
    )
    violations: List[Violation] = []
    for record in sorted(engine.committed, key=lambda r: r.commit_ts):
        violation = monitor.observe_commit(
            record.tid, record.session, list(record.events)
        )
        if violation is not None:
            violations.append(violation)
    return monitor, violations


def _make_transaction(tid: str, events: Sequence[Op]) -> Transaction:
    from ..core.events import Event

    return Transaction(
        tid, tuple(Event(i, op) for i, op in enumerate(events))
    )
