"""Online consistency monitoring (the §7 application of Theorem 9).

The paper notes that dependency-graph specifications are what run-time
monitors need: a monitor sees committed transactions (their reads and
writes) and must decide whether the accumulated behaviour is still
explainable by the claimed consistency model — *without* guessing
implementation internals like snapshot timestamps.

:class:`ConsistencyMonitor` does exactly that.  It observes commits in
commit order, incrementally maintains the dependency graph —

* **WR** by attributing each external read to the writer of the value
  (the monitor tracks, per object, which committed transaction wrote each
  value; ambiguous duplicate values are rejected in strict mode);
* **WW** as the observed commit order restricted to each object's writers
  (Definition 5 with CO = real commit order);
* **RW** derived incrementally: when ``T`` overwrites a version, every
  earlier reader of that object (found through a per-object readers
  index) gains an anti-dependency to ``T``; when ``T`` reads a version
  that was already overwritten, ``T`` gains anti-dependencies to the
  overwriters —

and after every commit re-checks the model's graph condition
(Theorem 9 for SI, Theorem 8 for SER, Theorem 21 for PSI).  On a
violation it reports the offending cycle, and the monitor keeps the full
graph so post-mortem extraction is possible.

Two certification back-ends are available via the ``checker`` knob:

* ``"incremental"`` (the default) maintains the model's composed
  relation as a DAG under a dynamic topological order
  (:mod:`repro.monitor.incremental`), so each commit costs work
  proportional to its own edge deltas' affected region — near-amortised
  constant in the common no-violation case.  A cycle-closing edge is
  reported and dropped, so certification continues on the still-acyclic
  remainder: each violation is flagged once, at the commit that closes
  it.
* ``"rebuild"`` re-derives every relation and re-runs the full cycle
  test on each commit — ``O(V+E)`` per commit for SI/SER and a full
  transitive closure for PSI.  It is kept as the differential-testing
  oracle (``tests/monitor/test_parity.py``); once a cycle exists it is
  re-flagged at every subsequent commit.

For sustained production load use
:class:`~repro.monitor.windowed.WindowedMonitor`, which garbage-collects
transactions outside a sliding commit window so memory stays bounded
too (at the price of missing cycles that span more than a window).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.errors import ReproError
from ..core.events import Obj, Op, Value
from ..core.relations import Relation
from ..core.transactions import Transaction
from ..mvcc.engine import BaseEngine
from .incremental import IncrementalChecker, make_checker


class MonitorError(ReproError):
    """Misuse of the monitor (duplicate tids, unattributable reads, ...)."""


@dataclass(frozen=True)
class Violation:
    """A detected consistency violation.

    Attributes:
        model: the model whose condition failed.
        tid: the transaction whose commit triggered the detection.
        cycle: a witness cycle, as a list of tids (first == last).
        message: human-readable explanation.
    """

    model: str
    tid: str
    cycle: List[str]
    message: str

    def __str__(self) -> str:
        return self.message


@dataclass
class _TxnRecord:
    txn: Transaction
    session: str
    index: int  # commit position


class ConsistencyMonitor:
    """Online checker for SI / SER / PSI over an observed commit stream.

    Args:
        model: ``"SI"`` (default), ``"SER"`` or ``"PSI"``.
        initial_values: object → initial value; an implicit initialisation
            transaction owns these versions.
        strict_values: reject runs in which a read value cannot be
            attributed to a unique writer (the default); with ``False``
            the most recent writer of the value wins.
        init_tid: the tid used for the implicit initialisation writer.
        checker: ``"incremental"`` (default — dynamic-topological-order
            certification, amortised per-commit cost) or ``"rebuild"``
            (full per-commit recheck, the differential-testing oracle).
    """

    MODELS = ("SI", "SER", "PSI")
    CHECKERS = ("incremental", "rebuild")

    def __init__(
        self,
        model: str = "SI",
        initial_values: Optional[Dict[Obj, Value]] = None,
        strict_values: bool = True,
        init_tid: str = "t_init",
        checker: str = "incremental",
    ):
        if model not in self.MODELS:
            raise MonitorError(
                f"unknown model {model!r}; expected one of {self.MODELS}"
            )
        if checker not in self.CHECKERS:
            raise MonitorError(
                f"unknown checker {checker!r}; expected one of "
                f"{self.CHECKERS}"
            )
        self.model = model
        self.checker = checker
        self.strict_values = strict_values
        self.init_tid = init_tid
        self._records: Dict[str, _TxnRecord] = {}
        self._commit_order: List[str] = []
        self._sessions: Dict[str, List[str]] = {}
        # Per object: the committed writer sequence and value attribution.
        self._writers: Dict[Obj, List[str]] = {}
        self._value_writer: Dict[Obj, Dict[Value, str]] = {}
        self._collided: Dict[Obj, Set[Value]] = {}
        # Per object: reader tid → the version (writer tid) it read.
        self._readers: Dict[Obj, Dict[str, str]] = {}
        # Per object: the value of the newest committed version.
        self._latest_value: Dict[Obj, Value] = {}
        # Dependency edges over tids.
        self._so: Set[Tuple[str, str]] = set()
        self._wr: Set[Tuple[str, str]] = set()
        self._ww: Set[Tuple[str, str]] = set()
        self._rw: Set[Tuple[str, str]] = set()
        self._core: Optional[IncrementalChecker] = (
            make_checker(model) if checker == "incremental" else None
        )
        self.violations: List[Violation] = []
        if initial_values:
            for obj, value in initial_values.items():
                self._writers[obj] = [init_tid]
                self._value_writer.setdefault(obj, {})[value] = init_tid
                self._latest_value[obj] = value

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def observe_commit(
        self, tid: str, session: str, events: Sequence[Op]
    ) -> Optional[Violation]:
        """Feed one committed transaction (in real commit order).

        Returns a :class:`Violation` if the accumulated behaviour is no
        longer allowed by the model, else ``None``.  Monitoring continues
        after a violation (further commits are still processed).
        """
        if tid in self._records:
            raise MonitorError(f"transaction {tid!r} observed twice")
        txn = _make_transaction(tid, events)
        record = _TxnRecord(txn, session, len(self._commit_order))
        self._records[tid] = record
        self._commit_order.append(tid)
        if self._core is not None:
            self._core.add_node(tid)

        new_dep: List[Tuple[str, str]] = []
        new_rw: List[Tuple[str, str]] = []

        def dep_edge(kind: Set[Tuple[str, str]], a: str, b: str) -> None:
            if (a, b) not in kind:
                kind.add((a, b))
                new_dep.append((a, b))

        def rw_edge(a: str, b: str) -> None:
            if (a, b) not in self._rw:
                self._rw.add((a, b))
                new_rw.append((a, b))

        # SO: edges from every earlier transaction of the session.
        earlier = self._sessions.setdefault(session, [])
        for prev in earlier:
            dep_edge(self._so, prev, tid)
        earlier.append(tid)

        # WR and RW-out: attribute external reads to writers.
        for obj in sorted(txn.external_read_objects):
            value = txn.external_read(obj)
            writer = self._attribute_read(tid, obj, value)
            self._readers.setdefault(obj, {})[tid] = writer
            if writer != tid and self._in_graph(writer):
                dep_edge(self._wr, writer, tid)
            # RW out of this reader towards every later overwriter of
            # that version (writers after `writer` in the object's order).
            for later in self._overwriters_of(obj, writer):
                if later != tid:
                    rw_edge(tid, later)

        # WW and RW-in for writes: this transaction overwrites the
        # current last version of each object it writes.
        for obj in sorted(txn.written_objects):
            seq = self._writers.setdefault(obj, [])
            for prev in seq:
                if prev != tid and self._in_graph(prev):
                    dep_edge(self._ww, prev, tid)
            # Earlier readers of obj gain RW edges to tid (the readers
            # index makes this O(readers-of-obj), not O(total reads)).
            for reader in self._readers.get(obj, ()):
                if reader != tid:
                    rw_edge(reader, tid)
            seq.append(tid)
            value = txn.final_write(obj)
            table = self._value_writer.setdefault(obj, {})
            if value in table and table[value] != tid:
                self._collided.setdefault(obj, set()).add(value)
            table[value] = tid
            self._latest_value[obj] = value

        violation = self._check(tid, new_dep, new_rw)
        if violation is not None:
            self.violations.append(violation)
        return violation

    def _known(self, tid: str) -> bool:
        return tid in self._records

    def _in_graph(self, tid: str) -> bool:
        """Whether ``tid`` is a node of the maintained graph — edges to
        or from other transactions are dropped (the implicit
        initialisation writer is not a node; a windowing subclass also
        excludes garbage-collected transactions)."""
        return tid != self.init_tid or self._known(tid)

    def _overwriters_of(self, obj: Obj, writer: str) -> List[str]:
        """The retained transactions that overwrote ``writer``'s version
        of ``obj`` (everything after it in the object's writer order)."""
        seq = self._writers.get(obj, [])
        if writer in seq:
            return seq[seq.index(writer) + 1 :]
        return []

    def _attribute_read(self, tid: str, obj: Obj, value: Value) -> str:
        table = self._value_writer.get(obj, {})
        if self.strict_values and value in self._collided.get(obj, set()):
            raise MonitorError(
                f"{tid}: read of {obj}={value!r} is ambiguous — several "
                f"transactions wrote that value (disable strict_values to "
                f"attribute to the most recent one)"
            )
        if value in table:
            return table[value]
        if self.strict_values:
            raise MonitorError(
                f"{tid}: read of {obj}={value!r} matches no committed write"
            )
        return self.init_tid

    # ------------------------------------------------------------------
    # Checking
    # ------------------------------------------------------------------

    def _check(
        self,
        tid: str,
        new_dep: Sequence[Tuple[str, str]],
        new_rw: Sequence[Tuple[str, str]],
    ) -> Optional[Violation]:
        if self._core is not None:
            cycle = self._core.observe(new_dep, new_rw)
            if cycle is None:
                return None
            return self._violation(tid, cycle)
        return self._check_rebuild(tid)

    def _violation(self, tid: str, cycle: Sequence[str]) -> Violation:
        return Violation(
            model=self.model,
            tid=tid,
            cycle=list(cycle),
            message=(
                f"{self.model} violated at commit of {tid}: "
                f"dependency cycle {' -> '.join(map(str, cycle))}"
            ),
        )

    def _dependency_relations(self):
        universe = set(self._records)
        universe.add(self.init_tid)
        so = Relation(self._so, universe)
        wr = Relation(self._wr, universe)
        ww = Relation(self._ww, universe)
        rw = Relation(self._rw, universe)
        return so, wr, ww, rw

    def _check_rebuild(self, tid: str) -> Optional[Violation]:
        """Full re-derivation of the model's graph condition (oracle)."""
        so, wr, ww, rw = self._dependency_relations()
        deps = so.union(wr, ww)
        if self.model == "SER":
            target = deps.union(rw)
            bad = not target.is_acyclic()
        elif self.model == "SI":
            target = deps.compose(rw.reflexive())
            bad = not target.is_acyclic()
        else:  # PSI
            closure = deps.transitive_closure()
            target = closure.compose(rw.reflexive())
            bad = not target.is_irreflexive()
            if bad:
                return self._violation(tid, _psi_witness(deps, rw, closure))
        if not bad:
            return None
        return self._violation(tid, target.find_cycle() or [])

    # ------------------------------------------------------------------
    # Post-mortem views
    # ------------------------------------------------------------------

    @property
    def consistent(self) -> bool:
        """True iff no violation has been detected so far."""
        return not self.violations

    @property
    def commit_count(self) -> int:
        """Number of commits observed."""
        return len(self._commit_order)

    def dependency_edges(self) -> Dict[str, Set[Tuple[str, str]]]:
        """The accumulated dependency edges (over tids), for inspection."""
        return {
            "SO": set(self._so),
            "WR": set(self._wr),
            "WW": set(self._ww),
            "RW": set(self._rw),
        }


def _psi_witness(
    deps: Relation, rw: Relation, closure: Relation
) -> List[str]:
    """An actual dependency loop witnessing a PSI violation.

    ``(deps+ ; rw?)`` being reflexive somewhere means either ``deps``
    itself has a cycle, or some anti-dependency ``(c, a)`` is closed by
    a dependency path ``a ⇒ c``; reconstruct and return that loop
    (``[a, ..., c, a]``) rather than a degenerate ``[t, t]`` pair.
    """
    cycle = deps.find_cycle()
    if cycle is not None:
        return list(cycle)
    for c, a in rw:
        if (a, c) in closure.pairs:
            path = _dep_path(deps, a, c)
            if path is not None:
                return path + [a]
    return []


def _dep_path(deps: Relation, a: str, c: str) -> Optional[List[str]]:
    """A BFS path ``[a, ..., c]`` through ``deps``, if one exists."""
    if a == c:
        return [a]
    succ = deps.successors_map()
    parent: Dict[str, Optional[str]] = {a: None}
    queue: deque = deque([a])
    while queue:
        node = queue.popleft()
        for nxt in succ.get(node, ()):
            if nxt == c:
                path = [c, node]
                cursor = parent[node]
                while cursor is not None:
                    path.append(cursor)
                    cursor = parent[cursor]
                path.reverse()
                return path
            if nxt not in parent:
                parent[nxt] = node
                queue.append(nxt)
    return None


def watch_engine(
    engine: BaseEngine,
    model: str = "SI",
    strict_values: bool = True,
    checker: str = "incremental",
) -> Tuple[ConsistencyMonitor, List[Violation]]:
    """Replay an engine's committed records through a fresh monitor.

    Returns the monitor and the list of violations found.  The engine's
    initial values provide the implicit initialisation versions.
    """
    monitor = ConsistencyMonitor(
        model=model,
        initial_values=dict(engine.initial),
        strict_values=strict_values,
        init_tid=engine.init_tid,
        checker=checker,
    )
    violations: List[Violation] = []
    for record in sorted(engine.committed, key=lambda r: r.commit_ts):
        violation = monitor.observe_commit(
            record.tid, record.session, list(record.events)
        )
        if violation is not None:
            violations.append(violation)
    return monitor, violations


def _make_transaction(tid: str, events: Sequence[Op]) -> Transaction:
    from ..core.events import Event

    return Transaction(
        tid, tuple(Event(i, op) for i, op in enumerate(events))
    )
